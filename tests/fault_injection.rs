//! End-to-end tests for the `netsim-faults` subsystem through the whole
//! stack: v1-spec compatibility, zero-rate equivalence, determinism of
//! faulty runs, and the honest-traffic-only invariant.

use byzcount::prelude::*;
use proptest::prelude::*;
use serde_json::Value;

fn demo_sim(seed: u64) -> Simulation {
    Simulation::builder()
        .topology(TopologySpec::SmallWorld { n: 160, d: 6 })
        .workload(WorkloadSpec::Byzantine)
        .placement(PlacementSpec::RandomBudget { delta: 0.6 })
        .adversary(AdversarySpec::Combined)
        .seed(seed)
        .build()
        .expect("spec")
}

/// Rewrite a current spec's JSON into its v1 form: stamp `version: 1` and
/// remove the `fault` and `engine` keys (v1 predates both the fault layer
/// and the engine knob).
fn downgrade_to_v1(json: &str) -> String {
    let value = serde_json::parse_value_complete(json).expect("valid JSON");
    let Value::Obj(mut obj) = value else {
        panic!("spec must be an object")
    };
    obj.remove("fault");
    obj.remove("engine");
    obj.insert(
        "version".into(),
        serde_json::parse_value_complete("1").unwrap(),
    );
    serde_json::to_string_pretty(&Value::Obj(obj)).expect("stringify")
}

#[test]
fn v1_spec_and_v2_fault_none_produce_byte_identical_reports() {
    let v2_spec = demo_sim(2024).spec().clone();
    let v2_json = v2_spec.to_json();
    assert!(
        v2_json.contains("\"fault\""),
        "v2 specs spell the fault out"
    );
    assert!(v2_json.contains(&format!("\"version\": {SPEC_VERSION}")));

    let v1_json = downgrade_to_v1(&v2_json);
    assert!(!v1_json.contains("fault"));
    assert!(!v1_json.contains("engine"));
    let v1_spec = RunSpec::from_json(&v1_json).expect("v1 specs must still parse");
    assert_eq!(
        v1_spec, v2_spec,
        "parsing migrates v1 to the current-version equivalent"
    );

    let from_v1 = byzcount::sim::execute(&v1_spec).expect("v1 run");
    let from_v2 = byzcount::sim::execute(&v2_spec).expect("v2 run");
    assert_eq!(from_v1, from_v2);
    assert_eq!(
        from_v1.to_json(),
        from_v2.to_json(),
        "a v1 spec and its v2 `fault: None` equivalent must be byte-identical"
    );
}

#[test]
fn v1_batch_specs_still_deserialize_and_run() {
    let batch = Simulation::builder()
        .topology(TopologySpec::SmallWorld { n: 96, d: 6 })
        .workload(WorkloadSpec::Basic)
        .seeds(SeedPolicy::Sequence { base: 5, count: 2 })
        .build()
        .expect("spec")
        .batch_spec();
    let v2_json = batch.to_json();
    // Downgrade both the batch envelope and the inner run spec.
    let value = serde_json::parse_value_complete(&v2_json).unwrap();
    let Value::Obj(mut obj) = value else {
        panic!("batch must be an object")
    };
    obj.insert(
        "version".into(),
        serde_json::parse_value_complete("1").unwrap(),
    );
    let Some(Value::Obj(mut run)) = obj.remove("run") else {
        panic!("batch has a run object")
    };
    run.remove("fault");
    run.remove("engine");
    run.insert(
        "version".into(),
        serde_json::parse_value_complete("1").unwrap(),
    );
    obj.insert("run".into(), Value::Obj(run));
    let v1_json = serde_json::to_string_pretty(&Value::Obj(obj)).unwrap();

    let v1_batch = BatchSpec::from_json(&v1_json).expect("v1 batch must parse");
    assert_eq!(v1_batch, batch);
    let a = byzcount::sim::execute_batch(&v1_batch).expect("v1 batch run");
    let b = byzcount::sim::execute_batch(&batch).expect("v2 batch run");
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn faulty_runs_are_deterministic_and_seed_sensitive() {
    let build = |seed: u64| {
        Simulation::builder()
            .topology(TopologySpec::SmallWorld { n: 160, d: 6 })
            .workload(WorkloadSpec::Byzantine)
            .placement(PlacementSpec::RandomBudget { delta: 0.6 })
            .adversary(AdversarySpec::Combined)
            .fault(FaultSpec::Compose(vec![
                FaultSpec::Loss { rate: 0.15 },
                FaultSpec::Delay {
                    max_delay: 2,
                    rate: 0.25,
                },
                FaultSpec::Churn {
                    rate: 0.01,
                    downtime: 4,
                },
                FaultSpec::Partition {
                    start: 3,
                    duration: 5,
                },
            ]))
            .seed(seed)
            .build()
            .expect("spec")
    };
    let a = build(31).run().expect("run");
    let b = build(31).run().expect("run");
    assert_eq!(a, b);
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "faulty runs stay byte-reproducible"
    );
    let c = build(32).run().expect("run");
    assert_ne!(a.to_json(), c.to_json());
    // The faults actually fired.
    assert!(a.messages_lost > 0);
    assert!(a.messages_delayed > 0);
}

#[test]
fn total_loss_still_delivers_byzantine_traffic_end_to_end() {
    // Loss rate 1.0 destroys every honest envelope, yet the adversary's
    // Byzantine traffic keeps flowing — faults weaken the network, never
    // the adversary.
    let report = Simulation::builder()
        .topology(TopologySpec::SmallWorld { n: 128, d: 6 })
        .workload(WorkloadSpec::Byzantine)
        .placement(PlacementSpec::RandomBudget { delta: 0.6 })
        .adversary(AdversarySpec::Combined)
        .fault(FaultSpec::Loss { rate: 1.0 })
        .seed(9)
        .build()
        .expect("spec")
        .run()
        .expect("run");
    assert!(report.messages_lost > 0, "honest traffic was destroyed");
    assert!(
        report.messages_delivered > 0,
        "Byzantine envelopes must bypass the fault layer"
    );
}

#[test]
fn delays_past_the_final_round_expire_and_are_never_delivered() {
    // Regression test for the expired-deferral accounting: every honest
    // envelope is delayed far beyond the engine's round cap, so every one
    // of them must end up in `messages_expired` — and none in
    // `messages_delivered`.  (Without Byzantine nodes, delivered counts
    // only honest traffic, so the two counters partition the delayed set.)
    let report = Simulation::builder()
        .topology(TopologySpec::SmallWorld { n: 96, d: 6 })
        .workload(WorkloadSpec::Basic)
        .fault(FaultSpec::Delay {
            max_delay: 100_000,
            rate: 1.0,
        })
        .max_rounds(20)
        .seed(44)
        .build()
        .expect("spec")
        .run()
        .expect("run");
    assert!(
        report.messages_expired > 0,
        "a delay reaching past the final round must increment messages_expired"
    );
    // Delays are uniform in 1..=Δ, so with Δ = 100 000 and a 20-round cap
    // virtually every deferred envelope out-lives the run; the handful
    // whose delay happened to land inside the cap arrived normally.
    assert!(
        report.messages_expired > 100 * report.messages_delivered.max(1),
        "almost every delayed envelope must expire, not deliver \
         (expired {}, delivered {})",
        report.messages_expired,
        report.messages_delivered
    );
    assert_eq!(
        report.messages_delayed,
        report.messages_delivered + report.messages_expired,
        "an envelope is delivered or expired, never both and never neither"
    );
}

#[test]
fn partially_expiring_delays_conserve_the_delayed_count() {
    // Moderate delays: some deferred envelopes arrive, the in-flight rest
    // expires at the cap.  delivered + expired must exactly account for
    // every delayed envelope (no double counting, no losses).
    let report = Simulation::builder()
        .topology(TopologySpec::SmallWorld { n: 96, d: 6 })
        .workload(WorkloadSpec::Basic)
        .fault(FaultSpec::Delay {
            max_delay: 3,
            rate: 1.0,
        })
        .max_rounds(30)
        .seed(45)
        .build()
        .expect("spec")
        .run()
        .expect("run");
    assert!(report.messages_delayed > 0);
    assert!(report.messages_expired > 0, "some were still in flight");
    assert!(report.messages_delivered > 0, "some delays elapsed in time");
    assert_eq!(
        report.messages_delayed,
        report.messages_delivered + report.messages_expired
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Zero-rate faults are behaviourally invisible: a spec with loss,
    /// delay and churn rates of 0.0 produces exactly the run the fault-free
    /// spec produces (the embedded spec differs, everything else is
    /// byte-identical).  The fault RNG streams are independent of the
    /// engine's, which is what makes this hold.
    #[test]
    fn zero_rate_faults_change_nothing(seed in any::<u64>()) {
        let build = |fault: FaultSpec| {
            Simulation::builder()
                .topology(TopologySpec::SmallWorld { n: 128, d: 6 })
                .workload(WorkloadSpec::Byzantine)
                .placement(PlacementSpec::RandomBudget { delta: 0.6 })
                .adversary(AdversarySpec::Silent)
                .fault(fault)
                .seed(seed)
                .build()
                .expect("spec")
                .run()
                .expect("run")
        };
        let clean = build(FaultSpec::None);
        let zeroed = build(FaultSpec::Compose(vec![
            FaultSpec::Loss { rate: 0.0 },
            FaultSpec::Delay { max_delay: 3, rate: 0.0 },
            FaultSpec::Churn { rate: 0.0, downtime: 4 },
        ]));
        prop_assert_eq!(zeroed.messages_lost, 0);
        prop_assert_eq!(zeroed.messages_delayed, 0);
        prop_assert_eq!(zeroed.churn_crashes, 0);
        // Align the embedded specs, then the whole reports must match.
        let mut zeroed = zeroed;
        zeroed.spec = clean.spec.clone();
        prop_assert_eq!(&zeroed.to_json(), &clean.to_json());
    }
}
