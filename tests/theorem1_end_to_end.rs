//! End-to-end integration test of the headline result (Theorem 1), crossing
//! every crate: graph generation → adversary → protocol → evaluation.

use byzcount::prelude::*;

fn run(n: usize, d: usize, adversary_seed: u64) -> (CountingOutcome, EstimateEvaluation) {
    let delta = 0.6;
    let net = SmallWorldNetwork::generate_seeded(n, d, adversary_seed).unwrap();
    let params = ProtocolParams::for_network_default_expansion(&net, delta, 0.1);
    let placement = Placement::random_budget(n, delta, adversary_seed ^ 0x11);
    let knowledge = AdversaryKnowledge::gather(&net, &params, placement.mask());
    let adversary = CombinedAdversary::new(knowledge);
    let outcome = run_counting_with(
        &net,
        &params,
        placement.mask(),
        adversary,
        adversary_seed ^ 0x22,
    );
    // Factor-3 acceptance window; see EXPERIMENTS.md for why estimates sit
    // at the low end of the constant-factor band at simulation scales.
    let eval = outcome.evaluate_with_factor(3.0);
    (outcome, eval)
}

#[test]
fn theorem1_holds_on_a_midsize_network() {
    let (outcome, eval) = run(1024, 6, 7);
    assert!(outcome.completed, "every honest node must decide or crash");
    assert!(
        eval.good_fraction_of_honest > 0.8,
        "Theorem 1 guarantee badly violated: {eval:?}"
    );
    assert!(
        (eval.honest_crashed as f64) < 0.2 * 1024.0,
        "crash casualties must stay o(n): {}",
        eval.honest_crashed
    );
}

#[test]
fn estimates_grow_with_network_size() {
    // Growth of the decided phase with n is clearest for the fault-free
    // basic protocol (Algorithm 1); under the combined adversary the
    // Byzantine-induced early continue-signals compress the growth at small
    // n (see EXPERIMENTS.md E10).
    let measure = |n: usize| {
        let net = SmallWorldNetwork::generate_seeded(n, 6, 3).unwrap();
        let params = ProtocolParams::for_network_default_expansion(&net, 0.6, 0.1);
        run_basic_counting(&net, &params, 3)
            .evaluate()
            .mean_estimate
    };
    let small = measure(512);
    let large = measure(4096);
    assert!(
        large > small,
        "decided phases must grow with n ({small} vs {large})"
    );
}

#[test]
fn runs_are_reproducible() {
    let (a, _) = run(512, 6, 9);
    let (b, _) = run(512, 6, 9);
    assert_eq!(a.estimates, b.estimates);
    assert_eq!(a.crashed, b.crashed);
    assert_eq!(a.metrics.messages_delivered, b.metrics.messages_delivered);
}

#[test]
fn messages_stay_small() {
    let (outcome, _) = run(512, 6, 13);
    // "Small-sized message": a constant number of IDs (bounded by the
    // G-degree, which depends only on d and k) plus O(log n) bits.
    let g_degree_bound = (outcome.params.d - 1).pow(outcome.params.k as u32 + 1) as u32;
    assert!(outcome.metrics.max_message.ids <= g_degree_bound);
    assert!(outcome.metrics.max_message.bits <= 64);
}
