//! Cross-crate structural invariants: the generated topology satisfies the
//! properties the protocol's analysis relies on.

use byzcount::prelude::*;

#[test]
fn generated_network_satisfies_analysis_preconditions() {
    let n = 2048;
    let net = SmallWorldNetwork::generate_seeded(n, 8, 77).unwrap();

    // H is d-regular and connected with logarithmic diameter.
    assert!(net.h().is_regular());
    let diam = diameter_estimate(net.h().csr(), 0);
    assert!(diam.connected);
    assert!((diam.lower_bound as f64) < 3.0 * (n as f64).log2());

    // G has markedly higher clustering than H (the small-world property).
    let cc_h = average_clustering(net.h().csr());
    let cc_g = average_clustering(net.g());
    assert!(
        cc_g > 5.0 * cc_h,
        "small-world clustering boost missing: H {cc_h}, G {cc_g}"
    );
    assert!(cc_g > 0.15, "G clustering too small: {cc_g}");

    // H is an expander: positive spectral gap.
    let gap = netsim_graph::expansion::spectral_gap(net.h().csr(), 200, 1).gap;
    assert!(gap > 0.2, "spectral gap {gap}");

    // Lemma 2-style accounting with the paper's Byzantine budget.
    let placement = Placement::random_budget(n, 0.6, 3);
    let cats = NodeCategories::compute(&net, placement.mask(), 0.6);
    let counts = cats.counts();
    assert!(counts.is_consistent());
    assert!(counts.byzantine_safe as f64 > 0.8 * n as f64);
}

#[test]
fn protocol_parameters_derived_from_the_network_are_admissible() {
    let net = SmallWorldNetwork::generate_seeded(512, 8, 9).unwrap();
    let params = ProtocolParams::for_network(&net, 0.6, 0.1);
    assert!(params.delta_is_admissible());
    assert!(params.a() < params.b());
    assert!(params.approximation_factor() > 1.0);
    let schedule = Schedule::new(params.d, params.epsilon);
    // O(log^3 n) with explicit constants: the round cap for n = 512 must be
    // well below, say, 100 * log2(n)^3.
    let cap = byzcount_core::round_cap(&params, 512);
    assert!((cap as f64) < 100.0 * (512f64).log2().powi(3));
    assert!(schedule.rounds_through_phase(3) > 0);
}
