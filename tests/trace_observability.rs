//! Observability integration tests: trace-vs-truth cross-checks,
//! traced-vs-untraced byte-identity across the engine × thread matrix,
//! trace-file determinism, and phase-profile coverage.

use byzcount::prelude::*;
use byzcount::trace::{
    check_trace, Counter, CounterSet, Fanout, PhaseProfiler, Recorder, TraceWriter,
};
use std::sync::Arc;

/// The faulty spec every test here runs: Algorithm 2 under the combined
/// adversary with loss + delay faults, so that *every* counter in the
/// vocabulary (delivered/dropped/lost/delayed/expired, churn) is
/// exercised, not just the happy path.
fn faulty_spec() -> RunSpec {
    Simulation::builder()
        .topology(TopologySpec::SmallWorld { n: 160, d: 6 })
        .workload(WorkloadSpec::Byzantine)
        .placement(PlacementSpec::RandomBudget { delta: 0.6 })
        .adversary(AdversarySpec::Combined)
        .fault(FaultSpec::Compose(vec![
            FaultSpec::Loss { rate: 0.1 },
            FaultSpec::Delay {
                max_delay: 2,
                rate: 0.2,
            },
        ]))
        .seed(0x7AC3_0B5E)
        .build()
        .expect("spec")
        .spec()
        .clone()
}

fn with_engine(engine: EngineSpec) -> RunSpec {
    let mut spec = faulty_spec();
    spec.engine = engine;
    spec
}

/// Every counter total derived from the trace must equal the run's own
/// metrics bit-for-bit, on all four engines.
#[test]
fn trace_counters_match_run_metrics_exactly_on_all_engines() {
    for engine in [
        EngineSpec::Sync,
        EngineSpec::Sharded { shards: 4 },
        EngineSpec::asynchronous(),
        EngineSpec::ShardedAsync {
            shards: 4,
            clocks: ClockPlan::Uniform,
        },
    ] {
        let spec = with_engine(engine);
        let counters = CounterSet::new();
        let report = byzcount::sim::execute_recorded(&spec, Some(&counters)).expect("run");
        let snap = counters.snapshot();
        let name = engine.name();
        assert_eq!(snap.total(Counter::Rounds), report.rounds, "{name}: rounds");
        assert_eq!(
            snap.total(Counter::MessagesDelivered),
            report.messages_delivered,
            "{name}: delivered"
        );
        assert_eq!(
            snap.total(Counter::MessagesDropped),
            report.messages_dropped,
            "{name}: dropped"
        );
        assert_eq!(
            snap.total(Counter::MessagesLost),
            report.messages_lost,
            "{name}: lost"
        );
        assert_eq!(
            snap.total(Counter::MessagesDelayed),
            report.messages_delayed,
            "{name}: delayed"
        );
        assert_eq!(
            snap.total(Counter::MessagesExpired),
            report.messages_expired,
            "{name}: expired"
        );
        assert_eq!(
            snap.total(Counter::ChurnCrashes),
            report.churn_crashes,
            "{name}: crashes"
        );
        assert_eq!(
            snap.total(Counter::ChurnRecoveries),
            report.churn_recoveries,
            "{name}: recoveries"
        );
        // The faulty spec must genuinely exercise the fault counters,
        // otherwise the equalities above are vacuous.
        assert!(report.messages_delivered > 0, "{name}: no deliveries");
        assert!(report.messages_lost > 0, "{name}: loss fault inert");
        assert!(report.messages_delayed > 0, "{name}: delay fault inert");
        // And the same totals must survive the NDJSON round trip: what
        // `check_trace` recovers from a rendered trace file equals the
        // live counter set.
        let writer = TraceWriter::in_memory();
        let report2 = byzcount::sim::execute_recorded(&spec, Some(&writer)).expect("run");
        assert_eq!(report2, report, "{name}: writer changed the report");
        let checked = check_trace(&writer.render()).expect("well-formed trace");
        assert_eq!(
            checked.counter_total("messages_delivered"),
            report.messages_delivered,
            "{name}: trace file delivered"
        );
        assert_eq!(
            checked.counter_total("rounds"),
            report.rounds,
            "{name}: trace file rounds"
        );
        assert_eq!(checked.open_spans, 0, "{name}: unclosed spans");
    }
}

/// Installing the full recorder stack (counters + profiler + NDJSON
/// writer, fanned out) must not change a single byte of any report, on
/// any engine, under any worker count.
#[test]
fn traced_and_untraced_reports_are_byte_identical_across_the_matrix() {
    let spec = faulty_spec();
    // Untraced reference (the engine knob is erased before comparison,
    // exactly like the determinism matrix in tests/sim_api.rs).
    let reference = {
        let mut report = byzcount::sim::execute(&spec).expect("reference");
        report.spec.engine = EngineSpec::Sync;
        report.to_json()
    };
    let engines = [
        EngineSpec::Sync,
        EngineSpec::Sharded { shards: 1 },
        EngineSpec::Sharded { shards: 2 },
        EngineSpec::Sharded { shards: 4 },
        EngineSpec::Sharded { shards: 8 },
        EngineSpec::asynchronous(),
        EngineSpec::ShardedAsync {
            shards: 4,
            clocks: ClockPlan::Uniform,
        },
    ];
    // Worker counts are pinned through the rayon shim's programmatic
    // override, not `std::env::set_var` — mutating the environment races
    // against concurrent `getenv` calls from other test threads.
    struct RestoreOverride;
    impl Drop for RestoreOverride {
        fn drop(&mut self) {
            rayon::set_num_threads_override(None);
        }
    }
    let _restore = RestoreOverride; // clears the override even on panic
    for threads in [1usize, 2, 8] {
        rayon::set_num_threads_override(Some(threads));
        for engine in engines {
            let cell = format!("threads={threads} × engine={}", engine.name());
            let spec = with_engine(engine);
            let mut fanout = Fanout::new();
            fanout.push(Arc::new(CounterSet::new()) as Arc<dyn Recorder>);
            fanout.push(Arc::new(PhaseProfiler::new()) as Arc<dyn Recorder>);
            fanout.push(Arc::new(TraceWriter::in_memory()) as Arc<dyn Recorder>);
            let mut report =
                byzcount::sim::execute_recorded(&spec, Some(&fanout)).expect("traced run");
            report.spec.engine = EngineSpec::Sync;
            assert_eq!(
                report.to_json(),
                reference,
                "{cell}: tracing changed the report"
            );
        }
    }
}

/// Two runs of the same spec + seed must render byte-identical trace
/// files (logical timestamps only — no wall clock leaks in).
#[test]
fn trace_files_are_byte_deterministic_for_equal_spec_and_seed() {
    for engine in [
        EngineSpec::Sync,
        EngineSpec::Sharded { shards: 4 },
        EngineSpec::asynchronous(),
        EngineSpec::ShardedAsync {
            shards: 4,
            clocks: ClockPlan::Uniform,
        },
    ] {
        let spec = with_engine(engine);
        let render = || {
            let writer = TraceWriter::in_memory();
            byzcount::sim::execute_recorded(&spec, Some(&writer)).expect("run");
            writer.render()
        };
        let first = render();
        let second = render();
        assert_eq!(
            first,
            second,
            "engine={}: trace files must be byte-identical",
            engine.name()
        );
        assert!(!first.is_empty(), "engine={}: empty trace", engine.name());
        check_trace(&first).expect("well-formed trace");
        // A different seed must produce a different trace (the check is
        // not vacuous on a constant writer).
        let mut other = spec.clone();
        other.seed ^= 1;
        let writer = TraceWriter::in_memory();
        byzcount::sim::execute_recorded(&other, Some(&writer)).expect("run");
        assert_ne!(first, writer.render(), "engine={}", engine.name());
    }
}

/// The profiler's sub-phase timings must account for (nearly) all of the
/// enclosing round span: spans nest, so the sum can never exceed the
/// round total, and the instrumentation gaps between sub-phases are a
/// few mutex operations — observed coverage is ~99%; we assert ≥90% to
/// leave headroom for loaded CI machines.
#[test]
fn phase_timings_sum_to_round_wall_time_within_ten_percent() {
    let spec = faulty_spec();
    let profiler = PhaseProfiler::new();
    let report = byzcount::sim::execute_recorded(&spec, Some(&profiler)).expect("run");
    let profile = profiler.report();
    let round = profile.phase("round").expect("round phase observed");
    assert_eq!(round.count, report.rounds, "one round span per round");
    let sub = profile.subphase_sum_ns();
    assert!(
        sub <= round.sum_ns,
        "sub-phases ({sub} ns) cannot exceed the enclosing round span ({} ns)",
        round.sum_ns
    );
    assert!(
        sub * 10 >= round.sum_ns * 9,
        "sub-phases cover {sub} of {} round ns — more than 10% unaccounted",
        round.sum_ns
    );
    // Every sub-phase in the vocabulary showed up under this spec (churn
    // is only emitted when the fault plan includes churn — not here).
    for name in ["node-step", "adversary-cut", "routing", "deferred-drain"] {
        assert!(profile.phase(name).is_some(), "missing phase {name}");
    }
}
