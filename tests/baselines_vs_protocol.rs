//! Integration test of the paper's motivation: the naive estimator collapses
//! under a single Byzantine node while Algorithm 2 survives the full budget.

use byzcount::prelude::*;

#[test]
fn naive_baseline_collapses_but_algorithm2_survives() {
    // Scale note: like the strategy unit tests, this uses d = 6 at a size
    // where the G-degree (~36) is a small fraction of n.  Algorithm 2's
    // estimates sit at the low end of the constant-factor window at these
    // sizes (see EXPERIMENTS.md), so the acceptance factor below is 3.
    let n = 600;
    let net = SmallWorldNetwork::generate_seeded(n, 6, 5).unwrap();
    let ttl = (3.0 * (n as f64).log2()).ceil() as u64 + 5;

    // Naive estimator with one inflating Byzantine node.
    let mut one_byz = vec![false; n];
    one_byz[99] = true;
    let naive = run_geometric_support(net.h().csr(), &one_byz, BaselineAttack::Inflate, ttl, 1);
    let naive_estimate = naive.outputs[0].unwrap() as f64;
    assert!(
        naive_estimate > 3.0 * (n as f64).log2(),
        "the single Byzantine node should wreck the naive estimate"
    );

    // Algorithm 2 with the full Byzantine budget and the analogous attack.
    let params = ProtocolParams::for_network_default_expansion(&net, 0.6, 0.1);
    let placement = Placement::random_budget(n, 0.6, 2);
    let knowledge = AdversaryKnowledge::gather(&net, &params, placement.mask());
    let adversary = ColorInflationAdversary::new(knowledge, InjectionTiming::LastStep);
    let outcome = run_counting_with(&net, &params, placement.mask(), adversary, 3);
    let eval = outcome.evaluate_with_factor(3.0);
    assert!(
        eval.good_fraction_of_honest > 0.8,
        "Algorithm 2 must withstand the inflation attack: {eval:?}"
    );
}

#[test]
fn spanning_tree_is_exact_without_faults_and_corruptible_with_one() {
    let n = 600;
    let net = SmallWorldNetwork::generate_seeded(n, 6, 8).unwrap();
    let honest = vec![false; n];
    let clean = run_spanning_tree_count(net.h().csr(), &honest, BaselineAttack::None, 500, 1);
    assert_eq!(clean.outputs[0], Some(n as u64));

    let mut byz = vec![false; n];
    byz[123] = true;
    let attacked = run_spanning_tree_count(net.h().csr(), &byz, BaselineAttack::Inflate, 500, 1);
    assert!(attacked.outputs[0].unwrap_or(0) > 10 * n as u64);
}
