//! Property-based tests (proptest) on the core data structures and
//! protocol invariants, spanning netsim-graph, netsim-faults and
//! byzcount-core.

use byzcount::prelude::*;
use byzcount_core::color;
use proptest::prelude::*;

/// Build an arbitrary [`FaultSpec`] from fuzzed scalars.  `shape` selects
/// the variant; nesting is exercised through one `Compose` level (the spec
/// grammar is closed under composition, so one level covers the recursive
/// serde path).
fn fault_spec_from(shape: u8, rate_milli: u64, rounds: u64, nested: bool) -> FaultSpec {
    let rate = (rate_milli % 1001) as f64 / 1000.0;
    let rounds = rounds % 50 + 1;
    let leaf = match shape % 5 {
        0 => FaultSpec::None,
        1 => FaultSpec::Loss { rate },
        2 => FaultSpec::Delay {
            max_delay: rounds,
            rate,
        },
        3 => FaultSpec::Churn {
            rate,
            downtime: rounds,
        },
        _ => FaultSpec::Partition {
            start: rounds,
            duration: rounds + 2,
        },
    };
    if nested {
        FaultSpec::Compose(vec![leaf, FaultSpec::Loss { rate }, FaultSpec::None])
    } else {
        leaf
    }
}

/// Build an arbitrary [`EngineSpec`] from fuzzed scalars, covering every
/// engine family and every clock-plan shape — including the v5
/// `ShardedAsync` family, whose shard count and clock plan are both
/// fuzzed.
fn engine_spec_from(shape: u8, shards: u32) -> EngineSpec {
    match shape % 8 {
        0 => EngineSpec::Sync,
        1 => EngineSpec::Sharded {
            shards: shards % 64 + 1,
        },
        2 => EngineSpec::Async {
            clocks: ClockPlan::Uniform,
        },
        3 => EngineSpec::Async {
            clocks: ClockPlan::Stratified {
                every: shards % 7 + 1,
                period: shards % 5 + 1,
            },
        },
        4 => EngineSpec::Async {
            clocks: ClockPlan::Jittered {
                max_period: shards % 6 + 1,
            },
        },
        5 => EngineSpec::ShardedAsync {
            shards: shards % 64 + 1,
            clocks: ClockPlan::Uniform,
        },
        6 => EngineSpec::ShardedAsync {
            shards: shards % 16 + 1,
            clocks: ClockPlan::Stratified {
                every: shards % 7 + 1,
                period: shards % 5 + 1,
            },
        },
        _ => EngineSpec::ShardedAsync {
            shards: shards % 8 + 1,
            clocks: ClockPlan::Jittered {
                max_period: shards % 6 + 1,
            },
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// H(n, d) is always d-regular with nd/2 edges, for any admissible (n, d).
    #[test]
    fn hgraph_is_always_regular(n in 8usize..400, half_d in 2usize..5, seed in any::<u64>()) {
        let d = half_d * 2;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        use rand::SeedableRng;
        let h = netsim_graph::HGraph::generate(n, d, &mut rng).unwrap();
        prop_assert!(h.is_regular());
        prop_assert_eq!(h.csr().num_undirected_edges(), n * d / 2);
        prop_assert!(h.csr().is_symmetric());
    }

    /// The small-world overlay always contains H and respects the ball bound.
    #[test]
    fn small_world_overlay_contains_h(n in 20usize..200, seed in any::<u64>()) {
        let net = SmallWorldNetwork::generate_seeded(n, 6, seed).unwrap();
        let bound = (net.d() - 1).pow(net.k() as u32 + 1);
        for v in net.node_ids().take(20) {
            prop_assert!(net.g_neighbors(v).len() < bound);
            for &u in net.h_neighbors(v) {
                if u as usize != v.index() {
                    prop_assert!(net.is_g_edge(v, NodeId(u)));
                }
            }
        }
    }

    /// Geometric colors are ≥ 1 and their distribution facts are consistent.
    #[test]
    fn color_distribution_identities(r in 1u32..20, n_prime in 1usize..10_000) {
        prop_assert!((color::pr_color_ge(r) - (color::pr_color_eq(r) + color::pr_color_ge(r + 1))).abs() < 1e-12);
        let p_lt = color::pr_max_lt(r, n_prime);
        let p_ge = color::pr_max_ge(r, n_prime);
        prop_assert!((p_lt + p_ge - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&p_lt));
    }

    /// The schedule locator is a bijection between rounds and positions.
    #[test]
    fn schedule_locate_is_consistent(round in 2u64..3000, eps_milli in 10u64..500) {
        let schedule = Schedule::new(8, eps_milli as f64 / 1000.0);
        if let byzcount_core::Position::InPhase(pos) = schedule.locate(round) {
            prop_assert!(pos.phase >= 1);
            prop_assert!(pos.subphase >= 1 && pos.subphase <= schedule.subphases_in_phase(pos.phase));
            prop_assert!(pos.step <= pos.phase);
            // Re-derive the round from the position.
            let mut r = byzcount_core::DISCOVERY_ROUNDS;
            for p in 1..pos.phase {
                r += schedule.rounds_in_phase(p);
            }
            r += (pos.subphase - 1) * schedule.rounds_in_subphase(pos.phase) + pos.step;
            prop_assert_eq!(r, round);
        } else {
            prop_assert!(round < 2);
        }
    }

    /// Placements never exceed their budget and masks match node lists.
    #[test]
    fn placement_mask_consistency(n in 1usize..500, count in 0usize..600, seed in any::<u64>()) {
        let p = Placement::random(n, count, seed);
        prop_assert_eq!(p.count(), count.min(n));
        prop_assert_eq!(p.nodes().len(), p.count());
        prop_assert_eq!(p.mask().iter().filter(|&&b| b).count(), p.count());
    }

    /// Serde round-trip fuzz (parse ∘ print = id) for `RunSpec`, over every
    /// fault shape, every engine shape, the full u64 seed space and the
    /// schema-visible optional fields.  Printing the parsed spec must also
    /// reproduce the exact bytes, so specs are canonical and diffable.
    #[test]
    fn run_spec_serde_round_trip_is_identity(
        seed in any::<u64>(),
        n in 2usize..5000,
        d_half in 2usize..6,
        fault_shape in 0u8..10,
        rate_milli in any::<u64>(),
        rounds in any::<u64>(),
        nested in proptest::option::of(0u8..1),
        max_rounds in proptest::option::of(1u64..100_000),
        engine_shape in 0u8..10,
        shards in any::<u32>(),
    ) {
        let spec = RunSpec {
            version: SPEC_VERSION,
            topology: TopologySpec::SmallWorld { n, d: 2 * d_half },
            workload: WorkloadSpec::Byzantine,
            placement: PlacementSpec::RandomBudget { delta: 0.6 },
            adversary: AdversarySpec::Combined,
            fault: fault_spec_from(fault_shape, rate_milli, rounds, nested.is_some()),
            engine: engine_spec_from(engine_shape, shards),
            params: ParamsSpec::Derived { delta: 0.6, epsilon: 0.1 },
            seed,
            max_rounds,
        };
        prop_assert!(spec.validate().is_ok(), "{spec:?}");
        let json = spec.to_json();
        let back = RunSpec::from_json(&json).expect("fuzzed spec must parse");
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.to_json(), json, "print ∘ parse must be the identity");
    }

    /// Downward migration fuzz, v5 → v4 → v3 → v2 → v1: strip the
    /// async-family engine value (and stamp version 3) off any serialized
    /// v5 spec — the result must still parse, to the same spec with the
    /// default `Sync` engine and the current version; a v4 stamp over a
    /// v4-legal engine value (`Async`) and a v3 stamp over a v3-legal one
    /// (`Sharded`) must each preserve that engine.  One version further
    /// down, stripping `engine` (version 2) and then `fault` too (version
    /// 1) must yield the corresponding defaults.
    #[test]
    fn older_spec_versions_migrate_to_current_defaults(
        seed in any::<u64>(),
        n in 2usize..5000,
        fault_shape in 0u8..10,
        rate_milli in any::<u64>(),
        rounds in any::<u64>(),
        clock_shape in 0u8..10,
    ) {
        use serde::{Number, Serialize, Value};
        let mut spec = RunSpec {
            version: SPEC_VERSION,
            topology: TopologySpec::SmallWorld { n, d: 6 },
            workload: WorkloadSpec::Byzantine,
            placement: PlacementSpec::RandomBudget { delta: 0.6 },
            adversary: AdversarySpec::Combined,
            fault: fault_spec_from(fault_shape, rate_milli, rounds, false),
            // Start from a v4-or-v5-only engine value: any `Async` clock
            // shape or any `ShardedAsync` shape (shapes 2..8).
            engine: engine_spec_from(2 + clock_shape % 6, rate_milli as u32),
            params: ParamsSpec::Derived { delta: 0.6, epsilon: 0.1 },
            seed,
            max_rounds: None,
        };
        let strip = |spec: &RunSpec, version: u64, keys: &[&str]| -> String {
            let mut v = spec.to_value();
            let obj = v.as_obj_mut().expect("specs serialize to objects");
            obj.insert("version".into(), Value::Num(Number::U(version)));
            for key in keys {
                obj.remove(*key);
            }
            serde_json::to_string_pretty(&v).expect("value prints")
        };
        // v5 → v3: the async-family engine value is the only v4/v5-only
        // content; stripping it (version 3, no engine key) must read as
        // Sync and migrate back to the current version.
        let parsed = RunSpec::from_json(&strip(&spec, 3, &["engine"]))
            .expect("v3 spec must parse");
        spec.engine = EngineSpec::Sync;
        prop_assert_eq!(&parsed, &spec);
        prop_assert_eq!(parsed.version, SPEC_VERSION);
        // A v4 stamp over a v4-legal engine value (async clocks) survives
        // unchanged — v5 added only the `ShardedAsync` vocabulary.
        spec.engine = engine_spec_from(2 + clock_shape % 3, rate_milli as u32);
        let parsed = RunSpec::from_json(&strip(&spec, 4, &[]))
            .expect("v4 spec with an Async engine must parse");
        prop_assert_eq!(&parsed, &spec);
        prop_assert_eq!(parsed.version, SPEC_VERSION);
        // A v3 stamp over a v3-legal engine value survives unchanged.
        spec.engine = EngineSpec::Sharded { shards: 5 };
        let parsed = RunSpec::from_json(&strip(&spec, 3, &[]))
            .expect("v3 spec with a Sharded engine must parse");
        prop_assert_eq!(&parsed, &spec);
        prop_assert_eq!(parsed.version, SPEC_VERSION);
        // v2: no engine field.
        let parsed = RunSpec::from_json(&strip(&spec, 2, &["engine"]))
            .expect("v2 spec must parse");
        spec.engine = EngineSpec::Sync;
        prop_assert_eq!(&parsed, &spec);
        prop_assert_eq!(parsed.version, SPEC_VERSION);
        // v1: no engine and no fault field.
        let parsed = RunSpec::from_json(&strip(&spec, 1, &["engine", "fault"]))
            .expect("v1 spec must parse");
        spec.fault = FaultSpec::None;
        prop_assert_eq!(&parsed, &spec);
    }

    /// Event-queue tie-break total order: permuting the insertion order of
    /// equal-time events with distinct `(class, node)` keys never changes
    /// the drain order — the order is the key, not the push history.
    #[test]
    fn calendar_queue_drain_order_is_insertion_order_invariant(
        tick in 0u64..5000,
        raw_events in proptest::collection::vec(any::<u64>(), 1..40),
        swaps in proptest::collection::vec(any::<u64>(), 0..40),
    ) {
        use byzcount::runtime::{CalendarQueue, EventClass};
        let class_of = |c: u8| match c {
            0 => EventClass::PlanTick,
            1 => EventClass::NodeStep,
            _ => EventClass::Deliver,
        };
        // Dedup to distinct (class, node) keys: `seq` (the final
        // tie-break) is deliberately insertion-ordered, so only events
        // distinct in the other components are permutation-invariant.
        let mut events: Vec<(u8, u32)> = raw_events
            .iter()
            .map(|&x| ((x % 3) as u8, ((x / 3) % 64) as u32))
            .collect();
        events.sort_unstable();
        events.dedup();
        // A fuzzed permutation of the insertion order.
        let mut permuted = events.clone();
        for &s in &swaps {
            let a = (s as usize) % permuted.len();
            let b = ((s >> 32) as usize) % permuted.len();
            permuted.swap(a, b);
        }
        let drain = |order: &[(u8, u32)]| {
            let mut q: CalendarQueue<(u8, u32)> = CalendarQueue::new();
            for &(class, node) in order {
                q.push(0, tick, class_of(class), node, (class, node));
            }
            let mut out = Vec::new();
            q.drain_due(tick, |key, payload| out.push((key.class, key.node, payload)));
            prop_assert!(q.is_empty());
            Ok(out)
        };
        let a = drain(&events)?;
        let b = drain(&permuted)?;
        prop_assert_eq!(&a, &b, "drain order must not depend on insertion order");
        // And the drained sequence is sorted by the (class, node) key.
        let keys: Vec<_> = a.iter().map(|(c, n, _)| (*c, *n)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        prop_assert_eq!(keys, sorted);
    }

    /// Serde round-trip fuzz for `FaultSpec` on its own (the hand-written
    /// serde impls): every generated shape must survive value-level
    /// round-tripping unchanged.
    #[test]
    fn fault_spec_serde_round_trip_is_identity(
        shape in 0u8..10,
        rate_milli in any::<u64>(),
        rounds in any::<u64>(),
        nested in proptest::option::of(0u8..1),
    ) {
        use byzcount::faults::FaultSpec as FS;
        use serde::{Deserialize, Serialize};
        let spec = fault_spec_from(shape, rate_milli, rounds, nested.is_some());
        let back = FS::from_value(&spec.to_value()).expect("round trip");
        prop_assert_eq!(back, spec);
    }

    /// `ComposedFaults` order-invariance: composing the *same constituent
    /// plans* (same per-plan seeds) in either order gives every envelope
    /// the same fate.  Drop decisions commute because Drop dominates and
    /// every plan is consulted for every envelope regardless of earlier
    /// verdicts; delays commute because they add.
    #[test]
    fn composed_fault_fates_are_order_invariant(
        loss_rate_milli in 0u64..1001,
        delay_rate_milli in 0u64..1001,
        max_delay in 1u64..6,
        loss_seed in any::<u64>(),
        delay_seed in any::<u64>(),
        envelopes in 1usize..400,
    ) {
        use byzcount::faults::{ComposedFaults, EnvelopeFate, FaultPlan, IidLoss, RandomDelay};
        let loss_rate = loss_rate_milli as f64 / 1000.0;
        let delay_rate = delay_rate_milli as f64 / 1000.0;
        let fates = |mut plan: ComposedFaults| -> Vec<EnvelopeFate> {
            (0..envelopes)
                .map(|i| {
                    plan.envelope_fate(i as u64, NodeId((i % 7) as u32), NodeId((i % 11) as u32))
                })
                .collect()
        };
        let loss_then_delay = ComposedFaults::new(vec![
            Box::new(IidLoss::new(loss_rate, loss_seed)),
            Box::new(RandomDelay::new(max_delay, delay_rate, delay_seed)),
        ]);
        let delay_then_loss = ComposedFaults::new(vec![
            Box::new(RandomDelay::new(max_delay, delay_rate, delay_seed)),
            Box::new(IidLoss::new(loss_rate, loss_seed)),
        ]);
        let a = fates(loss_then_delay);
        let b = fates(delay_then_loss);
        // Full fate equality — which subsumes the Drop-dominance case:
        // loss∘delay ≡ delay∘loss on every envelope, dropped or not.
        prop_assert_eq!(&a, &b);
    }

    /// Engine invariance over randomized synchronous specs: for a fuzzed
    /// topology size, seed and fault shape (every variant reachable via
    /// `fault_spec_from`, nesting included), executing the spec on the
    /// sharded engine (fuzzed shard count), on the async engine with
    /// uniform clocks, and on the sharded-async engine (same fuzzed shard
    /// count, uniform clocks) produces reports byte-identical to the
    /// classic engine's — the parity contract of the whole engine family,
    /// stated as a property rather than over fixtures.
    #[test]
    fn randomized_synchronous_specs_are_engine_invariant(
        seed in any::<u64>(),
        n in 48usize..128,
        fault_shape in 0u8..10,
        rate_milli in 0u64..400, // cap rates so runs still terminate fast
        rounds in any::<u64>(),
        nested in proptest::option::of(0u8..1),
        shards in 2u32..10,
    ) {
        let base = RunSpec {
            version: SPEC_VERSION,
            topology: TopologySpec::SmallWorld { n, d: 6 },
            workload: WorkloadSpec::Byzantine,
            placement: PlacementSpec::RandomBudget { delta: 0.6 },
            adversary: AdversarySpec::Silent,
            fault: fault_spec_from(fault_shape, rate_milli, rounds, nested.is_some()),
            engine: EngineSpec::Sync,
            params: ParamsSpec::Derived { delta: 0.6, epsilon: 0.1 },
            seed,
            max_rounds: Some(4000),
        };
        let reference = byzcount::sim::execute(&base).expect("sync run");
        for engine in [
            EngineSpec::Sharded { shards },
            EngineSpec::asynchronous(),
            EngineSpec::ShardedAsync {
                shards,
                clocks: ClockPlan::Uniform,
            },
        ] {
            let mut spec = base.clone();
            spec.engine = engine;
            let mut report = byzcount::sim::execute(&spec).expect("engine run");
            report.spec.engine = EngineSpec::Sync; // the one intentional delta
            prop_assert_eq!(
                report.to_json(),
                reference.to_json(),
                "{} diverged from the classic engine", engine.name()
            );
        }
    }

    /// Evaluation never counts more good nodes than honest nodes, and the
    /// good fraction is a probability.
    #[test]
    fn evaluation_bounds(estimates in proptest::collection::vec(proptest::option::of(1u64..40), 1..80)) {
        let n = estimates.len();
        let outcome = CountingOutcome {
            n,
            estimates,
            decided_round: vec![None; n],
            crashed: vec![false; n],
            byzantine: vec![false; n],
            params: ProtocolParams::new(8, 3, 0.6, 0.1, 1.0),
            metrics: Default::default(),
            completed: true,
        };
        let eval = outcome.evaluate();
        prop_assert!(eval.honest_good <= eval.honest_total);
        prop_assert!((0.0..=1.0).contains(&eval.good_fraction_of_honest));
        prop_assert!(eval.honest_decided <= eval.honest_total);
    }
}

// ---------------------------------------------------------------------------
// O(events) engine fuzz: sparse ticking and per-shard clock domains must be
// invisible in results.  These properties drive the runtime engines
// directly — the spec layer always takes the sparse `run()` path, so the
// dense reference loop is only reachable at this level.
// ---------------------------------------------------------------------------

/// The fuzzed max-flood message: fixed 64-bit payload.
#[derive(Clone, Debug, PartialEq)]
struct FuzzVal(u64);

impl MessageSize for FuzzVal {
    fn message_size(&self) -> SizedMessage {
        SizedMessage::new(0, 64)
    }
}

/// A fuzzable max-flood protocol: every node draws a value from its node
/// RNG, floods the running maximum, and decides at a TTL.  Mirrors the
/// engine test-suite workhorse, with enough quiet rounds between floods
/// for sparse ticking to have something to skip.
#[derive(Clone)]
struct FuzzFlood {
    best: u64,
    ttl: u64,
    started: bool,
}

impl Protocol for FuzzFlood {
    type Message = FuzzVal;
    type Output = u64;

    fn step(
        &mut self,
        ctx: &NodeContext<'_>,
        inbox: &[Envelope<FuzzVal>],
        outbox: &mut Outbox<FuzzVal>,
        rng: &mut rand_chacha::ChaCha8Rng,
    ) -> Action<u64> {
        use rand::Rng;
        if !self.started {
            self.started = true;
            self.best = rng.gen::<u64>() | 1;
            outbox.broadcast(ctx.neighbors.iter(), FuzzVal(self.best));
            return Action::Continue;
        }
        let mut improved = false;
        for env in inbox {
            if env.payload.0 > self.best {
                self.best = env.payload.0;
                improved = true;
            }
        }
        if improved {
            outbox.broadcast(ctx.neighbors.iter(), FuzzVal(self.best));
        }
        if ctx.round >= self.ttl {
            Action::Decide(self.best)
        } else {
            Action::Continue
        }
    }
}

/// Ring topology: every node has two neighbors, so floods cross the whole
/// graph and every fault shape has traffic to act on.
fn ring_graph(n: usize) -> netsim_graph::Csr {
    let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
    netsim_graph::Csr::from_undirected_edges(n, &edges).unwrap()
}

/// Every clock-plan shape, with fuzzed stratification parameters.
fn clock_plan_from(shape: u8, every: u32, period: u32) -> ClockPlan {
    match shape % 4 {
        0 => ClockPlan::Uniform,
        1 => ClockPlan::Stratified { every, period },
        2 => ClockPlan::Stratified {
            every: 2,
            period: period + 2,
        },
        _ => ClockPlan::Jittered { max_period: period },
    }
}

fn fuzz_states(n: usize, ttl: u64) -> Vec<FuzzFlood> {
    (0..n)
        .map(|_| FuzzFlood {
            best: 0,
            ttl,
            started: false,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sparse ≡ dense: for any clock plan and any fault shape, the sparse
    /// `run()` loop (which jumps over idle ticks) produces outputs,
    /// statuses and metrics identical to a dense tick-by-tick reference —
    /// tick skipping is a pure execution-cost optimization with no
    /// observable semantics.
    #[test]
    fn sparse_ticking_is_invisible_for_any_clock_plan_and_fault_shape(
        seed in any::<u64>(),
        n in 4usize..24,
        clock_shape in 0u8..8,
        every in 2u32..6,
        period in 2u32..9,
        fault_shape in 0u8..10,
        rate_milli in 0u64..400,
        rounds in any::<u64>(),
        nested in proptest::option::of(0u8..1),
    ) {
        let g = ring_graph(n);
        let clocks = clock_plan_from(clock_shape, every, period);
        let cfg = EngineConfig { max_rounds: 600, stop_when_all_decided: true };
        let fault = fault_spec_from(fault_shape, rate_milli, rounds, nested.is_some());
        // Plans are deterministic in (spec, n, seed), so building twice
        // yields identical fault streams for the two executions.
        let plan = || fault.build_plan(n, &vec![true; n], seed ^ 0xFA17);
        let mut dense = AsyncEngine::new(
            &g, fuzz_states(n, 120), vec![false; n], NullAdversary, cfg, seed, clocks,
        ).with_fault_plan_opt(plan());
        while !dense.finished() {
            dense.step_tick();
        }
        let dense = dense.into_result();
        let sparse = AsyncEngine::new(
            &g, fuzz_states(n, 120), vec![false; n], NullAdversary, cfg, seed, clocks,
        ).with_fault_plan_opt(plan()).run();
        prop_assert_eq!(&sparse.outputs, &dense.outputs);
        prop_assert_eq!(&sparse.decided_round, &dense.decided_round);
        prop_assert_eq!(&sparse.crashed, &dense.crashed);
        prop_assert_eq!(&sparse.statuses, &dense.statuses);
        prop_assert_eq!(&sparse.metrics, &dense.metrics);
        prop_assert_eq!(sparse.completed, dense.completed);
    }

    /// Shard-count invariance: the sharded-async engine produces results
    /// identical to the unsharded async engine for every shard count
    /// S ∈ {1, 2, 4, 8}, under any clock plan and any fault shape — the
    /// shard layout is an execution detail, never a semantic one.
    #[test]
    fn sharded_async_engine_is_shard_count_invariant(
        seed in any::<u64>(),
        n in 4usize..24,
        clock_shape in 0u8..8,
        every in 2u32..6,
        period in 2u32..9,
        fault_shape in 0u8..10,
        rate_milli in 0u64..400,
        rounds in any::<u64>(),
        nested in proptest::option::of(0u8..1),
    ) {
        let g = ring_graph(n);
        let clocks = clock_plan_from(clock_shape, every, period);
        let cfg = EngineConfig { max_rounds: 600, stop_when_all_decided: true };
        let fault = fault_spec_from(fault_shape, rate_milli, rounds, nested.is_some());
        let plan = || fault.build_plan(n, &vec![true; n], seed ^ 0xFA17);
        let reference = AsyncEngine::new(
            &g, fuzz_states(n, 120), vec![false; n], NullAdversary, cfg, seed, clocks,
        ).with_fault_plan_opt(plan()).run();
        for shards in [1usize, 2, 4, 8] {
            let sharded = ShardedAsyncEngine::new(
                &g, fuzz_states(n, 120), vec![false; n], NullAdversary, cfg, seed, shards, clocks,
            ).with_fault_plan_opt(plan()).run();
            prop_assert_eq!(&sharded.outputs, &reference.outputs, "S={}", shards);
            prop_assert_eq!(&sharded.decided_round, &reference.decided_round, "S={}", shards);
            prop_assert_eq!(&sharded.crashed, &reference.crashed, "S={}", shards);
            prop_assert_eq!(&sharded.statuses, &reference.statuses, "S={}", shards);
            prop_assert_eq!(&sharded.metrics, &reference.metrics, "S={}", shards);
            prop_assert_eq!(sharded.completed, reference.completed, "S={}", shards);
        }
    }
}

// ---------------------------------------------------------------------------
// Campaign protocol fuzz: the wire parser must never panic, whatever the
// bytes, and must apply the handshake compatibility rules exactly.
// ---------------------------------------------------------------------------

use byzcount_campaign::protocol::{self, Hello, Request, Response, PROTO_MAJOR, PROTO_MINOR};

/// Assemble an adversarial frame line from fuzzed scalars: truncations of
/// valid frames, unknown verbs, wrong-kind bodies, binary junk.
fn hostile_line(shape: u8, verb_seed: u64, cut_milli: u64, job_byte: u8) -> String {
    let verbs = [
        "submit",
        "status",
        "results",
        "cancel",
        "hello",
        "merge",
        "",
        "\u{1F980}",
    ];
    let verb = verbs[(verb_seed % verbs.len() as u64) as usize];
    let line = match shape % 8 {
        0 => format!("{{\"{verb}\": {{}}}}"),
        1 => format!("{{\"{verb}\": {{\"job\": {job_byte}}}}}"),
        2 => format!("{{\"{verb}\": [{job_byte}, {verb_seed}]}}"),
        3 => format!("{{\"{verb}\": null}}"),
        4 => format!("[{job_byte}]"),
        5 => format!("{job_byte}"),
        6 => String::from_utf8_lossy(&[job_byte, 0xFF, b'{', job_byte]).into_owned(),
        _ => protocol::encode_line(&Request::Status {
            job: "fuzzed".into(),
        }),
    };
    // Truncate to an arbitrary prefix: torn frames must parse-or-error,
    // never panic.
    let keep = line.len() as u64 * (cut_milli % 1001) / 1000;
    let mut cut = keep as usize;
    while cut < line.len() && !line.is_char_boundary(cut) {
        cut += 1;
    }
    line[..cut].to_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary (possibly torn) frames decode to Ok or to a clean
    /// protocol error — both requests and responses, plus the hello path.
    #[test]
    fn campaign_frames_never_panic(
        shape in any::<u8>(),
        verb_seed in any::<u64>(),
        cut_milli in any::<u64>(),
        job_byte in any::<u8>(),
    ) {
        let line = hostile_line(shape, verb_seed, cut_milli, job_byte);
        let _ = protocol::decode_line::<Request>(&line);
        let _ = protocol::decode_line::<Response>(&line);
        let _ = protocol::decode_hello(&line);
    }

    /// Well-formed requests survive the wire unchanged, whatever the job
    /// id and cursor; unknown verbs are rejected without panicking.
    #[test]
    fn campaign_requests_round_trip_and_reject_unknown_verbs(
        cursor in any::<u64>(),
        max in any::<u32>(),
        merged in proptest::option::of(0u8..1),
        job_tail in 0u64..1_000_000,
    ) {
        let job = format!("job-{job_tail}");
        let request = Request::Results {
            job: job.clone(),
            cursor,
            max,
            merged: merged.is_some(),
        };
        let line = protocol::encode_line(&request);
        prop_assert_eq!(line.matches('\n').count(), 1);
        let back: Request = protocol::decode_line(&line).expect("round trip");
        prop_assert_eq!(back, request);

        let unknown = format!("{{\"verb-{job_tail}\": {{\"job\": \"{job}\"}}}}");
        prop_assert!(protocol::decode_line::<Request>(&unknown).is_err());
    }

    /// Hello compatibility: any minor (ours, older, future) is accepted
    /// as long as the major matches *and* the peer's spec schema is not
    /// newer than ours (0 is the unpinned wildcard); every other major,
    /// and any newer spec schema, is rejected.  Unknown fields riding
    /// along a newer minor's hello are ignored.
    #[test]
    fn campaign_hello_compatibility_rules(
        major in 0u32..5,
        minor in any::<u32>(),
        spec_version in any::<u32>(),
        extra in any::<u64>(),
    ) {
        let line = format!(
            "{{\"hello\": {{\"proto_major\": {major}, \"proto_minor\": {minor}, \
             \"spec_version\": {spec_version}, \"extension_{extra}\": [{extra}]}}}}\n"
        );
        let hello = protocol::decode_hello(&line).expect("hello with extras parses");
        prop_assert_eq!(hello.proto_major, major);
        prop_assert_eq!(hello.proto_minor, minor);
        let compatible = hello.check_compatible().is_ok();
        prop_assert_eq!(
            compatible,
            major == PROTO_MAJOR && (spec_version == 0 || spec_version <= SPEC_VERSION)
        );
        // Sanity: our own hello is always compatible with itself.
        prop_assert!(Hello::current().check_compatible().is_ok());
        prop_assert_eq!(Hello::current().proto_minor, PROTO_MINOR);
    }
}

// ---------------------------------------------------------------------------
// Observability fuzz: trace record shapes and the `stats` telemetry verb
// must round-trip losslessly through their wire encodings, and the trace
// validator must recover exactly the counters a writer was fed.
// ---------------------------------------------------------------------------

use byzcount::trace::{
    check_trace, Counter as TraceCounter, CounterSet, Phase as TracePhase, PhaseProfiler,
    Recorder as TraceRecorder, TraceWriter, COUNTERS as TRACE_COUNTERS, GAUGES as TRACE_GAUGES,
};
use byzcount_campaign::protocol::{JobTelemetry, ServerStats};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Counter-set snapshots and phase profiles — the two trace record
    /// shapes embedded in bench reports — survive JSON round trips for
    /// arbitrary counter/gauge/shard/value combinations.  (The proptest
    /// shim has no tuple strategies, so each fuzzed `u64` is bit-sliced
    /// into the cell's pick/shard/value fields.)
    #[test]
    fn trace_record_shapes_round_trip(
        cells in proptest::collection::vec(any::<u64>(), 0..24),
        spans in proptest::collection::vec(any::<u64>(), 0..24),
    ) {
        let set = CounterSet::new();
        for &cell in &cells {
            let idx = (cell & 0xFF) as usize % (TRACE_COUNTERS.len() + TRACE_GAUGES.len());
            let shard = ((cell >> 8) % 9) as u32;
            let value = cell >> 16;
            if idx < TRACE_COUNTERS.len() {
                set.add(shard, 0, TRACE_COUNTERS[idx], value % 1_000_003);
            } else {
                set.gauge(shard, 0, TRACE_GAUGES[idx - TRACE_COUNTERS.len()], value);
            }
        }
        let snap = set.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize snapshot");
        let back: byzcount::trace::CounterSnapshot =
            serde_json::from_str(&json).expect("parse snapshot");
        prop_assert_eq!(&back, &snap);
        prop_assert_eq!(serde_json::to_string(&back).expect("re-serialize"), json);

        let profiler = PhaseProfiler::new();
        for &span in &spans {
            let phase = byzcount::trace::PHASES[(span & 0xFF) as usize % byzcount::trace::PHASES.len()];
            let shard = ((span >> 8) % 5) as u32;
            profiler.phase_begin(shard, 0, phase);
            profiler.phase_end(shard, 0, phase);
        }
        let profile = profiler.report();
        let json = serde_json::to_string(&profile).expect("serialize profile");
        let back: byzcount::trace::PhaseProfile =
            serde_json::from_str(&json).expect("parse profile");
        prop_assert_eq!(back, profile);
    }

    /// Whatever (delta, shard, round) pattern a run emits, rendering the
    /// NDJSON trace and re-validating it with `check_trace` recovers the
    /// exact counter totals — the trace file is a lossless channel.
    #[test]
    fn trace_writer_render_and_check_recover_exact_totals(
        deltas in proptest::collection::vec(any::<u64>(), 1..32),
    ) {
        let writer = TraceWriter::in_memory();
        let mut expect_delivered = 0u64;
        let mut expect_dropped = 0u64;
        for (round, &word) in deltas.iter().enumerate() {
            let shard = (word % 3) as u32;
            let delta = (word >> 8) % 1_000_000 + 1;
            let time = round as u64;
            writer.phase_begin(shard, time, TracePhase::Round);
            if (word >> 2) % 2 == 0 {
                writer.add(shard, time, TraceCounter::MessagesDelivered, delta);
                expect_delivered += delta;
            } else {
                writer.add(shard, time, TraceCounter::MessagesDropped, delta);
                expect_dropped += delta;
            }
            writer.phase_end(shard, time, TracePhase::Round);
        }
        let text = writer.render();
        let checked = check_trace(&text).expect("well-formed trace");
        prop_assert_eq!(checked.counter_total("messages_delivered"), expect_delivered);
        prop_assert_eq!(checked.counter_total("messages_dropped"), expect_dropped);
        prop_assert_eq!(checked.open_spans, 0);
        // Rendering is a pure function of the recorded events.
        prop_assert_eq!(writer.render(), text);
    }

    /// The `stats` verb (protocol minor 1): arbitrary telemetry payloads
    /// round-trip the wire losslessly, including job lists and absent
    /// ETAs, and frames with unknown future fields still parse.
    #[test]
    fn stats_frames_round_trip_and_tolerate_future_fields(
        uptime_milli in any::<u32>(),
        counts in proptest::collection::vec(any::<u16>(), 8..9),
        jobs in proptest::collection::vec(any::<u64>(), 0..6),
        extra in any::<u64>(),
    ) {
        let stats = ServerStats {
            uptime_s: uptime_milli as f64 / 1000.0,
            workers: counts[0] as u64,
            busy_workers: counts[1] as u64,
            queue_depth: counts[2] as u64,
            running_jobs: jobs.len() as u64,
            cells_completed: counts[3] as u64,
            cells_pending: counts[4] as u64,
            cells_per_s: counts[5] as f64 / 16.0,
            fsyncs: counts[6] as u64,
            fsync_p50_us: counts[7] as u64,
            fsync_p90_us: counts[7] as u64 * 2,
            fsync_p99_us: counts[7] as u64 * 4,
            jobs: jobs
                .iter()
                .map(|&word| {
                    let completed = (word >> 20) & 0xFFFF;
                    JobTelemetry {
                        job: format!("job-{}", word % 1_000_000),
                        state: "running".into(),
                        completed,
                        total: completed + ((word >> 36) & 0xFFFF),
                        eta_s: (word % 2 == 0).then(|| (word >> 52) as f64 / 8.0),
                    }
                })
                .collect(),
        };
        let line = protocol::encode_line(&Response::Stats(stats.clone()));
        prop_assert_eq!(line.matches('\n').count(), 1);
        let back: Response = protocol::decode_line(&line).expect("round trip");
        prop_assert_eq!(back, Response::Stats(stats));

        // The request side is a bare verb and must survive the wire too.
        let request_line = protocol::encode_line(&Request::Stats);
        let request: Request = protocol::decode_line(&request_line).expect("request");
        prop_assert_eq!(request, Request::Stats);

        // Forward tolerance: a future minor may add fields; today's
        // parser must ignore them rather than error.
        let extended = format!(
            "{{\"stats\": {{\"uptime_s\": 1.5, \"workers\": 2, \"busy_workers\": 0, \
             \"queue_depth\": 0, \"running_jobs\": 0, \"cells_completed\": 9, \
             \"cells_pending\": 0, \"cells_per_s\": 3.0, \"fsyncs\": 9, \
             \"fsync_p50_us\": 10, \"fsync_p90_us\": 20, \"fsync_p99_us\": 30, \
             \"jobs\": [], \"future_field_{extra}\": {extra}}}}}\n"
        );
        let parsed: Response = protocol::decode_line(&extended).expect("future-tolerant");
        match parsed {
            Response::Stats(s) => prop_assert_eq!(s.cells_completed, 9),
            other => prop_assert!(false, "wrong variant: {:?}", other),
        }
    }
}

// ---------------------------------------------------------------------------
// Binary wire-codec fuzz: the `netsim-wire` layer the distributed engine's
// shard channels speak.  Round trips must be the identity for every payload
// the engine ships (envelope batches, metrics), and hostile frames —
// truncated, bit-flipped, over-length — must decode to clean errors, never
// panic or over-allocate.
// ---------------------------------------------------------------------------

use byzcount::runtime::wire;
use byzcount_core::CountingMessage;
use netsim_graph::NodeId as WireNodeId;

/// Build an arbitrary counting message from fuzzed scalars.
fn counting_message_from(shape: u8, word: u64) -> CountingMessage {
    let ids: Vec<u32> = (0..(word % 7)).map(|i| (word >> (i * 4)) as u32).collect();
    match shape % 3 {
        0 => CountingMessage::Adjacency { neighbors: ids },
        1 => CountingMessage::Flood {
            color: (word % 61) as u32 + 1,
            path: ids,
        },
        _ => CountingMessage::Audit {
            color: (word % 61) as u32 + 1,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Envelope batches — the distributed engine's bulkiest payload —
    /// survive the codec byte-for-byte for arbitrary senders, receivers
    /// and message shapes, and the encoding is canonical (encode ∘ decode
    /// ∘ encode = encode).
    #[test]
    fn envelope_batches_round_trip_through_the_wire_codec(
        words in proptest::collection::vec(any::<u64>(), 0..48),
    ) {
        let batch: Vec<Envelope<CountingMessage>> = words
            .iter()
            .map(|&w| Envelope::new(
                WireNodeId((w % 1031) as u32),
                WireNodeId(((w >> 16) % 1031) as u32),
                counting_message_from((w >> 32) as u8, w),
            ))
            .collect();
        let bytes = wire::encode_to_vec(&batch);
        let back: Vec<Envelope<CountingMessage>> =
            wire::decode_from_slice(&bytes).expect("round trip");
        prop_assert_eq!(&back, &batch);
        prop_assert_eq!(wire::encode_to_vec(&back), bytes, "encoding is canonical");
    }

    /// Run metrics — the shard→coordinator result payload — round-trip
    /// for arbitrary counter values, including the nested max-message
    /// and the per-round histogram.
    #[test]
    fn run_metrics_round_trip_through_the_wire_codec(
        counters in proptest::collection::vec(any::<u64>(), 10..11),
        per_round in proptest::collection::vec(any::<u64>(), 0..32),
    ) {
        let metrics = RunMetrics {
            rounds: counters[0],
            messages_delivered: counters[1],
            messages_dropped: counters[2],
            messages_lost: counters[3],
            messages_delayed: counters[4],
            messages_expired: counters[5],
            churn_crashes: counters[6],
            churn_recoveries: counters[7],
            total_ids: counters[8],
            total_bits: counters[9],
            max_message: SizedMessage::new(counters[0] as u32, counters[1] as u32),
            per_round_messages: per_round,
        };
        let bytes = wire::encode_to_vec(&metrics);
        let back: RunMetrics = wire::decode_from_slice(&bytes).expect("round trip");
        prop_assert_eq!(back, metrics);
    }

    /// Hostile frames: take a valid checksummed frame and truncate it at
    /// every possible byte boundary, flip an arbitrary bit, or inflate
    /// the length prefix past the frame cap.  Every mutation must read
    /// as a clean error (or, for a pure length-prefix truncation, a torn
    /// frame) — never a panic, and never an attempt to allocate the
    /// claimed length.
    #[test]
    fn mutated_frames_fail_cleanly(
        words in proptest::collection::vec(any::<u64>(), 1..24),
        cut_milli in any::<u64>(),
        flip_at in any::<u64>(),
    ) {
        let payload = wire::encode_to_vec(&words);
        let mut frame = Vec::new();
        wire::write_frame(&mut frame, &payload).expect("vec write");

        // The pristine frame reads back exactly.
        let mut buf = Vec::new();
        wire::read_frame(&mut &frame[..], &mut buf).expect("pristine frame");
        prop_assert_eq!(&buf, &payload);

        // Truncation at any boundary: error, never panic.
        let cut = (frame.len() as u64 * (cut_milli % 1000) / 1000) as usize;
        prop_assert!(cut < frame.len());
        prop_assert!(
            wire::read_frame(&mut &frame[..cut], &mut buf).is_err(),
            "torn frame at {cut}/{} must error", frame.len()
        );
        // `read_frame_opt` distinguishes the clean-EOF case (nothing at
        // all) from a torn frame (some bytes, then EOF).
        prop_assert!(matches!(wire::read_frame_opt(&mut &frame[..0], &mut buf), Ok(false)));
        if cut > 0 {
            prop_assert!(wire::read_frame_opt(&mut &frame[..cut], &mut buf).is_err());
        }

        // A single flipped bit anywhere breaks the checksum (or the
        // length field, which the cap and the remaining-byte bound catch).
        let mut flipped = frame.clone();
        let bit = (flip_at % (frame.len() as u64 * 8)) as usize;
        flipped[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            wire::read_frame(&mut &flipped[..], &mut buf).is_err(),
            "bit flip at {bit} must not read back as a valid frame"
        );

        // An over-length prefix is rejected up front — decoding must not
        // trust it enough to allocate.
        let mut oversized = frame.clone();
        oversized[..4].copy_from_slice(&(wire::MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
        prop_assert!(wire::read_frame(&mut &oversized[..], &mut buf).is_err());
    }

    /// Truncations and bit flips of a *payload* (inside a valid frame)
    /// fail cleanly in the typed decoder: every mutation is either a
    /// clean `Err` or decodes to some value — never a panic, and a
    /// successful decode of a mutated envelope batch can only happen if
    /// the mutation landed in a value field (tag/length corruption that
    /// passes produces different-but-valid data, which re-encodes).
    #[test]
    fn mutated_payloads_never_panic_the_typed_decoder(
        words in proptest::collection::vec(any::<u64>(), 1..24),
        cut_milli in any::<u64>(),
        flip_at in any::<u64>(),
    ) {
        let batch: Vec<Envelope<CountingMessage>> = words
            .iter()
            .map(|&w| Envelope::new(
                WireNodeId((w % 97) as u32),
                WireNodeId(((w >> 8) % 97) as u32),
                counting_message_from((w >> 16) as u8, w),
            ))
            .collect();
        let bytes = wire::encode_to_vec(&batch);

        let cut = (bytes.len() as u64 * (cut_milli % 1000) / 1000) as usize;
        prop_assert!(
            wire::decode_from_slice::<Vec<Envelope<CountingMessage>>>(&bytes[..cut]).is_err(),
            "a truncated payload is missing data and must error"
        );

        let mut flipped = bytes.clone();
        let bit = (flip_at % (bytes.len() as u64 * 8)) as usize;
        flipped[bit / 8] ^= 1 << (bit % 8);
        if let Ok(decoded) =
            wire::decode_from_slice::<Vec<Envelope<CountingMessage>>>(&flipped)
        {
            // Reachable only when the flip hit a plain value bit; the
            // result is then itself a valid, re-encodable batch.
            prop_assert_eq!(wire::encode_to_vec(&decoded), flipped);
        }
    }
}
