//! Property-based tests (proptest) on the core data structures and
//! protocol invariants, spanning netsim-graph and byzcount-core.

use byzcount::prelude::*;
use byzcount_core::color;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// H(n, d) is always d-regular with nd/2 edges, for any admissible (n, d).
    #[test]
    fn hgraph_is_always_regular(n in 8usize..400, half_d in 2usize..5, seed in any::<u64>()) {
        let d = half_d * 2;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        use rand::SeedableRng;
        let h = netsim_graph::HGraph::generate(n, d, &mut rng).unwrap();
        prop_assert!(h.is_regular());
        prop_assert_eq!(h.csr().num_undirected_edges(), n * d / 2);
        prop_assert!(h.csr().is_symmetric());
    }

    /// The small-world overlay always contains H and respects the ball bound.
    #[test]
    fn small_world_overlay_contains_h(n in 20usize..200, seed in any::<u64>()) {
        let net = SmallWorldNetwork::generate_seeded(n, 6, seed).unwrap();
        let bound = (net.d() - 1).pow(net.k() as u32 + 1);
        for v in net.node_ids().take(20) {
            prop_assert!(net.g_neighbors(v).len() < bound);
            for &u in net.h_neighbors(v) {
                if u as usize != v.index() {
                    prop_assert!(net.is_g_edge(v, NodeId(u)));
                }
            }
        }
    }

    /// Geometric colors are ≥ 1 and their distribution facts are consistent.
    #[test]
    fn color_distribution_identities(r in 1u32..20, n_prime in 1usize..10_000) {
        prop_assert!((color::pr_color_ge(r) - (color::pr_color_eq(r) + color::pr_color_ge(r + 1))).abs() < 1e-12);
        let p_lt = color::pr_max_lt(r, n_prime);
        let p_ge = color::pr_max_ge(r, n_prime);
        prop_assert!((p_lt + p_ge - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&p_lt));
    }

    /// The schedule locator is a bijection between rounds and positions.
    #[test]
    fn schedule_locate_is_consistent(round in 2u64..3000, eps_milli in 10u64..500) {
        let schedule = Schedule::new(8, eps_milli as f64 / 1000.0);
        if let byzcount_core::Position::InPhase(pos) = schedule.locate(round) {
            prop_assert!(pos.phase >= 1);
            prop_assert!(pos.subphase >= 1 && pos.subphase <= schedule.subphases_in_phase(pos.phase));
            prop_assert!(pos.step <= pos.phase);
            // Re-derive the round from the position.
            let mut r = byzcount_core::DISCOVERY_ROUNDS;
            for p in 1..pos.phase {
                r += schedule.rounds_in_phase(p);
            }
            r += (pos.subphase - 1) * schedule.rounds_in_subphase(pos.phase) + pos.step;
            prop_assert_eq!(r, round);
        } else {
            prop_assert!(round < 2);
        }
    }

    /// Placements never exceed their budget and masks match node lists.
    #[test]
    fn placement_mask_consistency(n in 1usize..500, count in 0usize..600, seed in any::<u64>()) {
        let p = Placement::random(n, count, seed);
        prop_assert_eq!(p.count(), count.min(n));
        prop_assert_eq!(p.nodes().len(), p.count());
        prop_assert_eq!(p.mask().iter().filter(|&&b| b).count(), p.count());
    }

    /// Evaluation never counts more good nodes than honest nodes, and the
    /// good fraction is a probability.
    #[test]
    fn evaluation_bounds(estimates in proptest::collection::vec(proptest::option::of(1u64..40), 1..80)) {
        let n = estimates.len();
        let outcome = CountingOutcome {
            n,
            estimates,
            decided_round: vec![None; n],
            crashed: vec![false; n],
            byzantine: vec![false; n],
            params: ProtocolParams::new(8, 3, 0.6, 0.1, 1.0),
            metrics: Default::default(),
            completed: true,
        };
        let eval = outcome.evaluate();
        prop_assert!(eval.honest_good <= eval.honest_total);
        prop_assert!((0.0..=1.0).contains(&eval.good_fraction_of_honest));
        prop_assert!(eval.honest_decided <= eval.honest_total);
    }
}
