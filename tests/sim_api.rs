//! Integration tests for the unified `Simulation` API: serde round-trips,
//! determinism, cross-topology execution and parallel batching.

use byzcount::prelude::*;

fn byzantine_sim(topology: TopologySpec, seed: u64) -> Simulation {
    Simulation::builder()
        .topology(topology)
        .workload(WorkloadSpec::Byzantine)
        .placement(PlacementSpec::Random { count: 4 })
        .adversary(AdversarySpec::Silent)
        .seed(seed)
        .build()
        .expect("spec")
}

#[test]
fn run_spec_and_report_round_trip_losslessly() {
    let report = Simulation::builder()
        .topology(TopologySpec::SmallWorld { n: 128, d: 6 })
        .placement(PlacementSpec::RandomBudget { delta: 0.6 })
        .adversary(AdversarySpec::Combined)
        .seed(u64::MAX - 17) // exercise the full u64 seed space
        .build()
        .unwrap()
        .run()
        .unwrap();

    // Spec round-trip.
    let spec_json = report.spec.to_json();
    let spec_back = RunSpec::from_json(&spec_json).unwrap();
    assert_eq!(spec_back, report.spec);
    assert_eq!(spec_back.to_json(), spec_json);
    assert_eq!(spec_back.seed, u64::MAX - 17, "u64 seeds must survive JSON");

    // Report round-trip.
    let report_json = report.to_json();
    let report_back = RunReport::from_json(&report_json).unwrap();
    assert_eq!(report_back, report);
    assert_eq!(report_back.to_json(), report_json);
}

#[test]
fn same_spec_and_seed_give_identical_reports() {
    let spec = byzantine_sim(TopologySpec::SmallWorld { n: 192, d: 6 }, 77)
        .spec()
        .clone();
    let a = byzcount::sim::execute(&spec).unwrap();
    let b = byzcount::sim::execute(&spec).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.to_json(), b.to_json(), "reports must be byte-identical");

    // And a different seed genuinely changes the run.
    let mut other = spec.clone();
    other.seed ^= 1;
    let c = byzcount::sim::execute(&other).unwrap();
    assert_ne!(a.to_json(), c.to_json());
}

#[test]
fn algorithm2_runs_on_watts_strogatz_and_tree_topologies() {
    // Cross-topology smoke test: the protocol machinery must execute (and
    // terminate within its round cap) on graphs that are nothing like the
    // paper's expander.  Estimate quality is not asserted — the paper's
    // guarantees assume small-world structure; what matters is that the
    // unified API drives the full protocol anywhere.
    let topologies = [
        TopologySpec::WattsStrogatz {
            n: 96,
            k_half: 3,
            beta: 0.1,
        },
        TopologySpec::BalancedTree { n: 96, arity: 3 },
        TopologySpec::RandomTree {
            n: 96,
            max_degree: Some(6),
        },
    ];
    for topology in topologies {
        let report = Simulation::builder()
            .topology(topology.clone())
            .workload(WorkloadSpec::Byzantine)
            .placement(PlacementSpec::Random { count: 3 })
            .adversary(AdversarySpec::Silent)
            .max_rounds(4000)
            .seed(5)
            .build()
            .unwrap_or_else(|e| panic!("{topology:?}: {e}"))
            .run()
            .unwrap_or_else(|e| panic!("{topology:?}: {e}"));
        assert_eq!(report.n, 96, "{topology:?}");
        assert!(report.rounds > 0, "{topology:?}");
        assert!(
            report.rounds <= 4000,
            "{topology:?} exceeded its round cap: {}",
            report.rounds
        );
        // The run must have produced decisions or crashes, not silence.
        assert!(
            report.honest_decided + report.honest_crashed > 0,
            "{topology:?}: no honest node reached a terminal state"
        );
    }
}

#[test]
fn basic_counting_runs_on_all_five_topology_families() {
    for topology in [
        TopologySpec::SmallWorld { n: 96, d: 6 },
        TopologySpec::SmallWorldH { n: 96, d: 6 },
        TopologySpec::WattsStrogatz {
            n: 96,
            k_half: 3,
            beta: 0.1,
        },
        TopologySpec::BalancedTree { n: 96, arity: 3 },
        TopologySpec::RandomTree {
            n: 96,
            max_degree: Some(6),
        },
    ] {
        let report = Simulation::builder()
            .topology(topology.clone())
            .workload(WorkloadSpec::Basic)
            .max_rounds(4000)
            .seed(9)
            .build()
            .unwrap()
            .run()
            .unwrap_or_else(|e| panic!("{topology:?}: {e}"));
        assert!(report.rounds > 0, "{topology:?}");
    }
}

#[test]
fn all_four_baselines_run_through_the_builder_on_three_topologies() {
    let topologies = [
        TopologySpec::SmallWorldH { n: 128, d: 6 },
        TopologySpec::WattsStrogatz {
            n: 128,
            k_half: 3,
            beta: 0.1,
        },
        TopologySpec::BalancedTree { n: 128, arity: 3 },
    ];
    let workloads = [
        WorkloadSpec::GeometricSupport {
            ttl: None,
            attack: AttackSpec::None,
        },
        WorkloadSpec::ExponentialSupport {
            ttl: None,
            attack: AttackSpec::None,
        },
        WorkloadSpec::SpanningTree {
            max_rounds: None,
            attack: AttackSpec::None,
        },
        WorkloadSpec::FloodDiameter {
            ttl: None,
            attack: AttackSpec::None,
        },
    ];
    for topology in &topologies {
        for workload in &workloads {
            let report = Simulation::builder()
                .topology(topology.clone())
                .workload(workload.clone())
                .seed(3)
                .build()
                .unwrap()
                .run()
                .unwrap_or_else(|e| panic!("{topology:?} × {workload:?}: {e}"));
            assert!(
                report.completed,
                "{topology:?} × {workload:?} did not complete"
            );
            assert!(report.estimate.decided > 0, "{topology:?} × {workload:?}");
        }
    }
}

#[test]
fn multi_seed_batch_runs_in_parallel_and_round_trips() {
    // Acceptance criterion: a ≥8-seed batch runs (rayon-parallel) and its
    // report serializes to JSON that round-trips losslessly.
    let batch = Simulation::builder()
        .topology(TopologySpec::SmallWorld { n: 128, d: 6 })
        .workload(WorkloadSpec::Byzantine)
        .placement(PlacementSpec::RandomBudget { delta: 0.6 })
        .adversary(AdversarySpec::HonestBehaving)
        .seeds(SeedPolicy::Sequence {
            base: 0xFEED,
            count: 8,
        })
        .build()
        .unwrap()
        .run_batch()
        .unwrap();
    assert_eq!(batch.runs.len(), 8);
    let seeds: std::collections::HashSet<u64> = batch.runs.iter().map(|r| r.seed).collect();
    assert_eq!(seeds.len(), 8, "each run must use a distinct derived seed");
    let agg = batch.aggregate_for(128).unwrap();
    assert_eq!(agg.runs, 8);
    assert!(agg.good_fraction.unwrap().mean > 0.8);
    assert!(agg.rounds.mean > 0.0);

    let json = batch.to_json();
    let back = BatchReport::from_json(&json).unwrap();
    assert_eq!(back, batch);
    assert_eq!(
        back.to_json(),
        json,
        "batch JSON must round-trip losslessly"
    );
}

#[test]
fn batch_spec_json_is_executable() {
    // A campaign can be described entirely as data, shipped as JSON, and
    // executed elsewhere — the CLI `run` path.
    let sim = Simulation::builder()
        .topology(TopologySpec::SmallWorld { n: 96, d: 6 })
        .workload(WorkloadSpec::Basic)
        .seeds(SeedPolicy::Explicit(vec![1, 2, 3]))
        .sizes(&[96, 128])
        .build()
        .unwrap();
    let json = sim.batch_spec().to_json();
    let parsed = BatchSpec::from_json(&json).unwrap();
    let report = byzcount::sim::execute_batch(&parsed).unwrap();
    assert_eq!(report.runs.len(), 6);
    assert_eq!(report.aggregates.len(), 2);
}

#[test]
fn placement_integrates_with_the_spec_layer() {
    // A concrete Placement embeds into a spec and reproduces exactly.
    let placement = Placement::random(128, 9, 4);
    let report = Simulation::builder()
        .topology(TopologySpec::SmallWorld { n: 128, d: 6 })
        .workload(WorkloadSpec::Byzantine)
        .placement(placement.to_spec())
        .adversary(AdversarySpec::HonestBehaving)
        .seed(2)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(report.byzantine_count, 9);
}

#[test]
fn old_free_functions_and_builder_agree() {
    // The deprecated-free wrappers and the builder drive the same engine;
    // a fault-free basic run must produce the same per-node estimates when
    // fed the same network and execution seed.
    let spec = Simulation::builder()
        .topology(TopologySpec::SmallWorld { n: 128, d: 6 })
        .workload(WorkloadSpec::Basic)
        .seed(31)
        .build()
        .unwrap();
    let report = spec.run().unwrap();
    let eval2 = report.counting.unwrap().eval_factor2;
    assert_eq!(
        eval2.honest_total, 128,
        "builder must evaluate all honest nodes like the free functions do"
    );
    assert!(eval2.good_fraction_of_honest > 0.9);
}
