//! # byzcount — Byzantine network size estimation in small-world networks
//!
//! Facade crate re-exporting the public API of the workspace, which
//! reproduces *"Network Size Estimation in Small-World Networks under
//! Byzantine Faults"* (Chatterjee, Pandurangan, Robinson):
//!
//! * [`graph`] — the `H(n,d)` random regular graph, the small-world overlay
//!   `G = H ∪ L`, and the graph analytics used in the paper's analysis;
//! * [`runtime`] — a synchronous round-based message-passing simulator with
//!   full-information Byzantine adversaries;
//! * [`protocol`] — the counting protocols themselves (Algorithm 1 and the
//!   Byzantine-tolerant Algorithm 2);
//! * [`adversary`] — concrete Byzantine strategies (color inflation,
//!   suppression, fake-chain topology lies, …);
//! * [`baselines`] — non-Byzantine-tolerant estimators the paper compares
//!   against conceptually (support estimation, converge-cast, flooding);
//! * [`analysis`] — the experiment harness, statistics and table rendering
//!   used to regenerate every quantitative claim.
//!
//! ## Quickstart
//!
//! ```
//! use byzcount::prelude::*;
//!
//! // A 512-node small-world expander with the paper's n^{1-δ} Byzantine budget.
//! let net = SmallWorldNetwork::generate_seeded(512, 8, 42).unwrap();
//! let params = ProtocolParams::for_network_default_expansion(&net, 0.6, 0.1);
//! let placement = Placement::random_budget(net.len(), 0.6, 7);
//!
//! // Full-information adversary that injects maximal colors every subphase.
//! let knowledge = AdversaryKnowledge::gather(&net, &params, placement.mask());
//! let adversary = ColorInflationAdversary::new(knowledge, InjectionTiming::Legal);
//!
//! // Run Algorithm 2 and check Theorem 1's guarantee.
//! let outcome = run_counting_with(&net, &params, placement.mask(), adversary, 99);
//! let eval = outcome.evaluate();
//! assert!(eval.good_fraction_of_honest > 0.8);
//! ```

pub use byzcount_adversary as adversary;
pub use byzcount_analysis as analysis;
pub use byzcount_baselines as baselines;
pub use byzcount_core as protocol;
pub use netsim_graph as graph;
pub use netsim_runtime as runtime;

/// Most commonly used items, re-exported flat.
pub mod prelude {
    pub use byzcount_adversary::{
        AdversaryKnowledge, ColorInflationAdversary, CombinedAdversary, CountingAdversary,
        FakeChainAdversary, HonestBehavingAdversary, InjectionTiming, Placement, SilentAdversary,
        SuppressionAdversary,
    };
    pub use byzcount_analysis::prelude::*;
    pub use byzcount_baselines::{
        run_exponential_support, run_flood_diameter, run_geometric_support,
        run_spanning_tree_count, BaselineAttack,
    };
    pub use byzcount_core::{
        run_basic_counting, run_basic_counting_with, run_counting_with, CountingNode,
        CountingOutcome, Decision, EstimateEvaluation, ProtocolParams, Schedule,
    };
    pub use netsim_graph::prelude::*;
    pub use netsim_runtime::prelude::*;
}
