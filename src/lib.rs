//! # byzcount — Byzantine network size estimation in small-world networks
//!
//! Facade crate re-exporting the public API of the workspace, which
//! reproduces *"Network Size Estimation in Small-World Networks under
//! Byzantine Faults"* (Chatterjee, Pandurangan, Robinson):
//!
//! * [`graph`] — the `H(n,d)` random regular graph, the small-world overlay
//!   `G = H ∪ L`, Watts–Strogatz and tree topologies, and the graph
//!   analytics used in the paper's analysis;
//! * [`runtime`] — a synchronous round-based message-passing simulator with
//!   full-information Byzantine adversaries;
//! * [`protocol`] — the counting protocols (Algorithm 1 and the
//!   Byzantine-tolerant Algorithm 2) and the unified
//!   [`sim`](byzcount_core::sim) API;
//! * [`adversary`] — concrete Byzantine strategies (color inflation,
//!   suppression, fake-chain topology lies, …);
//! * [`baselines`] — non-Byzantine-tolerant estimators the paper compares
//!   against conceptually (support estimation, converge-cast, flooding);
//! * [`analysis`] — campaign execution, the experiment harness, statistics
//!   and table rendering used to regenerate every quantitative claim;
//! * [`campaign`] — the campaign *service*: WAL-checkpointed, resumable
//!   sweeps served over a line-delimited socket protocol
//!   (`byzcount-cli serve` / `submit` / `watch`).
//!
//! ## Quickstart
//!
//! Every scenario goes through one typed entry point: the
//! [`Simulation`](prelude::Simulation) builder.  Compose a topology, a
//! workload, a Byzantine placement, an adversary and a seed policy; get
//! back a serializable [`RunReport`](prelude::RunReport) (or a batched
//! [`BatchReport`](prelude::BatchReport) with aggregate statistics).
//!
//! ```
//! use byzcount::prelude::*;
//!
//! // Algorithm 2 on a 512-node small-world network, the paper's n^{1-δ}
//! // Byzantine budget, and a full-information color-inflation adversary.
//! let report = Simulation::builder()
//!     .topology(TopologySpec::SmallWorld { n: 512, d: 8 })
//!     .workload(WorkloadSpec::Byzantine)
//!     .placement(PlacementSpec::RandomBudget { delta: 0.6 })
//!     .adversary(AdversarySpec::ColorInflation { timing: TimingSpec::Legal })
//!     .seed(42)
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//!
//! // Theorem 1's guarantee: most honest nodes estimate log n well.
//! assert!(report.good_fraction().unwrap() > 0.8);
//!
//! // Reports and specs round-trip losslessly through JSON.
//! let reparsed = RunReport::from_json(&report.to_json()).unwrap();
//! assert_eq!(reparsed, report);
//! ```
//!
//! Multi-seed / multi-size campaigns run in parallel and aggregate:
//!
//! ```
//! use byzcount::prelude::*;
//!
//! let batch = Simulation::builder()
//!     .topology(TopologySpec::SmallWorld { n: 128, d: 6 })
//!     .workload(WorkloadSpec::Basic)
//!     .seeds(SeedPolicy::Sequence { base: 7, count: 8 })
//!     .sizes(&[128, 256])
//!     .build()
//!     .unwrap()
//!     .run_batch()
//!     .unwrap();
//! assert_eq!(batch.runs.len(), 16);
//! assert!(batch.aggregate_for(256).unwrap().good_fraction.unwrap().mean > 0.8);
//! ```
//!
//! The lower-level pieces remain available for protocol work: generate a
//! network with [`SmallWorldNetwork::generate_seeded`](prelude::SmallWorldNetwork),
//! drive the engine directly with
//! [`run_counting_with`](prelude::run_counting_with), or implement
//! [`Estimator`](byzcount_core::sim::Estimator) for a custom workload and
//! plug it into the same machinery.

pub use byzcount_adversary as adversary;
pub use byzcount_analysis as analysis;
pub use byzcount_baselines as baselines;
pub use byzcount_campaign as campaign;
pub use byzcount_core as protocol;
pub use netsim_graph as graph;
pub use netsim_runtime as runtime;
pub use netsim_runtime::faults;

/// The unified simulation API, re-exported from `byzcount_core::sim` with
/// the full scenario registry from `byzcount_analysis::campaign`.
pub mod sim {
    pub use byzcount_analysis::campaign::{
        execute, execute_batch, execute_batch_recorded, execute_batch_workers, execute_recorded,
        execute_workers, FullRegistry, RunSimulation,
    };
    pub use byzcount_core::sim::*;
}

/// Structured tracing and phase-level metrics (re-exported from
/// `netsim_trace`): the [`trace::Recorder`] trait, the NDJSON
/// [`trace::TraceWriter`], the [`trace::PhaseProfiler`] and the
/// trace-file validator [`trace::check_trace`].
pub use netsim_runtime::trace;

/// Most commonly used items, re-exported flat.
pub mod prelude {
    pub use byzcount_adversary::{
        AdversaryKnowledge, ColorInflationAdversary, CombinedAdversary, CountingAdversary,
        FakeChainAdversary, HonestBehavingAdversary, InjectionTiming, Placement, SilentAdversary,
        SpecAdversaryFactory, SuppressionAdversary,
    };
    pub use byzcount_analysis::prelude::*;
    pub use byzcount_baselines::{
        run_exponential_support, run_flood_diameter, run_geometric_support,
        run_spanning_tree_count, BaselineAttack, ExponentialSupportWorkload, FloodDiameterWorkload,
        GeometricSupportWorkload, SpanningTreeWorkload,
    };
    pub use byzcount_core::sim::{
        AdversarySpec, AttackSpec, BatchReport, BatchSpec, ClockPlan, EngineSpec, Estimand,
        Estimator, ParamsSpec, PlacementSpec, PreparedRun, RunReport, RunSpec, SeedPolicy,
        SimContext, SimError, Simulation, SimulationBuilder, TimingSpec, TopologySpec,
        WorkloadSpec, SPEC_VERSION,
    };
    pub use byzcount_core::{
        run_basic_counting, run_basic_counting_on, run_basic_counting_with, run_counting_on,
        run_counting_with, CountingNode, CountingOutcome, Decision, EstimateEvaluation,
        ProtocolParams, Schedule,
    };
    pub use netsim_graph::prelude::*;
    pub use netsim_runtime::prelude::*;
}
