//! Protocol parameters and the analytical constants of the paper.
//!
//! The analysis is phrased in terms of
//!
//! * the degree `d` of the base expander `H` and the small-world radius
//!   `k = ⌈d/3⌉`,
//! * the fault exponent `δ` (up to `n^{1−δ}` Byzantine nodes, `3/d < δ ≤ 1`),
//! * the error parameter `ε` (at most an ε-fraction of honest nodes may end
//!   up without a constant-factor estimate),
//! * the derived constants `a = δ / (10 k log(d−1))` and
//!   `b = 4 / log(1 + h/d)` where `h` is the edge expansion of `H`
//!   (resp. `γ` of the uncrashed core for Algorithm 2),
//! * the level sizes `l_r = log d + r·log(d−1)` (Lemma 6) and the
//!   continuation threshold of Algorithm 1/2 line 16/18.
//!
//! All logarithms are base 2, matching the coin-flip colors.

use netsim_graph::expansion::edge_expansion;
use netsim_graph::SmallWorldNetwork;
use serde::{Deserialize, Serialize};

/// All parameters needed to run and reason about the counting protocols.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProtocolParams {
    /// Degree of the base graph `H`.
    pub d: usize,
    /// Small-world radius `k = ⌈d/3⌉` (or the override used by the network).
    pub k: usize,
    /// Fault exponent `δ` (`3/d < δ ≤ 1`).
    pub delta: f64,
    /// Error parameter `ε ∈ (0, 1)`.
    pub epsilon: f64,
    /// Estimated edge expansion `h` of `H` (used only for the analytic `b`;
    /// the protocol itself never needs it).
    pub edge_expansion: f64,
}

impl ProtocolParams {
    /// Construct parameters directly.
    ///
    /// # Panics
    /// Panics if `ε ∉ (0, 1)`, `δ ∉ (0, 1]`, or `d < 4`.
    pub fn new(d: usize, k: usize, delta: f64, epsilon: f64, edge_expansion: f64) -> Self {
        assert!(d >= 4, "degree must be at least 4");
        assert!(k >= 1, "small-world radius must be at least 1");
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0, 1)");
        assert!(delta > 0.0 && delta <= 1.0, "delta must lie in (0, 1]");
        assert!(edge_expansion > 0.0, "edge expansion must be positive");
        ProtocolParams {
            d,
            k,
            delta,
            epsilon,
            edge_expansion,
        }
    }

    /// Derive parameters from a generated network, estimating the edge
    /// expansion of `H` spectrally.
    pub fn for_network(net: &SmallWorldNetwork, delta: f64, epsilon: f64) -> Self {
        let est = edge_expansion(net.h().csr(), net.d(), 200, 0xB1A5);
        Self::new(
            net.d(),
            net.k(),
            delta,
            epsilon,
            est.working_value().max(0.05),
        )
    }

    /// Derive parameters from a network without running the spectral
    /// estimator (uses `h = 1`, a typical value for `H(n, 8)`).
    pub fn for_network_default_expansion(
        net: &SmallWorldNetwork,
        delta: f64,
        epsilon: f64,
    ) -> Self {
        Self::new(net.d(), net.k(), delta, epsilon, 1.0)
    }

    /// Derive parameters for an arbitrary topology from a nominal degree
    /// alone, with the paper's default radius `k = ⌈d/3⌉` and unit edge
    /// expansion.  This is what the simulation API uses for topologies that
    /// are not small-world networks (Watts–Strogatz, trees, raw CSR), where
    /// the analytic constants are heuristics rather than guarantees.
    pub fn for_degree(d: usize, delta: f64, epsilon: f64) -> Self {
        let d = d.max(4);
        Self::new(d, d.div_ceil(3).max(1), delta, epsilon, 1.0)
    }

    /// Whether `δ` satisfies the paper's admissibility condition `δ > 3/d`
    /// (needed so that no Byzantine chain of length `k` exists, Obs. 6).
    pub fn delta_is_admissible(&self) -> bool {
        self.delta > 3.0 / self.d as f64
    }

    /// The paper's constant `a = δ / (10 k log₂(d−1))`: phases below
    /// `a·log n` are the "small i" regime of the analysis.
    pub fn a(&self) -> f64 {
        self.delta / (10.0 * self.k as f64 * ((self.d - 1) as f64).log2())
    }

    /// The paper's constant `b = 4 / log₂(1 + h/d)`: by phase `b·log n`
    /// every active core node terminates.
    pub fn b(&self) -> f64 {
        4.0 / (1.0 + self.edge_expansion / self.d as f64).log2()
    }

    /// The analytic approximation factor `b/a = 40 k log(d−1) / (δ log(1+h/d))`.
    pub fn approximation_factor(&self) -> f64 {
        self.b() / self.a()
    }

    /// The admissible number of Byzantine nodes `⌊n^{1−δ}⌋` for a network of
    /// size `n`.
    pub fn byzantine_budget(&self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (n as f64).powf(1.0 - self.delta).floor() as usize
        }
    }

    /// `l_r = log₂ d + r·log₂(d−1)`: the (log of the) size of the ball
    /// boundary at radius `r` around a locally-tree-like node (Lemma 6).
    pub fn level_log(&self, r: u64) -> f64 {
        (self.d as f64).log2() + r as f64 * ((self.d - 1) as f64).log2()
    }

    /// The continuation threshold of phase `i` (Algorithm 2, line 18): a node
    /// keeps going only if the maximum color received in the *last* round of
    /// some subphase exceeds `l_{i−1} − log₂(l_{i−1})`.
    pub fn continue_threshold(&self, phase: u64) -> f64 {
        debug_assert!(phase >= 1);
        let l = self.level_log(phase - 1);
        l - l.max(1.0).log2()
    }

    /// The phase index at which `l_{i−1} ≈ log₂ n`, i.e. the ball boundary
    /// reaches the whole network.  This is where termination is expected;
    /// the experiments use it as the reference point for the
    /// "constant-factor estimate" evaluation.
    pub fn expected_decision_phase(&self, n: usize) -> f64 {
        let log_n = netsim_graph::log2n(n);
        let dm1 = ((self.d - 1) as f64).log2();
        1.0 + (log_n - (self.d as f64).log2()).max(0.0) / dm1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params_d8() -> ProtocolParams {
        ProtocolParams::new(8, 3, 0.6, 0.1, 1.0)
    }

    #[test]
    fn constants_match_paper_formulas() {
        let p = params_d8();
        let a = p.a();
        let expected_a = 0.6 / (10.0 * 3.0 * (7.0f64).log2());
        assert!((a - expected_a).abs() < 1e-12);
        let b = p.b();
        let expected_b = 4.0 / (1.0 + 1.0 / 8.0f64).log2();
        assert!((b - expected_b).abs() < 1e-12);
        assert!(a < b, "the analysis requires 0 < a < b");
        assert!((p.approximation_factor() - b / a).abs() < 1e-9);
    }

    #[test]
    fn delta_admissibility() {
        assert!(params_d8().delta_is_admissible()); // 0.6 > 3/8
        let p = ProtocolParams::new(8, 3, 0.3, 0.1, 1.0);
        assert!(!p.delta_is_admissible()); // 0.3 < 3/8
    }

    #[test]
    fn byzantine_budget_scales_sublinearly() {
        let p = params_d8();
        assert_eq!(p.byzantine_budget(0), 0);
        assert_eq!(p.byzantine_budget(1), 1);
        let b1 = p.byzantine_budget(1 << 10);
        let b2 = p.byzantine_budget(1 << 20);
        // n^{0.4}: 2^4 = 16 and 2^8 = 256.
        assert_eq!(b1, 16);
        assert_eq!(b2, 256);
        assert!((b2 as f64) < (1 << 20) as f64 * 0.01);
    }

    #[test]
    fn level_log_is_affine_in_r() {
        let p = params_d8();
        let l0 = p.level_log(0);
        let l1 = p.level_log(1);
        let l5 = p.level_log(5);
        assert!((l0 - 3.0).abs() < 1e-12);
        assert!((l1 - l0 - (7.0f64).log2()).abs() < 1e-12);
        assert!((l5 - l0 - 5.0 * (7.0f64).log2()).abs() < 1e-12);
    }

    #[test]
    fn continue_threshold_grows_with_phase() {
        let p = params_d8();
        let mut prev = f64::NEG_INFINITY;
        for i in 1..30 {
            let t = p.continue_threshold(i);
            assert!(t > prev, "threshold must be strictly increasing");
            prev = t;
        }
        // Phase 1: threshold = log2(8) - log2(log2(8)) = 3 - 1.585 ≈ 1.415.
        assert!((p.continue_threshold(1) - (3.0 - 3.0f64.log2())).abs() < 1e-12);
    }

    #[test]
    fn expected_decision_phase_matches_ball_growth() {
        let p = params_d8();
        // l_{i-1} = log2(n)  =>  i = 1 + (log2 n - 3)/log2 7.
        let i = p.expected_decision_phase(1 << 12);
        assert!((i - (1.0 + 9.0 / (7.0f64).log2())).abs() < 1e-9);
        assert!(p.expected_decision_phase(2) < p.expected_decision_phase(1 << 20));
    }

    #[test]
    fn for_network_estimates_a_positive_expansion() {
        let net = SmallWorldNetwork::generate_seeded(512, 8, 5).unwrap();
        let p = ProtocolParams::for_network(&net, 0.6, 0.1);
        assert!(p.edge_expansion > 0.0);
        assert_eq!(p.d, 8);
        assert_eq!(p.k, 3);
        assert!(p.b() > p.a());
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        let _ = ProtocolParams::new(8, 3, 0.6, 1.5, 1.0);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn rejects_bad_delta() {
        let _ = ProtocolParams::new(8, 3, 0.0, 0.1, 1.0);
    }
}
