//! Convenience runners: wire a network, parameters, a Byzantine mask and an
//! adversary into the synchronous engine and collect a [`CountingOutcome`].

use crate::node::{CountingNode, Decision};
use crate::outcome::CountingOutcome;
use crate::params::ProtocolParams;
use crate::schedule::Schedule;
use netsim_faults::FaultPlan;
use netsim_graph::SmallWorldNetwork;
use netsim_runtime::{
    run_with_engine_fleet, Adversary, EngineConfig, EngineKind, NullAdversary, Recorder,
    RemoteFleet, RunError, Topology,
};

/// How many phases past the reference decision phase the engine allows
/// before giving up (safety cap; honest runs finish well before it).
const PHASE_SLACK_FACTOR: f64 = 3.0;
const PHASE_SLACK_EXTRA: u64 = 8;

/// Build the per-node protocol states for global node ids `range`.
///
/// The full run is `0..n`; shard workers build only their assigned chunk.
/// Construction is a pure function of `(params, verify)` per node, so a
/// chunk built remotely is identical to the coordinator's slice — the
/// distributed engine's byte-identity contract depends on this.
pub fn counting_nodes(
    params: &ProtocolParams,
    verify: bool,
    range: std::ops::Range<usize>,
) -> Vec<CountingNode> {
    range
        .map(|_| {
            if verify {
                CountingNode::byzantine_variant(*params)
            } else {
                CountingNode::basic_variant(*params)
            }
        })
        .collect()
}

/// Compute the engine round cap for a network of size `n`.
pub fn round_cap(params: &ProtocolParams, n: usize) -> u64 {
    let schedule = Schedule::new(params.d, params.epsilon);
    let reference = params.expected_decision_phase(n);
    let max_phase = (reference * PHASE_SLACK_FACTOR).ceil() as u64 + PHASE_SLACK_EXTRA;
    schedule.rounds_through_phase(max_phase)
}

/// Run the *Byzantine* counting protocol (Algorithm 2) over any topology
/// with an arbitrary adversary.
pub fn run_counting_on<T, A>(
    net: &T,
    params: &ProtocolParams,
    byzantine: &[bool],
    adversary: A,
    seed: u64,
) -> CountingOutcome
where
    T: Topology,
    A: Adversary<CountingNode>,
{
    run_variant(net, params, byzantine, adversary, true, seed)
}

/// Run the *basic* counting protocol (Algorithm 1) over any topology without
/// Byzantine nodes.
pub fn run_basic_counting_on<T: Topology>(
    net: &T,
    params: &ProtocolParams,
    seed: u64,
) -> CountingOutcome {
    let byzantine = vec![false; net.len()];
    run_variant(net, params, &byzantine, NullAdversary, false, seed)
}

/// Run the basic protocol (no verification) over any topology but *with*
/// Byzantine nodes and an adversary.
pub fn run_basic_counting_on_with<T, A>(
    net: &T,
    params: &ProtocolParams,
    byzantine: &[bool],
    adversary: A,
    seed: u64,
) -> CountingOutcome
where
    T: Topology,
    A: Adversary<CountingNode>,
{
    run_variant(net, params, byzantine, adversary, false, seed)
}

/// Run the *Byzantine* counting protocol (Algorithm 2) with an arbitrary
/// adversary.
pub fn run_counting_with<A>(
    net: &SmallWorldNetwork,
    params: &ProtocolParams,
    byzantine: &[bool],
    adversary: A,
    seed: u64,
) -> CountingOutcome
where
    A: Adversary<CountingNode>,
{
    run_counting_on(net, params, byzantine, adversary, seed)
}

/// Run the *basic* counting protocol (Algorithm 1) without Byzantine nodes.
pub fn run_basic_counting(
    net: &SmallWorldNetwork,
    params: &ProtocolParams,
    seed: u64,
) -> CountingOutcome {
    run_basic_counting_on(net, params, seed)
}

/// Run the basic protocol (no verification) but *with* Byzantine nodes and an
/// adversary — used to demonstrate why Algorithm 1 alone is not
/// Byzantine-tolerant.
pub fn run_basic_counting_with<A>(
    net: &SmallWorldNetwork,
    params: &ProtocolParams,
    byzantine: &[bool],
    adversary: A,
    seed: u64,
) -> CountingOutcome
where
    A: Adversary<CountingNode>,
{
    run_basic_counting_on_with(net, params, byzantine, adversary, seed)
}

fn run_variant<T, A>(
    net: &T,
    params: &ProtocolParams,
    byzantine: &[bool],
    adversary: A,
    verify: bool,
    seed: u64,
) -> CountingOutcome
where
    T: Topology,
    A: Adversary<CountingNode>,
{
    run_counting_custom(net, params, byzantine, adversary, verify, seed, None)
}

/// Run either counting variant with full control: `verify` selects
/// Algorithm 2 over Algorithm 1, and `max_rounds` overrides the
/// schedule-derived round cap (the simulation API uses this for workloads
/// on non-expander topologies, where the analytic cap may not apply).
pub fn run_counting_custom<T, A>(
    net: &T,
    params: &ProtocolParams,
    byzantine: &[bool],
    adversary: A,
    verify: bool,
    seed: u64,
    max_rounds: Option<u64>,
) -> CountingOutcome
where
    T: Topology,
    A: Adversary<CountingNode>,
{
    run_counting_faulty(
        net, params, byzantine, adversary, verify, seed, max_rounds, None,
    )
}

/// [`run_counting_custom`] with an optional network [`FaultPlan`] installed
/// on the engine: honest traffic may be lost, delayed or deferred, and
/// honest nodes may churn in and out.
#[allow(clippy::too_many_arguments)]
pub fn run_counting_faulty<T, A>(
    net: &T,
    params: &ProtocolParams,
    byzantine: &[bool],
    adversary: A,
    verify: bool,
    seed: u64,
    max_rounds: Option<u64>,
    fault_plan: Option<Box<dyn FaultPlan>>,
) -> CountingOutcome
where
    T: Topology,
    A: Adversary<CountingNode>,
{
    run_counting_engine(
        net,
        params,
        byzantine,
        adversary,
        verify,
        seed,
        max_rounds,
        fault_plan,
        EngineKind::Sync,
    )
}

/// [`run_counting_faulty`] with an explicit [`EngineKind`]: the classic
/// engine or the sharded engine with a given shard count.  The engine
/// choice is execution policy only — outcomes are byte-identical for equal
/// inputs, whichever engine runs them.
#[allow(clippy::too_many_arguments)]
pub fn run_counting_engine<T, A>(
    net: &T,
    params: &ProtocolParams,
    byzantine: &[bool],
    adversary: A,
    verify: bool,
    seed: u64,
    max_rounds: Option<u64>,
    fault_plan: Option<Box<dyn FaultPlan>>,
    engine: EngineKind,
) -> CountingOutcome
where
    T: Topology,
    A: Adversary<CountingNode>,
{
    run_counting_recorded(
        net, params, byzantine, adversary, verify, seed, max_rounds, fault_plan, engine, None,
    )
}

/// [`run_counting_engine`] with an optional [`Recorder`] observing the run.
/// Recorders are observation-only: the outcome is byte-identical with any
/// recorder installed or none.
#[allow(clippy::too_many_arguments)]
pub fn run_counting_recorded<T, A>(
    net: &T,
    params: &ProtocolParams,
    byzantine: &[bool],
    adversary: A,
    verify: bool,
    seed: u64,
    max_rounds: Option<u64>,
    fault_plan: Option<Box<dyn FaultPlan>>,
    engine: EngineKind,
    recorder: Option<&dyn Recorder>,
) -> CountingOutcome
where
    T: Topology,
    A: Adversary<CountingNode>,
{
    run_counting_fleet(
        net, params, byzantine, adversary, verify, seed, max_rounds, fault_plan, engine, recorder,
        None,
    )
    .expect("in-process engines are infallible")
}

/// [`run_counting_recorded`] with an optional [`RemoteFleet`]: when the
/// engine is distributed and a fleet is given, shard workers are dialed
/// over sockets instead of spawned as in-process threads.  This is the
/// only counting runner that can fail — every wire mishap surfaces as a
/// [`RunError`] instead of a panic.
#[allow(clippy::too_many_arguments)]
pub fn run_counting_fleet<T, A>(
    net: &T,
    params: &ProtocolParams,
    byzantine: &[bool],
    adversary: A,
    verify: bool,
    seed: u64,
    max_rounds: Option<u64>,
    fault_plan: Option<Box<dyn FaultPlan>>,
    engine: EngineKind,
    recorder: Option<&dyn Recorder>,
    fleet: Option<&RemoteFleet>,
) -> Result<CountingOutcome, RunError>
where
    T: Topology,
    A: Adversary<CountingNode>,
{
    let n = net.len();
    assert_eq!(byzantine.len(), n, "byzantine mask must cover every node");
    let nodes = counting_nodes(params, verify, 0..n);
    let config = EngineConfig {
        max_rounds: max_rounds.unwrap_or_else(|| round_cap(params, n)),
        stop_when_all_decided: true,
    };
    let result = run_with_engine_fleet(
        engine,
        net,
        nodes,
        byzantine.to_vec(),
        adversary,
        config,
        seed,
        fault_plan,
        recorder,
        fleet,
    )?;
    Ok(CountingOutcome {
        n,
        estimates: result
            .outputs
            .iter()
            .map(|o| o.as_ref().map(|d: &Decision| d.phase))
            .collect(),
        decided_round: result.decided_round,
        crashed: result.crashed,
        byzantine: byzantine.to_vec(),
        params: *params,
        metrics: result.metrics,
        completed: result.completed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_cap_grows_with_n() {
        let p = ProtocolParams::new(8, 3, 0.6, 0.1, 1.0);
        assert!(round_cap(&p, 1 << 16) > round_cap(&p, 1 << 8));
        assert!(round_cap(&p, 256) > 50);
    }

    #[test]
    fn basic_counting_on_a_small_network_terminates_correctly() {
        let net = SmallWorldNetwork::generate_seeded(256, 8, 1).unwrap();
        let params = ProtocolParams::for_network_default_expansion(&net, 0.6, 0.1);
        let outcome = run_basic_counting(&net, &params, 7);
        assert!(
            outcome.completed,
            "all nodes must decide within the round cap"
        );
        let eval = outcome.evaluate();
        assert_eq!(eval.honest_total, 256);
        assert_eq!(eval.honest_crashed, 0);
        assert!(
            eval.good_fraction_of_honest > 0.9,
            "basic counting without faults should give almost everyone a good estimate \
             (got {}, reference {}, mean {})",
            eval.good_fraction_of_honest,
            eval.reference_phase,
            eval.mean_estimate
        );
    }

    #[test]
    fn byzantine_variant_without_faults_matches_basic() {
        let net = SmallWorldNetwork::generate_seeded(256, 8, 2).unwrap();
        let params = ProtocolParams::for_network_default_expansion(&net, 0.6, 0.1);
        let byz = vec![false; net.len()];
        let outcome = run_counting_with(&net, &params, &byz, NullAdversary, 3);
        assert!(outcome.completed);
        let eval = outcome.evaluate();
        assert_eq!(
            eval.honest_crashed, 0,
            "honest reports never trigger the crash rule"
        );
        assert!(eval.good_fraction_of_honest > 0.9, "{eval:?}");
    }

    #[test]
    fn estimates_scale_with_network_size() {
        // The decided phase must grow with n: that is what makes it an
        // estimate of log n at all.
        let small = SmallWorldNetwork::generate_seeded(128, 8, 4).unwrap();
        let large = SmallWorldNetwork::generate_seeded(2048, 8, 4).unwrap();
        let ps = ProtocolParams::for_network_default_expansion(&small, 0.6, 0.1);
        let pl = ProtocolParams::for_network_default_expansion(&large, 0.6, 0.1);
        let es = run_basic_counting(&small, &ps, 5).evaluate();
        let el = run_basic_counting(&large, &pl, 5).evaluate();
        assert!(
            el.mean_estimate > es.mean_estimate,
            "mean estimate must grow with n ({} vs {})",
            es.mean_estimate,
            el.mean_estimate
        );
    }

    #[test]
    #[should_panic(expected = "byzantine mask")]
    fn mask_length_is_checked() {
        let net = SmallWorldNetwork::generate_seeded(64, 8, 6).unwrap();
        let params = ProtocolParams::for_network_default_expansion(&net, 0.6, 0.1);
        let _ = run_counting_with(&net, &params, &[false; 3], NullAdversary, 0);
    }
}
