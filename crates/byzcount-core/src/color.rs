//! Geometric colors (Section 3.1) and their distribution facts
//! (Observations 4–5, Lemmas 4–5).
//!
//! Every node repeatedly tosses a fair coin until it sees heads; the number
//! of tosses is the node's *color* for the current subphase.  Colors are
//! geometrically distributed with parameter 1/2, so the maximum color over
//! `n'` nodes concentrates around `log₂ n'` — that is the whole engine of
//! the size estimate.

use rand::Rng;

/// A color: the index of the first heads in a sequence of fair coin tosses
/// (so always ≥ 1).
pub type Color = u32;

/// Hard cap on sampled colors.  `Pr[c > 96] = 2^{-96}`, i.e. never in
/// practice; the cap only protects against pathological RNGs.
pub const MAX_COLOR: Color = 96;

/// Sample a color: toss a fair coin until heads (Algorithm 1, line 10).
pub fn sample_color<R: Rng + ?Sized>(rng: &mut R) -> Color {
    let mut c: Color = 1;
    while rng.gen::<bool>() && c < MAX_COLOR {
        c += 1;
    }
    c
}

/// `Pr[c = r]` for a single node (Observation 4.1).
pub fn pr_color_eq(r: u32) -> f64 {
    if r == 0 {
        0.0
    } else {
        0.5f64.powi(r as i32)
    }
}

/// `Pr[c ≥ r]` (Observation 4.2).
pub fn pr_color_ge(r: u32) -> f64 {
    if r <= 1 {
        1.0
    } else {
        0.5f64.powi(r as i32 - 1)
    }
}

/// `Pr[max over n' nodes < r]` (Observation 5.1).
pub fn pr_max_lt(r: u32, n_prime: usize) -> f64 {
    (1.0 - pr_color_ge(r)).powi(n_prime as i32)
}

/// `Pr[max over n' nodes ≥ r]` (Observation 5.2).
pub fn pr_max_ge(r: u32, n_prime: usize) -> f64 {
    1.0 - pr_max_lt(r, n_prime)
}

/// Lemma 4's bound: `Pr[max > 2 log n'] ≤ 1/n'`.
pub fn lemma4_bound(n_prime: usize) -> (f64, f64) {
    let r = (2.0 * (n_prime as f64).log2()).floor() as u32;
    let actual = pr_max_ge(r + 1, n_prime);
    (actual, 1.0 / n_prime as f64)
}

/// Lemma 5's bound: `Pr[max ≤ log n' − log log n'] < 1/n'`.
pub fn lemma5_bound(n_prime: usize) -> (f64, f64) {
    let log_n = (n_prime as f64).log2();
    let r = (log_n - log_n.log2()).floor() as u32;
    let actual = pr_max_lt(r + 1, n_prime);
    (actual, 1.0 / n_prime as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn colors_are_at_least_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..10_000 {
            let c = sample_color(&mut rng);
            assert!((1..=MAX_COLOR).contains(&c));
        }
    }

    #[test]
    fn empirical_distribution_matches_geometric() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let trials = 200_000usize;
        let mut counts = [0usize; 8];
        for _ in 0..trials {
            let c = sample_color(&mut rng) as usize;
            if c <= 8 {
                counts[c - 1] += 1;
            }
        }
        for (idx, &cnt) in counts.iter().enumerate() {
            let r = idx as u32 + 1;
            let expected = pr_color_eq(r) * trials as f64;
            let tolerance = 5.0 * expected.sqrt() + 5.0;
            assert!(
                (cnt as f64 - expected).abs() < tolerance,
                "color {r}: observed {cnt}, expected {expected}"
            );
        }
    }

    #[test]
    fn observation4_identities() {
        // Pr[c >= r] = sum_{j>=r} Pr[c = j]; check a few prefixes.
        for r in 1..10u32 {
            let tail: f64 = (r..r + 60).map(pr_color_eq).sum();
            assert!((tail - pr_color_ge(r)).abs() < 1e-12);
        }
        assert_eq!(pr_color_ge(1), 1.0);
        assert!((pr_color_eq(3) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn observation5_monotonicity() {
        // Larger populations push the maximum up.
        for r in 3..10u32 {
            assert!(pr_max_ge(r, 1000) > pr_max_ge(r, 10));
        }
        // Pr[max >= 1] = 1 for any non-empty population.
        assert_eq!(pr_max_ge(1, 5), 1.0);
    }

    #[test]
    fn lemma4_and_lemma5_bounds_hold() {
        for &n in &[64usize, 256, 1024, 16384] {
            let (actual, bound) = lemma4_bound(n);
            assert!(
                actual <= bound + 1e-12,
                "Lemma 4 violated at n = {n}: {actual} > {bound}"
            );
            let (actual, bound) = lemma5_bound(n);
            assert!(
                actual <= bound + 1e-12,
                "Lemma 5 violated at n = {n}: {actual} > {bound}"
            );
        }
    }

    #[test]
    fn empirical_maximum_concentrates_around_log_n() {
        // The crux of the estimator: max color over n nodes ≈ log2 n.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 4096usize;
        let mut maxima = Vec::new();
        for _ in 0..50 {
            let max = (0..n).map(|_| sample_color(&mut rng)).max().unwrap();
            maxima.push(max);
        }
        let mean: f64 = maxima.iter().map(|&m| m as f64).sum::<f64>() / maxima.len() as f64;
        let log_n = (n as f64).log2();
        assert!(
            mean > log_n - 2.0 && mean < 2.0 * log_n + 2.0,
            "mean max color {mean} not near log n = {log_n}"
        );
    }
}
