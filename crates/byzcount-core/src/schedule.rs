//! The phase / subphase / round schedule of Algorithms 1 and 2.
//!
//! The protocol is organised in *phases* `i = 1, 2, …`; phase `i` consists of
//! `i·α_i` *subphases* (independent repetitions of the same random
//! experiment), and each subphase floods freshly drawn colors along `H` for
//! exactly `i` steps.  The repetition count `α_i` depends only on `d`, `ε`
//! and `i` (Algorithm 1, lines 4–8), so every node can compute the schedule
//! locally — no knowledge of `n` is needed, which is the whole point.
//!
//! In our engine a subphase occupies `i + 1` rounds: one round in which the
//! colors are drawn and sent, and `i` rounds in which they travel (the
//! paper folds the send into step 0; the extra bookkeeping round changes the
//! constant in front of `log³ n` but not the asymptotics, and is recorded in
//! DESIGN.md).  Two discovery rounds precede phase 1 (neighbourhood exchange
//! and reconstruction — Algorithm 2 lines 1–2).

use serde::{Deserialize, Serialize};

/// Number of engine rounds used by the neighbourhood-discovery preamble.
pub const DISCOVERY_ROUNDS: u64 = 2;

/// Where a global engine round falls within the protocol schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Position {
    /// The adjacency-exchange round (nodes broadcast their neighbour lists).
    DiscoverySend,
    /// The reconstruction round (nodes process the neighbour lists and may
    /// crash on conflicting reports).
    DiscoveryProcess,
    /// Inside a phase.
    InPhase(PhasePosition),
}

/// Position within a phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhasePosition {
    /// Phase index `i ≥ 1`.
    pub phase: u64,
    /// Subphase index `j ∈ [1, i·α_i]`.
    pub subphase: u64,
    /// Step within the subphase: 0 = draw & send colors, `t ∈ [1, i]` =
    /// flooding step `t` (colors at distance `t` arrive).
    pub step: u64,
}

impl PhasePosition {
    /// Whether this is the color-generation step of the subphase.
    pub fn is_generation_step(&self) -> bool {
        self.step == 0
    }

    /// Whether this is the last step of the subphase (where the
    /// continuation criterion is evaluated).
    pub fn is_last_step(&self) -> bool {
        self.step == self.phase
    }

    /// Whether this is the last subphase of the phase.
    pub fn is_last_subphase(&self, schedule: &Schedule) -> bool {
        self.subphase == schedule.subphases_in_phase(self.phase)
    }
}

/// The deterministic schedule shared by all nodes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    d: usize,
    epsilon: f64,
}

impl Schedule {
    /// Build the schedule for degree `d` and error parameter `ε`.
    pub fn new(d: usize, epsilon: f64) -> Self {
        assert!(d >= 4, "degree must be at least 4");
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0, 1)");
        Schedule { d, epsilon }
    }

    /// The repetition count `α_i`.
    ///
    /// The analysis (Lemma 26) needs
    /// `(1 / (d(d−1)^{i−2}))^{α_i} ≤ ε / 2^{i+1}`, i.e.
    /// `α_i ≥ (log(1/ε) + i + 1) / (log d + (i−2)·log(d−1))`.
    /// We use the smallest integer satisfying this (clamped to ≥ 1), which is
    /// equivalent to the two-branch expression in the paper's pseudocode but
    /// monotone in `1/ε` across the whole range.
    pub fn alpha(&self, phase: u64) -> u64 {
        assert!(phase >= 1);
        let d = self.d as f64;
        let i = phase as f64;
        let log_inv_eps = (1.0 / self.epsilon).log2();
        let denom = d.log2() + (i - 2.0) * (d - 1.0).log2();
        let alpha = if denom > 0.0 {
            ((log_inv_eps + i + 1.0) / denom).ceil()
        } else {
            (log_inv_eps + i + 1.0).ceil()
        };
        (alpha.max(1.0)) as u64
    }

    /// Number of subphases in phase `i` (`i · α_i`).
    pub fn subphases_in_phase(&self, phase: u64) -> u64 {
        phase * self.alpha(phase)
    }

    /// Number of engine rounds in one subphase of phase `i` (`i + 1`: one
    /// generation step plus `i` flooding steps).
    pub fn rounds_in_subphase(&self, phase: u64) -> u64 {
        phase + 1
    }

    /// Number of engine rounds in phase `i`.
    pub fn rounds_in_phase(&self, phase: u64) -> u64 {
        self.subphases_in_phase(phase) * self.rounds_in_subphase(phase)
    }

    /// Total engine rounds from the start of the run through the end of
    /// phase `p` (including the discovery preamble).
    pub fn rounds_through_phase(&self, p: u64) -> u64 {
        DISCOVERY_ROUNDS + (1..=p).map(|i| self.rounds_in_phase(i)).sum::<u64>()
    }

    /// Map a global engine round to its position in the schedule.
    pub fn locate(&self, round: u64) -> Position {
        if round == 0 {
            return Position::DiscoverySend;
        }
        if round == 1 {
            return Position::DiscoveryProcess;
        }
        let mut offset = round - DISCOVERY_ROUNDS;
        let mut phase = 1u64;
        loop {
            let phase_rounds = self.rounds_in_phase(phase);
            if offset < phase_rounds {
                let sub_len = self.rounds_in_subphase(phase);
                let subphase = offset / sub_len + 1;
                let step = offset % sub_len;
                return Position::InPhase(PhasePosition {
                    phase,
                    subphase,
                    step,
                });
            }
            offset -= phase_rounds;
            phase += 1;
        }
    }

    /// Error parameter.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Degree.
    pub fn d(&self) -> usize {
        self.d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> Schedule {
        Schedule::new(8, 0.1)
    }

    #[test]
    fn alpha_is_positive_and_small_after_phase_two() {
        let s = sched();
        for i in 1..40 {
            let a = s.alpha(i);
            assert!(a >= 1);
            if i >= 3 {
                assert!(a <= 20, "alpha_{i} = {a} unexpectedly large");
            }
        }
        // Phase 1 needs many repetitions (the denominator is tiny).
        assert!(s.alpha(1) > 5);
    }

    #[test]
    fn alpha_formula_values() {
        let s = sched();
        // Phase 2 with d = 8, ε = 0.1: ceil((log2(10)+3)/3) = ceil(2.11) = 3.
        assert_eq!(s.alpha(2), 3);
        // Phase 3: ceil((log2(10)+4)/(3 + log2 7)) = ceil(1.26) = 2.
        assert_eq!(s.alpha(3), 2);
        // Large phases: a single repetition suffices.
        assert_eq!(s.alpha(8), 1);
    }

    #[test]
    fn alpha_grows_with_smaller_epsilon() {
        let tight = Schedule::new(8, 0.01);
        let loose = Schedule::new(8, 0.3);
        for i in 1..10 {
            assert!(tight.alpha(i) >= loose.alpha(i));
        }
    }

    #[test]
    fn locate_roundtrips_through_the_schedule() {
        let s = sched();
        assert_eq!(s.locate(0), Position::DiscoverySend);
        assert_eq!(s.locate(1), Position::DiscoveryProcess);
        // Walk the first 3 phases round by round and re-derive the counts.
        let mut round = DISCOVERY_ROUNDS;
        for phase in 1..=3u64 {
            for subphase in 1..=s.subphases_in_phase(phase) {
                for step in 0..=phase {
                    match s.locate(round) {
                        Position::InPhase(p) => {
                            assert_eq!(p.phase, phase, "round {round}");
                            assert_eq!(p.subphase, subphase, "round {round}");
                            assert_eq!(p.step, step, "round {round}");
                            assert_eq!(p.is_generation_step(), step == 0);
                            assert_eq!(p.is_last_step(), step == phase);
                        }
                        other => panic!("round {round}: unexpected {other:?}"),
                    }
                    round += 1;
                }
            }
        }
        assert_eq!(round, s.rounds_through_phase(3));
    }

    #[test]
    fn total_rounds_grow_cubically_in_the_phase_index() {
        // rounds_in_phase(i) = i·α_i·(i+1) = Θ(i²) for i ≥ 3 (α_i = Θ(i) only
        // for huge i/ε; here it is ~ i/log(1/ε)), so the cumulative count is
        // Θ(p³) — the paper's O(log³ n) once p = Θ(log n).
        let s = sched();
        let r10 = s.rounds_through_phase(10) as f64;
        let r20 = s.rounds_through_phase(20) as f64;
        let ratio = r20 / r10;
        assert!(
            ratio > 5.0 && ratio < 16.0,
            "growth ratio {ratio} not ~cubic"
        );
    }

    #[test]
    fn last_subphase_detection() {
        let s = sched();
        let phase = 2;
        let last = s.subphases_in_phase(phase);
        let pos = PhasePosition {
            phase,
            subphase: last,
            step: 0,
        };
        assert!(pos.is_last_subphase(&s));
        let pos = PhasePosition {
            phase,
            subphase: last - 1,
            step: 0,
        };
        assert!(!pos.is_last_subphase(&s));
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        let _ = Schedule::new(8, 0.0);
    }
}
