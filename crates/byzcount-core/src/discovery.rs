//! Neighbourhood discovery: distinguishing `H`-edges from `L`-edges and
//! detecting lying neighbours (Algorithm 2 lines 1–2, Lemma 3, Lemma 15).
//!
//! Nodes do not know a priori which of their `G`-edges belong to the base
//! expander `H`.  During the discovery preamble every node broadcasts its
//! `G`-adjacency list; from its neighbours' lists a node `v` reconstructs the
//! structure of its `k`-ball in `H`:
//!
//! * **Reconstruction (Lemma 3).**  For `G`-neighbours `u, w` of `v`, the
//!   paper's criterion is subset containment of the intersections
//!   `I(x) = N_G(x) ∩ N_G(v)`: `u` is a descendant of `w` (w.r.t. `v`) iff
//!   `I(u) ⊊ I(w)`.  The `H`-neighbours of `v` are therefore exactly the
//!   maximal elements of the containment order, and depths follow by
//!   chaining.  The criterion is exact on locally-tree-like balls; the E7
//!   experiment measures its accuracy on real `H(n,d)` graphs.
//!
//! * **Conflict detection (Lemma 15, Figure 1).**  Adjacency is symmetric,
//!   so if neighbour `u` claims `w` as a neighbour while `w` (also a
//!   neighbour of `v`) denies it — or a neighbour's report omits `v`
//!   itself, or a neighbour stays silent — then somebody is lying and `v`
//!   crashes itself rather than risk being fed a fabricated chain.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Result of one node's neighbourhood reconstruction.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DiscoveryOutcome {
    /// The ids this node believes are its `H`-neighbours.
    pub h_neighbors: Vec<u32>,
    /// Reconstructed `H`-depth (1 ..= k) of every `G`-neighbour, aligned with
    /// the order of the input neighbour list.
    pub depths: Vec<u8>,
    /// Whether conflicting/contradictory reports were detected (Algorithm 2
    /// line 2: the node must crash).
    pub conflict: bool,
    /// Number of neighbours that never reported (treated as a conflict).
    pub missing_reports: usize,
}

/// Reconstruct the local `H`-topology of node `me` from its `G`-neighbour
/// list and the adjacency reports received from those neighbours.
///
/// `reports` maps a neighbour id to the neighbour list it claimed.
///
/// Following Lemma 3, the `H`-neighbours are taken to be the maximal
/// elements of the containment order on `I(u) = N_G(u) ∩ N_G(v)` — the
/// criterion is exact on locally-tree-like balls (the asymptotic regime) and
/// *over-approximates* the `H`-neighbourhood when short cycles blur the
/// containment order at small simulation scales.  Over-approximation is the
/// safe direction for the protocol: no true `H`-edge is lost (so flooding
/// still covers the graph); a few `L`-edges are merely admitted as extra
/// flooding edges.  Experiment E7 quantifies both error directions.
pub fn reconstruct(
    me: u32,
    my_neighbors: &[u32],
    reports: &HashMap<u32, Vec<u32>>,
) -> DiscoveryOutcome {
    let deg = my_neighbors.len();
    if deg == 0 {
        return DiscoveryOutcome::default();
    }
    // Local index of each neighbour (and of `me`, as the last bit).
    let local: HashMap<u32, usize> = my_neighbors
        .iter()
        .enumerate()
        .map(|(i, &u)| (u, i))
        .collect();
    let words = (deg + 1).div_ceil(64);
    let me_bit = deg; // index of `me` in the bitset universe

    let mut conflict = false;
    let mut missing_reports = 0usize;

    // Bitset of I(u) = (reported N_G(u) ∪ is `me` listed) ∩ (N_G(v) ∪ {v}).
    let mut inter: Vec<Vec<u64>> = vec![vec![0u64; words]; deg];
    let mut reported_sets: Vec<Option<&Vec<u32>>> = vec![None; deg];
    for (i, &u) in my_neighbors.iter().enumerate() {
        match reports.get(&u) {
            Some(list) => {
                reported_sets[i] = Some(list);
                let mut lists_me = false;
                for &x in list {
                    if x == me {
                        lists_me = true;
                        set_bit(&mut inter[i], me_bit);
                    } else if let Some(&j) = local.get(&x) {
                        set_bit(&mut inter[i], j);
                    }
                }
                if !lists_me {
                    // Adjacency is symmetric; omitting `me` is a lie.
                    conflict = true;
                }
            }
            None => {
                missing_reports += 1;
                conflict = true;
            }
        }
    }

    // Symmetry check between pairs of reporting neighbours: if u lists w but
    // w does not list u (both being our neighbours), the reports conflict.
    for (i, &u) in my_neighbors.iter().enumerate() {
        let Some(list_u) = reported_sets[i] else {
            continue;
        };
        for &w in list_u {
            if w == me {
                continue;
            }
            if let Some(&j) = local.get(&w) {
                if let Some(list_w) = reported_sets[j] {
                    if !list_w.contains(&u) {
                        conflict = true;
                    }
                }
            }
        }
    }

    // Containment order: u is deeper than w when I(u) ⊊ I(w), with the two
    // endpoints masked out of both sides.  The masking is essential: a node
    // never lists itself, so `w ∈ I(u)` but `w ∉ I(w)` (and symmetrically
    // for `u`), which would make every pair incomparable and classify the
    // whole G-neighbourhood as maximal.  H-neighbours are the maximal
    // elements; depths follow the longest containment chain.
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); deg];
    for i in 0..deg {
        for j in 0..deg {
            if i != j && is_strict_subset_ignoring(&inter[i], &inter[j], i, j) {
                dominated_by[i].push(j);
            }
        }
    }
    let mut is_maximal: Vec<bool> = dominated_by.iter().map(|d| d.is_empty()).collect();
    // Size refinement: on a tree-like ball an `H`-neighbour's intersection
    // has 2d−1 elements while a depth-2 neighbour's has only d, so requiring
    // |I| ≥ ⌈3d̂/2⌉ (d̂ = (max|I|+1)/2 estimates d) sits midway between the
    // two and cuts through the short-cycle noise that keeps the pure
    // containment order from resolving at simulation scales.  Only applied
    // when the ball actually looks like an expander ball (d̂ ≥ 3): on
    // degenerate topologies (trees, rings — where `G ≈ H` and every
    // neighbour is a true `H`-neighbour) the intersections are tiny and the
    // containment order alone is the right answer.
    let pops: Vec<u32> = inter
        .iter()
        .map(|b| b.iter().map(|w| w.count_ones()).sum())
        .collect();
    let maxp = pops.iter().copied().max().unwrap_or(0);
    if maxp >= 5 {
        let d_hat = maxp.div_ceil(2);
        // `d̂ + 3` approximates the tree midpoint ⌈3d̂/2⌉ at the simulated
        // degrees (d = 6..10) while staying gentle when short cycles inflate
        // `maxp` — the midpoint formula over-prunes there and starts missing
        // true `H`-edges, which is the one error direction flooding cannot
        // absorb.
        let thr = d_hat + 3;
        for i in 0..deg {
            is_maximal[i] = is_maximal[i] && pops[i] >= thr;
        }
    }
    let mut depths = vec![1u8; deg];
    // Longest-chain depths by relaxation; the iteration cap guards against
    // the (non-transitive) artefacts short cycles can produce at small n.
    for _ in 0..deg {
        let mut changed = false;
        for i in 0..deg {
            if dominated_by[i].is_empty() {
                continue;
            }
            let deepest_parent = dominated_by[i]
                .iter()
                .map(|&j| depths[j])
                .max()
                .unwrap_or(0);
            let want = deepest_parent.saturating_add(1);
            if depths[i] != want {
                depths[i] = want;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut h_neighbors: Vec<u32> = (0..deg)
        .filter(|&i| is_maximal[i])
        .map(|i| my_neighbors[i])
        .collect();
    h_neighbors.sort_unstable();

    DiscoveryOutcome {
        h_neighbors,
        depths,
        conflict,
        missing_reports,
    }
}

#[inline]
fn set_bit(bits: &mut [u64], idx: usize) {
    bits[idx / 64] |= 1u64 << (idx % 64);
}

/// `a ⊊ b` for bitsets of equal width, ignoring positions `skip1`/`skip2`
/// (the two nodes whose intersections are being compared — see
/// [`reconstruct`]).
fn is_strict_subset_ignoring(a: &[u64], b: &[u64], skip1: usize, skip2: usize) -> bool {
    let mut equal = true;
    for (idx, (&wa, &wb)) in a.iter().zip(b.iter()).enumerate() {
        let mut mask = u64::MAX;
        if skip1 / 64 == idx {
            mask &= !(1u64 << (skip1 % 64));
        }
        if skip2 / 64 == idx {
            mask &= !(1u64 << (skip2 % 64));
        }
        let (wa, wb) = (wa & mask, wb & mask);
        if wa & !wb != 0 {
            return false;
        }
        if wa != wb {
            equal = false;
        }
    }
    !equal
}

/// Accuracy of a reconstruction against ground truth, for experiment E7.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ReconstructionAccuracy {
    /// True `H`-neighbours correctly recovered.
    pub true_positives: usize,
    /// Nodes reported as `H`-neighbours that are not.
    pub false_positives: usize,
    /// True `H`-neighbours missed.
    pub false_negatives: usize,
}

impl ReconstructionAccuracy {
    /// Compare a reconstruction against the true `H`-neighbour set.
    pub fn compare(reconstructed: &[u32], truth: &[u32]) -> Self {
        let truth_set: std::collections::HashSet<u32> = truth.iter().copied().collect();
        let recon_set: std::collections::HashSet<u32> = reconstructed.iter().copied().collect();
        let true_positives = recon_set.intersection(&truth_set).count();
        ReconstructionAccuracy {
            true_positives,
            false_positives: recon_set.len() - true_positives,
            false_negatives: truth_set.len() - true_positives,
        }
    }

    /// True when the reconstruction is exactly right.
    pub fn is_exact(&self) -> bool {
        self.false_positives == 0 && self.false_negatives == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_graph::{NodeId, SmallWorldNetwork};

    /// Build the honest report map for node `v` of a real network.
    fn honest_reports(net: &SmallWorldNetwork, v: NodeId) -> HashMap<u32, Vec<u32>> {
        net.g_neighbors(v)
            .iter()
            .map(|&u| (u, net.g_neighbors(NodeId(u)).to_vec()))
            .collect()
    }

    #[test]
    fn honest_reconstruction_never_loses_h_edges() {
        // Lemma 3 (empirically): with honest reports the containment
        // criterion never misses true H-neighbours — over-approximation is
        // the only error mode at small n (short cycles make some L-edges
        // look maximal too).  Missing H-edges would break the flooding;
        // extra edges only make it slightly denser.  Experiment E7 tracks
        // both error directions across n.
        let net = SmallWorldNetwork::generate_seeded(1000, 6, 11).unwrap();
        let mut missed_h_edges = 0usize;
        let mut total_h_edges = 0usize;
        let sample = 60usize;
        for i in 0..sample {
            let v = NodeId::from_index(i);
            let reports = honest_reports(&net, v);
            let out = reconstruct(v.0, net.g_neighbors(v), &reports);
            assert!(!out.conflict, "honest reports must never conflict");
            let mut truth: Vec<u32> = net.h_neighbors(v).to_vec();
            truth.dedup();
            let acc = ReconstructionAccuracy::compare(&out.h_neighbors, &truth);
            missed_h_edges += acc.false_negatives;
            total_h_edges += truth.len();
        }
        assert!(
            (missed_h_edges as f64) <= 0.05 * total_h_edges as f64,
            "too many true H-edges missed: {missed_h_edges}/{total_h_edges}"
        );
    }

    #[test]
    fn reconstruction_depths_are_within_k() {
        let net = SmallWorldNetwork::generate_seeded(300, 6, 13).unwrap();
        let v = NodeId(5);
        let reports = honest_reports(&net, v);
        let out = reconstruct(v.0, net.g_neighbors(v), &reports);
        assert_eq!(out.depths.len(), net.g_neighbors(v).len());
        // Depths should correlate with the true H-distance: check they never
        // exceed the G-degree bound and that depth-1 nodes dominate the true
        // H-neighbour set.
        for &d in &out.depths {
            assert!(d >= 1);
        }
    }

    #[test]
    fn missing_report_is_a_conflict() {
        let net = SmallWorldNetwork::generate_seeded(200, 6, 17).unwrap();
        let v = NodeId(0);
        let mut reports = honest_reports(&net, v);
        let victim = net.g_neighbors(v)[0];
        reports.remove(&victim);
        let out = reconstruct(v.0, net.g_neighbors(v), &reports);
        assert!(out.conflict);
        assert_eq!(out.missing_reports, 1);
    }

    #[test]
    fn suppressing_a_real_neighbor_is_detected() {
        // The Figure-1 attack: a lying node omits one of its real neighbours
        // from its report; the omitted node's truthful report exposes it.
        let net = SmallWorldNetwork::generate_seeded(200, 6, 19).unwrap();
        let v = NodeId(3);
        let mut reports = honest_reports(&net, v);
        let liar = net.g_neighbors(v)[0];
        // Find a neighbour of the liar that is also a neighbour of v.
        let liar_list = reports.get(&liar).unwrap().clone();
        let shared = liar_list
            .iter()
            .copied()
            .find(|x| *x != v.0 && net.g_neighbors(v).contains(x))
            .expect("k >= 2 guarantees shared neighbours");
        let lying_report: Vec<u32> = liar_list.into_iter().filter(|&x| x != shared).collect();
        reports.insert(liar, lying_report);
        let out = reconstruct(v.0, net.g_neighbors(v), &reports);
        assert!(
            out.conflict,
            "the suppressed neighbour's report must expose the lie"
        );
    }

    #[test]
    fn omitting_the_receiver_is_detected() {
        let net = SmallWorldNetwork::generate_seeded(200, 6, 23).unwrap();
        let v = NodeId(7);
        let mut reports = honest_reports(&net, v);
        let liar = net.g_neighbors(v)[2];
        let lying_report: Vec<u32> = reports
            .get(&liar)
            .unwrap()
            .iter()
            .copied()
            .filter(|&x| x != v.0)
            .collect();
        reports.insert(liar, lying_report);
        let out = reconstruct(v.0, net.g_neighbors(v), &reports);
        assert!(out.conflict);
    }

    #[test]
    fn empty_neighborhood_is_harmless() {
        let out = reconstruct(0, &[], &HashMap::new());
        assert!(!out.conflict);
        assert!(out.h_neighbors.is_empty());
    }

    #[test]
    fn accuracy_comparison_counts_correctly() {
        let acc = ReconstructionAccuracy::compare(&[1, 2, 3], &[2, 3, 4]);
        assert_eq!(acc.true_positives, 2);
        assert_eq!(acc.false_positives, 1);
        assert_eq!(acc.false_negatives, 1);
        assert!(!acc.is_exact());
        assert!(ReconstructionAccuracy::compare(&[5, 6], &[6, 5]).is_exact());
    }

    #[test]
    fn strict_subset_logic() {
        // Plain subset behaviour when the skipped bits are outside the sets.
        assert!(is_strict_subset_ignoring(&[0b0011], &[0b0111], 60, 61));
        assert!(!is_strict_subset_ignoring(&[0b0011], &[0b0011], 60, 61));
        assert!(!is_strict_subset_ignoring(&[0b1000], &[0b0111], 60, 61));
        // The endpoint bits are invisible to the comparison: {0,1} vs {1,2}
        // with bits 0 and 2 masked is {1} vs {1} — not strict.
        assert!(!is_strict_subset_ignoring(&[0b0011], &[0b0110], 0, 2));
        // {0,1} ⊊ {1,2,3} once bits 0 and 2 are masked ({1} ⊊ {1,3}).
        assert!(is_strict_subset_ignoring(&[0b0011], &[0b1110], 0, 2));
    }
}
