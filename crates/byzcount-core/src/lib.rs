//! # byzcount-core
//!
//! The counting protocols of *"Network Size Estimation in Small-World
//! Networks under Byzantine Faults"* (Chatterjee, Pandurangan, Robinson):
//!
//! * [`node::CountingNode`] — the per-node state machine, in its
//!   [basic](node::CountingNode::basic_variant) (Algorithm 1) and
//!   [Byzantine-tolerant](node::CountingNode::byzantine_variant)
//!   (Algorithm 2) variants;
//! * [`params::ProtocolParams`] — the analytical constants (`a`, `b`, the
//!   level sizes `l_r`, the continuation thresholds, the Byzantine budget
//!   `n^{1−δ}`);
//! * [`schedule::Schedule`] — the phase / subphase / round structure and the
//!   repetition counts `α_i`;
//! * [`color`] — geometric colors and their distribution facts;
//! * [`discovery`] — neighbourhood reconstruction (Lemma 3) and the
//!   crash-on-conflict rule (Algorithm 2 line 2);
//! * [`runner`] — one-call execution over any [`netsim_runtime::Topology`]
//!   with any [`netsim_runtime::Adversary`];
//! * [`outcome`] — the Definition-1 evaluation of a run;
//! * [`sim`] — the unified simulation API: versioned, serializable
//!   [`RunSpec`](sim::RunSpec)s, the [`Simulation`] builder, the common
//!   [`Estimator`](sim::Estimator) interface, and parallel multi-seed /
//!   multi-size batches with aggregated statistics.
//!
//! The builder is the preferred entry point (`.run_core()` covers the
//! counting workloads in this crate; the `byzcount` facade's `.run()` adds
//! the baselines and every adversary):
//!
//! ```
//! use byzcount_core::sim::{Simulation, TopologySpec, WorkloadSpec};
//!
//! let report = Simulation::builder()
//!     .topology(TopologySpec::SmallWorld { n: 256, d: 8 })
//!     .workload(WorkloadSpec::Basic)
//!     .seed(42)
//!     .build()
//!     .unwrap()
//!     .run_core()
//!     .unwrap();
//! assert!(report.good_fraction().unwrap() > 0.9);
//! assert!(report.completed);
//! ```
//!
//! The direct runners remain for protocol-level work:
//!
//! ```
//! use byzcount_core::{run_basic_counting, ProtocolParams};
//! use netsim_graph::SmallWorldNetwork;
//!
//! let net = SmallWorldNetwork::generate_seeded(256, 8, 1).unwrap();
//! let params = ProtocolParams::for_network_default_expansion(&net, 0.6, 0.1);
//! let outcome = run_basic_counting(&net, &params, 42);
//! let eval = outcome.evaluate();
//! assert!(eval.good_fraction_of_honest > 0.9);
//! ```

pub mod color;
pub mod discovery;
pub mod messages;
pub mod node;
pub mod outcome;
pub mod params;
pub mod runner;
pub mod schedule;
pub mod sim;

pub use color::{sample_color, Color, MAX_COLOR};
pub use discovery::{DiscoveryOutcome, ReconstructionAccuracy};
pub use messages::CountingMessage;
pub use node::{CountingNode, Decision};
pub use outcome::{CountingOutcome, EstimateEvaluation};
pub use params::ProtocolParams;
pub use runner::{
    round_cap, run_basic_counting, run_basic_counting_on, run_basic_counting_on_with,
    run_basic_counting_with, run_counting_custom, run_counting_faulty, run_counting_on,
    run_counting_with,
};
pub use schedule::{PhasePosition, Position, Schedule, DISCOVERY_ROUNDS};
pub use sim::{Simulation, SimulationBuilder};
