//! The per-node state machine implementing Algorithm 1 (basic counting) and
//! Algorithm 2 (Byzantine counting).
//!
//! Both algorithms share the same skeleton; the Byzantine variant
//! additionally (a) crashes on conflicting neighbourhood reports during
//! discovery and (b) verifies the provenance of every color received after
//! step `k−1` of a subphase (Algorithm 2 line 15 / Lemma 16).  The
//! `CountingNode::verify` flag selects the variant (see [`CountingNode::is_verifying`]).
//!
//! ## Round anatomy
//!
//! * **Discovery (2 rounds).**  Broadcast the `G`-adjacency list; process the
//!   neighbours' lists, reconstruct the `H`-neighbour set (Lemma 3) and, in
//!   the Byzantine variant, crash on any inconsistency.
//! * **Subphase step 0.**  Non-decided nodes draw a geometric color and flood
//!   it along their `H`-edges (plus an audit announcement to all
//!   `G`-neighbours).
//! * **Subphase steps `1..=i`.**  Process arriving floods: discard floods not
//!   arriving over a reconstructed `H`-edge, verify provenance (Byzantine
//!   variant), track the per-round maxima, and forward a newly learned
//!   maximum (with its updated provenance path) if the subphase has steps
//!   remaining.
//! * **Last step of a subphase.**  Evaluate the continuation criterion
//!   (Algorithm 2 line 18): the maximum color seen in the final step must
//!   exceed every earlier step's maximum *and* the phase threshold.
//! * **Last subphase of a phase.**  If no subphase of the phase produced a
//!   continuation signal, decide the current phase index as the estimate of
//!   `log n` — but keep forwarding other nodes' tokens, as the paper
//!   requires.

use crate::color::{sample_color, Color};
use crate::discovery::{reconstruct, DiscoveryOutcome};
use crate::messages::CountingMessage;
use crate::params::ProtocolParams;
use crate::schedule::{PhasePosition, Position, Schedule};
use netsim_runtime::{Action, Envelope, NodeContext, Outbox, Protocol};
use rand_chacha::ChaCha8Rng;

/// The estimate a node decides: the phase index it terminated in (a
/// constant-factor estimate of `log₂ n`), plus diagnostic context.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// The terminating phase, i.e. the node's estimate of `log n`.
    pub phase: u64,
}

/// Protocol outputs cross the shard channel in the distributed engine's
/// final `Done` frame, so the decision is a wire type.
impl netsim_runtime::wire::Wire for Decision {
    fn encode(&self, out: &mut Vec<u8>) {
        self.phase.encode(out);
    }
    fn decode(
        r: &mut netsim_runtime::wire::Reader<'_>,
    ) -> Result<Self, netsim_runtime::wire::WireError> {
        Ok(Decision {
            phase: u64::decode(r)?,
        })
    }
}

/// Per-node protocol state.
#[derive(Clone, Debug)]
pub struct CountingNode {
    params: ProtocolParams,
    schedule: Schedule,
    /// Byzantine-tolerant variant (Algorithm 2) when true; Algorithm 1
    /// otherwise.
    verify: bool,
    /// Reconstructed `H`-neighbours (sorted).
    h_neighbors: Vec<u32>,
    /// Diagnostic copy of the discovery outcome.
    reconstruction: Option<DiscoveryOutcome>,
    /// The highest color this node has flooded in the current subphase
    /// (its own color or a forwarded maximum).
    max_sent: Color,
    /// Maximum verified color received in steps `1..t−1` of the current
    /// subphase.
    prefix_max: Color,
    /// Whether any subphase of the current phase satisfied the continuation
    /// criterion.
    phase_continue: bool,
    /// Audit log for the current subphase, flattened for the hot path:
    /// slot `neighbour_pos · audit_stride + sending_step` holds the highest
    /// color the `G`-neighbour at `neighbour_pos` (its index in the sorted
    /// neighbour list) announced forwarding in that step; `0` = nothing
    /// announced.  Cleared with its capacity kept at every generation step
    /// — this replaces a per-subphase `HashMap` whose per-audit hashing
    /// dominated the verifying variant's message processing.
    audit_log: Vec<Color>,
    /// Sending-step slots per neighbour in `audit_log` (steps of the
    /// current subphase; `0` until the first generation step).
    audit_stride: usize,
    /// The phase this node decided in (if any).
    decided_phase: Option<u64>,
}

impl CountingNode {
    /// Create a node for the Byzantine counting protocol (Algorithm 2).
    pub fn byzantine_variant(params: ProtocolParams) -> Self {
        Self::new(params, true)
    }

    /// Create a node for the basic counting protocol (Algorithm 1).
    pub fn basic_variant(params: ProtocolParams) -> Self {
        Self::new(params, false)
    }

    fn new(params: ProtocolParams, verify: bool) -> Self {
        CountingNode {
            params,
            schedule: Schedule::new(params.d, params.epsilon),
            verify,
            h_neighbors: Vec::new(),
            reconstruction: None,
            max_sent: 0,
            prefix_max: 0,
            phase_continue: false,
            audit_log: Vec::new(),
            audit_stride: 0,
            decided_phase: None,
        }
    }

    /// Lay out the audit log for a subphase of `phase` (sending steps
    /// `0..=phase − 1` — audits are logged for step `t − 1` at flooding
    /// step `t ≤ phase`) over `neighbor_count` neighbours, zeroing every
    /// slot while keeping the allocation.
    fn reset_audit_log(&mut self, neighbor_count: usize, phase: u64) {
        self.audit_stride = phase as usize;
        self.audit_log.clear();
        self.audit_log.resize(neighbor_count * self.audit_stride, 0);
    }

    /// Record that `G`-neighbour `from` announced forwarding `color` in
    /// flooding step `sending_step` (max-merging repeated announcements).
    fn log_audit(&mut self, neighbors: &[u32], from: u32, sending_step: u64, color: Color) {
        if (sending_step as usize) < self.audit_stride {
            if let Ok(pos) = neighbors.binary_search(&from) {
                let slot = pos * self.audit_stride + sending_step as usize;
                if let Some(entry) = self.audit_log.get_mut(slot) {
                    *entry = (*entry).max(color);
                }
            }
        }
    }

    /// The highest color `relay` (at `relay_pos` in the sorted neighbour
    /// list) announced for `sending_step`; `0` when nothing was logged.
    fn audited_color(&self, relay_pos: usize, sending_step: u64) -> Color {
        if (sending_step as usize) < self.audit_stride {
            self.audit_log
                .get(relay_pos * self.audit_stride + sending_step as usize)
                .copied()
                .unwrap_or(0)
        } else {
            0
        }
    }

    /// The protocol parameters.
    pub fn params(&self) -> &ProtocolParams {
        &self.params
    }

    /// The schedule this node follows.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Whether this node runs the verifying (Byzantine) variant.
    pub fn is_verifying(&self) -> bool {
        self.verify
    }

    /// The reconstructed `H`-neighbour list (empty before discovery).
    pub fn reconstructed_h_neighbors(&self) -> &[u32] {
        &self.h_neighbors
    }

    /// The full discovery outcome (None before discovery).
    pub fn discovery_outcome(&self) -> Option<&DiscoveryOutcome> {
        self.reconstruction.as_ref()
    }

    /// The phase this node decided in, if it has decided.
    pub fn decided_phase(&self) -> Option<u64> {
        self.decided_phase
    }

    // ------------------------------------------------------------------
    // Discovery
    // ------------------------------------------------------------------

    fn discovery_send(
        &mut self,
        ctx: &NodeContext<'_>,
        outbox: &mut Outbox<CountingMessage>,
    ) -> Action<Decision> {
        let report = CountingMessage::Adjacency {
            neighbors: ctx.neighbors.to_vec(),
        };
        outbox.broadcast(ctx.neighbors.iter(), report);
        Action::Continue
    }

    fn discovery_process(
        &mut self,
        ctx: &NodeContext<'_>,
        inbox: &[Envelope<CountingMessage>],
    ) -> Action<Decision> {
        use std::collections::HashMap;
        let mut reports: HashMap<u32, Vec<u32>> = HashMap::with_capacity(inbox.len());
        for env in inbox {
            if let CountingMessage::Adjacency { neighbors } = &env.payload {
                reports.insert(env.from.0, neighbors.clone());
            }
        }
        let outcome = reconstruct(ctx.id.0, ctx.neighbors, &reports);
        let conflict = outcome.conflict;
        self.h_neighbors = outcome.h_neighbors.clone();
        self.h_neighbors.sort_unstable();
        self.reconstruction = Some(outcome);
        if self.verify && conflict {
            // Algorithm 2 line 2: crash on contradictory neighbourhood data.
            return Action::Crash;
        }
        Action::Continue
    }

    // ------------------------------------------------------------------
    // Phases
    // ------------------------------------------------------------------

    fn flood(
        &mut self,
        ctx: &NodeContext<'_>,
        outbox: &mut Outbox<CountingMessage>,
        color: Color,
        path: Vec<u32>,
    ) {
        let flood = CountingMessage::Flood { color, path };
        outbox.broadcast(self.h_neighbors.iter(), flood);
        // Announce what we forwarded so our G-neighbours can audit claims
        // that reference us.  Only the Byzantine-tolerant variant consumes
        // audits, so the basic variant does not pay for them.
        if self.verify {
            outbox.broadcast(ctx.neighbors.iter(), CountingMessage::Audit { color });
        }
    }

    fn generation_step(
        &mut self,
        ctx: &NodeContext<'_>,
        pos: PhasePosition,
        outbox: &mut Outbox<CountingMessage>,
        rng: &mut ChaCha8Rng,
    ) -> Action<Decision> {
        // Reset per-subphase state.
        self.reset_audit_log(ctx.neighbors.len(), pos.phase);
        self.prefix_max = 0;
        self.max_sent = 0;
        if pos.subphase == 1 {
            self.phase_continue = false;
        }
        if self.decided_phase.is_none() {
            let color = sample_color(rng);
            self.max_sent = color;
            self.flood(ctx, outbox, color, Vec::new());
        }
        Action::Continue
    }

    /// Provenance verification (Algorithm 2 line 15 realised as
    /// path-attestation; see Lemma 16).  `step` is the flooding step at
    /// which the color arrived.
    fn verify_color(&self, ctx: &NodeContext<'_>, color: Color, path: &[u32], step: u64) -> bool {
        let k = self.params.k as u64;
        // Colors arriving within the first k−1 steps may have originated
        // anywhere in the sender's (k−1)-ball; Lemma 16 shows this is the
        // only window in which the adversary can inject values, and the
        // analysis of Lemma 17 absorbs it.
        if step < k {
            return true;
        }
        // Beyond that, the message must name its last k−1 relays and every
        // one of them must have announced forwarding this color at the
        // matching step.
        if (path.len() as u64) < k - 1 {
            return false;
        }
        for (idx, &relay) in path.iter().take((k - 1) as usize).enumerate() {
            let j = idx as u64 + 1; // hops behind the sender
            let sending_step = step - 1 - j;
            if relay == ctx.id.0 {
                // We are on the claimed path ourselves: we know what we sent.
                if self.max_sent < color {
                    return false;
                }
                continue;
            }
            let Ok(relay_pos) = ctx.neighbors.binary_search(&relay) else {
                // A relay within B_H(sender, k−1) is necessarily one of our
                // G-neighbours; an unknown relay means a fabricated path.
                return false;
            };
            if self.audited_color(relay_pos, sending_step) < color {
                return false;
            }
        }
        true
    }

    fn flooding_step(
        &mut self,
        ctx: &NodeContext<'_>,
        pos: PhasePosition,
        inbox: &[Envelope<CountingMessage>],
        outbox: &mut Outbox<CountingMessage>,
    ) -> Action<Decision> {
        let step = pos.step;
        // 1. Log audits (they were sent in the previous engine round, i.e.
        //    flooding step `step − 1`).
        for env in inbox {
            if let CountingMessage::Audit { color } = env.payload {
                self.log_audit(ctx.neighbors, env.from.0, step - 1, color);
            }
        }
        // 2. Process floods arriving over (reconstructed) H-edges.
        let mut best: Color = 0;
        let mut best_origin: Option<(u32, &[u32])> = None;
        for env in inbox {
            if let CountingMessage::Flood { color, path } = &env.payload {
                if self.h_neighbors.binary_search(&env.from.0).is_err() {
                    // Floods travel along H only; anything else is ignored.
                    continue;
                }
                if self.verify && !self.verify_color(ctx, *color, path, step) {
                    continue;
                }
                if *color > best {
                    best = *color;
                    best_origin = Some((env.from.0, path.as_slice()));
                }
            }
        }
        // 3. Forward a newly learned maximum if the subphase still has steps
        //    left for it to travel.
        if best > self.max_sent && step < pos.phase {
            if let Some((from, path)) = best_origin {
                let mut new_path = Vec::with_capacity(self.params.k.saturating_sub(1));
                new_path.push(from);
                for &p in path.iter().take(self.params.k.saturating_sub(2)) {
                    new_path.push(p);
                }
                self.max_sent = best;
                self.flood(ctx, outbox, best, new_path);
            }
        }
        // 4. Criterion bookkeeping.
        if pos.is_last_step() {
            if self.decided_phase.is_none() {
                let threshold = self.params.continue_threshold(pos.phase);
                if best as f64 > threshold && best > self.prefix_max {
                    self.phase_continue = true;
                }
                if pos.is_last_subphase(&self.schedule) && !self.phase_continue {
                    self.decided_phase = Some(pos.phase);
                    return Action::Decide(Decision { phase: pos.phase });
                }
            }
        } else {
            self.prefix_max = self.prefix_max.max(best);
        }
        Action::Continue
    }
}

impl Protocol for CountingNode {
    type Message = CountingMessage;
    type Output = Decision;

    fn step(
        &mut self,
        ctx: &NodeContext<'_>,
        inbox: &[Envelope<CountingMessage>],
        outbox: &mut Outbox<CountingMessage>,
        rng: &mut ChaCha8Rng,
    ) -> Action<Decision> {
        match self.schedule.locate(ctx.round) {
            Position::DiscoverySend => self.discovery_send(ctx, outbox),
            Position::DiscoveryProcess => self.discovery_process(ctx, inbox),
            Position::InPhase(pos) => {
                if pos.is_generation_step() {
                    self.generation_step(ctx, pos, outbox, rng)
                } else {
                    self.flooding_step(ctx, pos, inbox, outbox)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_graph::NodeId;
    use rand::SeedableRng;

    fn params() -> ProtocolParams {
        ProtocolParams::new(8, 3, 0.6, 0.1, 1.0)
    }

    fn ctx<'a>(neighbors: &'a [u32], round: u64) -> NodeContext<'a> {
        NodeContext {
            id: NodeId(0),
            round,
            neighbors,
            decided: false,
        }
    }

    #[test]
    fn node_construction_variants() {
        let byz = CountingNode::byzantine_variant(params());
        let basic = CountingNode::basic_variant(params());
        assert!(byz.is_verifying());
        assert!(!basic.is_verifying());
        assert!(byz.decided_phase().is_none());
    }

    #[test]
    fn discovery_send_broadcasts_adjacency() {
        let mut node = CountingNode::byzantine_variant(params());
        let neighbors = [1u32, 2, 3];
        let mut outbox = Outbox::new();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let action = node.step(&ctx(&neighbors, 0), &[], &mut outbox, &mut rng);
        assert_eq!(action, Action::Continue);
        assert_eq!(outbox.len(), 3);
    }

    #[test]
    fn verifying_node_crashes_on_missing_reports() {
        let mut node = CountingNode::byzantine_variant(params());
        let neighbors = [1u32, 2, 3];
        let mut outbox = Outbox::new();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        // Round 1 with an empty inbox: every neighbour failed to report.
        let action = node.step(&ctx(&neighbors, 1), &[], &mut outbox, &mut rng);
        assert_eq!(action, Action::Crash);
    }

    #[test]
    fn basic_node_tolerates_missing_reports() {
        let mut node = CountingNode::basic_variant(params());
        let neighbors = [1u32, 2, 3];
        let mut outbox = Outbox::new();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let action = node.step(&ctx(&neighbors, 1), &[], &mut outbox, &mut rng);
        assert_eq!(action, Action::Continue);
    }

    #[test]
    fn verify_color_accepts_early_and_rejects_unattested_late_colors() {
        let mut node = CountingNode::byzantine_variant(params());
        node.h_neighbors = vec![1, 2];
        let neighbors = [1u32, 2, 3, 4];
        let c = ctx(&neighbors, 10);
        // Early steps (step < k = 3) are accepted unconditionally.
        assert!(node.verify_color(&c, 50, &[], 1));
        assert!(node.verify_color(&c, 50, &[], 2));
        // Step 3 requires a path of length k−1 = 2 with matching audits.
        assert!(!node.verify_color(&c, 50, &[], 3));
        assert!(
            !node.verify_color(&c, 50, &[3, 4], 3),
            "no audits logged yet"
        );
        // Log audits that corroborate the path: relay 3 sent at step 1,
        // relay 4 (the origin) at step 0.
        node.reset_audit_log(neighbors.len(), 3);
        node.log_audit(&neighbors, 3, 1, 50);
        node.log_audit(&neighbors, 4, 0, 50);
        assert!(node.verify_color(&c, 50, &[3, 4], 3));
        // A higher color than was attested is rejected.
        assert!(!node.verify_color(&c, 51, &[3, 4], 3));
        // A relay outside the G-neighbourhood is rejected.
        assert!(!node.verify_color(&c, 50, &[9, 4], 3));
    }

    #[test]
    fn generation_step_floods_own_color_over_h_edges_only() {
        let mut node = CountingNode::byzantine_variant(params());
        node.h_neighbors = vec![1, 2];
        let neighbors = [1u32, 2, 3, 4, 5];
        let mut outbox = Outbox::new();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let pos = PhasePosition {
            phase: 2,
            subphase: 1,
            step: 0,
        };
        let action = node.generation_step(&ctx(&neighbors, 2), pos, &mut outbox, &mut rng);
        assert_eq!(action, Action::Continue);
        // 2 floods (H-neighbours) + 5 audits (all G-neighbours).
        assert_eq!(outbox.len(), 2 + 5);
        assert!(node.max_sent >= 1);
    }

    #[test]
    fn flooding_step_ignores_floods_from_non_h_neighbors() {
        let mut node = CountingNode::basic_variant(params());
        node.h_neighbors = vec![1];
        let neighbors = [1u32, 2];
        let mut outbox = Outbox::new();
        let pos = PhasePosition {
            phase: 3,
            subphase: 1,
            step: 1,
        };
        let inbox = vec![
            Envelope::new(
                NodeId(2),
                NodeId(0),
                CountingMessage::Flood {
                    color: 40,
                    path: vec![],
                },
            ),
            Envelope::new(
                NodeId(1),
                NodeId(0),
                CountingMessage::Flood {
                    color: 5,
                    path: vec![],
                },
            ),
        ];
        node.flooding_step(&ctx(&neighbors, 3), pos, &inbox, &mut outbox);
        // The color 40 came over an L-edge and must be ignored; 5 is
        // forwarded (2 floods to H-neighbours + audits).
        assert_eq!(node.max_sent, 5);
    }

    #[test]
    fn decision_fires_only_without_a_continue_signal() {
        let p = params();
        let schedule = Schedule::new(p.d, p.epsilon);
        let mut node = CountingNode::basic_variant(p);
        node.h_neighbors = vec![1];
        let neighbors = [1u32];
        // Jump straight to the last step of the last subphase of phase 1
        // with an empty inbox: no continue signal → decide phase 1.
        let last_subphase = schedule.subphases_in_phase(1);
        let pos = PhasePosition {
            phase: 1,
            subphase: last_subphase,
            step: 1,
        };
        let mut outbox = Outbox::new();
        let action = node.flooding_step(&ctx(&neighbors, 99), pos, &[], &mut outbox);
        assert_eq!(action, Action::Decide(Decision { phase: 1 }));
        assert_eq!(node.decided_phase(), Some(1));
    }

    #[test]
    fn high_color_in_last_round_prevents_decision() {
        let p = params();
        let schedule = Schedule::new(p.d, p.epsilon);
        let mut node = CountingNode::basic_variant(p);
        node.h_neighbors = vec![1];
        let neighbors = [1u32];
        let last_subphase = schedule.subphases_in_phase(1);
        let pos = PhasePosition {
            phase: 1,
            subphase: last_subphase,
            step: 1,
        };
        let inbox = vec![Envelope::new(
            NodeId(1),
            NodeId(0),
            CountingMessage::Flood {
                color: 10,
                path: vec![],
            },
        )];
        let mut outbox = Outbox::new();
        let action = node.flooding_step(&ctx(&neighbors, 99), pos, &inbox, &mut outbox);
        assert_eq!(action, Action::Continue);
        assert!(node.decided_phase().is_none());
    }
}
