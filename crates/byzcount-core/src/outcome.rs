//! Run outcomes and the Definition-1 evaluation of estimate quality.
//!
//! A run of the counting protocol yields, for every node, either a crash, no
//! decision (the round cap was hit), or a decided phase index — the node's
//! estimate of `log n`.  [`CountingOutcome::evaluate`] turns this into the
//! quantities Theorem 1 talks about: the fraction of honest nodes holding a
//! constant-factor estimate of `log n`, the achieved approximation factors,
//! and the honest casualties (crashed or undecided nodes).

use crate::params::ProtocolParams;
use netsim_runtime::RunMetrics;
use serde::{Deserialize, Serialize};

/// The complete result of one protocol execution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CountingOutcome {
    /// Network size (ground truth, used only for evaluation).
    pub n: usize,
    /// Per-node decided phase (None = crashed or never decided).
    pub estimates: Vec<Option<u64>>,
    /// Round at which each node decided.
    pub decided_round: Vec<Option<u64>>,
    /// Per-node crash flag.
    pub crashed: Vec<bool>,
    /// Which nodes were Byzantine.
    pub byzantine: Vec<bool>,
    /// Parameters the run used.
    pub params: ProtocolParams,
    /// Engine metrics (rounds, messages, message sizes).
    pub metrics: RunMetrics,
    /// Whether every honest node decided or crashed before the round cap.
    pub completed: bool,
}

/// Aggregated estimate quality (the empirical face of Theorem 1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EstimateEvaluation {
    /// Number of honest nodes.
    pub honest_total: usize,
    /// Honest nodes that decided an estimate.
    pub honest_decided: usize,
    /// Honest nodes that crashed.
    pub honest_crashed: usize,
    /// Honest nodes whose estimate is within the accepted factor of the
    /// reference phase (see [`CountingOutcome::evaluate_with_factor`]).
    pub honest_good: usize,
    /// `honest_good / honest_total`.
    pub good_fraction_of_honest: f64,
    /// The reference phase `i*` with `l_{i*−1} ≈ log₂ n` (what a perfectly
    /// calibrated node would decide).
    pub reference_phase: f64,
    /// Mean decided phase over honest deciders.
    pub mean_estimate: f64,
    /// Minimum decided phase over honest deciders.
    pub min_estimate: u64,
    /// Maximum decided phase over honest deciders.
    pub max_estimate: u64,
    /// Empirical approximation factor: `max_estimate / min_estimate`
    /// (1.0 when every honest node agrees).
    pub estimate_spread: f64,
    /// Total rounds of the run.
    pub rounds: u64,
}

impl CountingOutcome {
    /// Evaluate with the default acceptance factor of 2 (an estimate is
    /// "good" if it lies within a factor 2 of the reference phase).
    pub fn evaluate(&self) -> EstimateEvaluation {
        self.evaluate_with_factor(2.0)
    }

    /// Evaluate estimate quality.
    ///
    /// An honest node's estimate `L` (its decided phase) is *good* when
    /// `i*/factor ≤ L ≤ i*·factor`, where `i*` is the phase at which the
    /// tree-like ball boundary reaches `n` nodes
    /// ([`ProtocolParams::expected_decision_phase`]).  Because `d` is a
    /// constant, this is the same notion as Definition 1's
    /// `c₁·log n ≤ L ≤ c₂·log n` up to the choice of constants.
    pub fn evaluate_with_factor(&self, factor: f64) -> EstimateEvaluation {
        assert!(factor >= 1.0, "acceptance factor must be at least 1");
        let reference = self.params.expected_decision_phase(self.n).max(1.0);
        let mut eval = EstimateEvaluation {
            reference_phase: reference,
            rounds: self.metrics.rounds,
            min_estimate: u64::MAX,
            ..Default::default()
        };
        let mut sum = 0.0f64;
        for i in 0..self.estimates.len() {
            if self.byzantine[i] {
                continue;
            }
            eval.honest_total += 1;
            if self.crashed[i] {
                eval.honest_crashed += 1;
                continue;
            }
            let Some(est) = self.estimates[i] else {
                continue;
            };
            eval.honest_decided += 1;
            sum += est as f64;
            eval.min_estimate = eval.min_estimate.min(est);
            eval.max_estimate = eval.max_estimate.max(est);
            let lo = reference / factor;
            let hi = reference * factor;
            if (est as f64) >= lo && (est as f64) <= hi {
                eval.honest_good += 1;
            }
        }
        if eval.honest_decided == 0 {
            eval.min_estimate = 0;
        }
        eval.mean_estimate = if eval.honest_decided > 0 {
            sum / eval.honest_decided as f64
        } else {
            0.0
        };
        eval.good_fraction_of_honest = if eval.honest_total > 0 {
            eval.honest_good as f64 / eval.honest_total as f64
        } else {
            0.0
        };
        eval.estimate_spread = if eval.min_estimate > 0 {
            eval.max_estimate as f64 / eval.min_estimate as f64
        } else {
            1.0
        };
        eval
    }

    /// Whether the run satisfies Definition 1 for the given `ε`: all but
    /// `B(n) + ε·n` honest nodes hold a good estimate.
    pub fn satisfies_definition1(&self, factor: f64) -> bool {
        let eval = self.evaluate_with_factor(factor);
        let byz_count = self.byzantine.iter().filter(|&&b| b).count();
        let allowed_misses = byz_count as f64 + self.params.epsilon * self.n as f64;
        let misses = (eval.honest_total - eval.honest_good) as f64;
        misses <= allowed_misses
    }

    /// Derived absolute size estimate `n̂ = d·(d−1)^{L−1}` for a decided
    /// phase `L` — the size of a tree-like ball of radius `L`, i.e. what the
    /// decided phase "means" in terms of node count.
    pub fn size_estimate(&self, phase: u64) -> f64 {
        let d = self.params.d as f64;
        d * (d - 1.0).powf(phase.saturating_sub(1) as f64)
    }

    /// Number of crashed honest nodes.
    pub fn crashed_honest(&self) -> usize {
        (0..self.crashed.len())
            .filter(|&i| self.crashed[i] && !self.byzantine[i])
            .count()
    }

    /// Number of Byzantine nodes in this run.
    pub fn byzantine_count(&self) -> usize {
        self.byzantine.iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_outcome(
        estimates: Vec<Option<u64>>,
        crashed: Vec<bool>,
        byz: Vec<bool>,
    ) -> CountingOutcome {
        let n = estimates.len();
        CountingOutcome {
            n,
            estimates,
            decided_round: vec![None; n],
            crashed,
            byzantine: byz,
            params: ProtocolParams::new(8, 3, 0.6, 0.1, 1.0),
            metrics: RunMetrics::default(),
            completed: true,
        }
    }

    #[test]
    fn evaluation_counts_good_estimates() {
        // n = 1024 → reference phase ≈ 1 + (10−3)/log2(7) ≈ 3.49.
        let estimates = vec![
            Some(3),
            Some(4),
            Some(30),
            None,
            Some(3),
            Some(3),
            Some(4),
            Some(3),
        ];
        let crashed = vec![false, false, false, true, false, false, false, false];
        let byz = vec![false; 8];
        let mut outcome = make_outcome(estimates, crashed, byz);
        outcome.n = 1024;
        let eval = outcome.evaluate();
        assert_eq!(eval.honest_total, 8);
        assert_eq!(eval.honest_crashed, 1);
        assert_eq!(eval.honest_decided, 7);
        // 30 is far outside the factor-2 window; the six 3s/4s are inside.
        assert_eq!(eval.honest_good, 6);
        assert!((eval.good_fraction_of_honest - 6.0 / 8.0).abs() < 1e-12);
        assert_eq!(eval.min_estimate, 3);
        assert_eq!(eval.max_estimate, 30);
        assert!(eval.estimate_spread > 9.0);
    }

    #[test]
    fn byzantine_nodes_are_excluded() {
        let estimates = vec![Some(3), Some(999)];
        let crashed = vec![false, false];
        let byz = vec![false, true];
        let mut outcome = make_outcome(estimates, crashed, byz);
        outcome.n = 1024;
        let eval = outcome.evaluate();
        assert_eq!(eval.honest_total, 1);
        assert_eq!(eval.max_estimate, 3);
    }

    #[test]
    fn definition1_check_uses_epsilon_slack() {
        // 10 honest nodes (n = 10, reference phase ≈ 1.1), epsilon = 0.1 →
        // allowed misses = 0 Byzantine + 1.0, so 2 misses violate
        // Definition 1 while a single miss is tolerated.
        let mut estimates = vec![Some(1); 10];
        estimates[0] = Some(50);
        estimates[1] = Some(50);
        let outcome = make_outcome(estimates, vec![false; 10], vec![false; 10]);
        assert!(!outcome.satisfies_definition1(2.0));
        let mut estimates = vec![Some(1); 10];
        estimates[0] = Some(50);
        let outcome = make_outcome(estimates, vec![false; 10], vec![false; 10]);
        assert!(outcome.satisfies_definition1(2.0));
    }

    #[test]
    fn size_estimate_is_ball_size() {
        let outcome = make_outcome(vec![Some(1)], vec![false], vec![false]);
        assert!((outcome.size_estimate(1) - 8.0).abs() < 1e-9);
        assert!((outcome.size_estimate(3) - 8.0 * 49.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_undecided_runs_do_not_panic() {
        let outcome = make_outcome(vec![None, None], vec![false, false], vec![false, false]);
        let eval = outcome.evaluate();
        assert_eq!(eval.honest_decided, 0);
        assert_eq!(eval.mean_estimate, 0.0);
        assert_eq!(eval.estimate_spread, 1.0);
    }
}
