//! The protocol's wire messages.
//!
//! Three message kinds exist (all "small-sized" in the paper's sense —
//! a constant number of IDs plus `O(log n)` bits):
//!
//! * [`CountingMessage::Adjacency`] — the neighbourhood exchange of the
//!   discovery preamble (Algorithm 2, line 1).  Its ID count is the
//!   `G`-degree, a constant depending only on `d` and `k` (Remark 3).
//! * [`CountingMessage::Flood`] — a color travelling along an `H`-edge,
//!   carrying its provenance: the last `min(t, k−1)` relay nodes.  This is
//!   the information the receiver audits (Algorithm 2, line 15).
//! * [`CountingMessage::Audit`] — a node announcing to all its `G`-neighbours
//!   which color it just forwarded; receivers log these and use them to
//!   corroborate or refute provenance claims.

use crate::color::Color;
use netsim_runtime::{MessageSize, SizedMessage};
use netsim_wire::{Reader, Wire, WireError};
use serde::{Deserialize, Serialize};

/// A message of the counting protocols.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CountingMessage {
    /// "These are my `G`-neighbours" (sent once, during discovery).
    Adjacency {
        /// The sender's claimed `G`-neighbour ids.
        neighbors: Vec<u32>,
    },
    /// A color flooding along an `H`-edge.
    Flood {
        /// The color value.
        color: Color,
        /// The last relay nodes: `path[0]` is the node the sender received
        /// the color from, `path[1]` the node before that, … (at most `k−1`
        /// entries; empty when the sender generated the color itself).
        path: Vec<u32>,
    },
    /// "I forwarded/generated this color in this step" — sent to all
    /// `G`-neighbours alongside every flood so they can audit provenance.
    Audit {
        /// The color the sender announced.
        color: Color,
    },
}

impl MessageSize for CountingMessage {
    fn message_size(&self) -> SizedMessage {
        match self {
            CountingMessage::Adjacency { neighbors } => {
                SizedMessage::new(neighbors.len() as u32, 0)
            }
            CountingMessage::Flood { path, .. } => SizedMessage::new(path.len() as u32, 32),
            CountingMessage::Audit { .. } => SizedMessage::new(0, 32),
        }
    }
}

/// The canonical binary encoding (tag byte + fields), required to run the
/// counting protocols on the distributed engine's shard channels.
impl Wire for CountingMessage {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CountingMessage::Adjacency { neighbors } => {
                out.push(0);
                neighbors.encode(out);
            }
            CountingMessage::Flood { color, path } => {
                out.push(1);
                color.encode(out);
                path.encode(out);
            }
            CountingMessage::Audit { color } => {
                out.push(2);
                color.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(CountingMessage::Adjacency {
                neighbors: Vec::decode(r)?,
            }),
            1 => Ok(CountingMessage::Flood {
                color: Color::decode(r)?,
                path: Vec::decode(r)?,
            }),
            2 => Ok(CountingMessage::Audit {
                color: Color::decode(r)?,
            }),
            other => Err(WireError::Corrupt(format!(
                "unknown counting-message tag {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_follow_the_small_message_model() {
        let adj = CountingMessage::Adjacency {
            neighbors: vec![1, 2, 3],
        };
        assert_eq!(adj.message_size(), SizedMessage::new(3, 0));
        let flood = CountingMessage::Flood {
            color: 7,
            path: vec![4, 5],
        };
        assert_eq!(flood.message_size(), SizedMessage::new(2, 32));
        let audit = CountingMessage::Audit { color: 7 };
        assert_eq!(audit.message_size(), SizedMessage::new(0, 32));
    }

    #[test]
    fn wire_encoding_round_trips_every_variant() {
        for msg in [
            CountingMessage::Adjacency {
                neighbors: vec![1, 2, 3],
            },
            CountingMessage::Flood {
                color: 7,
                path: vec![4, 5],
            },
            CountingMessage::Audit { color: 9 },
        ] {
            let bytes = netsim_wire::encode_to_vec(&msg);
            let back: CountingMessage = netsim_wire::decode_from_slice(&bytes).unwrap();
            assert_eq!(back, msg);
        }
        // An unknown tag is a clean decode error, never a panic.
        assert!(netsim_wire::decode_from_slice::<CountingMessage>(&[9]).is_err());
    }

    #[test]
    fn flood_path_is_bounded_by_constant_ids() {
        // The protocol never builds paths longer than k−1; for the paper's
        // default d = 8 that is 2 IDs — a constant independent of n.
        let k = 3usize;
        let flood = CountingMessage::Flood {
            color: 3,
            path: vec![0; k - 1],
        };
        assert!(flood.message_size().ids <= (k - 1) as u32);
    }
}
