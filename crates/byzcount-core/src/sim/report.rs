//! Serializable run and batch reports.
//!
//! A [`RunReport`] is a compact, deterministic summary of one execution:
//! it echoes the full [`RunSpec`] (so a report is self-describing and
//! reproducible), carries the engine metrics, the estimate statistics over
//! honest nodes and — for counting workloads — the Definition-1 evaluation
//! at acceptance factors 2 and 3.  Reports contain no wall-clock data by
//! design: the same spec and seed produce byte-identical JSON.
//!
//! A [`BatchReport`] collects the per-run reports of a campaign plus
//! per-size aggregate statistics (mean / stddev / quantiles of the good
//! fraction, rounds and message counts).

use crate::outcome::EstimateEvaluation;
use crate::sim::error::SimError;
use crate::sim::estimator::{Estimand, WorkloadRun};
use crate::sim::spec::{BatchSpec, RunSpec, SPEC_VERSION};
use serde::{Deserialize, Serialize};

/// Statistics of the honest nodes' estimates in one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EstimateStats {
    /// Honest nodes that produced an estimate.
    pub decided: usize,
    /// Mean estimate over honest deciders.
    pub mean: f64,
    /// Smallest honest estimate.
    pub min: f64,
    /// Largest honest estimate.
    pub max: f64,
}

/// Counting-specific evaluation attached to protocol workloads.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CountingSummary {
    /// Definition-1 evaluation with acceptance factor 2.
    pub eval_factor2: EstimateEvaluation,
    /// Definition-1 evaluation with acceptance factor 3.
    pub eval_factor3: EstimateEvaluation,
    /// Whether the run satisfies Definition 1 at factor 3.
    pub definition1_factor3: bool,
}

/// The summary of one simulation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Schema version ([`SPEC_VERSION`]).
    pub spec_version: u32,
    /// The spec that produced this report (self-describing reports).
    pub spec: RunSpec,
    /// Network size.
    pub n: usize,
    /// The master seed of the run.
    pub seed: u64,
    /// Workload name.
    pub workload: String,
    /// What the estimates measure.
    pub estimand: Estimand,
    /// Ground truth for the estimand, when defined.
    pub truth: Option<f64>,
    /// Number of Byzantine nodes.
    pub byzantine_count: usize,
    /// Number of honest nodes.
    pub honest_total: usize,
    /// Honest nodes that decided.
    pub honest_decided: usize,
    /// Honest nodes that crashed.
    pub honest_crashed: usize,
    /// Whether every honest node decided or crashed before the round cap.
    pub completed: bool,
    /// Rounds executed.
    pub rounds: u64,
    /// Messages delivered.
    pub messages_delivered: u64,
    /// Messages dropped by validation.
    pub messages_dropped: u64,
    /// Messages destroyed by the fault layer (loss / partitions).
    pub messages_lost: u64,
    /// Messages deferred by the fault layer's delay injection.
    pub messages_delayed: u64,
    /// Deferred messages that never arrived (recipient crashed or the run
    /// ended first).
    pub messages_expired: u64,
    /// Fail-stop crashes injected by churn.
    pub churn_crashes: u64,
    /// Churned nodes that rejoined with a reset state.
    pub churn_recoveries: u64,
    /// Largest message, in IDs.
    pub max_message_ids: u32,
    /// Largest message, in extra bits.
    pub max_message_bits: u32,
    /// Estimate statistics over honest deciders.
    pub estimate: EstimateStats,
    /// Counting-protocol evaluation (absent for baselines).
    pub counting: Option<CountingSummary>,
}

impl RunReport {
    /// Assemble a report from a workload execution.
    pub fn from_run(spec: RunSpec, byzantine: &[bool], run: &WorkloadRun) -> Self {
        let n = byzantine.len();
        let byzantine_count = byzantine.iter().filter(|&&b| b).count();
        let honest_total = n - byzantine_count;
        let mut honest_crashed = 0usize;
        let mut stats = EstimateStats {
            decided: 0,
            mean: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        };
        let mut sum = 0.0;
        for (i, &is_byzantine) in byzantine.iter().enumerate() {
            if is_byzantine {
                continue;
            }
            if run.crashed.get(i).copied().unwrap_or(false) {
                honest_crashed += 1;
                continue;
            }
            if let Some(est) = run.per_node.get(i).copied().flatten() {
                stats.decided += 1;
                sum += est;
                stats.min = stats.min.min(est);
                stats.max = stats.max.max(est);
            }
        }
        if stats.decided > 0 {
            stats.mean = sum / stats.decided as f64;
        } else {
            stats.min = 0.0;
            stats.max = 0.0;
        }
        let counting = run.counting.as_ref().map(|outcome| CountingSummary {
            eval_factor2: outcome.evaluate_with_factor(2.0),
            eval_factor3: outcome.evaluate_with_factor(3.0),
            definition1_factor3: outcome.satisfies_definition1(3.0),
        });
        RunReport {
            spec_version: SPEC_VERSION,
            n,
            seed: spec.seed,
            workload: spec.workload.name().to_string(),
            estimand: run.estimand,
            truth: run.estimand.truth(n),
            byzantine_count,
            honest_total,
            honest_decided: stats.decided,
            honest_crashed,
            completed: run.completed,
            rounds: run.metrics.rounds,
            messages_delivered: run.metrics.messages_delivered,
            messages_dropped: run.metrics.messages_dropped,
            messages_lost: run.metrics.messages_lost,
            messages_delayed: run.metrics.messages_delayed,
            messages_expired: run.metrics.messages_expired,
            churn_crashes: run.metrics.churn_crashes,
            churn_recoveries: run.metrics.churn_recoveries,
            max_message_ids: run.metrics.max_message.ids,
            max_message_bits: run.metrics.max_message.bits,
            estimate: stats,
            counting,
            spec,
        }
    }

    /// Fraction of honest nodes holding a good estimate (factor 2), for
    /// counting workloads.
    pub fn good_fraction(&self) -> Option<f64> {
        self.counting
            .map(|c| c.eval_factor2.good_fraction_of_honest)
    }

    /// Mean relative error of the honest estimates against the estimand's
    /// ground truth, when both exist.
    pub fn relative_error(&self) -> Option<f64> {
        let truth = self.truth?;
        if self.estimate.decided == 0 || truth == 0.0 {
            return None;
        }
        Some((self.estimate.mean - truth).abs() / truth)
    }

    /// Serialize to pretty JSON (canonical: equal reports give equal bytes).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("RunReport serialization cannot fail")
    }

    /// Parse from JSON, rejecting reports from a newer schema.
    pub fn from_json(text: &str) -> Result<Self, SimError> {
        let report: RunReport =
            serde_json::from_str(text).map_err(|e| SimError::Spec(e.to_string()))?;
        if report.spec_version > SPEC_VERSION {
            return Err(SimError::Spec(format!(
                "report version {} is newer than supported version {SPEC_VERSION}",
                report.spec_version
            )));
        }
        Ok(report)
    }
}

/// Aggregate statistics of one metric across runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    /// Sample count.
    pub count: usize,
    /// Mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (p50).
    pub median: f64,
    /// 10th percentile.
    pub p10: f64,
    /// 90th percentile.
    pub p90: f64,
}

impl Aggregate {
    /// Aggregate a sample (empty samples give all-zero statistics).
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Aggregate::default();
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pct = |p: f64| -> f64 {
            if sorted.len() == 1 {
                return sorted[0];
            }
            let rank = (p / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        };
        Aggregate {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: pct(50.0),
            p10: pct(10.0),
            p90: pct(90.0),
        }
    }
}

/// Aggregates for all runs of one network size in a batch.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SizeAggregate {
    /// Network size.
    pub n: usize,
    /// Runs at this size.
    pub runs: usize,
    /// Runs that completed.
    pub completed_runs: usize,
    /// Good-fraction statistics (counting workloads only).
    pub good_fraction: Option<Aggregate>,
    /// Honest-crash-fraction statistics.
    pub crashed_fraction: Aggregate,
    /// Round-count statistics.
    pub rounds: Aggregate,
    /// Delivered-message statistics.
    pub messages: Aggregate,
    /// Fault-lost-message statistics (loss / partitions).
    pub messages_lost: Aggregate,
    /// Mean-estimate statistics.
    pub mean_estimate: Aggregate,
}

impl SizeAggregate {
    /// Aggregate the reports of one size bucket.
    pub fn of(n: usize, reports: &[&RunReport]) -> Self {
        let good: Vec<f64> = reports.iter().filter_map(|r| r.good_fraction()).collect();
        SizeAggregate {
            n,
            runs: reports.len(),
            completed_runs: reports.iter().filter(|r| r.completed).count(),
            good_fraction: if good.is_empty() {
                None
            } else {
                Some(Aggregate::of(&good))
            },
            crashed_fraction: Aggregate::of(
                &reports
                    .iter()
                    .map(|r| r.honest_crashed as f64 / r.honest_total.max(1) as f64)
                    .collect::<Vec<_>>(),
            ),
            rounds: Aggregate::of(&reports.iter().map(|r| r.rounds as f64).collect::<Vec<_>>()),
            messages: Aggregate::of(
                &reports
                    .iter()
                    .map(|r| r.messages_delivered as f64)
                    .collect::<Vec<_>>(),
            ),
            messages_lost: Aggregate::of(
                &reports
                    .iter()
                    .map(|r| r.messages_lost as f64)
                    .collect::<Vec<_>>(),
            ),
            mean_estimate: Aggregate::of(
                &reports.iter().map(|r| r.estimate.mean).collect::<Vec<_>>(),
            ),
        }
    }
}

/// The result of a batched campaign.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Schema version ([`SPEC_VERSION`]).
    pub spec_version: u32,
    /// The campaign spec.
    pub spec: BatchSpec,
    /// Every per-run report, in `expand()` order (size-major, seed-minor).
    pub runs: Vec<RunReport>,
    /// Per-size aggregates, in ascending size order of appearance.
    pub aggregates: Vec<SizeAggregate>,
}

impl BatchReport {
    /// Assemble a batch report, aggregating per network size.
    pub fn from_runs(spec: BatchSpec, runs: Vec<RunReport>) -> Self {
        let mut sizes: Vec<usize> = Vec::new();
        for report in &runs {
            if !sizes.contains(&report.n) {
                sizes.push(report.n);
            }
        }
        let aggregates = sizes
            .iter()
            .map(|&n| {
                let bucket: Vec<&RunReport> = runs.iter().filter(|r| r.n == n).collect();
                SizeAggregate::of(n, &bucket)
            })
            .collect();
        BatchReport {
            spec_version: SPEC_VERSION,
            spec,
            runs,
            aggregates,
        }
    }

    /// The aggregate for a given size.
    pub fn aggregate_for(&self, n: usize) -> Option<&SizeAggregate> {
        self.aggregates.iter().find(|a| a.n == n)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("BatchReport serialization cannot fail")
    }

    /// Parse from JSON, rejecting reports from a newer schema.
    pub fn from_json(text: &str) -> Result<Self, SimError> {
        let report: BatchReport =
            serde_json::from_str(text).map_err(|e| SimError::Spec(e.to_string()))?;
        if report.spec_version > SPEC_VERSION {
            return Err(SimError::Spec(format!(
                "report version {} is newer than supported version {SPEC_VERSION}",
                report.spec_version
            )));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_of_known_sample() {
        let agg = Aggregate::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(agg.count, 5);
        assert!((agg.mean - 3.0).abs() < 1e-12);
        assert!((agg.median - 3.0).abs() < 1e-12);
        assert!((agg.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(agg.min, 1.0);
        assert_eq!(agg.max, 5.0);
        assert!((agg.p10 - 1.4).abs() < 1e-12);
        assert!((agg.p90 - 4.6).abs() < 1e-12);
        assert_eq!(Aggregate::of(&[]), Aggregate::default());
    }
}
