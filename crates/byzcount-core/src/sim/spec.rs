//! Serializable run specifications.
//!
//! A [`RunSpec`] is the complete, versioned description of one simulation:
//! topology, workload, Byzantine placement, adversary, protocol parameters
//! and the master seed.  A [`BatchSpec`] lifts a `RunSpec` into a
//! multi-seed / multi-size campaign.  Both round-trip losslessly through
//! JSON (`to_json` / `from_json`), which makes campaigns reproducible and
//! diffable across runs and machines.
//!
//! The spec layer is deliberately plain data: adversary and baseline
//! workload variants are *named* here but interpreted by a
//! [`ScenarioRegistry`](crate::sim::ScenarioRegistry) (the full registry
//! lives downstream, where the concrete adversaries and estimators are in
//! scope).

use crate::params::ProtocolParams;
use crate::sim::error::SimError;
use netsim_faults::FaultSpec;
use netsim_graph::{balanced_tree, random_tree, Csr, NodeId, SmallWorldNetwork, WattsStrogatz};
use netsim_runtime::{ClockPlan, EngineKind, Topology};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Error, Map, Number, Serialize, Value};

/// Version of the specification schema.  Bump on breaking changes; readers
/// reject specs with a newer version than they understand.
///
/// History:
/// * **1** — the original schema (no fault layer).
/// * **2** — adds the `fault` field ([`FaultSpec`]).  Version-1 specs are
///   still accepted: a missing `fault` reads as [`FaultSpec::None`] and
///   parsing upgrades the spec in place ([`RunSpec::migrate`]), so a v1
///   spec and its v2 `fault: "None"` equivalent are indistinguishable — and
///   produce byte-identical reports.
/// * **3** — adds the `engine` field ([`EngineSpec`]): which engine
///   implementation executes the run (the classic
///   [`SyncEngine`](netsim_runtime::SyncEngine) or the sharded engine with
///   an explicit shard count).  Version-1/2 specs are still accepted: a
///   missing
///   `engine` reads as [`EngineSpec::Sync`] and parsing migrates in place.
///   The engine is execution *policy*, not semantics — every variant
///   produces byte-identical run results for equal spec and seed, which
///   `tests/sharded_parity.rs` locks down.
/// * **4** — adds the [`EngineSpec::Async`] variant: the event-driven
///   engine with per-node virtual clocks ([`ClockPlan`]).  No field is
///   added or removed, so version-1/2/3 specs all still parse unchanged
///   (missing/`null` engine still reads as [`EngineSpec::Sync`]); the
///   version bump marks that v3 readers cannot interpret an `Async`
///   engine value.  Under [`ClockPlan::Uniform`] the async engine is
///   byte-identical to the synchronous engines (`tests/async_parity.rs`);
///   heterogeneous clock plans are the first spec knob that changes run
///   *semantics* by design — deterministically per spec and seed.
/// * **5** — adds the [`EngineSpec::ShardedAsync`] variant: the
///   event-driven engine with per-shard calendar queues and clock
///   domains.  No field is added or removed, so version-1/2/3/4 specs all
///   still parse unchanged; the bump marks that v4 readers cannot
///   interpret a `ShardedAsync` engine value.  Like `Sharded`, the shard
///   count is pure execution policy: for equal spec and seed the run is
///   byte-identical to the unsharded async engine for every shard count.
/// * **6** — adds the [`EngineSpec::Distributed`] variant: shard workers
///   running as separate threads of control that speak the `netsim-wire`
///   binary codec over checksummed, versioned channels, with a coordinator
///   owning routing, faults and the adversary.  No field is added or
///   removed, so version-1/…/5 specs all still parse unchanged; the bump
///   marks that v5 readers cannot interpret a `Distributed` engine value.
///   Like `Sharded`, the worker count is pure execution policy: for equal
///   spec and seed the run is byte-identical to the unsharded synchronous
///   engine for every worker count (`tests/distributed_parity.rs`).
pub const SPEC_VERSION: u32 = 6;

/// Derive an independent seed stream from a master seed (SplitMix64).
pub(crate) fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut state = seed ^ stream.wrapping_mul(0x9E3779B97F4A7C15);
    rand::splitmix64(&mut state)
}

/// Seed sub-streams of a [`RunSpec`] master seed.
pub(crate) mod seed_stream {
    /// Topology generation.
    pub const TOPOLOGY: u64 = 1;
    /// Byzantine placement.
    pub const PLACEMENT: u64 = 2;
    /// Protocol execution.
    pub const RUN: u64 = 3;
    /// Fault injection (loss/delay/churn/partition streams).
    pub const FAULTS: u64 = 4;
}

/// The identity-derived seed (or identity tag) of one sweep cell: a stable
/// FNV-1a hash of the cell's identity `(workload, network, n)` mixed into
/// the base seed.
///
/// This is *the* workspace-wide definition of cell identity.  Identity-
/// derived (not position-derived), so sweep subsets, reorderings and future
/// sweep extensions never change an existing cell's value.  Two consumers
/// rely on that stability:
///
/// * the bench suite (`bench::suite`) derives every cell's *spec seed* from
///   it, which is what keeps `apply_baseline` joins across `--sizes`
///   subsets comparing runs of the same topology and placement;
/// * the campaign service (`byzcount-campaign`) derives every WAL record's
///   *identity tag* from it, which is what lets a resumed sweep verify that
///   a recovered record belongs to the cell it claims to.
///
/// The hash is pinned: changing it would silently unjoin historical bench
/// reports and orphan existing campaign stores, so it is locked by
/// regression literals in both consumers.
pub fn cell_seed(base: u64, workload: &str, network: &str, n: usize) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    mix(workload.as_bytes());
    mix(b"/");
    mix(network.as_bytes());
    mix(b"/");
    mix(&(n as u64).to_le_bytes());
    base ^ hash
}

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

/// Which communication graph to generate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// The paper's small-world overlay `G = H(n, d) ∪ L`.
    SmallWorld {
        /// Number of nodes.
        n: usize,
        /// Degree of the base expander (even, ≥ 4).
        d: usize,
    },
    /// Only the base expander `H(n, d)` (what the baselines usually run on).
    SmallWorldH {
        /// Number of nodes.
        n: usize,
        /// Degree of the expander.
        d: usize,
    },
    /// A Watts–Strogatz rewired ring lattice.
    WattsStrogatz {
        /// Number of nodes.
        n: usize,
        /// Half-degree of the ring lattice (each node links to `k_half`
        /// neighbours on each side).
        k_half: usize,
        /// Rewiring probability.
        beta: f64,
    },
    /// A complete `arity`-ary tree.
    BalancedTree {
        /// Number of nodes.
        n: usize,
        /// Children per internal node.
        arity: usize,
    },
    /// A uniformly random labelled tree (optionally degree-capped).
    RandomTree {
        /// Number of nodes.
        n: usize,
        /// Maximum degree, `None` for unbounded.
        max_degree: Option<usize>,
    },
}

impl TopologySpec {
    /// Number of nodes the spec will generate.
    pub fn n(&self) -> usize {
        match *self {
            TopologySpec::SmallWorld { n, .. }
            | TopologySpec::SmallWorldH { n, .. }
            | TopologySpec::WattsStrogatz { n, .. }
            | TopologySpec::BalancedTree { n, .. }
            | TopologySpec::RandomTree { n, .. } => n,
        }
    }

    /// The same topology family at a different size (for size sweeps).
    pub fn with_n(&self, n: usize) -> Self {
        let mut spec = self.clone();
        match &mut spec {
            TopologySpec::SmallWorld { n: slot, .. }
            | TopologySpec::SmallWorldH { n: slot, .. }
            | TopologySpec::WattsStrogatz { n: slot, .. }
            | TopologySpec::BalancedTree { n: slot, .. }
            | TopologySpec::RandomTree { n: slot, .. } => *slot = n,
        }
        spec
    }

    /// Nominal degree, used to derive protocol parameters for non-small-world
    /// topologies.
    pub fn nominal_degree(&self) -> usize {
        match *self {
            TopologySpec::SmallWorld { d, .. } | TopologySpec::SmallWorldH { d, .. } => d,
            TopologySpec::WattsStrogatz { k_half, .. } => 2 * k_half,
            TopologySpec::BalancedTree { arity, .. } => arity + 1,
            TopologySpec::RandomTree { max_degree, .. } => max_degree.unwrap_or(4),
        }
    }

    /// Generate the topology (deterministic in `seed`).
    pub fn build(&self, seed: u64) -> Result<BuiltTopology, SimError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Ok(match *self {
            TopologySpec::SmallWorld { n, d } => {
                BuiltTopology::SmallWorld(SmallWorldNetwork::generate_seeded(n, d, seed)?)
            }
            TopologySpec::SmallWorldH { n, d } => {
                // Build only H — the k-ball overlay expansion that dominates
                // full small-world generation is never needed here.  The RNG
                // seeding matches `generate_seeded`, so H is the same graph
                // the SmallWorld variant would contain.
                let h = netsim_graph::HGraph::generate(n, d, &mut rng)?;
                BuiltTopology::Graph(h.csr().clone())
            }
            TopologySpec::WattsStrogatz { n, k_half, beta } => {
                BuiltTopology::WattsStrogatz(WattsStrogatz::generate(n, k_half, beta, &mut rng)?)
            }
            TopologySpec::BalancedTree { n, arity } => {
                BuiltTopology::Graph(balanced_tree(n, arity)?)
            }
            TopologySpec::RandomTree { n, max_degree } => {
                BuiltTopology::Graph(random_tree(n, max_degree, &mut rng)?)
            }
        })
    }
}

/// A materialized topology, kept concrete so knowledge-based adversaries can
/// recover the small-world structure when it exists.
#[derive(Clone, Debug)]
pub enum BuiltTopology {
    /// The full small-world overlay.
    SmallWorld(SmallWorldNetwork),
    /// A plain CSR graph (expander-only, trees, custom graphs).
    Graph(Csr),
    /// A Watts–Strogatz graph.
    WattsStrogatz(WattsStrogatz),
}

impl BuiltTopology {
    /// The underlying small-world network, when this topology has one.
    pub fn small_world(&self) -> Option<&SmallWorldNetwork> {
        match self {
            BuiltTopology::SmallWorld(net) => Some(net),
            _ => None,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        match self {
            BuiltTopology::SmallWorld(net) => net.len(),
            BuiltTopology::Graph(g) => g.len(),
            BuiltTopology::WattsStrogatz(ws) => ws.len(),
        }
    }

    /// True when the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Topology for BuiltTopology {
    fn len(&self) -> usize {
        BuiltTopology::len(self)
    }

    fn neighbors(&self, v: NodeId) -> &[u32] {
        match self {
            BuiltTopology::SmallWorld(net) => net.g_neighbors(v),
            BuiltTopology::Graph(g) => g.neighbors(v),
            BuiltTopology::WattsStrogatz(ws) => ws.csr().neighbors(v),
        }
    }
}

// ---------------------------------------------------------------------------
// Workload / placement / adversary / params
// ---------------------------------------------------------------------------

/// Byzantine behaviour against a *baseline* estimator (mirrors
/// `byzcount_baselines::BaselineAttack`, kept here so the spec layer stays
/// dependency-free).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackSpec {
    /// Byzantine nodes follow the baseline protocol.
    #[default]
    None,
    /// Byzantine nodes push an extreme value.
    Inflate,
    /// Byzantine nodes swallow messages they should forward.
    Suppress,
}

/// What to execute over the topology.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// Algorithm 1 (counting without verification).
    Basic,
    /// Algorithm 2 (Byzantine-tolerant counting).
    Byzantine,
    /// Geometric support estimation baseline (estimates `log₂ n`).
    GeometricSupport {
        /// Flooding horizon; `None` derives `3·log₂ n + 5`.
        ttl: Option<u64>,
        /// Byzantine behaviour.
        attack: AttackSpec,
    },
    /// Exponential support estimation baseline (estimates `n`).
    ExponentialSupport {
        /// Flooding horizon; `None` derives `3·log₂ n + 5`.
        ttl: Option<u64>,
        /// Byzantine behaviour.
        attack: AttackSpec,
    },
    /// BFS spanning-tree + converge-cast exact count (estimates `n`).
    SpanningTree {
        /// Round cap; `None` derives `12·log₂ n + 20`.
        max_rounds: Option<u64>,
        /// Byzantine behaviour.
        attack: AttackSpec,
    },
    /// Leader flood, first-arrival round as a diameter proxy.
    FloodDiameter {
        /// Flooding horizon; `None` derives `3·log₂ n + 5`.
        ttl: Option<u64>,
        /// Byzantine behaviour.
        attack: AttackSpec,
    },
}

impl WorkloadSpec {
    /// Short stable name (used in reports).
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadSpec::Basic => "basic-counting",
            WorkloadSpec::Byzantine => "byzantine-counting",
            WorkloadSpec::GeometricSupport { .. } => "geometric-support",
            WorkloadSpec::ExponentialSupport { .. } => "exponential-support",
            WorkloadSpec::SpanningTree { .. } => "spanning-tree",
            WorkloadSpec::FloodDiameter { .. } => "flood-diameter",
        }
    }

    /// Whether this is one of the two counting protocols (as opposed to a
    /// baseline estimator).
    pub fn is_counting(&self) -> bool {
        matches!(self, WorkloadSpec::Basic | WorkloadSpec::Byzantine)
    }
}

/// How Byzantine nodes are placed.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum PlacementSpec {
    /// No Byzantine nodes.
    #[default]
    None,
    /// `count` nodes chosen uniformly at random.
    Random {
        /// Number of Byzantine nodes.
        count: usize,
    },
    /// The paper's budget `⌊n^{1−δ}⌋`, chosen uniformly at random.
    RandomBudget {
        /// Fault exponent.
        delta: f64,
    },
    /// `count` nodes clustered around a random centre (BFS ball).
    Clustered {
        /// Number of Byzantine nodes.
        count: usize,
    },
    /// Exactly these node indices.
    Exact {
        /// Byzantine node indices.
        nodes: Vec<u32>,
    },
}

impl PlacementSpec {
    /// Materialize the Byzantine mask over a topology (deterministic in
    /// `seed`).
    pub fn materialize(&self, topo: &BuiltTopology, seed: u64) -> Result<Vec<bool>, SimError> {
        use rand::seq::SliceRandom;
        use rand::Rng;
        let n = topo.len();
        let mut mask = vec![false; n];
        match self {
            PlacementSpec::None => {}
            PlacementSpec::Random { .. } | PlacementSpec::RandomBudget { .. } => {
                let count = match self {
                    PlacementSpec::Random { count } => (*count).min(n),
                    PlacementSpec::RandomBudget { delta } => {
                        ((n as f64).powf(1.0 - delta).floor() as usize).min(n)
                    }
                    _ => unreachable!(),
                };
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut idx: Vec<usize> = (0..n).collect();
                idx.shuffle(&mut rng);
                for &i in idx.iter().take(count) {
                    mask[i] = true;
                }
            }
            PlacementSpec::Clustered { count } => {
                let count = (*count).min(n);
                if count > 0 && n > 0 {
                    let mut rng = ChaCha8Rng::seed_from_u64(seed);
                    let center = rng.gen_range(0..n);
                    let dist = bfs_over_topology(topo, center);
                    let mut order: Vec<usize> = (0..n).collect();
                    order.sort_by_key(|&i| dist[i]);
                    for &i in order.iter().take(count) {
                        mask[i] = true;
                    }
                }
            }
            PlacementSpec::Exact { nodes } => {
                for &v in nodes {
                    let i = v as usize;
                    if i >= n {
                        return Err(SimError::Spec(format!(
                            "placement node {i} out of range for n = {n}"
                        )));
                    }
                    mask[i] = true;
                }
            }
        }
        Ok(mask)
    }
}

/// BFS distances over any [`Topology`] (used for clustered placement on
/// graphs that are not small-world networks).
fn bfs_over_topology(topo: &BuiltTopology, source: usize) -> Vec<u32> {
    let n = topo.len();
    let mut dist = vec![u32::MAX; n];
    if source >= n {
        return dist;
    }
    dist[source] = 0;
    let mut queue = std::collections::VecDeque::from([source as u32]);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &u in Topology::neighbors(topo, NodeId(v)) {
            if (u as usize) < n && dist[u as usize] == u32::MAX {
                dist[u as usize] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// When the color-inflation adversary injects (mirrors
/// `byzcount_adversary::InjectionTiming`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimingSpec {
    /// At the generation step (legal-looking injection).
    Legal,
    /// In the step the continuation criterion inspects.
    LastStep,
}

/// Which full-information adversary drives the Byzantine nodes of a
/// *counting* workload (baseline workloads embed their attack in the
/// workload spec instead).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdversarySpec {
    /// Byzantine nodes follow the protocol.
    #[default]
    Null,
    /// Byzantine nodes behave honestly (control condition).
    HonestBehaving,
    /// Byzantine nodes never send anything.
    Silent,
    /// Maximal-color injection.
    ColorInflation {
        /// Injection timing.
        timing: TimingSpec,
    },
    /// Swallow the true maximum instead of forwarding it.
    Suppression,
    /// Fabricated topology chains (Figure 1).
    FakeChain,
    /// The kitchen sink: inflation + suppression + fake chains.
    Combined,
}

impl AdversarySpec {
    /// Short stable name (used in reports and tables).
    pub fn name(&self) -> &'static str {
        match self {
            AdversarySpec::Null => "null",
            AdversarySpec::HonestBehaving => "honest",
            AdversarySpec::Silent => "silent",
            AdversarySpec::ColorInflation {
                timing: TimingSpec::Legal,
            } => "inflate-legal",
            AdversarySpec::ColorInflation {
                timing: TimingSpec::LastStep,
            } => "inflate-last",
            AdversarySpec::Suppression => "suppress",
            AdversarySpec::FakeChain => "fake-chain",
            AdversarySpec::Combined => "combined",
        }
    }
}

/// How protocol parameters are obtained.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ParamsSpec {
    /// Derive from the topology: `for_network_default_expansion` on
    /// small-world networks, [`ProtocolParams::for_degree`] elsewhere.
    Derived {
        /// Fault exponent `δ`.
        delta: f64,
        /// Error parameter `ε`.
        epsilon: f64,
    },
    /// Use these exact parameters.
    Explicit(ProtocolParams),
}

impl Default for ParamsSpec {
    fn default() -> Self {
        ParamsSpec::Derived {
            delta: 0.6,
            epsilon: 0.1,
        }
    }
}

impl ParamsSpec {
    /// Resolve against a materialized topology.
    pub fn resolve(&self, spec: &TopologySpec, topo: &BuiltTopology) -> ProtocolParams {
        match self {
            ParamsSpec::Explicit(params) => *params,
            ParamsSpec::Derived { delta, epsilon } => match topo.small_world() {
                Some(net) => ProtocolParams::for_network_default_expansion(net, *delta, *epsilon),
                None => ProtocolParams::for_degree(spec.nominal_degree(), *delta, *epsilon),
            },
        }
    }
}

/// How many runs a batch performs, and with which seeds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SeedPolicy {
    /// One run with this exact seed.
    Fixed(u64),
    /// `count` runs with seeds derived from `base` (SplitMix64 stream, so
    /// the seeds are decorrelated but fully reproducible).
    Sequence {
        /// Base seed.
        base: u64,
        /// Number of derived seeds.
        count: u32,
    },
    /// Exactly these seeds.
    Explicit(Vec<u64>),
}

impl SeedPolicy {
    /// The concrete seed list.
    pub fn seeds(&self) -> Vec<u64> {
        match self {
            SeedPolicy::Fixed(seed) => vec![*seed],
            SeedPolicy::Sequence { base, count } => (0..*count as u64)
                .map(|i| derive_seed(*base, i.wrapping_add(0xA11CE)))
                .collect(),
            SeedPolicy::Explicit(seeds) => seeds.clone(),
        }
    }

    /// The first seed (what a single run uses).
    pub fn primary(&self) -> u64 {
        self.seeds().first().copied().unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Engine selection
// ---------------------------------------------------------------------------

/// Which engine implementation executes the run.
///
/// `Sync` and `Sharded` are execution policy, not semantics: the sharded
/// engine is contractually byte-identical to the classic engine for equal
/// spec and seed (for every shard count), so those knobs only change how
/// the round loop maps onto cores.  `Async` with
/// [`ClockPlan::Uniform`] keeps the same byte-identity contract; a
/// heterogeneous [`ClockPlan`] is the one engine knob that changes run
/// semantics by design (per-node clock speeds), deterministically per
/// spec and seed.  The knob lives in the spec so campaigns can pin their
/// execution layout — and their clock model — reproducibly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineSpec {
    /// The classic single-owner synchronous engine (the default).
    #[default]
    Sync,
    /// The sharded engine: node state, outboxes, inboxes, deferred rings
    /// and delivery metrics partitioned into `shards` contiguous node-id
    /// ranges (clamped to the node count at run time).
    Sharded {
        /// Number of shards (≥ 1).
        shards: u32,
    },
    /// The event-driven engine: per-node virtual clocks over a
    /// deterministic calendar event queue, no global round barrier.
    Async {
        /// How node clocks map onto virtual time
        /// ([`ClockPlan::Uniform`] = the synchronous model).
        clocks: ClockPlan,
    },
    /// The sharded event-driven engine: per-shard calendar queues and
    /// clock domains, rendezvousing only at the routing step.  The shard
    /// count is execution policy (byte-identical results for every
    /// count); the clock plan is the same semantic knob as `Async`'s.
    ShardedAsync {
        /// Number of shards (≥ 1).
        shards: u32,
        /// How node clocks map onto virtual time.
        clocks: ClockPlan,
    },
    /// The distributed engine: shard workers with private state speaking
    /// the `netsim-wire` binary codec over checksummed, versioned
    /// channels; a coordinator owns routing, fault injection and the
    /// adversary.  The worker count is execution policy (byte-identical
    /// results for every count), but the protocol's message type must
    /// have a canonical wire encoding.
    Distributed {
        /// Number of shard workers (≥ 1).
        shards: u32,
    },
}

impl EngineSpec {
    /// Short stable name (used in tables and logs).
    pub fn name(&self) -> String {
        self.kind().describe()
    }

    /// The event-driven engine with uniform clocks (the `--engine async`
    /// shape: byte-identical results, event-driven execution).
    pub fn asynchronous() -> Self {
        EngineSpec::Async {
            clocks: ClockPlan::Uniform,
        }
    }

    /// The runtime engine selection this spec resolves to.
    pub fn kind(&self) -> EngineKind {
        match *self {
            EngineSpec::Sync => EngineKind::Sync,
            EngineSpec::Sharded { shards } => EngineKind::Sharded {
                shards: shards as usize,
            },
            EngineSpec::Async { clocks } => EngineKind::Async { clocks },
            EngineSpec::ShardedAsync { shards, clocks } => EngineKind::ShardedAsync {
                shards: shards as usize,
                clocks,
            },
            EngineSpec::Distributed { shards } => EngineKind::Distributed {
                shards: shards as usize,
            },
        }
    }

    /// Check the engine selection is well-formed.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            EngineSpec::Sync => Ok(()),
            EngineSpec::Sharded { shards: 0 }
            | EngineSpec::ShardedAsync { shards: 0, .. }
            | EngineSpec::Distributed { shards: 0 } => {
                Err("sharded engine needs at least one shard".into())
            }
            EngineSpec::Sharded { .. } | EngineSpec::Distributed { .. } => Ok(()),
            EngineSpec::Async { clocks } | EngineSpec::ShardedAsync { clocks, .. } => {
                clocks.validate()
            }
        }
    }
}

// Hand-written serde impls for the same backwards-compatibility reason as
// `FaultSpec`: a missing or `null` value must read as `EngineSpec::Sync`,
// so version-1/2 specs — which have no `engine` field at all — keep
// deserializing.  The wire shapes otherwise match what the derive would
// produce (externally tagged variants).

/// `u32` field helper with a range check (serde_json numbers are u64).
fn u32_field(m: &Map, key: &str) -> Result<u32, Error> {
    let raw: u64 = serde::from_value_field(m, key)?;
    u32::try_from(raw).map_err(|_| Error::msg(format!("{key} value {raw} out of range")))
}

/// Wire shape of a [`ClockPlan`] (externally tagged, like a derive).
fn clock_plan_to_value(clocks: &ClockPlan) -> Value {
    match *clocks {
        ClockPlan::Uniform => Value::Str("Uniform".into()),
        ClockPlan::Stratified { every, period } => {
            let mut inner = Map::new();
            inner.insert("every".into(), Value::Num(Number::U(every as u64)));
            inner.insert("period".into(), Value::Num(Number::U(period as u64)));
            let mut m = Map::new();
            m.insert("Stratified".into(), Value::Obj(inner));
            Value::Obj(m)
        }
        ClockPlan::Jittered { max_period } => {
            let mut inner = Map::new();
            inner.insert(
                "max_period".into(),
                Value::Num(Number::U(max_period as u64)),
            );
            let mut m = Map::new();
            m.insert("Jittered".into(), Value::Obj(inner));
            Value::Obj(m)
        }
    }
}

fn clock_plan_from_value(v: &Value) -> Result<ClockPlan, Error> {
    match v {
        // An Async engine without an explicit clock plan means the
        // synchronous model.
        Value::Null => Ok(ClockPlan::Uniform),
        Value::Str(s) if s == "Uniform" || s == "uniform" => Ok(ClockPlan::Uniform),
        Value::Str(other) => Err(Error::msg(format!(
            "unknown unit variant `{other}` of ClockPlan"
        ))),
        Value::Obj(m) if m.len() == 1 => {
            let (tag, inner) = m.iter().next().expect("len checked");
            let mm = inner
                .as_obj()
                .ok_or_else(|| Error::expected("object", inner))?;
            match tag.as_str() {
                "Stratified" => Ok(ClockPlan::Stratified {
                    every: u32_field(mm, "every")?,
                    period: u32_field(mm, "period")?,
                }),
                "Jittered" => Ok(ClockPlan::Jittered {
                    max_period: u32_field(mm, "max_period")?,
                }),
                other => Err(Error::msg(format!(
                    "unknown variant `{other}` of ClockPlan"
                ))),
            }
        }
        other => Err(Error::expected(
            "ClockPlan (string or tagged object)",
            other,
        )),
    }
}

impl Serialize for EngineSpec {
    fn to_value(&self) -> Value {
        match self {
            EngineSpec::Sync => Value::Str("Sync".into()),
            EngineSpec::Sharded { shards } => {
                let mut inner = Map::new();
                inner.insert("shards".into(), Value::Num(Number::U(*shards as u64)));
                let mut m = Map::new();
                m.insert("Sharded".into(), Value::Obj(inner));
                Value::Obj(m)
            }
            EngineSpec::Async { clocks } => {
                let mut inner = Map::new();
                inner.insert("clocks".into(), clock_plan_to_value(clocks));
                let mut m = Map::new();
                m.insert("Async".into(), Value::Obj(inner));
                Value::Obj(m)
            }
            EngineSpec::ShardedAsync { shards, clocks } => {
                let mut inner = Map::new();
                inner.insert("shards".into(), Value::Num(Number::U(*shards as u64)));
                inner.insert("clocks".into(), clock_plan_to_value(clocks));
                let mut m = Map::new();
                m.insert("ShardedAsync".into(), Value::Obj(inner));
                Value::Obj(m)
            }
            EngineSpec::Distributed { shards } => {
                let mut inner = Map::new();
                inner.insert("shards".into(), Value::Num(Number::U(*shards as u64)));
                let mut m = Map::new();
                m.insert("Distributed".into(), Value::Obj(inner));
                Value::Obj(m)
            }
        }
    }
}

impl Deserialize for EngineSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            // v1/v2 specs have no engine field: absent/null means the
            // classic engine.
            Value::Null => Ok(EngineSpec::Sync),
            Value::Str(s) if s == "Sync" || s == "sync" => Ok(EngineSpec::Sync),
            // Hand-written specs may abbreviate uniform clocks.
            Value::Str(s) if s == "Async" || s == "async" => Ok(EngineSpec::asynchronous()),
            Value::Str(other) => Err(Error::msg(format!(
                "unknown unit variant `{other}` of EngineSpec"
            ))),
            Value::Obj(m) if m.len() == 1 => {
                let (tag, inner) = m.iter().next().expect("len checked");
                match tag.as_str() {
                    "Sharded" => {
                        let mm = inner
                            .as_obj()
                            .ok_or_else(|| Error::expected("object", inner))?;
                        Ok(EngineSpec::Sharded {
                            shards: u32_field(mm, "shards")?,
                        })
                    }
                    "Async" => {
                        let mm = inner
                            .as_obj()
                            .ok_or_else(|| Error::expected("object", inner))?;
                        Ok(EngineSpec::Async {
                            clocks: clock_plan_from_value(
                                mm.get("clocks").unwrap_or(&Value::Null),
                            )?,
                        })
                    }
                    "Distributed" => {
                        let mm = inner
                            .as_obj()
                            .ok_or_else(|| Error::expected("object", inner))?;
                        Ok(EngineSpec::Distributed {
                            shards: u32_field(mm, "shards")?,
                        })
                    }
                    "ShardedAsync" => {
                        let mm = inner
                            .as_obj()
                            .ok_or_else(|| Error::expected("object", inner))?;
                        Ok(EngineSpec::ShardedAsync {
                            shards: u32_field(mm, "shards")?,
                            clocks: clock_plan_from_value(
                                mm.get("clocks").unwrap_or(&Value::Null),
                            )?,
                        })
                    }
                    other => Err(Error::msg(format!(
                        "unknown variant `{other}` of EngineSpec"
                    ))),
                }
            }
            other => Err(Error::expected(
                "EngineSpec (string or tagged object)",
                other,
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// RunSpec / BatchSpec
// ---------------------------------------------------------------------------

/// The complete, versioned description of one simulation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// Schema version ([`SPEC_VERSION`]).
    pub version: u32,
    /// Communication graph.
    pub topology: TopologySpec,
    /// What to execute.
    pub workload: WorkloadSpec,
    /// Byzantine placement.
    pub placement: PlacementSpec,
    /// Adversary for counting workloads.
    pub adversary: AdversarySpec,
    /// Network fault injection (loss, delay, churn, partitions); absent in
    /// version-1 specs and defaults to [`FaultSpec::None`].
    pub fault: FaultSpec,
    /// Engine implementation (classic or sharded); absent in version-1/2
    /// specs and defaults to [`EngineSpec::Sync`].  Execution policy only:
    /// results are byte-identical across engines and shard counts.
    pub engine: EngineSpec,
    /// Protocol parameters.
    pub params: ParamsSpec,
    /// Master seed; topology, placement and execution use independent
    /// sub-streams derived from it.
    pub seed: u64,
    /// Engine round-cap override (`None` = derive from the schedule).
    pub max_rounds: Option<u64>,
}

impl RunSpec {
    /// Check the spec is self-consistent and its version is understood.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.version > SPEC_VERSION {
            return Err(SimError::Spec(format!(
                "spec version {} is newer than supported version {SPEC_VERSION}",
                self.version
            )));
        }
        if self.topology.n() == 0 {
            return Err(SimError::Spec(
                "topology must have at least one node".into(),
            ));
        }
        if !self.workload.is_counting() && self.adversary != AdversarySpec::Null {
            return Err(SimError::Spec(format!(
                "baseline workload `{}` embeds its attack in the workload; \
                 set adversary to Null (got `{}`)",
                self.workload.name(),
                self.adversary.name()
            )));
        }
        self.fault.validate().map_err(SimError::Spec)?;
        self.engine.validate().map_err(SimError::Spec)?;
        Ok(())
    }

    /// Upgrade an older (but accepted) spec to the current schema version.
    /// Versions 1, 2 and 3 only differ in the `fault` and `engine` fields,
    /// which older specs lack and deserialization already defaulted
    /// ([`FaultSpec::None`] / [`EngineSpec::Sync`]) — so the upgrade is
    /// just the version stamp.  Reports embed the migrated spec, which is
    /// what makes a v1 spec and its v2/v3 equivalents produce
    /// byte-identical reports.
    pub fn migrate(&mut self) {
        if self.version < SPEC_VERSION {
            self.version = SPEC_VERSION;
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("RunSpec serialization cannot fail")
    }

    /// Parse from JSON (accepting any schema version up to
    /// [`SPEC_VERSION`]) and migrate to the current version.
    pub fn from_json(text: &str) -> Result<Self, SimError> {
        let mut spec: RunSpec =
            serde_json::from_str(text).map_err(|e| SimError::Spec(e.to_string()))?;
        spec.validate()?;
        spec.migrate();
        Ok(spec)
    }
}

/// A multi-seed / multi-size campaign over one base [`RunSpec`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BatchSpec {
    /// Schema version ([`SPEC_VERSION`]).
    pub version: u32,
    /// The base run; its `seed` is ignored in favour of `seeds`.
    pub run: RunSpec,
    /// Seeds to sweep.
    pub seeds: SeedPolicy,
    /// Network sizes to sweep (`None` = just the base topology's size).
    pub sizes: Option<Vec<usize>>,
}

impl BatchSpec {
    /// Expand into the concrete per-run specs (size-major, seed-minor).
    pub fn expand(&self) -> Vec<RunSpec> {
        let sizes = match &self.sizes {
            Some(sizes) if !sizes.is_empty() => sizes.clone(),
            _ => vec![self.run.topology.n()],
        };
        let seeds = self.seeds.seeds();
        let mut specs = Vec::with_capacity(sizes.len() * seeds.len());
        for &n in &sizes {
            for &seed in &seeds {
                let mut spec = self.run.clone();
                spec.topology = spec.topology.with_n(n);
                spec.seed = seed;
                specs.push(spec);
            }
        }
        specs
    }

    /// Check the batch and its base run.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.version > SPEC_VERSION {
            return Err(SimError::Spec(format!(
                "spec version {} is newer than supported version {SPEC_VERSION}",
                self.version
            )));
        }
        if self.seeds.seeds().is_empty() {
            return Err(SimError::Spec("batch needs at least one seed".into()));
        }
        self.run.validate()
    }

    /// Upgrade an older batch (and its base run) to the current version.
    pub fn migrate(&mut self) {
        if self.version < SPEC_VERSION {
            self.version = SPEC_VERSION;
        }
        self.run.migrate();
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("BatchSpec serialization cannot fail")
    }

    /// Parse from JSON (accepting any schema version up to
    /// [`SPEC_VERSION`]) and migrate to the current version.
    pub fn from_json(text: &str) -> Result<Self, SimError> {
        let mut spec: BatchSpec =
            serde_json::from_str(text).map_err(|e| SimError::Spec(e.to_string()))?;
        spec.validate()?;
        spec.migrate();
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> RunSpec {
        RunSpec {
            version: SPEC_VERSION,
            topology: TopologySpec::SmallWorld { n: 128, d: 6 },
            workload: WorkloadSpec::Byzantine,
            placement: PlacementSpec::RandomBudget { delta: 0.6 },
            adversary: AdversarySpec::Combined,
            fault: FaultSpec::None,
            engine: EngineSpec::Sync,
            params: ParamsSpec::default(),
            seed: 0xDEAD_BEEF_CAFE_F00D,
            max_rounds: None,
        }
    }

    #[test]
    fn v1_specs_without_a_fault_field_still_parse() {
        // A verbatim version-1 spec: no `fault` key anywhere.
        let v1 = r#"{
            "version": 1,
            "topology": {"SmallWorld": {"d": 6, "n": 128}},
            "workload": "Byzantine",
            "placement": {"RandomBudget": {"delta": 0.6}},
            "adversary": "Combined",
            "params": {"Derived": {"delta": 0.6, "epsilon": 0.1}},
            "seed": 7,
            "max_rounds": null
        }"#;
        let parsed = RunSpec::from_json(v1).expect("v1 spec must parse");
        assert_eq!(parsed.fault, FaultSpec::None);
        assert_eq!(parsed.version, SPEC_VERSION, "parsing migrates to latest");
        // The v2 equivalent spells the fault out; both normalize to the
        // same spec and hence the same JSON bytes.
        let v2 = v1.replace(
            "\"version\": 1,",
            "\"version\": 2,\n            \"fault\": \"None\",",
        );
        let parsed_v2 = RunSpec::from_json(&v2).expect("v2 spec must parse");
        assert_eq!(parsed, parsed_v2);
        assert_eq!(parsed.to_json(), parsed_v2.to_json());
    }

    #[test]
    fn v2_specs_without_an_engine_field_still_parse() {
        // A verbatim version-2 spec: a `fault` field but no `engine` key.
        let v2 = r#"{
            "version": 2,
            "topology": {"SmallWorld": {"d": 6, "n": 128}},
            "workload": "Byzantine",
            "placement": {"RandomBudget": {"delta": 0.6}},
            "adversary": "Combined",
            "fault": {"Loss": {"rate": 0.1}},
            "params": {"Derived": {"delta": 0.6, "epsilon": 0.1}},
            "seed": 7,
            "max_rounds": null
        }"#;
        let parsed = RunSpec::from_json(v2).expect("v2 spec must parse");
        assert_eq!(parsed.engine, EngineSpec::Sync);
        assert_eq!(parsed.version, SPEC_VERSION, "parsing migrates to latest");
        // The v3 equivalent spells the engine out; both normalize to the
        // same spec and hence the same JSON bytes.
        let v3 = v2.replace(
            "\"version\": 2,",
            "\"version\": 3,\n            \"engine\": \"Sync\",",
        );
        let parsed_v3 = RunSpec::from_json(&v3).expect("v3 spec must parse");
        assert_eq!(parsed, parsed_v3);
        assert_eq!(parsed.to_json(), parsed_v3.to_json());
    }

    #[test]
    fn engine_specs_round_trip_and_validate() {
        let mut spec = demo_spec();
        spec.engine = EngineSpec::Sharded { shards: 4 };
        let back = RunSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), spec.to_json());
        spec.engine = EngineSpec::Sharded { shards: 0 };
        assert!(matches!(spec.validate(), Err(SimError::Spec(_))));
        // Kind resolution and naming.
        assert_eq!(EngineSpec::Sync.name(), "sync");
        assert_eq!(EngineSpec::Sharded { shards: 8 }.name(), "sharded-8");
        assert_eq!(
            EngineSpec::Sharded { shards: 8 }.kind(),
            netsim_runtime::EngineKind::Sharded { shards: 8 }
        );
        assert_eq!(EngineSpec::default(), EngineSpec::Sync);
    }

    #[test]
    fn async_engine_specs_round_trip_and_validate() {
        for clocks in [
            ClockPlan::Uniform,
            ClockPlan::Stratified {
                every: 4,
                period: 3,
            },
            ClockPlan::Jittered { max_period: 5 },
        ] {
            let mut spec = demo_spec();
            spec.engine = EngineSpec::Async { clocks };
            let back = RunSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(back, spec, "{clocks:?}");
            assert_eq!(back.to_json(), spec.to_json(), "{clocks:?}");
        }
        // Degenerate clock plans are rejected at validation.
        let mut spec = demo_spec();
        spec.engine = EngineSpec::Async {
            clocks: ClockPlan::Stratified {
                every: 0,
                period: 2,
            },
        };
        assert!(matches!(spec.validate(), Err(SimError::Spec(_))));
        spec.engine = EngineSpec::Async {
            clocks: ClockPlan::Jittered { max_period: 0 },
        };
        assert!(matches!(spec.validate(), Err(SimError::Spec(_))));
        // Naming and kind resolution.
        assert_eq!(EngineSpec::asynchronous().name(), "async");
        assert_eq!(
            EngineSpec::Async {
                clocks: ClockPlan::Stratified {
                    every: 4,
                    period: 3
                }
            }
            .name(),
            "async-strat-4x3"
        );
        assert_eq!(
            EngineSpec::asynchronous().kind(),
            netsim_runtime::EngineKind::Async {
                clocks: ClockPlan::Uniform
            }
        );
        // The abbreviated wire form (`"engine": "Async"`) reads as uniform
        // clocks.
        let mut spec = demo_spec();
        spec.engine = EngineSpec::asynchronous();
        let mut value = spec.to_value();
        value
            .as_obj_mut()
            .expect("specs serialize to objects")
            .insert("engine".into(), Value::Str("Async".into()));
        let abbreviated = serde_json::to_string_pretty(&value).expect("value prints");
        let parsed = RunSpec::from_json(&abbreviated).expect("abbreviated Async parses");
        assert_eq!(parsed, spec);
    }

    #[test]
    fn v3_specs_with_engine_fields_still_parse() {
        // A verbatim version-3 spec: `fault` and `engine` fields, but a
        // pre-async engine vocabulary (Sync / Sharded only).
        let v3 = r#"{
            "version": 3,
            "topology": {"SmallWorld": {"d": 6, "n": 128}},
            "workload": "Byzantine",
            "placement": {"RandomBudget": {"delta": 0.6}},
            "adversary": "Combined",
            "fault": "None",
            "engine": {"Sharded": {"shards": 4}},
            "params": {"Derived": {"delta": 0.6, "epsilon": 0.1}},
            "seed": 7,
            "max_rounds": null
        }"#;
        let parsed = RunSpec::from_json(v3).expect("v3 spec must parse");
        assert_eq!(parsed.engine, EngineSpec::Sharded { shards: 4 });
        assert_eq!(parsed.version, SPEC_VERSION, "parsing migrates to latest");
        // The v4 equivalent differs only in the version stamp; both
        // normalize to the same spec and hence the same JSON bytes.
        let v4 = v3.replace("\"version\": 3,", "\"version\": 4,");
        let parsed_v4 = RunSpec::from_json(&v4).expect("v4 spec must parse");
        assert_eq!(parsed, parsed_v4);
        assert_eq!(parsed.to_json(), parsed_v4.to_json());
        // And the v5 stamp as well: v4 → v5 added only the ShardedAsync
        // vocabulary, no field changes.
        let v5 = v3.replace("\"version\": 3,", "\"version\": 5,");
        let parsed_v5 = RunSpec::from_json(&v5).expect("v5 spec must parse");
        assert_eq!(parsed, parsed_v5);
        assert_eq!(parsed.to_json(), parsed_v5.to_json());
        // And the v6 stamp: v5 → v6 added only the Distributed vocabulary,
        // no field changes.
        let v6 = v3.replace("\"version\": 3,", "\"version\": 6,");
        let parsed_v6 = RunSpec::from_json(&v6).expect("v6 spec must parse");
        assert_eq!(parsed, parsed_v6);
        assert_eq!(parsed.to_json(), parsed_v6.to_json());
    }

    #[test]
    fn distributed_engine_specs_round_trip_and_validate() {
        let mut spec = demo_spec();
        spec.engine = EngineSpec::Distributed { shards: 4 };
        let back = RunSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), spec.to_json());
        assert!(spec.to_json().contains("\"Distributed\""));
        // Zero workers are rejected, like the other sharded engines.
        spec.engine = EngineSpec::Distributed { shards: 0 };
        assert!(matches!(spec.validate(), Err(SimError::Spec(_))));
        // Naming and kind resolution.
        assert_eq!(EngineSpec::Distributed { shards: 4 }.name(), "dist-4");
        assert_eq!(
            EngineSpec::Distributed { shards: 4 }.kind(),
            netsim_runtime::EngineKind::Distributed { shards: 4 }
        );
    }

    #[test]
    fn sharded_async_engine_specs_round_trip_and_validate() {
        for clocks in [
            ClockPlan::Uniform,
            ClockPlan::Stratified {
                every: 4,
                period: 3,
            },
            ClockPlan::Jittered { max_period: 5 },
        ] {
            let mut spec = demo_spec();
            spec.engine = EngineSpec::ShardedAsync { shards: 4, clocks };
            let back = RunSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(back, spec, "{clocks:?}");
            assert_eq!(back.to_json(), spec.to_json(), "{clocks:?}");
        }
        // Zero shards and degenerate clock plans are rejected.
        let mut spec = demo_spec();
        spec.engine = EngineSpec::ShardedAsync {
            shards: 0,
            clocks: ClockPlan::Uniform,
        };
        assert!(matches!(spec.validate(), Err(SimError::Spec(_))));
        spec.engine = EngineSpec::ShardedAsync {
            shards: 2,
            clocks: ClockPlan::Jittered { max_period: 0 },
        };
        assert!(matches!(spec.validate(), Err(SimError::Spec(_))));
        // Naming and kind resolution.
        assert_eq!(
            EngineSpec::ShardedAsync {
                shards: 4,
                clocks: ClockPlan::Uniform
            }
            .name(),
            "sharded-async-4"
        );
        assert_eq!(
            EngineSpec::ShardedAsync {
                shards: 2,
                clocks: ClockPlan::Stratified {
                    every: 4,
                    period: 3
                }
            }
            .name(),
            "sharded-async-2-strat-4x3"
        );
        assert_eq!(
            EngineSpec::ShardedAsync {
                shards: 4,
                clocks: ClockPlan::Uniform
            }
            .kind(),
            netsim_runtime::EngineKind::ShardedAsync {
                shards: 4,
                clocks: ClockPlan::Uniform
            }
        );
        // A ShardedAsync value without an explicit clock plan reads as
        // uniform clocks, like `Async`.
        let mut spec = demo_spec();
        spec.engine = EngineSpec::ShardedAsync {
            shards: 3,
            clocks: ClockPlan::Uniform,
        };
        let mut value = spec.to_value();
        let mut inner = Map::new();
        inner.insert("shards".into(), Value::Num(Number::U(3)));
        let mut engine = Map::new();
        engine.insert("ShardedAsync".into(), Value::Obj(inner));
        value
            .as_obj_mut()
            .expect("specs serialize to objects")
            .insert("engine".into(), Value::Obj(engine));
        let abbreviated = serde_json::to_string_pretty(&value).expect("value prints");
        let parsed = RunSpec::from_json(&abbreviated).expect("clockless ShardedAsync parses");
        assert_eq!(parsed, spec);
    }

    #[test]
    fn faulty_specs_round_trip_and_validate() {
        let mut spec = demo_spec();
        spec.fault = FaultSpec::Compose(vec![
            FaultSpec::Loss { rate: 0.1 },
            FaultSpec::Churn {
                rate: 0.01,
                downtime: 4,
            },
        ]);
        let back = RunSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        spec.fault = FaultSpec::Loss { rate: 7.0 };
        assert!(matches!(spec.validate(), Err(SimError::Spec(_))));
    }

    #[test]
    fn run_spec_round_trips_losslessly() {
        let spec = demo_spec();
        let json = spec.to_json();
        let back = RunSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn newer_versions_are_rejected() {
        let mut spec = demo_spec();
        spec.version = SPEC_VERSION + 1;
        assert!(matches!(spec.validate(), Err(SimError::Spec(_))));
    }

    #[test]
    fn baseline_workloads_reject_counting_adversaries() {
        let mut spec = demo_spec();
        spec.workload = WorkloadSpec::GeometricSupport {
            ttl: None,
            attack: AttackSpec::Inflate,
        };
        assert!(spec.validate().is_err());
        spec.adversary = AdversarySpec::Null;
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn batch_expansion_is_size_major() {
        let batch = BatchSpec {
            version: SPEC_VERSION,
            run: demo_spec(),
            seeds: SeedPolicy::Sequence { base: 9, count: 3 },
            sizes: Some(vec![64, 128]),
        };
        let specs = batch.expand();
        assert_eq!(specs.len(), 6);
        assert_eq!(specs[0].topology.n(), 64);
        assert_eq!(specs[3].topology.n(), 128);
        let seeds: std::collections::HashSet<u64> = specs.iter().map(|s| s.seed).collect();
        assert_eq!(seeds.len(), 3, "derived seeds must be distinct");
    }

    #[test]
    fn placements_are_deterministic_and_sized() {
        let topo = TopologySpec::SmallWorld { n: 200, d: 6 }.build(11).unwrap();
        let a = PlacementSpec::Random { count: 17 }
            .materialize(&topo, 5)
            .unwrap();
        let b = PlacementSpec::Random { count: 17 }
            .materialize(&topo, 5)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.iter().filter(|&&x| x).count(), 17);
        let budget = PlacementSpec::RandomBudget { delta: 0.6 }
            .materialize(&topo, 5)
            .unwrap();
        assert_eq!(
            budget.iter().filter(|&&x| x).count(),
            (200f64).powf(0.4).floor() as usize
        );
        let clustered = PlacementSpec::Clustered { count: 12 }
            .materialize(&topo, 7)
            .unwrap();
        assert_eq!(clustered.iter().filter(|&&x| x).count(), 12);
        let exact = PlacementSpec::Exact {
            nodes: vec![1, 5, 5],
        }
        .materialize(&topo, 0)
        .unwrap();
        assert_eq!(exact.iter().filter(|&&x| x).count(), 2);
        assert!(PlacementSpec::Exact { nodes: vec![900] }
            .materialize(&topo, 0)
            .is_err());
    }

    #[test]
    fn cell_seed_is_identity_derived_and_pinned() {
        // Identity-derived: the same cell gets the same value no matter
        // which sweep it appears in; distinct identities get distinct
        // values (workload, network and n all feed the hash).
        let full = cell_seed(0xBE7C4, "byzantine-counting", "clean", 4096);
        assert_eq!(
            full,
            cell_seed(0xBE7C4, "byzantine-counting", "clean", 4096)
        );
        assert_ne!(
            full,
            cell_seed(0xBE7C4, "byzantine-counting", "faulty", 4096)
        );
        assert_ne!(
            full,
            cell_seed(0xBE7C4, "byzantine-counting", "clean", 1024)
        );
        assert_ne!(full, cell_seed(0xBE7C4, "spanning-tree", "clean", 4096));
        assert_ne!(
            full,
            cell_seed(0xBE7C5, "byzantine-counting", "clean", 4096)
        );
        // Pinned: these literals are what the bench suite historically
        // produced (pre-promotion, when the helper lived in
        // `bench::suite`); changing the hash would unjoin historical
        // `BENCH_roundloop.json` baselines and orphan campaign stores.
        assert_eq!(full, 0x54db5256f1e5bc02);
        assert_eq!(
            cell_seed(0xBE7C4, "spanning-tree", "faulty", 256),
            0xfb0cb0f2a5c1bcda
        );
        assert_eq!(
            cell_seed(7, "basic-counting", "clean", 64),
            0xc79060f0771c9e67
        );
    }

    #[test]
    fn every_topology_family_builds() {
        for spec in [
            TopologySpec::SmallWorld { n: 64, d: 6 },
            TopologySpec::SmallWorldH { n: 64, d: 6 },
            TopologySpec::WattsStrogatz {
                n: 64,
                k_half: 3,
                beta: 0.1,
            },
            TopologySpec::BalancedTree { n: 64, arity: 3 },
            TopologySpec::RandomTree {
                n: 64,
                max_degree: Some(5),
            },
        ] {
            let topo = spec.build(3).expect("build");
            assert_eq!(topo.len(), 64, "{spec:?}");
            assert_eq!(spec.with_n(32).n(), 32);
            assert!(spec.nominal_degree() >= 2);
        }
    }
}
