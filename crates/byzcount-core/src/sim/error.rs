//! Simulation API errors.

use netsim_graph::GraphError;
use netsim_runtime::RunError;
use std::fmt;

/// Errors raised while building or executing a simulation.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The specification is malformed or uses an unsupported version.
    Spec(String),
    /// Topology generation failed.
    Graph(GraphError),
    /// The active [`ScenarioRegistry`](crate::sim::ScenarioRegistry) cannot
    /// interpret a workload/adversary combination (e.g. baseline workloads
    /// through the core-only registry).
    Unsupported(String),
    /// The builder is missing a required component.
    Incomplete(&'static str),
    /// The execution engine failed — with remote shard workers this means
    /// a worker died or the fleet was unreachable (in-process engines
    /// never raise it).
    Engine(RunError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Spec(msg) => write!(f, "invalid run spec: {msg}"),
            SimError::Graph(err) => write!(f, "topology generation failed: {err}"),
            SimError::Unsupported(msg) => write!(f, "unsupported scenario: {msg}"),
            SimError::Incomplete(what) => write!(f, "simulation builder is missing {what}"),
            SimError::Engine(err) => write!(f, "engine execution failed: {err}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<GraphError> for SimError {
    fn from(err: GraphError) -> Self {
        SimError::Graph(err)
    }
}

impl From<RunError> for SimError {
    fn from(err: RunError) -> Self {
        SimError::Engine(err)
    }
}
