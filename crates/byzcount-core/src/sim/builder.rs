//! The unified simulation entry point.
//!
//! ```
//! use byzcount_core::sim::{
//!     PlacementSpec, SeedPolicy, Simulation, TopologySpec, WorkloadSpec,
//! };
//!
//! let report = Simulation::builder()
//!     .topology(TopologySpec::SmallWorld { n: 256, d: 6 })
//!     .workload(WorkloadSpec::Basic)
//!     .seed(42)
//!     .build()
//!     .unwrap()
//!     .run_core()
//!     .unwrap();
//! assert!(report.completed);
//! ```
//!
//! The builder assembles a serializable [`RunSpec`] (or, with a multi-seed
//! [`SeedPolicy`] / size sweep, a [`BatchSpec`]) and executes it through a
//! [`ScenarioRegistry`] — the component that turns spec variants into
//! concrete estimators and adversaries.  The [`CoreRegistry`] in this crate
//! understands the two counting protocols with the null adversary; the full
//! registry (baselines + knowledge-based adversaries) lives in
//! `byzcount-analysis::campaign` and is re-exported through the `byzcount`
//! facade, where `.run()` / `.run_batch()` become available on every
//! [`Simulation`].

use crate::sim::error::SimError;
use crate::sim::estimator::{CountingEstimator, Estimator, NullAdversaryFactory, SimContext};
use crate::sim::report::{BatchReport, RunReport};
use crate::sim::spec::{
    derive_seed, seed_stream, AdversarySpec, BatchSpec, EngineSpec, ParamsSpec, PlacementSpec,
    RunSpec, SeedPolicy, TopologySpec, WorkloadSpec, SPEC_VERSION,
};
use crate::ProtocolParams;
use netsim_faults::FaultSpec;
use netsim_runtime::wire::{IoStream, WireError, WireHello};
use netsim_runtime::{Recorder, RemoteFleet, RunError, ShardServeConfig};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// A cloneable, debug-printable handle around a shared [`Recorder`], so
/// recorders can ride along inside the (otherwise `Clone + Debug`) builder
/// and [`Simulation`] without infecting their derives.
#[derive(Clone)]
pub struct RecorderHandle(Arc<dyn Recorder>);

impl RecorderHandle {
    /// Wrap a shared recorder.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        RecorderHandle(recorder)
    }

    /// Borrow the recorder as the trait object the engines take.
    pub fn as_dyn(&self) -> &dyn Recorder {
        self.0.as_ref()
    }
}

impl std::fmt::Debug for RecorderHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RecorderHandle(..)")
    }
}

/// Turns spec variants into executable estimators.
///
/// Implementations receive the validated [`RunSpec`] and the resolved
/// [`ProtocolParams`] and return the estimator that will run the workload;
/// the estimator's adversary factory is expected to honour
/// `spec.adversary`.
pub trait ScenarioRegistry: Sync {
    /// Resolve the estimator for a run.
    fn estimator(
        &self,
        spec: &RunSpec,
        params: &ProtocolParams,
    ) -> Result<Arc<dyn Estimator>, SimError>;
}

/// The registry built into `byzcount-core`: both counting protocols, null
/// adversary only.  Baseline workloads and the knowledge-based adversaries
/// need the full registry from `byzcount-analysis` (re-exported by the
/// `byzcount` facade).
#[derive(Clone, Copy, Debug, Default)]
pub struct CoreRegistry;

impl ScenarioRegistry for CoreRegistry {
    fn estimator(
        &self,
        spec: &RunSpec,
        params: &ProtocolParams,
    ) -> Result<Arc<dyn Estimator>, SimError> {
        if spec.adversary != AdversarySpec::Null {
            return Err(SimError::Unsupported(format!(
                "adversary `{}` needs the full scenario registry \
                 (use byzcount::prelude::* / byzcount-analysis::campaign)",
                spec.adversary.name()
            )));
        }
        match spec.workload {
            WorkloadSpec::Basic => Ok(Arc::new(CountingEstimator::basic(
                *params,
                Arc::new(NullAdversaryFactory),
            ))),
            WorkloadSpec::Byzantine => Ok(Arc::new(CountingEstimator::byzantine(
                *params,
                Arc::new(NullAdversaryFactory),
            ))),
            _ => Err(SimError::Unsupported(format!(
                "workload `{}` needs the full scenario registry \
                 (use byzcount::prelude::* / byzcount-analysis::campaign)",
                spec.workload.name()
            ))),
        }
    }
}

/// A [`RunSpec`] with its topology and Byzantine placement already
/// materialized, ready to execute any number of times.
///
/// Splitting preparation from execution serves two callers: batches that
/// re-run one spec, and the performance harness (`byzcount-cli bench`),
/// which must time the protocol execution — node construction plus the
/// round loop — without the (unchanged-by-optimisation) cost of graph
/// generation polluting the measurement.  [`execute_spec`] is
/// `PreparedRun::new` + `PreparedRun::execute`, so a prepared run produces
/// byte-identical reports to the one-shot path.
pub struct PreparedRun {
    spec: RunSpec,
    topology: crate::sim::spec::BuiltTopology,
    params: ProtocolParams,
    byzantine: Vec<bool>,
}

impl PreparedRun {
    /// Validate and migrate `spec`, then build its topology and placement.
    pub fn new(spec: &RunSpec) -> Result<Self, SimError> {
        spec.validate()?;
        // Execute (and report) the migrated spec, so a v1 spec and its v2
        // equivalent produce byte-identical reports.
        let mut spec = spec.clone();
        spec.migrate();
        let topology = spec
            .topology
            .build(derive_seed(spec.seed, seed_stream::TOPOLOGY))?;
        let params = spec.params.resolve(&spec.topology, &topology);
        let byzantine = spec
            .placement
            .materialize(&topology, derive_seed(spec.seed, seed_stream::PLACEMENT))?;
        Ok(PreparedRun {
            spec,
            topology,
            params,
            byzantine,
        })
    }

    /// The migrated spec this run will execute.
    pub fn spec(&self) -> &RunSpec {
        &self.spec
    }

    /// The resolved protocol parameters.
    pub fn params(&self) -> &ProtocolParams {
        &self.params
    }

    /// The materialized Byzantine mask.
    pub fn byzantine(&self) -> &[bool] {
        &self.byzantine
    }

    /// Execute the workload (node construction + round loop) and assemble
    /// the report.  Deterministic: every call returns the same report.
    pub fn execute(&self, registry: &dyn ScenarioRegistry) -> Result<RunReport, SimError> {
        self.execute_recorded(registry, None)
    }

    /// [`execute`](Self::execute) with an optional [`Recorder`] observing
    /// the run.  Observation-only: the report is byte-identical with any
    /// recorder installed or none (locked down by the trace test suite).
    pub fn execute_recorded(
        &self,
        registry: &dyn ScenarioRegistry,
        recorder: Option<&dyn Recorder>,
    ) -> Result<RunReport, SimError> {
        self.execute_fleet(registry, recorder, None)
    }

    /// [`execute_recorded`](Self::execute_recorded) with an optional remote
    /// shard-worker fleet for the distributed engine.  Pure transport
    /// policy: the report is byte-identical whether shard workers run as
    /// in-process threads (`fleet` = `None` or empty) or remote
    /// `shard-worker` processes — the spec never records the transport.
    pub fn execute_fleet(
        &self,
        registry: &dyn ScenarioRegistry,
        recorder: Option<&dyn Recorder>,
        fleet: Option<&RemoteFleet>,
    ) -> Result<RunReport, SimError> {
        let estimator = registry.estimator(&self.spec, &self.params)?;
        let ctx = SimContext {
            topology: &self.topology,
            byzantine: &self.byzantine,
            seed: derive_seed(self.spec.seed, seed_stream::RUN),
            max_rounds: self.spec.max_rounds,
            fault: &self.spec.fault,
            fault_seed: derive_seed(self.spec.seed, seed_stream::FAULTS),
            engine: self.spec.engine.kind(),
            recorder,
            fleet,
        };
        let run = estimator.run(&ctx)?;
        Ok(RunReport::from_run(
            self.spec.clone(),
            &self.byzantine,
            &run,
        ))
    }

    /// Describe a remote shard-worker fleet for this run: the assignment
    /// payload is the migrated spec's JSON (workers rebuild topology,
    /// placement and node states from it), pinned to [`SPEC_VERSION`].
    pub fn remote_fleet(&self, addrs: Vec<String>) -> RemoteFleet {
        RemoteFleet::new(addrs, self.spec.to_json().into_bytes(), SPEC_VERSION)
    }
}

/// How long a shard worker waits for the coordinator's hello before
/// abandoning a freshly accepted connection.
pub const SHARD_HELLO_TIMEOUT: Duration = Duration::from_secs(10);

/// Serve one shard-worker connection: the process-level worker's half of
/// the distributed engine.
///
/// Exchanges versioned hellos (bounded by `hello_timeout`; a mute or
/// incompatible peer is an error, not a hang), requires the coordinator's
/// [`ShardAssignment`](netsim_wire::ShardAssignment), rebuilds the run from
/// the spec JSON it carries — topology, placement, parameters, node states
/// all re-derived exactly as the coordinator derived them — and then serves
/// the round loop until the coordinator's Finish frame.
///
/// Workers are stateless between sessions: everything a session needs
/// arrives in its hello.
pub fn serve_shard_conn(
    stream: &mut IoStream,
    registry: &dyn ScenarioRegistry,
    hello_timeout: Duration,
) -> Result<(), SimError> {
    let ours = WireHello::current(SPEC_VERSION);
    let theirs = stream
        .exchange_hello(&ours, hello_timeout)
        .map_err(|e| SimError::Engine(RunError::Fleet(format!("shard handshake: {e}"))))?;
    let assignment = theirs.assignment.ok_or_else(|| {
        SimError::Spec("coordinator hello carried no shard assignment".to_string())
    })?;
    let text = std::str::from_utf8(&assignment.payload)
        .map_err(|_| SimError::Spec("shard assignment payload is not UTF-8".to_string()))?;
    let spec = RunSpec::from_json(text)?;
    let prepared = PreparedRun::new(&spec)?;
    let n = prepared.topology.len();
    if assignment.n as usize != n {
        return Err(SimError::Spec(format!(
            "shard assignment says n = {}, rebuilt topology has {n} nodes",
            assignment.n
        )));
    }
    let (start, end) = (assignment.start as usize, assignment.end as usize);
    if start > end || end > n {
        return Err(SimError::Spec(format!(
            "shard assignment range {start}..{end} out of bounds for n = {n}"
        )));
    }
    let estimator = registry.estimator(&prepared.spec, &prepared.params)?;
    let ctx = SimContext {
        topology: &prepared.topology,
        byzantine: &prepared.byzantine,
        seed: derive_seed(prepared.spec.seed, seed_stream::RUN),
        max_rounds: prepared.spec.max_rounds,
        fault: &prepared.spec.fault,
        fault_seed: derive_seed(prepared.spec.seed, seed_stream::FAULTS),
        engine: prepared.spec.engine.kind(),
        recorder: None,
        fleet: None,
    };
    let cfg = ShardServeConfig::from_assignment(&assignment);
    estimator.serve_shard(&ctx, &cfg, end, stream)
}

/// A [`WireError`] surfaced while serving a shard connection, as a
/// [`SimError`] (used by accept loops that keep serving after a bad peer).
pub fn shard_serve_error(err: WireError) -> SimError {
    SimError::Engine(RunError::Fleet(format!("shard connection: {err}")))
}

/// Execute one validated [`RunSpec`] through a registry.
pub fn execute_spec(
    spec: &RunSpec,
    registry: &dyn ScenarioRegistry,
) -> Result<RunReport, SimError> {
    PreparedRun::new(spec)?.execute(registry)
}

/// [`execute_spec`] with an optional [`Recorder`] observing the run.
pub fn execute_spec_recorded(
    spec: &RunSpec,
    registry: &dyn ScenarioRegistry,
    recorder: Option<&dyn Recorder>,
) -> Result<RunReport, SimError> {
    PreparedRun::new(spec)?.execute_recorded(registry, recorder)
}

/// Execute a whole [`BatchSpec`] through a registry, runs in parallel.
pub fn execute_batch(
    spec: &BatchSpec,
    registry: &dyn ScenarioRegistry,
) -> Result<BatchReport, SimError> {
    execute_batch_recorded(spec, registry, None)
}

/// [`execute_batch`] with an optional [`Recorder`] shared by every run in
/// the batch (recorders are `Sync`; runs execute in parallel).
pub fn execute_batch_recorded(
    spec: &BatchSpec,
    registry: &dyn ScenarioRegistry,
    recorder: Option<&dyn Recorder>,
) -> Result<BatchReport, SimError> {
    execute_batch_workers(spec, registry, recorder, &[])
}

/// [`execute_spec_recorded`] dialing a remote shard-worker fleet for
/// distributed-engine runs: each run's shard sessions connect to
/// `workers` (shard `s` dials `workers[s % len]`) instead of spawning
/// in-process pipe threads.  An empty list is the in-process fallback.
/// Pure transport policy: the report is byte-identical either way, and
/// the spec never records the transport.
pub fn execute_spec_workers(
    spec: &RunSpec,
    registry: &dyn ScenarioRegistry,
    recorder: Option<&dyn Recorder>,
    workers: &[String],
) -> Result<RunReport, SimError> {
    let prepared = PreparedRun::new(spec)?;
    if workers.is_empty() {
        prepared.execute_fleet(registry, recorder, None)
    } else {
        let fleet = prepared.remote_fleet(workers.to_vec());
        prepared.execute_fleet(registry, recorder, Some(&fleet))
    }
}

/// [`execute_batch_recorded`] dialing a remote shard-worker fleet (see
/// [`execute_spec_workers`]).  Runs still execute in parallel; each run
/// opens its own shard sessions against the shared worker addresses.
pub fn execute_batch_workers(
    spec: &BatchSpec,
    registry: &dyn ScenarioRegistry,
    recorder: Option<&dyn Recorder>,
    workers: &[String],
) -> Result<BatchReport, SimError> {
    spec.validate()?;
    let mut spec = spec.clone();
    spec.migrate();
    let runs: Result<Vec<RunReport>, SimError> = spec
        .expand()
        .into_par_iter()
        .map(|run_spec| execute_spec_workers(&run_spec, registry, recorder, workers))
        .collect::<Vec<Result<RunReport, SimError>>>()
        .into_iter()
        .collect();
    Ok(BatchReport::from_runs(spec, runs?))
}

/// Builder for [`Simulation`]s; see the module docs.
#[derive(Clone, Debug)]
pub struct SimulationBuilder {
    topology: Option<TopologySpec>,
    workload: WorkloadSpec,
    placement: PlacementSpec,
    adversary: AdversarySpec,
    fault: FaultSpec,
    engine: EngineSpec,
    params: ParamsSpec,
    seeds: SeedPolicy,
    sizes: Option<Vec<usize>>,
    max_rounds: Option<u64>,
    recorder: Option<RecorderHandle>,
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        SimulationBuilder {
            topology: None,
            workload: WorkloadSpec::Byzantine,
            placement: PlacementSpec::None,
            adversary: AdversarySpec::Null,
            fault: FaultSpec::None,
            engine: EngineSpec::Sync,
            params: ParamsSpec::default(),
            seeds: SeedPolicy::Fixed(0),
            sizes: None,
            max_rounds: None,
            recorder: None,
        }
    }
}

impl SimulationBuilder {
    /// The communication topology (required).
    pub fn topology(mut self, topology: TopologySpec) -> Self {
        self.topology = Some(topology);
        self
    }

    /// The workload to execute (default: Algorithm 2).
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Byzantine placement (default: none).
    pub fn placement(mut self, placement: PlacementSpec) -> Self {
        self.placement = placement;
        self
    }

    /// Adversary for counting workloads (default: null).
    pub fn adversary(mut self, adversary: AdversarySpec) -> Self {
        self.adversary = adversary;
        self
    }

    /// Network fault injection — loss, delay, churn, partitions (default:
    /// none, the paper's perfect synchronous network).
    pub fn fault(mut self, fault: FaultSpec) -> Self {
        self.fault = fault;
        self
    }

    /// Which engine implementation executes the run (default: the classic
    /// synchronous engine).  Pure execution policy — reports are
    /// byte-identical whichever engine runs the spec.
    pub fn engine(mut self, engine: EngineSpec) -> Self {
        self.engine = engine;
        self
    }

    /// Shorthand for [`engine`](Self::engine) with the sharded engine at
    /// the given shard count.
    pub fn shards(mut self, shards: u32) -> Self {
        self.engine = EngineSpec::Sharded { shards };
        self
    }

    /// Shorthand for [`engine`](Self::engine) with the event-driven async
    /// engine under the given clock plan
    /// ([`ClockPlan::Uniform`](netsim_runtime::ClockPlan::Uniform) keeps
    /// the synchronous byte-identity contract; heterogeneous plans open
    /// the asynchronous scenario space).
    pub fn async_clocks(mut self, clocks: netsim_runtime::ClockPlan) -> Self {
        self.engine = EngineSpec::Async { clocks };
        self
    }

    /// Shorthand for [`engine`](Self::engine) with the sharded
    /// event-driven engine: per-shard calendar queues and clock domains.
    /// The shard count is pure execution policy; the clock plan carries
    /// the same semantics as [`async_clocks`](Self::async_clocks).
    pub fn sharded_async(mut self, shards: u32, clocks: netsim_runtime::ClockPlan) -> Self {
        self.engine = EngineSpec::ShardedAsync { shards, clocks };
        self
    }

    /// Shorthand for [`engine`](Self::engine) with the distributed engine
    /// at the given worker count: shard workers speaking the `netsim-wire`
    /// binary codec over checksummed channels, coordinated centrally.
    /// Like [`shards`](Self::shards), pure execution policy.
    pub fn distributed(mut self, shards: u32) -> Self {
        self.engine = EngineSpec::Distributed { shards };
        self
    }

    /// Protocol parameters (default: derived with `δ = 0.6`, `ε = 0.1`).
    pub fn params(mut self, params: ParamsSpec) -> Self {
        self.params = params;
        self
    }

    /// Derived parameters with explicit `δ` and `ε`.
    pub fn derived_params(mut self, delta: f64, epsilon: f64) -> Self {
        self.params = ParamsSpec::Derived { delta, epsilon };
        self
    }

    /// One run with this seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seeds = SeedPolicy::Fixed(seed);
        self
    }

    /// Multi-seed policy for batches.
    pub fn seeds(mut self, seeds: SeedPolicy) -> Self {
        self.seeds = seeds;
        self
    }

    /// Network sizes to sweep in a batch (default: the topology's size).
    pub fn sizes(mut self, sizes: &[usize]) -> Self {
        self.sizes = Some(sizes.to_vec());
        self
    }

    /// Override the engine round cap.
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Attach a [`Recorder`] that observes every run this simulation
    /// executes (phase spans, counters, gauges).  Observation-only:
    /// reports are byte-identical with any recorder installed or none,
    /// and the recorder never enters the serializable spec.
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(RecorderHandle::new(recorder));
        self
    }

    /// Validate and freeze into a [`Simulation`].
    pub fn build(self) -> Result<Simulation, SimError> {
        let topology = self.topology.ok_or(SimError::Incomplete("a topology"))?;
        if self.seeds.seeds().is_empty() {
            return Err(SimError::Spec(
                "seed policy must produce at least one seed".into(),
            ));
        }
        let sim = Simulation {
            run: RunSpec {
                version: SPEC_VERSION,
                topology,
                workload: self.workload,
                placement: self.placement,
                adversary: self.adversary,
                fault: self.fault,
                engine: self.engine,
                params: self.params,
                seed: self.seeds.primary(),
                max_rounds: self.max_rounds,
            },
            seeds: self.seeds,
            sizes: self.sizes,
            recorder: self.recorder,
        };
        sim.run.validate()?;
        Ok(sim)
    }
}

/// A validated, executable simulation (single run or batch).
#[derive(Clone, Debug)]
pub struct Simulation {
    run: RunSpec,
    seeds: SeedPolicy,
    sizes: Option<Vec<usize>>,
    recorder: Option<RecorderHandle>,
}

impl Simulation {
    /// Start building a simulation.
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder::default()
    }

    /// The single-run spec (the seed policy's primary seed).
    pub fn spec(&self) -> &RunSpec {
        &self.run
    }

    /// The campaign spec (all seeds and sizes).
    pub fn batch_spec(&self) -> BatchSpec {
        BatchSpec {
            version: SPEC_VERSION,
            run: self.run.clone(),
            seeds: self.seeds.clone(),
            sizes: self.sizes.clone(),
        }
    }

    /// The recorder attached at build time, if any.
    pub fn recorder(&self) -> Option<&dyn Recorder> {
        self.recorder.as_ref().map(RecorderHandle::as_dyn)
    }

    /// Execute a single run through an explicit registry.
    pub fn run_with(&self, registry: &dyn ScenarioRegistry) -> Result<RunReport, SimError> {
        execute_spec_recorded(&self.run, registry, self.recorder())
    }

    /// Execute the batch through an explicit registry (parallel over runs).
    pub fn run_batch_with(&self, registry: &dyn ScenarioRegistry) -> Result<BatchReport, SimError> {
        execute_batch_recorded(&self.batch_spec(), registry, self.recorder())
    }

    /// Execute a single run with the core-only registry (counting workloads,
    /// null adversary).  Use the facade's `.run()` for the full registry.
    pub fn run_core(&self) -> Result<RunReport, SimError> {
        self.run_with(&CoreRegistry)
    }

    /// Execute the batch with the core-only registry.
    pub fn run_batch_core(&self) -> Result<BatchReport, SimError> {
        self.run_batch_with(&CoreRegistry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_requires_a_topology() {
        assert!(matches!(
            Simulation::builder().build(),
            Err(SimError::Incomplete("a topology"))
        ));
    }

    #[test]
    fn single_run_through_core_registry() {
        let report = Simulation::builder()
            .topology(TopologySpec::SmallWorld { n: 128, d: 6 })
            .workload(WorkloadSpec::Basic)
            .seed(7)
            .build()
            .unwrap()
            .run_core()
            .unwrap();
        assert_eq!(report.n, 128);
        assert!(report.completed);
        assert!(report.estimate.decided > 100);
        assert!(report.counting.is_some());
    }

    #[test]
    fn identical_specs_give_identical_reports() {
        let build = || {
            Simulation::builder()
                .topology(TopologySpec::SmallWorld { n: 128, d: 6 })
                .workload(WorkloadSpec::Byzantine)
                .seed(21)
                .build()
                .unwrap()
        };
        let a = build().run_core().unwrap();
        let b = build().run_core().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn batches_aggregate_per_size() {
        let report = Simulation::builder()
            .topology(TopologySpec::SmallWorld { n: 64, d: 6 })
            .workload(WorkloadSpec::Basic)
            .seeds(SeedPolicy::Sequence { base: 3, count: 4 })
            .sizes(&[64, 128])
            .build()
            .unwrap()
            .run_batch_core()
            .unwrap();
        assert_eq!(report.runs.len(), 8);
        assert_eq!(report.aggregates.len(), 2);
        let small = report.aggregate_for(64).unwrap();
        assert_eq!(small.runs, 4);
        assert!(small.good_fraction.is_some());
    }

    #[test]
    fn core_registry_rejects_baselines_and_adversaries() {
        let err = Simulation::builder()
            .topology(TopologySpec::SmallWorld { n: 64, d: 6 })
            .workload(WorkloadSpec::GeometricSupport {
                ttl: None,
                attack: crate::sim::AttackSpec::None,
            })
            .build()
            .unwrap()
            .run_core()
            .unwrap_err();
        assert!(matches!(err, SimError::Unsupported(_)));
        let err = Simulation::builder()
            .topology(TopologySpec::SmallWorld { n: 64, d: 6 })
            .adversary(AdversarySpec::Combined)
            .placement(PlacementSpec::RandomBudget { delta: 0.6 })
            .build()
            .unwrap()
            .run_core()
            .unwrap_err();
        assert!(matches!(err, SimError::Unsupported(_)));
    }
}
