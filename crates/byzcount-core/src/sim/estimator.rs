//! The common estimator interface all workloads run behind.
//!
//! An [`Estimator`] executes one workload over a materialized topology and
//! returns a [`WorkloadRun`]: per-node numeric estimates plus engine
//! metrics.  The two counting protocols implement it here; the four
//! baselines implement it in `byzcount-baselines`; anything else (custom
//! protocols, future workloads) can implement it downstream and plug into
//! the same [`SimulationBuilder`](crate::sim::SimulationBuilder) machinery.

use crate::node::CountingNode;
use crate::outcome::CountingOutcome;
use crate::params::ProtocolParams;
use crate::runner;
use crate::sim::error::SimError;
use crate::sim::spec::BuiltTopology;
use netsim_faults::{FaultPlan, FaultSpec};
use netsim_runtime::wire::IoStream;
use netsim_runtime::{
    Adversary, EngineKind, NullAdversary, Recorder, RemoteFleet, RunError, RunMetrics,
    ShardServeConfig,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// What a workload's per-node outputs estimate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Estimand {
    /// A quantity proportional to `log₂ n` (counting phases, support
    /// maxima, flood arrival rounds).
    LogN,
    /// The network size `n` itself.
    N,
    /// A diameter proxy.
    Diameter,
}

impl Estimand {
    /// Ground-truth value for a network of `n` nodes, when defined.
    pub fn truth(&self, n: usize) -> Option<f64> {
        match self {
            Estimand::LogN => Some(netsim_graph::log2n(n)),
            Estimand::N => Some(n as f64),
            Estimand::Diameter => None,
        }
    }
}

/// Everything an estimator needs for one execution.
pub struct SimContext<'a> {
    /// The materialized topology.
    pub topology: &'a BuiltTopology,
    /// Byzantine mask.
    pub byzantine: &'a [bool],
    /// Execution seed (already an independent sub-stream of the spec seed).
    pub seed: u64,
    /// Engine round-cap override.
    pub max_rounds: Option<u64>,
    /// Network fault injection to apply to honest traffic.
    pub fault: &'a FaultSpec,
    /// Fault-stream seed (an independent sub-stream of the spec seed).
    pub fault_seed: u64,
    /// Which engine implementation executes the run (execution policy
    /// only: results are byte-identical across engines and shard counts).
    pub engine: EngineKind,
    /// Optional observer for phase spans, counters and gauges.
    /// Observation-only: reports are byte-identical with any recorder
    /// installed or none.
    pub recorder: Option<&'a dyn Recorder>,
    /// Optional remote shard-worker fleet for the distributed engine.
    /// Pure transport policy: reports are byte-identical whether shard
    /// workers run as in-process threads or remote processes.  Ignored by
    /// the non-distributed engines.
    pub fleet: Option<&'a RemoteFleet>,
}

impl SimContext<'_> {
    /// Materialize the context's [`FaultSpec`] into an engine-ready plan
    /// (`None` when the spec is fault-free).  Churn eligibility is the
    /// honest complement of the Byzantine mask.
    pub fn build_fault_plan(&self) -> Option<Box<dyn FaultPlan>> {
        if self.fault.is_none() {
            return None;
        }
        let honest: Vec<bool> = self.byzantine.iter().map(|b| !b).collect();
        self.fault
            .build_plan(self.topology.len(), &honest, self.fault_seed)
    }
}

/// The raw result of one workload execution.
#[derive(Clone, Debug)]
pub struct WorkloadRun {
    /// What the numbers estimate.
    pub estimand: Estimand,
    /// Per-node estimate (`None` = crashed or undecided).
    pub per_node: Vec<Option<f64>>,
    /// Per-node crash flag.
    pub crashed: Vec<bool>,
    /// Engine metrics.
    pub metrics: RunMetrics,
    /// Whether every honest node decided or crashed before the round cap.
    pub completed: bool,
    /// The full counting outcome, when the workload was a counting protocol.
    pub counting: Option<CountingOutcome>,
}

/// A workload that can run over any topology.
pub trait Estimator: Send + Sync {
    /// Stable workload name for reports.
    fn name(&self) -> &'static str;

    /// What the per-node outputs estimate.
    fn estimand(&self) -> Estimand;

    /// Execute once.
    fn run(&self, ctx: &SimContext<'_>) -> Result<WorkloadRun, SimError>;

    /// Serve one shard-worker session for this workload: rebuild the node
    /// states for global ids `cfg.start..end` exactly as [`run`](Self::run)
    /// would and drive them round-by-round under the dialing coordinator's
    /// commands until its Finish frame.
    ///
    /// `ctx` is the worker's reconstruction of the coordinator's context
    /// (same spec, same derived seeds); `chan` is the already-handshaken
    /// coordinator connection.  The default declines — only workloads whose
    /// state construction is a pure function of `(spec, global node id)`
    /// can serve shards, which is exactly what the distributed engine's
    /// byte-identity contract requires.
    fn serve_shard(
        &self,
        ctx: &SimContext<'_>,
        cfg: &ShardServeConfig,
        end: usize,
        chan: &mut IoStream,
    ) -> Result<(), SimError> {
        let _ = (ctx, cfg, end, chan);
        Err(SimError::Unsupported(format!(
            "workload `{}` cannot serve shard-worker sessions",
            self.name()
        )))
    }
}

/// Builds a fresh adversary for each run of a counting workload (adversaries
/// are stateful and consumed by the engine, so batches need a factory, not
/// an instance).
pub trait AdversaryFactory: Send + Sync {
    /// Build an adversary for this execution.
    fn build(
        &self,
        ctx: &SimContext<'_>,
        params: &ProtocolParams,
    ) -> Result<Box<dyn Adversary<CountingNode>>, SimError>;
}

/// The factory for [`NullAdversary`].
#[derive(Clone, Copy, Debug, Default)]
pub struct NullAdversaryFactory;

impl AdversaryFactory for NullAdversaryFactory {
    fn build(
        &self,
        _ctx: &SimContext<'_>,
        _params: &ProtocolParams,
    ) -> Result<Box<dyn Adversary<CountingNode>>, SimError> {
        Ok(Box::new(NullAdversary))
    }
}

/// Closures are factories.
impl<F> AdversaryFactory for F
where
    F: Fn(&SimContext<'_>, &ProtocolParams) -> Result<Box<dyn Adversary<CountingNode>>, SimError>
        + Send
        + Sync,
{
    fn build(
        &self,
        ctx: &SimContext<'_>,
        params: &ProtocolParams,
    ) -> Result<Box<dyn Adversary<CountingNode>>, SimError> {
        self(ctx, params)
    }
}

/// Algorithm 1 or Algorithm 2 as an [`Estimator`].
pub struct CountingEstimator {
    params: ProtocolParams,
    verify: bool,
    adversary: Arc<dyn AdversaryFactory>,
}

impl CountingEstimator {
    /// Algorithm 1 (no verification).
    pub fn basic(params: ProtocolParams, adversary: Arc<dyn AdversaryFactory>) -> Self {
        CountingEstimator {
            params,
            verify: false,
            adversary,
        }
    }

    /// Algorithm 2 (Byzantine-tolerant).
    pub fn byzantine(params: ProtocolParams, adversary: Arc<dyn AdversaryFactory>) -> Self {
        CountingEstimator {
            params,
            verify: true,
            adversary,
        }
    }

    /// The parameters this estimator runs with.
    pub fn params(&self) -> &ProtocolParams {
        &self.params
    }
}

impl Estimator for CountingEstimator {
    fn name(&self) -> &'static str {
        if self.verify {
            "byzantine-counting"
        } else {
            "basic-counting"
        }
    }

    fn estimand(&self) -> Estimand {
        Estimand::LogN
    }

    fn run(&self, ctx: &SimContext<'_>) -> Result<WorkloadRun, SimError> {
        let adversary = self.adversary.build(ctx, &self.params)?;
        let outcome = runner::run_counting_fleet(
            ctx.topology,
            &self.params,
            ctx.byzantine,
            adversary,
            self.verify,
            ctx.seed,
            ctx.max_rounds,
            ctx.build_fault_plan(),
            ctx.engine,
            ctx.recorder,
            ctx.fleet,
        )?;
        Ok(WorkloadRun {
            estimand: Estimand::LogN,
            per_node: outcome
                .estimates
                .iter()
                .map(|e| e.map(|p| p as f64))
                .collect(),
            crashed: outcome.crashed.clone(),
            metrics: outcome.metrics.clone(),
            completed: outcome.completed,
            counting: Some(outcome),
        })
    }

    fn serve_shard(
        &self,
        ctx: &SimContext<'_>,
        cfg: &ShardServeConfig,
        end: usize,
        chan: &mut IoStream,
    ) -> Result<(), SimError> {
        let nodes = runner::counting_nodes(&self.params, self.verify, cfg.start..end);
        let byzantine = ctx.byzantine[cfg.start..end].to_vec();
        netsim_runtime::serve_shard_session(ctx.topology, nodes, byzantine, cfg, chan).map_err(
            |e| {
                SimError::Engine(RunError::Fleet(format!(
                    "shard session ({}..{end}): {e}",
                    cfg.start
                )))
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::spec::TopologySpec;

    #[test]
    fn estimand_truths() {
        assert_eq!(Estimand::LogN.truth(1024), Some(10.0));
        assert_eq!(Estimand::N.truth(77), Some(77.0));
        assert_eq!(Estimand::Diameter.truth(10), None);
    }

    #[test]
    fn counting_estimator_runs_over_built_topology() {
        let topo = TopologySpec::SmallWorld { n: 128, d: 6 }.build(3).unwrap();
        let params = ProtocolParams::for_degree(6, 0.6, 0.1);
        let est = CountingEstimator::basic(params, Arc::new(NullAdversaryFactory));
        let byz = vec![false; 128];
        let ctx = SimContext {
            topology: &topo,
            byzantine: &byz,
            seed: 1,
            max_rounds: None,
            fault: &FaultSpec::None,
            fault_seed: 0,
            engine: EngineKind::Sync,
            recorder: None,
            fleet: None,
        };
        let run = est.run(&ctx).unwrap();
        assert!(run.completed);
        assert_eq!(run.per_node.len(), 128);
        assert!(run.counting.is_some());
        assert_eq!(run.estimand, Estimand::LogN);
    }
}
