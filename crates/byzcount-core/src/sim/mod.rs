//! # The unified simulation API
//!
//! One typed entry point for every scenario the workspace can execute:
//! both counting protocols (Algorithms 1 and 2), all four baseline
//! estimators, every adversary, any [`Topology`](netsim_runtime::Topology)
//! (small-world, Watts–Strogatz, trees, raw CSR graphs), and batched
//! multi-seed / multi-size campaigns with aggregated statistics.
//!
//! The moving parts:
//!
//! * [`RunSpec`] / [`BatchSpec`] — versioned, JSON-serializable run
//!   descriptions ([`SPEC_VERSION`]); a spec plus its seed reproduces a run
//!   bit-for-bit on any machine.
//! * [`SimulationBuilder`] → [`Simulation`] — the typed builder that
//!   assembles specs and executes them.
//! * [`Estimator`] — the common interface all workloads run behind;
//!   implemented here for the counting protocols and in
//!   `byzcount-baselines` for the four baselines.
//! * [`ScenarioRegistry`] — maps spec variants to estimators.  The
//!   [`CoreRegistry`] covers counting + null adversary; the full registry
//!   (baselines, knowledge-based adversaries) is
//!   `byzcount_analysis::campaign::FullRegistry`, re-exported with
//!   convenience `.run()` / `.run_batch()` methods through the `byzcount`
//!   facade prelude.
//! * [`RunReport`] / [`BatchReport`] — deterministic, JSON-serializable
//!   result summaries ready for cross-run diffing.

mod builder;
mod error;
mod estimator;
mod report;
mod spec;

pub use builder::{
    execute_batch, execute_batch_recorded, execute_batch_workers, execute_spec,
    execute_spec_recorded, execute_spec_workers, serve_shard_conn, shard_serve_error, CoreRegistry,
    PreparedRun, RecorderHandle, ScenarioRegistry, Simulation, SimulationBuilder,
    SHARD_HELLO_TIMEOUT,
};
pub use error::SimError;
pub use estimator::{
    AdversaryFactory, CountingEstimator, Estimand, Estimator, NullAdversaryFactory, SimContext,
    WorkloadRun,
};
pub use report::{
    Aggregate, BatchReport, CountingSummary, EstimateStats, RunReport, SizeAggregate,
};
pub use spec::{
    cell_seed, AdversarySpec, AttackSpec, BatchSpec, BuiltTopology, EngineSpec, ParamsSpec,
    PlacementSpec, RunSpec, SeedPolicy, TimingSpec, TopologySpec, WorkloadSpec, SPEC_VERSION,
};

/// The runtime-side engine selection an [`EngineSpec`] resolves to, and
/// the async engine's per-node clock model (re-exported from
/// [`netsim_runtime`]).
pub use netsim_runtime::{
    ClockPlan, EngineKind, NoopRecorder, Recorder, RemoteFleet, RunError, ShardServeConfig,
};

/// The fault layer's serializable description, embedded in every
/// [`RunSpec`] (re-exported from [`netsim_faults`]).
pub use netsim_faults::FaultSpec;
