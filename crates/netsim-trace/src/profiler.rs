//! [`PhaseProfiler`]: wall-clock span timings per engine phase,
//! aggregated into log-bucketed histograms.

use crate::histogram::LogHistogram;
use crate::recorder::{Counter, Gauge, Phase, Recorder, PHASES};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Aggregated timing statistics of one phase (nanoseconds).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Phase name from the fixed vocabulary.
    pub phase: String,
    /// Spans observed.
    pub count: u64,
    /// Total nanoseconds across all spans.
    pub sum_ns: u64,
    /// Median span duration (log-bucket upper bound).
    pub p50_ns: u64,
    /// 90th-percentile span duration.
    pub p90_ns: u64,
    /// 99th-percentile span duration.
    pub p99_ns: u64,
}

/// The profiler's report: one [`PhaseStats`] per phase that was observed
/// at least once, in fixed vocabulary order.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Per-phase statistics.
    pub phases: Vec<PhaseStats>,
}

impl PhaseProfile {
    /// The stats of a named phase, if observed.
    pub fn phase(&self, name: &str) -> Option<&PhaseStats> {
        self.phases.iter().find(|p| p.phase == name)
    }

    /// Sum of all *sub*-phase durations (everything except the enclosing
    /// `round` span).
    pub fn subphase_sum_ns(&self) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.phase != Phase::Round.name())
            .map(|p| p.sum_ns)
            .sum()
    }

    /// Render a compact human-readable table.
    pub fn render(&self) -> String {
        let mut out =
            String::from("phase            count        sum_ms    p50_us    p90_us    p99_us\n");
        for p in &self.phases {
            out.push_str(&format!(
                "{:<16} {:>6} {:>13.3} {:>9.1} {:>9.1} {:>9.1}\n",
                p.phase,
                p.count,
                p.sum_ns as f64 / 1e6,
                p.p50_ns as f64 / 1e3,
                p.p90_ns as f64 / 1e3,
                p.p99_ns as f64 / 1e3,
            ));
        }
        out
    }
}

struct ProfilerState {
    /// Open spans keyed by (shard, phase index).
    open: HashMap<(u32, usize), Instant>,
    /// One histogram per phase, aggregated across shards.
    hist: Vec<LogHistogram>,
}

/// A [`Recorder`] that times every phase span with the monotone wall
/// clock and aggregates durations into per-phase [`LogHistogram`]s.
/// Counters and gauges are ignored.  All interior mutability sits behind
/// one mutex taken only at phase boundaries (a handful of times per
/// round), never per envelope.
pub struct PhaseProfiler {
    inner: Mutex<ProfilerState>,
}

impl Default for PhaseProfiler {
    fn default() -> Self {
        PhaseProfiler {
            inner: Mutex::new(ProfilerState {
                open: HashMap::new(),
                hist: (0..PHASES.len()).map(|_| LogHistogram::new()).collect(),
            }),
        }
    }
}

impl PhaseProfiler {
    /// Fresh profiler with empty histograms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the aggregated per-phase statistics.
    pub fn report(&self) -> PhaseProfile {
        let state = self.inner.lock().expect("profiler lock");
        let mut phases = Vec::new();
        for p in PHASES {
            let h = &state.hist[p.index()];
            if h.count() == 0 {
                continue;
            }
            phases.push(PhaseStats {
                phase: p.name().to_string(),
                count: h.count(),
                sum_ns: h.sum(),
                p50_ns: h.quantile(0.50),
                p90_ns: h.quantile(0.90),
                p99_ns: h.quantile(0.99),
            });
        }
        PhaseProfile { phases }
    }
}

impl Recorder for PhaseProfiler {
    fn phase_begin(&self, shard: u32, _time: u64, phase: Phase) {
        let mut state = self.inner.lock().expect("profiler lock");
        state.open.insert((shard, phase.index()), Instant::now());
    }

    fn phase_end(&self, shard: u32, _time: u64, phase: Phase) {
        let mut state = self.inner.lock().expect("profiler lock");
        if let Some(start) = state.open.remove(&(shard, phase.index())) {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            state.hist[phase.index()].record(ns);
        }
    }

    fn add(&self, _: u32, _: u64, _: Counter, _: u64) {}
    fn gauge(&self, _: u32, _: u64, _: Gauge, _: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_land_in_the_right_phase() {
        let prof = PhaseProfiler::new();
        for round in 0..10u64 {
            prof.phase_begin(0, round, Phase::Round);
            prof.phase_begin(0, round, Phase::NodeStep);
            prof.phase_end(0, round, Phase::NodeStep);
            prof.phase_end(0, round, Phase::Round);
        }
        let report = prof.report();
        assert_eq!(report.phases.len(), 2);
        assert_eq!(report.phase("round").unwrap().count, 10);
        assert_eq!(report.phase("node-step").unwrap().count, 10);
        assert!(report.phase("round").unwrap().sum_ns >= report.subphase_sum_ns());
        assert!(report.phase("churn").is_none());
    }

    #[test]
    fn unmatched_end_is_ignored() {
        let prof = PhaseProfiler::new();
        prof.phase_end(0, 0, Phase::Routing);
        assert!(prof.report().phases.is_empty());
    }

    #[test]
    fn profile_serde_round_trips() {
        let prof = PhaseProfiler::new();
        prof.phase_begin(3, 7, Phase::Churn);
        prof.phase_end(3, 7, Phase::Churn);
        let report = prof.report();
        let json = serde_json::to_string(&report).unwrap();
        let back: PhaseProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!(!report.render().is_empty());
    }
}
