//! [`CounterSet`]: per-shard monotone counters and high-water gauges.

use crate::recorder::{Counter, Gauge, Phase, Recorder};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// One accumulated counter cell.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterValue {
    /// Counter name from the fixed vocabulary.
    pub counter: String,
    /// The shard that emitted it ([`u32::MAX`] = the sharded router).
    pub shard: u32,
    /// Accumulated total.
    pub value: u64,
}

/// One gauge high-water cell.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeValue {
    /// Gauge name from the fixed vocabulary.
    pub gauge: String,
    /// The shard that emitted it.
    pub shard: u32,
    /// Maximum value observed.
    pub max: u64,
}

/// A deterministic snapshot of a [`CounterSet`] (sorted by name, then
/// shard).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Monotone counters.
    pub counters: Vec<CounterValue>,
    /// High-water gauges.
    pub gauges: Vec<GaugeValue>,
}

impl CounterSnapshot {
    /// Total of a named counter across shards.
    pub fn total(&self, counter: Counter) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.counter == counter.name())
            .map(|c| c.value)
            .sum()
    }

    /// The per-shard value of a named counter.
    pub fn of_shard(&self, counter: Counter, shard: u32) -> u64 {
        self.counters
            .iter()
            .find(|c| c.counter == counter.name() && c.shard == shard)
            .map_or(0, |c| c.value)
    }

    /// The maximum of a named gauge across shards.
    pub fn gauge_max(&self, gauge: Gauge) -> u64 {
        self.gauges
            .iter()
            .filter(|g| g.gauge == gauge.name())
            .map(|g| g.max)
            .max()
            .unwrap_or(0)
    }
}

#[derive(Default)]
struct CounterState {
    counters: BTreeMap<(&'static str, u32), u64>,
    gauges: BTreeMap<(&'static str, u32), u64>,
}

/// A [`Recorder`] that accumulates counters per `(counter, shard)` and
/// keeps the per-shard maximum of every gauge.  Phase spans are ignored.
#[derive(Default)]
pub struct CounterSet {
    inner: Mutex<CounterState>,
}

impl CounterSet {
    /// Fresh, all-zero counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the current totals in deterministic order.
    pub fn snapshot(&self) -> CounterSnapshot {
        let state = self.inner.lock().expect("counter lock");
        CounterSnapshot {
            counters: state
                .counters
                .iter()
                .map(|(&(name, shard), &value)| CounterValue {
                    counter: name.to_string(),
                    shard,
                    value,
                })
                .collect(),
            gauges: state
                .gauges
                .iter()
                .map(|(&(name, shard), &max)| GaugeValue {
                    gauge: name.to_string(),
                    shard,
                    max,
                })
                .collect(),
        }
    }
}

impl Recorder for CounterSet {
    fn phase_begin(&self, _: u32, _: u64, _: Phase) {}
    fn phase_end(&self, _: u32, _: u64, _: Phase) {}

    fn add(&self, shard: u32, _time: u64, counter: Counter, delta: u64) {
        if delta == 0 {
            return;
        }
        let mut state = self.inner.lock().expect("counter lock");
        *state.counters.entry((counter.name(), shard)).or_insert(0) += delta;
    }

    fn gauge(&self, shard: u32, _time: u64, gauge: Gauge, value: u64) {
        let mut state = self.inner.lock().expect("counter lock");
        let slot = state.gauges.entry((gauge.name(), shard)).or_insert(0);
        if value > *slot {
            *slot = value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_shard_and_total() {
        let set = CounterSet::new();
        set.add(0, 1, Counter::MessagesDelivered, 5);
        set.add(1, 1, Counter::MessagesDelivered, 7);
        set.add(0, 2, Counter::MessagesDelivered, 3);
        set.add(0, 2, Counter::MessagesDropped, 0); // zero deltas vanish
        let snap = set.snapshot();
        assert_eq!(snap.total(Counter::MessagesDelivered), 15);
        assert_eq!(snap.of_shard(Counter::MessagesDelivered, 0), 8);
        assert_eq!(snap.of_shard(Counter::MessagesDelivered, 1), 7);
        assert_eq!(snap.total(Counter::MessagesDropped), 0);
        assert!(snap
            .counters
            .iter()
            .all(|c| c.counter != "messages_dropped"));
    }

    #[test]
    fn gauges_keep_the_high_water_mark() {
        let set = CounterSet::new();
        set.gauge(2, 0, Gauge::CalendarOccupancy, 10);
        set.gauge(2, 1, Gauge::CalendarOccupancy, 25);
        set.gauge(2, 2, Gauge::CalendarOccupancy, 4);
        let snap = set.snapshot();
        assert_eq!(snap.gauge_max(Gauge::CalendarOccupancy), 25);
        assert_eq!(snap.gauge_max(Gauge::HonestArenaHighWater), 0);
    }

    #[test]
    fn snapshot_serde_round_trips() {
        let set = CounterSet::new();
        set.add(u32::MAX, 3, Counter::CrossShardRouted, 9);
        set.gauge(0, 3, Gauge::HonestArenaHighWater, 512);
        let snap = set.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: CounterSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
