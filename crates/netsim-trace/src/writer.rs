//! [`TraceWriter`]: an NDJSON stream of Chrome-trace-event-compatible
//! records.
//!
//! Each line is one JSON object with the Chrome trace-event fields
//! (`name`, `cat`, `ph`, `ts`, `pid`, `tid`, `args`): `"B"`/`"E"` span
//! pairs for phases and `"C"` records for counters/gauges.  The `ts`
//! field is a **logical ordinal**, not wall clock: events are buffered
//! during the run, sorted by the deterministic key `(logical time,
//! shard, per-shard emission order)` at [`finish`](Recorder::finish),
//! and numbered 0.. in that order.  The resulting file is therefore
//! byte-identical across repeat runs of the same spec+seed, regardless
//! of shard-thread interleaving.  [`TraceWriter::with_wall_time`] opts
//! into an extra nondeterministic `wall_ns` field on span ends for
//! humans who want real durations.

use crate::recorder::{Counter, Gauge, Phase, Recorder};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

enum EvKind {
    Begin(Phase),
    End(Phase, Option<u64>),
    Counter(Counter, u64),
    Gauge(Gauge, u64),
}

struct Ev {
    time: u64,
    shard: u32,
    seq: u64,
    kind: EvKind,
}

#[derive(Default)]
struct WriterState {
    events: Vec<Ev>,
    /// Per-shard emission counters (the deterministic within-shard order).
    shard_seq: HashMap<u32, u64>,
    /// Open spans, for optional wall-clock durations.
    open: HashMap<(u32, usize), Instant>,
}

/// A [`Recorder`] that buffers every observation and renders the sorted
/// NDJSON trace at [`finish`](Recorder::finish) (or on demand via
/// [`render`](TraceWriter::render)).
pub struct TraceWriter {
    inner: Mutex<WriterState>,
    path: Option<PathBuf>,
    wall: bool,
}

impl TraceWriter {
    /// Buffer in memory only; fetch the trace with
    /// [`render`](TraceWriter::render).
    pub fn in_memory() -> Self {
        TraceWriter {
            inner: Mutex::new(WriterState::default()),
            path: None,
            wall: false,
        }
    }

    /// Write the trace to `path` when [`finish`](Recorder::finish) is
    /// called.
    pub fn to_path(path: impl Into<PathBuf>) -> Self {
        TraceWriter {
            inner: Mutex::new(WriterState::default()),
            path: Some(path.into()),
            wall: false,
        }
    }

    /// Also emit a nondeterministic `wall_ns` duration on every span-end
    /// record.  Off by default, keeping trace files byte-deterministic.
    pub fn with_wall_time(mut self) -> Self {
        self.wall = true;
        self
    }

    fn push(&self, time: u64, shard: u32, kind: EvKind) {
        let mut state = self.inner.lock().expect("trace lock");
        let seq = state.shard_seq.entry(shard).or_insert(0);
        let seq_now = *seq;
        *seq += 1;
        state.events.push(Ev {
            time,
            shard,
            seq: seq_now,
            kind,
        });
    }

    /// Render the sorted NDJSON trace.
    pub fn render(&self) -> String {
        let mut state = self.inner.lock().expect("trace lock");
        state.events.sort_by_key(|e| (e.time, e.shard, e.seq));
        let mut out = String::with_capacity(state.events.len() * 96);
        for (ts, ev) in state.events.iter().enumerate() {
            render_event(&mut out, ts as u64, ev);
        }
        out
    }

    /// [`render`](TraceWriter::render) and write to `path`.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let text = self.render();
        let mut file = std::fs::File::create(path)?;
        file.write_all(text.as_bytes())?;
        file.flush()
    }
}

fn render_event(out: &mut String, ts: u64, ev: &Ev) {
    let (name, cat, ph, value, wall): (&str, &str, &str, Option<u64>, Option<u64>) = match &ev.kind
    {
        EvKind::Begin(p) => (
            p.name(),
            if *p == Phase::Round { "round" } else { "phase" },
            "B",
            None,
            None,
        ),
        EvKind::End(p, wall) => (
            p.name(),
            if *p == Phase::Round { "round" } else { "phase" },
            "E",
            None,
            *wall,
        ),
        EvKind::Counter(c, v) => (c.name(), "counter", "C", Some(*v), None),
        EvKind::Gauge(g, v) => (g.name(), "gauge", "C", Some(*v), None),
    };
    out.push_str(&format!(
        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"{ph}\",\"ts\":{ts},\
         \"pid\":0,\"tid\":{},\"args\":{{\"t\":{}",
        ev.shard, ev.time
    ));
    if let Some(v) = value {
        out.push_str(&format!(",\"value\":{v}"));
    }
    if let Some(ns) = wall {
        out.push_str(&format!(",\"wall_ns\":{ns}"));
    }
    out.push_str("}}\n");
}

impl Recorder for TraceWriter {
    fn phase_begin(&self, shard: u32, time: u64, phase: Phase) {
        if self.wall {
            let mut state = self.inner.lock().expect("trace lock");
            state.open.insert((shard, phase.index()), Instant::now());
        }
        self.push(time, shard, EvKind::Begin(phase));
    }

    fn phase_end(&self, shard: u32, time: u64, phase: Phase) {
        let wall = if self.wall {
            let mut state = self.inner.lock().expect("trace lock");
            state
                .open
                .remove(&(shard, phase.index()))
                .map(|start| start.elapsed().as_nanos().min(u64::MAX as u128) as u64)
        } else {
            None
        };
        self.push(time, shard, EvKind::End(phase, wall));
    }

    fn add(&self, shard: u32, time: u64, counter: Counter, delta: u64) {
        if delta == 0 {
            return;
        }
        self.push(time, shard, EvKind::Counter(counter, delta));
    }

    fn gauge(&self, shard: u32, time: u64, gauge: Gauge, value: u64) {
        self.push(time, shard, EvKind::Gauge(gauge, value));
    }

    fn finish(&self) {
        if let Some(path) = &self.path {
            if let Err(err) = self.write_to(path) {
                eprintln!("trace: failed to write {}: {err}", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_trace;

    fn emit_round(w: &TraceWriter, shard: u32, round: u64) {
        w.phase_begin(shard, round, Phase::Round);
        w.phase_begin(shard, round, Phase::NodeStep);
        w.phase_end(shard, round, Phase::NodeStep);
        w.add(shard, round, Counter::MessagesDelivered, 4);
        w.gauge(shard, round, Gauge::HonestArenaHighWater, 128);
        w.phase_end(shard, round, Phase::Round);
    }

    #[test]
    fn trace_is_wellformed_and_deterministic() {
        let render = |order_flip: bool| {
            let w = TraceWriter::in_memory();
            // Interleave two shards in either order: the rendered trace
            // must not care (per-shard order is what is deterministic).
            for round in 0..3u64 {
                if order_flip {
                    emit_round(&w, 1, round);
                    emit_round(&w, 0, round);
                } else {
                    emit_round(&w, 0, round);
                    emit_round(&w, 1, round);
                }
            }
            w.render()
        };
        let a = render(false);
        let b = render(true);
        assert_eq!(a, b, "trace bytes must not depend on shard interleaving");
        let check = check_trace(&a).unwrap();
        assert_eq!(check.open_spans, 0);
        assert_eq!(check.counter_total("messages_delivered"), 24);
        assert_eq!(check.gauge_max("honest_arena_high_water"), 128);
    }

    #[test]
    fn zero_deltas_are_suppressed() {
        let w = TraceWriter::in_memory();
        w.add(0, 0, Counter::MessagesDropped, 0);
        assert!(w.render().is_empty());
    }

    #[test]
    fn wall_time_is_opt_in() {
        let w = TraceWriter::in_memory().with_wall_time();
        w.phase_begin(0, 0, Phase::Round);
        w.phase_end(0, 0, Phase::Round);
        assert!(w.render().contains("wall_ns"));
        let w = TraceWriter::in_memory();
        w.phase_begin(0, 0, Phase::Round);
        w.phase_end(0, 0, Phase::Round);
        assert!(!w.render().contains("wall_ns"));
    }

    #[test]
    fn finish_writes_the_file() {
        let path =
            std::env::temp_dir().join(format!("netsim-trace-writer-{}.ndjson", std::process::id()));
        let w = TraceWriter::to_path(&path);
        emit_round(&w, 0, 0);
        w.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, w.render());
        std::fs::remove_file(&path).unwrap();
    }
}
