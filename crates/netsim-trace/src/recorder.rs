//! The [`Recorder`] trait: the fixed observation vocabulary the engines
//! emit, and the no-op / fan-out plumbing around it.

use std::sync::Arc;

/// The `tid` the sharded engine's router (cut + cross-shard routing)
/// reports under — sorts after every real shard of the same round.
pub const SHARD_ROUTER: u32 = u32::MAX;

/// The engine phases a round (or async tick) decomposes into, plus the
/// enclosing [`Phase::Round`] span.  This is a *fixed vocabulary*: trace
/// consumers (the well-formedness check, the profiler report) reject
/// names outside it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// The enclosing span of one whole round (sync/sharded) or tick
    /// (async).
    Round,
    /// Fault-plan churn: crash/recover decisions at round start.
    Churn,
    /// Honest and Byzantine nodes consume inboxes and fill outboxes.
    NodeStep,
    /// The adversary inspects the cut and chooses its actions (including
    /// applying them).
    AdversaryCut,
    /// Envelope routing/delivery, including the fault-plan fate
    /// consultation and (sharded) the cross-shard exchange.
    Routing,
    /// Draining delay-deferred envelopes that came due this round.
    DeferredDrain,
}

/// Every phase, in span-nesting order.
pub const PHASES: [Phase; 6] = [
    Phase::Round,
    Phase::Churn,
    Phase::NodeStep,
    Phase::AdversaryCut,
    Phase::Routing,
    Phase::DeferredDrain,
];

impl Phase {
    /// The wire name (trace records, profiler reports).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Round => "round",
            Phase::Churn => "churn",
            Phase::NodeStep => "node-step",
            Phase::AdversaryCut => "adversary-cut",
            Phase::Routing => "routing",
            Phase::DeferredDrain => "deferred-drain",
        }
    }

    /// Dense index (stable across versions only within one process).
    pub fn index(self) -> usize {
        match self {
            Phase::Round => 0,
            Phase::Churn => 1,
            Phase::NodeStep => 2,
            Phase::AdversaryCut => 3,
            Phase::Routing => 4,
            Phase::DeferredDrain => 5,
        }
    }

    /// Inverse of [`Phase::name`].
    pub fn from_name(name: &str) -> Option<Phase> {
        PHASES.iter().copied().find(|p| p.name() == name)
    }
}

/// Monotone counters.  Each maps 1:1 onto a `RunMetrics` field (or an
/// engine-internal volume), so totals derived from a trace can be
/// cross-checked against the run's metrics bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Counter {
    /// Envelopes delivered into an inbox.
    MessagesDelivered,
    /// Envelopes the adversary (or an engine rule) discarded.
    MessagesDropped,
    /// Honest envelopes lost by the fault plan.
    MessagesLost,
    /// Honest envelopes deferred by the fault plan.
    MessagesDelayed,
    /// Deferred envelopes that expired before coming due.
    MessagesExpired,
    /// Honest nodes crashed by churn.
    ChurnCrashes,
    /// Honest nodes recovered by churn.
    ChurnRecoveries,
    /// Rounds (sync/sharded) or ticks (async) completed.
    Rounds,
    /// Envelopes that crossed a shard boundary through the router.
    CrossShardRouted,
    /// Idle ticks the sparse-ticking async engines jumped over without
    /// executing.  Skipped ticks still count into [`Counter::Rounds`]
    /// (they are observationally completed ticks); this counter reports
    /// how many of those were never visited, i.e. the work the
    /// next-event-time skip saved.
    TicksSkipped,
}

/// Every counter, in report order.
pub const COUNTERS: [Counter; 10] = [
    Counter::MessagesDelivered,
    Counter::MessagesDropped,
    Counter::MessagesLost,
    Counter::MessagesDelayed,
    Counter::MessagesExpired,
    Counter::ChurnCrashes,
    Counter::ChurnRecoveries,
    Counter::Rounds,
    Counter::CrossShardRouted,
    Counter::TicksSkipped,
];

impl Counter {
    /// The wire name; matches the `RunMetrics` field where one exists.
    pub fn name(self) -> &'static str {
        match self {
            Counter::MessagesDelivered => "messages_delivered",
            Counter::MessagesDropped => "messages_dropped",
            Counter::MessagesLost => "messages_lost",
            Counter::MessagesDelayed => "messages_delayed",
            Counter::MessagesExpired => "messages_expired",
            Counter::ChurnCrashes => "churn_crashes",
            Counter::ChurnRecoveries => "churn_recoveries",
            Counter::Rounds => "rounds",
            Counter::CrossShardRouted => "cross_shard_routed",
            Counter::TicksSkipped => "ticks_skipped",
        }
    }

    /// Inverse of [`Counter::name`].
    pub fn from_name(name: &str) -> Option<Counter> {
        COUNTERS.iter().copied().find(|c| c.name() == name)
    }
}

/// High-water / occupancy gauges (recorders keep the maximum observed).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Gauge {
    /// High-water mark of the honest envelope arena.
    HonestArenaHighWater,
    /// High-water mark of the Byzantine-default envelope arena.
    ByzArenaHighWater,
    /// Events resident in the async engine's calendar queue.
    CalendarOccupancy,
    /// Envelopes parked in the delay ring.
    DelayRingPending,
}

/// Every gauge, in report order.
pub const GAUGES: [Gauge; 4] = [
    Gauge::HonestArenaHighWater,
    Gauge::ByzArenaHighWater,
    Gauge::CalendarOccupancy,
    Gauge::DelayRingPending,
];

impl Gauge {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::HonestArenaHighWater => "honest_arena_high_water",
            Gauge::ByzArenaHighWater => "byz_arena_high_water",
            Gauge::CalendarOccupancy => "calendar_occupancy",
            Gauge::DelayRingPending => "delay_ring_pending",
        }
    }

    /// Inverse of [`Gauge::name`].
    pub fn from_name(name: &str) -> Option<Gauge> {
        GAUGES.iter().copied().find(|g| g.name() == name)
    }
}

/// The observation sink the engines emit into.
///
/// Object-safe and `Send + Sync`: one recorder instance is shared by
/// every shard worker of a sharded run.  Implementations must tolerate
/// concurrent calls from different shards (distinct `shard` values);
/// calls for one shard arrive in that shard's deterministic program
/// order.
///
/// `time` is the engine's logical time: the round number for the sync
/// and sharded engines, the tick for the async engine.  Recorders must
/// never feed anything back into the engine — observation only.
pub trait Recorder: Send + Sync {
    /// A phase span opens at logical time `time` on `shard`.
    fn phase_begin(&self, shard: u32, time: u64, phase: Phase);
    /// The matching span closes.
    fn phase_end(&self, shard: u32, time: u64, phase: Phase);
    /// `counter` advanced by `delta` during `time` on `shard`.
    fn add(&self, shard: u32, time: u64, counter: Counter, delta: u64);
    /// `gauge` was observed at `value` during `time` on `shard`.
    fn gauge(&self, shard: u32, time: u64, gauge: Gauge, value: u64);
    /// The run is over; flush buffered output.  Engines never call this —
    /// the installer does, once, after the run completes.
    fn finish(&self) {}
}

/// The default recorder: every method is empty, so a monomorphized call
/// compiles to nothing and a dyn call is a single indirect jump that is
/// never taken (engines skip the call entirely when no recorder is
/// installed).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn phase_begin(&self, _: u32, _: u64, _: Phase) {}
    fn phase_end(&self, _: u32, _: u64, _: Phase) {}
    fn add(&self, _: u32, _: u64, _: Counter, _: u64) {}
    fn gauge(&self, _: u32, _: u64, _: Gauge, _: u64) {}
}

/// Broadcast every observation to several recorders (e.g. a
/// [`TraceWriter`](crate::TraceWriter) plus a
/// [`PhaseProfiler`](crate::PhaseProfiler) when both `--trace` and
/// `--profile` are requested).
#[derive(Clone, Default)]
pub struct Fanout {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl Fanout {
    /// An empty fan-out (behaves like [`NoopRecorder`]).
    pub fn new() -> Self {
        Fanout::default()
    }

    /// Add a sink.
    pub fn push(&mut self, sink: Arc<dyn Recorder>) {
        self.sinks.push(sink);
    }

    /// Number of sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sinks are attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl Recorder for Fanout {
    fn phase_begin(&self, shard: u32, time: u64, phase: Phase) {
        for s in &self.sinks {
            s.phase_begin(shard, time, phase);
        }
    }
    fn phase_end(&self, shard: u32, time: u64, phase: Phase) {
        for s in &self.sinks {
            s.phase_end(shard, time, phase);
        }
    }
    fn add(&self, shard: u32, time: u64, counter: Counter, delta: u64) {
        for s in &self.sinks {
            s.add(shard, time, counter, delta);
        }
    }
    fn gauge(&self, shard: u32, time: u64, gauge: Gauge, value: u64) {
        for s in &self.sinks {
            s.gauge(shard, time, gauge, value);
        }
    }
    fn finish(&self) {
        for s in &self.sinks {
            s.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in PHASES {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        for c in COUNTERS {
            assert_eq!(Counter::from_name(c.name()), Some(c));
        }
        for g in GAUGES {
            assert_eq!(Gauge::from_name(g.name()), Some(g));
        }
        assert_eq!(Phase::from_name("bogus"), None);
    }

    #[test]
    fn recorder_is_object_safe_and_shareable() {
        let rec: Arc<dyn Recorder> = Arc::new(NoopRecorder);
        rec.phase_begin(0, 0, Phase::Round);
        rec.phase_end(0, 0, Phase::Round);
        let mut fan = Fanout::new();
        fan.push(rec);
        assert_eq!(fan.len(), 1);
        fan.add(0, 0, Counter::Rounds, 1);
        fan.finish();
    }
}
