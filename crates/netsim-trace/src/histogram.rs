//! A power-of-two log-bucketed histogram for nanosecond durations.
//!
//! 65 buckets cover the full `u64` range: bucket 0 holds the value 0,
//! bucket `k` holds values with bit length `k` (i.e. `[2^(k-1), 2^k)`).
//! Quantiles come back as the *upper bound* of the bucket holding the
//! requested rank — a conservative estimate with ≤ 2× relative error,
//! which is plenty for phase timings spanning orders of magnitude.

/// Log-bucketed `u64` histogram with total count and sum.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }
}

impl LogHistogram {
    /// Fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (`0.0 < q <= 1.0`); 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if bucket == 0 {
                    0
                } else if bucket >= 64 {
                    u64::MAX
                } else {
                    (1u64 << bucket) - 1
                };
            }
        }
        u64::MAX
    }

    /// Merge another histogram into this one.
    pub fn absorb(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_conservative_upper_bounds() {
        let mut h = LogHistogram::new();
        for v in [1u64, 2, 3, 100, 1000, 10_000, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 111_106);
        // p50 falls in the bucket of 100 → upper bound 127.
        assert_eq!(h.quantile(0.5), 127);
        // p99 falls in the top bucket (100_000 → [65536, 131072)).
        assert_eq!(h.quantile(0.99), 131_071);
        assert!(h.quantile(1.0) >= 100_000);
    }

    #[test]
    fn zero_and_empty_are_sane() {
        let mut h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(1.0), 0);
    }

    #[test]
    fn absorb_merges_counts_and_sums() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(10);
        b.record(20);
        b.record(30);
        a.absorb(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 60);
    }
}
