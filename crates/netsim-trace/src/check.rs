//! Trace-file well-formedness checking and counter extraction.
//!
//! [`check_trace`] is the single consumer-side authority on what a valid
//! trace looks like: every line parses as a Chrome trace event, every
//! span name comes from the fixed [`Phase`] vocabulary (counters/gauges
//! from theirs), `ts` is strictly increasing, and every `"B"` has a
//! matching `"E"` on the same `tid` in LIFO order.  It also totals the
//! counter records, which is how the trace-vs-truth cross-check compares
//! a trace against the run's `RunMetrics`.

use crate::recorder::{Counter, Gauge, Phase};
use serde::Value;
use std::collections::BTreeMap;

/// The result of a successful [`check_trace`]: shape statistics plus
/// counter totals and gauge maxima derived from the records.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Lines (= events) in the trace.
    pub events: u64,
    /// Completed spans (B/E pairs).
    pub spans: u64,
    /// Spans still open at end of file (0 in a well-formed trace; kept
    /// so callers can report *what* failed — `check_trace` errors before
    /// returning a nonzero value here).
    pub open_spans: u64,
    /// Counter totals by name, summed across shards and time.
    pub counters: BTreeMap<String, u64>,
    /// Gauge maxima by name, across shards and time.
    pub gauges: BTreeMap<String, u64>,
}

impl TraceCheck {
    /// Total of a named counter (0 if never emitted).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Maximum of a named gauge (0 if never emitted).
    pub fn gauge_max(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }
}

fn value_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Num(n) => n.as_u64(),
        _ => None,
    }
}

fn field_u64(obj: &Value, key: &str, line: usize) -> Result<u64, String> {
    value_u64(obj.field(key)).ok_or_else(|| format!("line {line}: missing or non-integer `{key}`"))
}

fn field_str<'a>(obj: &'a Value, key: &str, line: usize) -> Result<&'a str, String> {
    obj.field(key)
        .as_str()
        .ok_or_else(|| format!("line {line}: missing or non-string `{key}`"))
}

/// Validate an NDJSON trace and extract its counters.  Returns a
/// human-readable description of the first violation found.
pub fn check_trace(text: &str) -> Result<TraceCheck, String> {
    let mut check = TraceCheck::default();
    // Per-tid stacks of open span names.
    let mut open: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut last_ts: Option<u64> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        if raw.trim().is_empty() {
            return Err(format!("line {line}: blank line inside trace"));
        }
        let event = serde_json::parse_value_complete(raw)
            .map_err(|e| format!("line {line}: not valid JSON: {e}"))?;
        if event.as_obj().is_none() {
            return Err(format!("line {line}: event is not a JSON object"));
        }
        check.events += 1;

        let name = field_str(&event, "name", line)?.to_string();
        let ph = field_str(&event, "ph", line)?;
        let cat = field_str(&event, "cat", line)?;
        let ts = field_u64(&event, "ts", line)?;
        let tid = field_u64(&event, "tid", line)?;
        field_u64(&event, "pid", line)?;
        if value_u64(event.field("args").field("t")).is_none() {
            return Err(format!("line {line}: missing logical time `args.t`"));
        }
        if let Some(prev) = last_ts {
            if ts <= prev {
                return Err(format!(
                    "line {line}: ts {ts} is not strictly increasing (previous {prev})"
                ));
            }
        }
        last_ts = Some(ts);

        match ph {
            "B" => {
                let phase = Phase::from_name(&name)
                    .ok_or_else(|| format!("line {line}: unknown phase `{name}`"))?;
                let want_cat = if phase == Phase::Round {
                    "round"
                } else {
                    "phase"
                };
                if cat != want_cat {
                    return Err(format!(
                        "line {line}: span `{name}` has cat `{cat}`, expected `{want_cat}`"
                    ));
                }
                open.entry(tid).or_default().push(name);
            }
            "E" => {
                let stack = open.entry(tid).or_default();
                match stack.pop() {
                    Some(top) if top == name => check.spans += 1,
                    Some(top) => {
                        return Err(format!(
                            "line {line}: span end `{name}` does not match open span `{top}` \
                             on tid {tid}"
                        ))
                    }
                    None => {
                        return Err(format!(
                            "line {line}: span end `{name}` with no open span on tid {tid}"
                        ))
                    }
                }
            }
            "C" => {
                let value = value_u64(event.field("args").field("value"))
                    .ok_or_else(|| format!("line {line}: counter record missing `args.value`"))?;
                match cat {
                    "counter" => {
                        if Counter::from_name(&name).is_none() {
                            return Err(format!("line {line}: unknown counter `{name}`"));
                        }
                        *check.counters.entry(name).or_insert(0) += value;
                    }
                    "gauge" => {
                        if Gauge::from_name(&name).is_none() {
                            return Err(format!("line {line}: unknown gauge `{name}`"));
                        }
                        let slot = check.gauges.entry(name).or_insert(0);
                        if value > *slot {
                            *slot = value;
                        }
                    }
                    other => {
                        return Err(format!(
                            "line {line}: `C` record with unknown cat `{other}`"
                        ))
                    }
                }
            }
            other => return Err(format!("line {line}: unknown ph `{other}`")),
        }
    }

    for (tid, stack) in &open {
        if let Some(name) = stack.last() {
            return Err(format!(
                "end of trace: span `{name}` on tid {tid} was never closed \
                 ({} open in total)",
                open.values().map(|s| s.len()).sum::<usize>()
            ));
        }
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(name: &str, cat: &str, ph: &str, ts: u64, extra: &str) -> String {
        format!(
            "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"{ph}\",\"ts\":{ts},\
             \"pid\":0,\"tid\":0,\"args\":{{\"t\":0{extra}}}}}\n"
        )
    }

    #[test]
    fn accepts_a_minimal_valid_trace() {
        let text = line("round", "round", "B", 0, "")
            + &line("node-step", "phase", "B", 1, "")
            + &line("node-step", "phase", "E", 2, "")
            + &line("messages_delivered", "counter", "C", 3, ",\"value\":7")
            + &line("calendar_occupancy", "gauge", "C", 4, ",\"value\":3")
            + &line("round", "round", "E", 5, "");
        let check = check_trace(&text).unwrap();
        assert_eq!(check.events, 6);
        assert_eq!(check.spans, 2);
        assert_eq!(check.counter_total("messages_delivered"), 7);
        assert_eq!(check.gauge_max("calendar_occupancy"), 3);
    }

    #[test]
    fn rejects_violations() {
        // Unclosed span.
        let text = line("round", "round", "B", 0, "");
        assert!(check_trace(&text).unwrap_err().contains("never closed"));
        // Unknown phase name.
        let text = line("warmup", "phase", "B", 0, "");
        assert!(check_trace(&text).unwrap_err().contains("unknown phase"));
        // Mismatched end.
        let text = line("round", "round", "B", 0, "") + &line("churn", "phase", "E", 1, "");
        assert!(check_trace(&text).unwrap_err().contains("does not match"));
        // Non-monotone ts.
        let text = line("round", "round", "B", 5, "") + &line("round", "round", "E", 5, "");
        assert!(check_trace(&text)
            .unwrap_err()
            .contains("not strictly increasing"));
        // Unknown counter.
        let text = line("bogons", "counter", "C", 0, ",\"value\":1");
        assert!(check_trace(&text).unwrap_err().contains("unknown counter"));
        // Garbage line.
        assert!(check_trace("not json\n").is_err());
    }
}
