//! # netsim-trace — zero-cost structured tracing for the simulation engines
//!
//! The engines (`SyncEngine`, `ShardedSyncEngine`, `AsyncEngine`) are
//! instrumented against the object-safe [`Recorder`] trait.  When no
//! recorder is installed the instrumentation is a single `Option` check
//! per *phase boundary* (never per envelope), so the PR 3 zero-allocation
//! hot path is untouched; when one is installed, recorders only *observe*
//! — they never touch an RNG stream or a delivery order, which is what
//! makes the byte-identity guarantee (traced report ≡ untraced report)
//! structural rather than empirical.
//!
//! Concrete recorders:
//!
//! * [`PhaseProfiler`] — wall-clock span timings per engine phase,
//!   aggregated into log-bucketed histograms with count/sum/p50/p90/p99
//!   ([`PhaseProfile`]; embedded in bench reports).
//! * [`CounterSet`] — per-shard monotone counters (messages per phase,
//!   cross-shard routing volume) and high-water gauges (arena sizes,
//!   calendar-queue occupancy).
//! * [`TraceWriter`] — an NDJSON stream of Chrome-trace-event-compatible
//!   span/counter records.  Timestamps are *logical* (a deterministic
//!   event ordinal), never wall clock, so a trace file is byte-identical
//!   across repeat runs of the same spec+seed; opt into wall-clock span
//!   durations with [`TraceWriter::with_wall_time`] when profiling humans
//!   care about real time more than determinism.
//!
//! [`check_trace`] validates a trace file (every span closed, names from
//! the fixed vocabulary, monotone timestamps) and totals its counters —
//! the CI well-formedness gate and the trace-vs-truth cross-check both
//! run through it.

mod check;
mod counters;
mod histogram;
mod profiler;
mod recorder;
mod writer;

pub use check::{check_trace, TraceCheck};
pub use counters::{CounterSet, CounterSnapshot, CounterValue, GaugeValue};
pub use histogram::LogHistogram;
pub use profiler::{PhaseProfile, PhaseProfiler, PhaseStats};
pub use recorder::{
    Counter, Fanout, Gauge, NoopRecorder, Phase, Recorder, COUNTERS, GAUGES, PHASES, SHARD_ROUTER,
};
pub use writer::TraceWriter;
