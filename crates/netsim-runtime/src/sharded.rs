//! The sharded synchronous engine: node-id-range partitioning of the round
//! loop.
//!
//! [`ShardedSyncEngine`] executes the exact protocol semantics of
//! [`SyncEngine`], but partitions the per-node hot state — protocol states,
//! RNG streams, per-node outboxes, the double-buffered inboxes, the
//! round-scoped envelope arenas, the deferred-delivery [`DelayRing`]s and
//! the delivery-side [`RunMetrics`] — into `S` contiguous node-id ranges,
//! each owned by one shard.  A round then has two regimes:
//!
//! 1. **Per-shard compute (parallel).**  Every shard steps its own nodes
//!    against its own inbox slice and fills its own outboxes and envelope
//!    arena, with no data shared between shards.  PR 3's buffer-reuse
//!    design (engine-owned, cleared-not-dropped buffers; move-only
//!    envelope arenas) was shaped for exactly this: a shard's slice is
//!    self-contained, so shards map directly onto the rayon shim's scoped
//!    threads ([`rayon::join`], recursively over the shard list, split
//!    only as deep as [`rayon::current_num_threads`] warrants).  With
//!    `S = 1` — or a single configured worker — the engine falls back to
//!    the plain sequential loop and spawns nothing.
//! 2. **Cross-shard routing (sequential).**  The round boundary is an
//!    explicit routing step: shard arenas are gathered in shard order
//!    (which *is* global node order, since shards are contiguous ranges),
//!    the full-information adversary inspects the single gathered stream,
//!    and every validated envelope is routed — fault plan consulted in the
//!    same globally fixed order as the unsharded engine — into the
//!    destination shard's next-round inbox or its [`DelayRing`].
//!
//! ## Determinism contract
//!
//! For equal `(topology, protocol, adversary, seed, fault plan)`, a
//! [`ShardedSyncEngine`] run is **byte-identical** to a [`SyncEngine`] run
//! for every shard count: per-node RNG streams are seed-derived per node
//! (not per shard), the adversary and the fault plan are consulted in the
//! same order and with the same RNG state, inbox contents arrive in the
//! same per-recipient order, and the partitioned metrics merge
//! ([`RunMetrics::absorb_shard`]) to the exact single-stream totals.  The
//! cross-shard differential suite (`tests/sharded_parity.rs`) locks this
//! down over the golden fixtures.

use crate::adversary::{Adversary, AdversaryDecision, AdversaryView};
use crate::async_engine::{AsyncEngine, ClockPlan};
use crate::engine::{
    emit_metric_deltas, envelope_admissible, splitmix, EngineConfig, MetricsSnap, RunResult,
    SyncEngine,
};
use crate::message::{Envelope, MessageSize};
use crate::metrics::RunMetrics;
use crate::node::{Action, NodeContext, NodeStatus, Outbox, Protocol};
use crate::ring::DelayRing;
use crate::topology::Topology;
use netsim_faults::{ChurnEvent, EnvelopeFate, FaultPlan};
use netsim_graph::NodeId;
use netsim_trace::{Counter, Gauge, Phase, Recorder, SHARD_ROUTER};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Which engine implementation drives a run.
///
/// `Sync` and `Sharded` are pure execution policy: they produce
/// byte-identical results for equal inputs (that is the sharded engine's
/// contract), so the choice only affects how the round loop maps onto
/// cores.  `Async` is policy *plus* a clock model: under
/// [`ClockPlan::Uniform`] it too is byte-identical to the synchronous
/// engines, while heterogeneous clock plans deliberately leave the
/// synchronous model (still fully deterministic per spec and seed).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineKind {
    /// The classic single-owner [`SyncEngine`].
    #[default]
    Sync,
    /// A [`ShardedSyncEngine`] over this many contiguous node-id ranges.
    Sharded {
        /// Number of shards (≥ 1; clamped to the node count).
        shards: usize,
    },
    /// The event-driven [`AsyncEngine`] with the given per-node clocks.
    Async {
        /// How node clocks map onto virtual time.
        clocks: ClockPlan,
    },
    /// A [`ShardedAsyncEngine`](crate::ShardedAsyncEngine): per-shard
    /// calendar queues and clock domains, rendezvousing only at routing.
    ShardedAsync {
        /// Number of shards (≥ 1; clamped to the node count).
        shards: usize,
        /// How node clocks map onto virtual time.
        clocks: ClockPlan,
    },
    /// A [`DistributedSyncEngine`](crate::DistributedSyncEngine): shard
    /// workers owning private node ranges, speaking `netsim-wire`'s binary
    /// protocol to a central coordinator.  Synchronous semantics,
    /// byte-identical to `Sync` and `Sharded`.
    Distributed {
        /// Number of shard workers (≥ 1; clamped to the node count).
        shards: usize,
    },
}

impl EngineKind {
    /// Short stable label (used in logs and tables).
    pub fn describe(&self) -> String {
        match self {
            EngineKind::Sync => "sync".into(),
            EngineKind::Sharded { shards } => format!("sharded-{shards}"),
            EngineKind::Async {
                clocks: ClockPlan::Uniform,
            } => "async".into(),
            EngineKind::Async { clocks } => format!("async-{}", clocks.describe()),
            EngineKind::ShardedAsync {
                shards,
                clocks: ClockPlan::Uniform,
            } => format!("sharded-async-{shards}"),
            EngineKind::ShardedAsync { shards, clocks } => {
                format!("sharded-async-{shards}-{}", clocks.describe())
            }
            EngineKind::Distributed { shards } => format!("dist-{shards}"),
        }
    }
}

/// Shard boundaries for `n` nodes over `shards` contiguous ranges: shard
/// `s` owns `bounds[s]..bounds[s + 1]`.  Ranges differ in size by at most
/// one node, cover `0..n` exactly, and the shard count is clamped to
/// `1..=max(n, 1)` so every shard is non-empty (for `n > 0`).
pub fn shard_bounds(n: usize, shards: usize) -> Vec<usize> {
    let s = shards.clamp(1, n.max(1));
    (0..=s).map(|i| i * n / s).collect()
}

/// Run a protocol through the engine selected by `kind`.
///
/// This is the single dispatch point the spec-driven runners (counting and
/// all baselines) go through, so an engine knob in a `RunSpec` reaches
/// every workload the same way.
///
/// # Errors
/// Only the distributed engine can fail (a lost worker channel surfaces
/// as [`RunError`](crate::distributed::RunError)); every in-process engine
/// is infallible and always returns `Ok`.
#[allow(clippy::too_many_arguments)]
pub fn run_with_engine<T, P, A>(
    kind: EngineKind,
    topology: &T,
    states: Vec<P>,
    byzantine: Vec<bool>,
    adversary: A,
    config: EngineConfig,
    seed: u64,
    fault_plan: Option<Box<dyn FaultPlan>>,
) -> Result<RunResult<P::Output>, crate::distributed::RunError>
where
    T: Topology,
    P: Protocol + Clone + Send + Sync + 'static,
    P::Output: Send + netsim_wire::Wire,
    P::Message: netsim_wire::Wire,
    A: Adversary<P>,
{
    run_with_engine_recorded(
        kind, topology, states, byzantine, adversary, config, seed, fault_plan, None,
    )
}

/// [`run_with_engine`] with an optional [`Recorder`] attached to whichever
/// engine `kind` selects.
///
/// This is the observability entry point: with `recorder = None` it is
/// exactly `run_with_engine` (the recorder field stays `None` and every
/// instrumentation site is a single never-taken branch per phase
/// boundary), and the run result is byte-identical either way — recorders
/// observe, they never steer.
#[allow(clippy::too_many_arguments)]
pub fn run_with_engine_recorded<T, P, A>(
    kind: EngineKind,
    topology: &T,
    states: Vec<P>,
    byzantine: Vec<bool>,
    adversary: A,
    config: EngineConfig,
    seed: u64,
    fault_plan: Option<Box<dyn FaultPlan>>,
    recorder: Option<&dyn Recorder>,
) -> Result<RunResult<P::Output>, crate::distributed::RunError>
where
    T: Topology,
    P: Protocol + Clone + Send + Sync + 'static,
    P::Output: Send + netsim_wire::Wire,
    P::Message: netsim_wire::Wire,
    A: Adversary<P>,
{
    run_with_engine_fleet(
        kind, topology, states, byzantine, adversary, config, seed, fault_plan, recorder, None,
    )
}

/// [`run_with_engine_recorded`] with an optional remote worker
/// [`RemoteFleet`](crate::distributed::RemoteFleet).
///
/// The fleet is a *transport* knob for the distributed engine only: with
/// `kind = Distributed` and a non-empty fleet, workers are dialed as
/// separate processes; every other engine kind ignores it (they have no
/// workers to place), and results are byte-identical across transports.
#[allow(clippy::too_many_arguments)]
pub fn run_with_engine_fleet<T, P, A>(
    kind: EngineKind,
    topology: &T,
    states: Vec<P>,
    byzantine: Vec<bool>,
    adversary: A,
    config: EngineConfig,
    seed: u64,
    fault_plan: Option<Box<dyn FaultPlan>>,
    recorder: Option<&dyn Recorder>,
    fleet: Option<&crate::distributed::RemoteFleet>,
) -> Result<RunResult<P::Output>, crate::distributed::RunError>
where
    T: Topology,
    P: Protocol + Clone + Send + Sync + 'static,
    P::Output: Send + netsim_wire::Wire,
    P::Message: netsim_wire::Wire,
    A: Adversary<P>,
{
    match kind {
        EngineKind::Sync => Ok(SyncEngine::new(
            topology, states, byzantine, adversary, config, seed,
        )
        .with_fault_plan_opt(fault_plan)
        .with_recorder_opt(recorder)
        .run()),
        EngineKind::Sharded { shards } => Ok(ShardedSyncEngine::new(
            topology, states, byzantine, adversary, config, seed, shards,
        )
        .with_fault_plan_opt(fault_plan)
        .with_recorder_opt(recorder)
        .run()),
        EngineKind::Async { clocks } => Ok(AsyncEngine::new(
            topology, states, byzantine, adversary, config, seed, clocks,
        )
        .with_fault_plan_opt(fault_plan)
        .with_recorder_opt(recorder)
        .run()),
        EngineKind::ShardedAsync { shards, clocks } => {
            Ok(crate::sharded_async::ShardedAsyncEngine::new(
                topology, states, byzantine, adversary, config, seed, shards, clocks,
            )
            .with_fault_plan_opt(fault_plan)
            .with_recorder_opt(recorder)
            .run())
        }
        EngineKind::Distributed { shards } => crate::distributed::DistributedSyncEngine::new(
            topology, states, byzantine, adversary, config, seed, shards,
        )
        .with_fault_plan_opt(fault_plan)
        .with_recorder_opt(recorder)
        .with_remote_fleet(fleet.cloned())
        .run(),
    }
}

/// The per-shard mutable view used by the parallel compute phase: disjoint
/// slices of the node-indexed engine state plus the shard-owned arenas.
struct ShardTask<'b, P: Protocol> {
    /// This shard's index (the `tid` its trace records report under).
    shard: u32,
    /// First global node id of this shard.
    start: usize,
    states: &'b mut [P],
    rngs: &'b mut [ChaCha8Rng],
    outboxes: &'b mut [Outbox<P::Message>],
    actions: &'b mut [Action<P::Output>],
    /// Shard-owned arena for its honest nodes' envelopes this round.
    honest: &'b mut Vec<Envelope<P::Message>>,
    /// Shard-owned buffer for its Byzantine nodes' protocol-following
    /// envelopes.
    byz: &'b mut Vec<Envelope<P::Message>>,
}

/// Apply `f` to every task, recursively splitting the task list across the
/// rayon shim's scoped threads — but only as deep as the configured worker
/// count warrants ([`rayon::current_num_threads`], i.e. the
/// `RAYON_NUM_THREADS` / programmatic override the rest of the workspace
/// honours).  With one worker (or one shard) this is a plain sequential
/// loop: no threads are spawned, so `S > cores` never pays for more
/// fan-out than the machine can absorb, and results are identical either
/// way (that is the engine's contract).
pub(crate) fn for_each_shard<T: Send, F: Fn(&mut T) + Sync>(tasks: &mut [T], f: &F) {
    let threads = rayon::current_num_threads();
    let splits = if threads <= 1 {
        0
    } else {
        // Enough binary splits to occupy every worker (same policy as the
        // shim's own `drive`).
        (usize::BITS - (threads - 1).leading_zeros()) as usize
    };
    for_each_shard_rec(tasks, f, splits);
}

fn for_each_shard_rec<T: Send, F: Fn(&mut T) + Sync>(tasks: &mut [T], f: &F, splits_left: usize) {
    if tasks.len() <= 1 || splits_left == 0 {
        for task in tasks {
            f(task);
        }
        return;
    }
    let mid = tasks.len() / 2;
    let (left, right) = tasks.split_at_mut(mid);
    rayon::join(
        || for_each_shard_rec(left, f, splits_left - 1),
        || for_each_shard_rec(right, f, splits_left - 1),
    );
}

/// The sharded synchronous engine; see the module documentation.
pub struct ShardedSyncEngine<'a, T, P, A>
where
    T: Topology,
    P: Protocol,
    A: Adversary<P>,
{
    topology: &'a T,
    /// Node-indexed state; shards view it through disjoint contiguous
    /// `split_at_mut` slices during the compute phase.
    states: Vec<P>,
    byzantine: Vec<bool>,
    adversary: A,
    config: EngineConfig,
    rngs: Vec<ChaCha8Rng>,
    adversary_rng: ChaCha8Rng,
    inboxes: Vec<Vec<Envelope<P::Message>>>,
    next_inboxes: Vec<Vec<Envelope<P::Message>>>,
    outboxes: Vec<Outbox<P::Message>>,
    actions: Vec<Action<P::Output>>,
    /// Shard boundaries: shard `s` owns nodes `bounds[s]..bounds[s + 1]`.
    bounds: Vec<usize>,
    /// Destination shard of each node (contiguous ranges, precomputed).
    shard_of: Vec<u32>,
    /// Per-shard round arenas, gathered in shard order at the routing step.
    shard_honest: Vec<Vec<Envelope<P::Message>>>,
    shard_byz: Vec<Vec<Envelope<P::Message>>>,
    /// Gathered (global-order) arenas the adversary views and the router
    /// drains; capacity reused across rounds.
    honest_arena: Vec<Envelope<P::Message>>,
    byz_default: Vec<Envelope<P::Message>>,
    crashed_scratch: Vec<bool>,
    statuses: Vec<NodeStatus>,
    outputs: Vec<Option<P::Output>>,
    decided_round: Vec<Option<u64>>,
    /// Router-side accounting: rounds, validation drops, fault losses and
    /// deferrals, churn.  Merged with the shard metrics at the end.
    router_metrics: RunMetrics,
    /// Per-shard delivery-side accounting (messages arriving in the shard's
    /// node range, and their expiries).
    shard_metrics: Vec<RunMetrics>,
    round: u64,
    fault_plan: Option<Box<dyn FaultPlan>>,
    /// Per-destination-shard deferred envelopes: each shard owns the ring
    /// of messages in flight *towards* its node range.
    shard_deferred: Vec<DelayRing<Envelope<P::Message>>>,
    reset_state: Option<Box<dyn Fn(usize) -> P + Send>>,
    churned_down: Vec<bool>,
    /// Optional observer.  Shard-local phases report under their shard id,
    /// the routing step under [`SHARD_ROUTER`]; `None` costs one branch per
    /// phase boundary, never per envelope.
    recorder: Option<&'a dyn Recorder>,
    /// Per-destination-shard count of envelopes routed across a shard
    /// boundary this round (recorder-only accounting; left untouched when
    /// no recorder is installed).
    cross_shard_scratch: Vec<u64>,
}

impl<'a, T, P, A> ShardedSyncEngine<'a, T, P, A>
where
    T: Topology,
    P: Protocol + Sync,
    P::Output: Send + Sync,
    A: Adversary<P>,
{
    /// Create an engine over `shards` contiguous node-id ranges.
    ///
    /// The shard count is clamped to `1..=n`; `shards = 1` is the
    /// sequential fallback (single shard, no scoped-thread fan-out).
    ///
    /// # Panics
    /// Panics if `states.len()` or `byzantine.len()` differ from the
    /// topology size.
    pub fn new(
        topology: &'a T,
        states: Vec<P>,
        byzantine: Vec<bool>,
        adversary: A,
        config: EngineConfig,
        seed: u64,
        shards: usize,
    ) -> Self {
        let n = topology.len();
        assert_eq!(states.len(), n, "one protocol state per node required");
        assert_eq!(byzantine.len(), n, "byzantine mask must cover every node");
        let bounds = shard_bounds(n, shards);
        let shard_count = bounds.len() - 1;
        let mut shard_of = vec![0u32; n];
        for (s, w) in bounds.windows(2).enumerate() {
            for owner in &mut shard_of[w[0]..w[1]] {
                *owner = s as u32;
            }
        }
        // Node RNG streams are derived per *node*, exactly as in
        // `SyncEngine` — the shard layout must never reach the randomness.
        let rngs = (0..n)
            .map(|i| ChaCha8Rng::seed_from_u64(splitmix(seed, i as u64)))
            .collect();
        ShardedSyncEngine {
            topology,
            states,
            byzantine,
            adversary,
            config,
            rngs,
            adversary_rng: ChaCha8Rng::seed_from_u64(splitmix(seed, u64::MAX)),
            inboxes: vec![Vec::new(); n],
            next_inboxes: vec![Vec::new(); n],
            outboxes: (0..n).map(|_| Outbox::new()).collect(),
            actions: vec![Action::Continue; n],
            bounds,
            shard_of,
            shard_honest: (0..shard_count).map(|_| Vec::new()).collect(),
            shard_byz: (0..shard_count).map(|_| Vec::new()).collect(),
            honest_arena: Vec::new(),
            byz_default: Vec::new(),
            crashed_scratch: Vec::with_capacity(n),
            statuses: vec![NodeStatus::Active; n],
            outputs: vec![None; n],
            decided_round: vec![None; n],
            router_metrics: RunMetrics::default(),
            shard_metrics: vec![RunMetrics::default(); shard_count],
            round: 0,
            fault_plan: None,
            shard_deferred: (0..shard_count).map(|_| DelayRing::new()).collect(),
            reset_state: None,
            churned_down: vec![false; n],
            recorder: None,
            cross_shard_scratch: vec![0; shard_count],
        }
    }

    /// Attach a [`Recorder`]; see [`SyncEngine::with_recorder`].
    pub fn with_recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// [`with_recorder`](Self::with_recorder) that is a no-op for `None`.
    pub fn with_recorder_opt(mut self, recorder: Option<&'a dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Install a [`FaultPlan`]; see [`SyncEngine::with_fault_plan`].
    pub fn with_fault_plan(mut self, plan: Box<dyn FaultPlan>) -> Self
    where
        P: Clone + Send + 'static,
    {
        let pristine: Vec<P> = self.states.clone();
        self.reset_state = Some(Box::new(move |i| pristine[i].clone()));
        self.fault_plan = Some(plan);
        self
    }

    /// [`with_fault_plan`](Self::with_fault_plan) that is a no-op for
    /// `None`.
    pub fn with_fault_plan_opt(self, plan: Option<Box<dyn FaultPlan>>) -> Self
    where
        P: Clone + Send + 'static,
    {
        match plan {
            Some(plan) => self.with_fault_plan(plan),
            None => self,
        }
    }

    /// Mark nodes as crashed before the first round; see
    /// [`SyncEngine::with_initial_crashes`].
    pub fn with_initial_crashes(mut self, crashed: &[bool]) -> Self {
        assert_eq!(
            crashed.len(),
            self.statuses.len(),
            "crash mask must cover every node"
        );
        for (status, &is_crashed) in self.statuses.iter_mut().zip(crashed) {
            if is_crashed {
                *status = NodeStatus::Crashed;
            }
        }
        self
    }

    /// Number of shards the engine actually runs with (after clamping).
    pub fn shard_count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The current round number (number of rounds fully executed).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Read access to the per-node protocol states (for instrumentation).
    pub fn states(&self) -> &[P] {
        &self.states
    }

    /// Node statuses so far.
    pub fn statuses(&self) -> &[NodeStatus] {
        &self.statuses
    }

    /// Whether the stop condition has been reached.
    pub fn finished(&self) -> bool {
        if self.round >= self.config.max_rounds {
            return true;
        }
        if self.config.stop_when_all_decided {
            let all_done = self
                .statuses
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.byzantine[*i])
                .all(|(_, s)| *s != NodeStatus::Active);
            if all_done {
                return true;
            }
        }
        false
    }

    /// Execute one round.  Returns `false` when the stop condition has been
    /// reached (the round is still executed).
    pub fn step_round(&mut self) -> bool {
        let n = self.topology.len();
        self.router_metrics.begin_round();
        for metrics in &mut self.shard_metrics {
            metrics.begin_round();
        }
        let round = self.round;

        // Observability: snapshot the per-shard and router metrics so the
        // round's deltas can be emitted at the end.  All of this is behind
        // one `Option` check; recorders never see (or touch) engine state.
        let rec = self.recorder;
        let router_snap = rec.map(|_| MetricsSnap::of(&self.router_metrics));
        let shard_snaps: Vec<MetricsSnap> = if rec.is_some() {
            self.shard_metrics.iter().map(MetricsSnap::of).collect()
        } else {
            Vec::new()
        };
        if let Some(rec) = rec {
            for c in &mut self.cross_shard_scratch {
                *c = 0;
            }
            rec.phase_begin(SHARD_ROUTER, round, Phase::Round);
            rec.phase_begin(SHARD_ROUTER, round, Phase::Churn);
        }

        // Phase 0: churn transitions — global and sequential, exactly the
        // unsharded order (the plan's RNG stream depends on it).
        if let Some(plan) = self.fault_plan.as_mut() {
            for event in plan.begin_round(round) {
                match event {
                    ChurnEvent::Crash(v) => {
                        let i = v.index();
                        if i < n && !self.byzantine[i] && self.statuses[i] != NodeStatus::Crashed {
                            self.statuses[i] = NodeStatus::Crashed;
                            self.churned_down[i] = true;
                            self.router_metrics.record_churn_crash();
                        }
                    }
                    ChurnEvent::Recover(v) => {
                        let i = v.index();
                        if i < n && self.churned_down[i] && self.statuses[i] == NodeStatus::Crashed
                        {
                            if let Some(reset) = self.reset_state.as_ref() {
                                self.states[i] = reset(i);
                                self.outputs[i] = None;
                                self.decided_round[i] = None;
                                self.statuses[i] = NodeStatus::Active;
                                self.churned_down[i] = false;
                                self.inboxes[i].clear();
                                self.router_metrics.record_churn_recovery();
                            }
                        }
                    }
                }
            }
        }

        if let Some(rec) = rec {
            rec.phase_end(SHARD_ROUTER, round, Phase::Churn);
        }

        // Phase 1: per-shard compute.  Each shard receives disjoint mutable
        // slices of the node-indexed state plus its owned arenas; statuses,
        // outputs, inboxes and the topology are shared read-only.  Node
        // results are bit-identical to the sequential loop because every
        // node owns its RNG stream and lands in node order within its
        // shard.
        {
            let mut tasks: Vec<ShardTask<'_, P>> = Vec::with_capacity(self.shard_count());
            {
                let mut states = self.states.as_mut_slice();
                let mut rngs = self.rngs.as_mut_slice();
                let mut outboxes = self.outboxes.as_mut_slice();
                let mut actions = self.actions.as_mut_slice();
                let mut honest = self.shard_honest.iter_mut();
                let mut byz = self.shard_byz.iter_mut();
                for (s, w) in self.bounds.windows(2).enumerate() {
                    let len = w[1] - w[0];
                    let (task_states, rest) = states.split_at_mut(len);
                    states = rest;
                    let (task_rngs, rest) = rngs.split_at_mut(len);
                    rngs = rest;
                    let (task_outboxes, rest) = outboxes.split_at_mut(len);
                    outboxes = rest;
                    let (task_actions, rest) = actions.split_at_mut(len);
                    actions = rest;
                    tasks.push(ShardTask {
                        shard: s as u32,
                        start: w[0],
                        states: task_states,
                        rngs: task_rngs,
                        outboxes: task_outboxes,
                        actions: task_actions,
                        honest: honest.next().expect("one arena per shard"),
                        byz: byz.next().expect("one buffer per shard"),
                    });
                }
            }
            let inboxes = &self.inboxes;
            let statuses = &self.statuses;
            let outputs = &self.outputs;
            let byzantine = &self.byzantine;
            let topology = self.topology;
            for_each_shard(&mut tasks, &|task: &mut ShardTask<'_, P>| {
                // The shard's compute is its `node-step` span, reported
                // under its own tid (recorders are `Sync`: shards may run
                // on scoped threads).
                if let Some(rec) = rec {
                    rec.phase_begin(task.shard, round, Phase::NodeStep);
                }
                for local in 0..task.states.len() {
                    let i = task.start + local;
                    let outbox = &mut task.outboxes[local];
                    outbox.clear();
                    if statuses[i] == NodeStatus::Crashed {
                        task.actions[local] = Action::Continue;
                        continue;
                    }
                    let id = NodeId::from_index(i);
                    let ctx = NodeContext {
                        id,
                        round,
                        neighbors: topology.neighbors(id),
                        decided: outputs[i].is_some(),
                    };
                    task.actions[local] =
                        task.states[local].step(&ctx, &inboxes[i], outbox, &mut task.rngs[local]);
                }
                // Drain the shard's outboxes into its own arenas, in node
                // order — no clones, no sharing.
                for local in 0..task.outboxes.len() {
                    let i = task.start + local;
                    let target: &mut Vec<Envelope<P::Message>> =
                        if byzantine[i] { task.byz } else { task.honest };
                    task.outboxes[local]
                        .drain_envelopes(NodeId::from_index(i), |env| target.push(env));
                }
                if let Some(rec) = rec {
                    rec.phase_end(task.shard, round, Phase::NodeStep);
                }
            });
        }

        if let Some(rec) = rec {
            rec.phase_begin(SHARD_ROUTER, round, Phase::AdversaryCut);
        }

        // Cross-shard routing, step 1: gather the shard arenas in shard
        // order.  Shards are contiguous node ranges, so the gathered stream
        // is in global node order — exactly what the unsharded engine's
        // phase 2 produces, which keeps the adversary's view and the fault
        // plan's consultation order aligned.
        self.honest_arena.clear();
        self.byz_default.clear();
        for arena in &mut self.shard_honest {
            self.honest_arena.append(arena);
        }
        for buffer in &mut self.shard_byz {
            self.byz_default.append(buffer);
        }
        self.crashed_scratch.clear();
        self.crashed_scratch
            .extend(self.statuses.iter().map(|s| *s == NodeStatus::Crashed));
        let decision = {
            let view = AdversaryView {
                round,
                byzantine: &self.byzantine,
                crashed: &self.crashed_scratch,
                states: &self.states,
                honest_messages: &self.honest_arena,
                byzantine_default_messages: &self.byz_default,
            };
            self.adversary.act(&view, &mut self.adversary_rng)
        };

        // Phase 3: apply actions (honest nodes only), after the adversary
        // observed the pre-action statuses.
        for i in 0..n {
            if self.byzantine[i] || self.statuses[i] == NodeStatus::Crashed {
                continue;
            }
            match std::mem::replace(&mut self.actions[i], Action::Continue) {
                Action::Continue => {}
                Action::Decide(output) => {
                    if self.outputs[i].is_none() {
                        self.outputs[i] = Some(output);
                        self.decided_round[i] = Some(round);
                        self.statuses[i] = NodeStatus::Decided;
                    }
                }
                Action::Crash => {
                    self.statuses[i] = NodeStatus::Crashed;
                }
            }
        }

        if let Some(rec) = rec {
            // Arena high-water marks at their per-round peak: the gathered
            // streams, before the router drains them (same observation
            // point as the unsharded engine).
            rec.gauge(
                SHARD_ROUTER,
                round,
                Gauge::HonestArenaHighWater,
                self.honest_arena.len() as u64,
            );
            rec.gauge(
                SHARD_ROUTER,
                round,
                Gauge::ByzArenaHighWater,
                self.byz_default.len() as u64,
            );
            rec.phase_end(SHARD_ROUTER, round, Phase::AdversaryCut);
            rec.phase_begin(SHARD_ROUTER, round, Phase::Routing);
        }

        // Cross-shard routing, step 2: validate, account and route every
        // envelope — honest stream first, then the Byzantine path, in the
        // unsharded engine's exact order (the fault plan's RNG stream
        // depends on it).  Deliveries land in the destination shard's
        // next-round inbox and are accounted in that shard's metrics.
        let mut honest = std::mem::take(&mut self.honest_arena);
        for env in honest.drain(..) {
            self.route(round, env, false);
        }
        self.honest_arena = honest;
        match decision {
            AdversaryDecision::FollowProtocol => {
                let mut byz = std::mem::take(&mut self.byz_default);
                for env in byz.drain(..) {
                    self.route(round, env, false);
                }
                self.byz_default = byz;
            }
            AdversaryDecision::Replace(msgs) => {
                for env in msgs {
                    self.route(round, env, true);
                }
            }
        }

        if let Some(rec) = rec {
            rec.phase_end(SHARD_ROUTER, round, Phase::Routing);
        }

        // Phase 5: every shard drains the deferred envelopes due in its own
        // ring this round.  Shard order again equals global node order per
        // destination, and each destination lives in exactly one ring, so
        // per-inbox arrival order matches the unsharded engine.
        {
            let statuses = &self.statuses;
            let next_inboxes = &mut self.next_inboxes;
            for (s, (ring, metrics)) in self
                .shard_deferred
                .iter_mut()
                .zip(self.shard_metrics.iter_mut())
                .enumerate()
            {
                if let Some(rec) = rec {
                    rec.phase_begin(s as u32, round, Phase::DeferredDrain);
                }
                ring.drain_due(round, |env| {
                    if statuses[env.to.index()] == NodeStatus::Crashed {
                        metrics.record_fault_expired(1);
                    } else {
                        metrics.record_delivery(env.payload.message_size());
                        next_inboxes[env.to.index()].push(env);
                    }
                });
                if let Some(rec) = rec {
                    rec.phase_end(s as u32, round, Phase::DeferredDrain);
                    rec.gauge(
                        s as u32,
                        round,
                        Gauge::DelayRingPending,
                        ring.in_flight() as u64,
                    );
                }
            }
        }

        if let Some(rec) = rec {
            // Per-shard delivery/expiry deltas, cross-shard routing volume
            // (under the destination shard), then the router's own
            // accounting (validation drops, fault losses/delays, churn) and
            // the round marker under [`SHARD_ROUTER`].  Summed over every
            // tid, the trace reproduces `RunMetrics` exactly — that is the
            // trace-vs-truth contract.
            for (s, (snap, after)) in shard_snaps
                .iter()
                .zip(self.shard_metrics.iter())
                .enumerate()
            {
                emit_metric_deltas(rec, s as u32, round, *snap, MetricsSnap::of(after));
                let crossed = self.cross_shard_scratch[s];
                if crossed > 0 {
                    rec.add(s as u32, round, Counter::CrossShardRouted, crossed);
                }
            }
            emit_metric_deltas(
                rec,
                SHARD_ROUTER,
                round,
                router_snap.expect("snapshotted with recorder"),
                MetricsSnap::of(&self.router_metrics),
            );
            rec.add(SHARD_ROUTER, round, Counter::Rounds, 1);
            rec.phase_end(SHARD_ROUTER, round, Phase::Round);
        }

        // Round boundary: swap the double-buffered inboxes, keep capacity.
        std::mem::swap(&mut self.inboxes, &mut self.next_inboxes);
        for inbox in &mut self.next_inboxes {
            inbox.clear();
        }

        self.round += 1;
        !self.finished()
    }

    /// Validate, account and route one envelope queued in `round` into its
    /// destination shard (mirrors `SyncEngine::deliver`; the validation
    /// rules are literally shared via [`envelope_admissible`]).
    fn route(&mut self, round: u64, env: Envelope<P::Message>, authored_by_adversary: bool) {
        if !envelope_admissible(
            self.topology,
            &self.statuses,
            &self.byzantine,
            &env,
            authored_by_adversary,
        ) {
            self.router_metrics.record_drop();
            return;
        }
        let fate = match self.fault_plan.as_mut() {
            Some(plan) if !self.byzantine[env.from.index()] => {
                plan.envelope_fate(round, env.from, env.to)
            }
            _ => EnvelopeFate::Deliver,
        };
        let dest_shard = self.shard_of[env.to.index()] as usize;
        if self.recorder.is_some() && self.shard_of[env.from.index()] as usize != dest_shard {
            self.cross_shard_scratch[dest_shard] += 1;
        }
        match fate {
            // `Delay(0)` accounts as plain delivery in every engine (see
            // the cross-engine regression test in `sharded_async`).
            EnvelopeFate::Deliver | EnvelopeFate::Delay(0) => {
                self.shard_metrics[dest_shard].record_delivery(env.payload.message_size());
                self.next_inboxes[env.to.index()].push(env);
            }
            EnvelopeFate::Drop => self.router_metrics.record_fault_loss(),
            EnvelopeFate::Delay(delay) => {
                self.router_metrics.record_fault_delay();
                self.shard_deferred[dest_shard].push(round, round + delay, env);
            }
        }
    }

    /// Run until the stop condition and return the result.
    pub fn run(mut self) -> RunResult<P::Output> {
        while !self.finished() {
            self.step_round();
        }
        self.into_result()
    }

    /// Consume the engine and produce the result without running further.
    pub fn into_result(mut self) -> RunResult<P::Output> {
        // Envelopes still in flight expire in their destination shard —
        // including messages delayed past the final round into a shard
        // other than the sender's.
        for (s, (ring, metrics)) in self
            .shard_deferred
            .iter()
            .zip(self.shard_metrics.iter_mut())
            .enumerate()
        {
            let in_flight = ring.in_flight() as u64;
            if in_flight > 0 {
                metrics.record_fault_expired(in_flight);
                if let Some(rec) = self.recorder {
                    // Mirror the end-of-run expiries so trace-derived
                    // totals keep matching `RunMetrics` bit-for-bit.
                    rec.add(s as u32, self.round, Counter::MessagesExpired, in_flight);
                }
            }
        }
        let mut metrics = self.router_metrics;
        for shard in &self.shard_metrics {
            metrics.absorb_shard(shard);
        }
        let completed = self
            .statuses
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.byzantine[*i])
            .all(|(_, s)| *s != NodeStatus::Active);
        let crashed = self
            .statuses
            .iter()
            .map(|s| *s == NodeStatus::Crashed)
            .collect();
        RunResult {
            outputs: self.outputs,
            decided_round: self.decided_round,
            crashed,
            statuses: self.statuses,
            metrics,
            completed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::NullAdversary;
    use crate::message::SizedMessage;
    use netsim_faults::FaultSpec;
    use netsim_graph::Csr;
    use rand::Rng;

    #[derive(Clone, Debug, PartialEq)]
    struct Val(u64);
    impl MessageSize for Val {
        fn message_size(&self) -> SizedMessage {
            SizedMessage::new(0, 64)
        }
    }
    impl netsim_wire::Wire for Val {
        fn encode(&self, out: &mut Vec<u8>) {
            self.0.encode(out);
        }
        fn decode(r: &mut netsim_wire::Reader<'_>) -> Result<Self, netsim_wire::WireError> {
            Ok(Val(<u64 as netsim_wire::Wire>::decode(r)?))
        }
    }

    /// Max-flooding (the engine test-suite workhorse): every node starts
    /// with a random value and forwards the maximum it has seen.
    #[derive(Clone)]
    struct MaxFlood {
        value: u64,
        best: u64,
        ttl: u64,
        started: bool,
    }

    impl Protocol for MaxFlood {
        type Message = Val;
        type Output = u64;
        fn step(
            &mut self,
            ctx: &NodeContext<'_>,
            inbox: &[Envelope<Val>],
            outbox: &mut Outbox<Val>,
            rng: &mut ChaCha8Rng,
        ) -> Action<u64> {
            if !self.started {
                self.started = true;
                if self.value == 0 {
                    self.value = rng.gen::<u64>() | 1;
                }
                self.best = self.value;
                outbox.broadcast(ctx.neighbors.iter(), Val(self.best));
                return Action::Continue;
            }
            let mut improved = false;
            for env in inbox {
                if env.payload.0 > self.best {
                    self.best = env.payload.0;
                    improved = true;
                }
            }
            if improved {
                outbox.broadcast(ctx.neighbors.iter(), Val(self.best));
            }
            if ctx.round >= self.ttl {
                Action::Decide(self.best)
            } else {
                Action::Continue
            }
        }
    }

    fn line_graph(n: usize) -> Csr {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Csr::from_undirected_edges(n, &edges).unwrap()
    }

    fn flood_states(n: usize, ttl: u64) -> Vec<MaxFlood> {
        (0..n)
            .map(|_| MaxFlood {
                value: 0,
                best: 0,
                ttl,
                started: false,
            })
            .collect()
    }

    fn assert_results_equal(a: &RunResult<u64>, b: &RunResult<u64>, label: &str) {
        assert_eq!(a.outputs, b.outputs, "{label}: outputs diverged");
        assert_eq!(a.decided_round, b.decided_round, "{label}: decided_round");
        assert_eq!(a.crashed, b.crashed, "{label}: crash masks");
        assert_eq!(a.statuses, b.statuses, "{label}: statuses");
        assert_eq!(a.metrics, b.metrics, "{label}: metrics");
        assert_eq!(a.completed, b.completed, "{label}: completed");
    }

    #[test]
    fn shard_bounds_cover_the_range_contiguously() {
        for (n, shards) in [(16, 4), (17, 4), (3, 8), (1, 1), (100, 7)] {
            let bounds = shard_bounds(n, shards);
            assert_eq!(*bounds.first().unwrap(), 0);
            assert_eq!(*bounds.last().unwrap(), n);
            assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
            assert!(bounds.len() - 1 <= shards.max(1));
            if n > 0 {
                // Clamping keeps every shard non-empty and balanced to ±1.
                let sizes: Vec<usize> = bounds.windows(2).map(|w| w[1] - w[0]).collect();
                assert!(sizes.iter().all(|&s| s >= 1), "{n}/{shards}: {sizes:?}");
                let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
                assert!(max - min <= 1, "{n}/{shards}: {sizes:?}");
            }
        }
        // Zero nodes still yields a well-formed (empty) single shard.
        assert_eq!(shard_bounds(0, 4), vec![0, 0]);
    }

    #[test]
    fn sharded_clean_runs_match_the_unsharded_engine_for_every_shard_count() {
        let n = 24;
        let g = line_graph(n);
        let reference = SyncEngine::new(
            &g,
            flood_states(n, 3 * n as u64),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            42,
        )
        .run();
        for shards in [1usize, 2, 3, 4, 8, 24, 100] {
            let sharded = ShardedSyncEngine::new(
                &g,
                flood_states(n, 3 * n as u64),
                vec![false; n],
                NullAdversary,
                EngineConfig::default(),
                42,
                shards,
            )
            .run();
            assert_results_equal(&reference, &sharded, &format!("S={shards}"));
        }
    }

    #[test]
    fn sharded_faulty_runs_match_the_unsharded_engine() {
        // The full fault stack: loss + bounded delay + churn + partition.
        let n = 32;
        let g = line_graph(n);
        let spec = FaultSpec::Compose(vec![
            FaultSpec::Loss { rate: 0.15 },
            FaultSpec::Delay {
                max_delay: 3,
                rate: 0.3,
            },
            FaultSpec::Churn {
                rate: 0.04,
                downtime: 3,
            },
            FaultSpec::Partition {
                start: 2,
                duration: 5,
            },
        ]);
        let plan = |seed: u64| {
            spec.build_plan(n, &vec![true; n], seed ^ 0xFA17)
                .expect("plan")
        };
        let reference = SyncEngine::new(
            &g,
            flood_states(n, 90),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            7,
        )
        .with_fault_plan(plan(7))
        .run();
        for shards in [1usize, 2, 4, 8] {
            let sharded = ShardedSyncEngine::new(
                &g,
                flood_states(n, 90),
                vec![false; n],
                NullAdversary,
                EngineConfig::default(),
                7,
                shards,
            )
            .with_fault_plan(plan(7))
            .run();
            assert_results_equal(&reference, &sharded, &format!("faulty S={shards}"));
        }
        assert!(
            reference.metrics.messages_lost > 0 && reference.metrics.messages_delayed > 0,
            "the fault stack must actually have fired for this test to mean anything"
        );
    }

    #[test]
    fn sharded_initial_crashes_match_the_unsharded_engine() {
        let n = 16;
        let g = line_graph(n);
        let mut crashed = vec![false; n];
        crashed[3] = true;
        crashed[12] = true;
        let reference = SyncEngine::new(
            &g,
            flood_states(n, 50),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            5,
        )
        .with_initial_crashes(&crashed)
        .run();
        let sharded = ShardedSyncEngine::new(
            &g,
            flood_states(n, 50),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            5,
            4,
        )
        .with_initial_crashes(&crashed)
        .run();
        assert_results_equal(&reference, &sharded, "initial crashes");
    }

    /// An adversary that makes Byzantine nodes shout a huge value at node 0
    /// plus an illegal long-range message (mirrors the engine test suite).
    struct Shouter;
    impl Adversary<MaxFlood> for Shouter {
        fn act(
            &mut self,
            view: &AdversaryView<'_, MaxFlood>,
            _rng: &mut ChaCha8Rng,
        ) -> AdversaryDecision<Val> {
            let mut msgs = Vec::new();
            for (i, &b) in view.byzantine.iter().enumerate() {
                if b {
                    msgs.push(Envelope::new(
                        NodeId::from_index(i),
                        NodeId(0),
                        Val(u64::MAX),
                    ));
                    msgs.push(Envelope::new(
                        NodeId::from_index(i),
                        NodeId(5),
                        Val(u64::MAX),
                    ));
                }
            }
            AdversaryDecision::Replace(msgs)
        }
    }

    #[test]
    fn sharded_adversarial_runs_match_the_unsharded_engine() {
        let n = 16;
        let g = line_graph(n);
        let mut byz = vec![false; n];
        byz[1] = true;
        byz[9] = true;
        let reference = SyncEngine::new(
            &g,
            flood_states(n, 30),
            byz.clone(),
            Shouter,
            EngineConfig::default(),
            3,
        )
        .run();
        for shards in [2usize, 4, 8] {
            let sharded = ShardedSyncEngine::new(
                &g,
                flood_states(n, 30),
                byz.clone(),
                Shouter,
                EngineConfig::default(),
                3,
                shards,
            )
            .run();
            assert_results_equal(&reference, &sharded, &format!("adversarial S={shards}"));
        }
        assert!(reference.metrics.messages_dropped > 0);
    }

    #[test]
    fn cross_shard_delay_past_the_final_round_expires_and_is_never_delivered() {
        // Regression test for the cross-shard `DelayRing` expiry path: a
        // message delayed past the run's final round whose *destination*
        // lives in a different shard than its sender must be counted as
        // `messages_expired` (in the destination shard's ring), never
        // delivered.
        struct DelayAcross;
        impl FaultPlan for DelayAcross {
            fn envelope_fate(&mut self, round: u64, from: NodeId, to: NodeId) -> EnvelopeFate {
                // With n = 8 and S = 2, shard 0 owns 0..4 and shard 1 owns
                // 4..8: the 3 → 4 edge crosses the shard boundary.
                if round == 0 && from == NodeId(3) && to == NodeId(4) {
                    EnvelopeFate::Delay(1000)
                } else {
                    EnvelopeFate::Deliver
                }
            }
        }
        let n = 8;
        let g = line_graph(n);
        let cfg = EngineConfig {
            max_rounds: 4,
            stop_when_all_decided: true,
        };
        let run = |shards: Option<usize>| match shards {
            None => SyncEngine::new(
                &g,
                flood_states(n, 1000),
                vec![false; n],
                NullAdversary,
                cfg,
                11,
            )
            .with_fault_plan(Box::new(DelayAcross))
            .run(),
            Some(s) => ShardedSyncEngine::new(
                &g,
                flood_states(n, 1000),
                vec![false; n],
                NullAdversary,
                cfg,
                11,
                s,
            )
            .with_fault_plan(Box::new(DelayAcross))
            .run(),
        };
        let reference = run(None);
        let sharded = run(Some(2));
        assert_results_equal(&reference, &sharded, "cross-shard expiry");
        assert_eq!(
            sharded.metrics.messages_delayed, 1,
            "exactly the boundary-crossing envelope was deferred"
        );
        assert_eq!(
            sharded.metrics.messages_expired, 1,
            "the deferred envelope must expire at the cap, not deliver"
        );
        // Conservation: the deferred envelope is accounted exactly once.
        assert_eq!(
            sharded.metrics.messages_delayed,
            sharded.metrics.messages_expired
        );
    }

    #[test]
    fn run_with_engine_dispatches_both_kinds_identically() {
        let n = 12;
        let g = line_graph(n);
        let run = |kind: EngineKind| {
            run_with_engine(
                kind,
                &g,
                flood_states(n, 40),
                vec![false; n],
                NullAdversary,
                EngineConfig::default(),
                9,
                None,
            )
            .expect("in-process transports are infallible")
        };
        let sync = run(EngineKind::Sync);
        let sharded = run(EngineKind::Sharded { shards: 3 });
        assert_results_equal(&sync, &sharded, "run_with_engine");
        let asynced = run(EngineKind::Async {
            clocks: ClockPlan::Uniform,
        });
        assert_results_equal(&sync, &asynced, "run_with_engine (async)");
        let sharded_async = run(EngineKind::ShardedAsync {
            shards: 3,
            clocks: ClockPlan::Uniform,
        });
        assert_results_equal(&sync, &sharded_async, "run_with_engine (sharded-async)");
        let distributed = run(EngineKind::Distributed { shards: 3 });
        assert_results_equal(&sync, &distributed, "run_with_engine (distributed)");
        assert_eq!(EngineKind::Sync.describe(), "sync");
        assert_eq!(EngineKind::Distributed { shards: 4 }.describe(), "dist-4");
        assert_eq!(EngineKind::Sharded { shards: 3 }.describe(), "sharded-3");
        assert_eq!(
            EngineKind::Async {
                clocks: ClockPlan::Uniform
            }
            .describe(),
            "async"
        );
        assert_eq!(
            EngineKind::Async {
                clocks: ClockPlan::Stratified {
                    every: 2,
                    period: 3
                }
            }
            .describe(),
            "async-strat-2x3"
        );
        assert_eq!(
            EngineKind::ShardedAsync {
                shards: 4,
                clocks: ClockPlan::Uniform
            }
            .describe(),
            "sharded-async-4"
        );
        assert_eq!(
            EngineKind::ShardedAsync {
                shards: 2,
                clocks: ClockPlan::Jittered { max_period: 5 }
            }
            .describe(),
            "sharded-async-2-jitter-5"
        );
        assert_eq!(EngineKind::default(), EngineKind::Sync);
    }

    #[test]
    fn single_worker_fan_out_is_sequential_and_results_are_unchanged() {
        // With one configured worker the shard loop must not spawn (the
        // splits budget is zero) and — the actual contract — results must
        // be identical to the multi-worker run.  The override is
        // process-global but harmless to concurrent tests: nothing in this
        // crate's suite may depend on the worker count.
        struct RestoreOverride;
        impl Drop for RestoreOverride {
            fn drop(&mut self) {
                rayon::set_num_threads_override(None);
            }
        }
        let _restore = RestoreOverride;
        let n = 24;
        let g = line_graph(n);
        let run = || {
            ShardedSyncEngine::new(
                &g,
                flood_states(n, 60),
                vec![false; n],
                NullAdversary,
                EngineConfig::default(),
                13,
                6,
            )
            .run()
        };
        rayon::set_num_threads_override(Some(1));
        let sequential = run();
        rayon::set_num_threads_override(Some(8));
        let fanned_out = run();
        assert_results_equal(&sequential, &fanned_out, "worker-count independence");
    }

    #[test]
    fn shard_count_reports_the_clamped_value() {
        let g = line_graph(4);
        let engine = ShardedSyncEngine::new(
            &g,
            flood_states(4, 10),
            vec![false; 4],
            NullAdversary,
            EngineConfig::default(),
            0,
            64,
        );
        assert_eq!(engine.shard_count(), 4, "shards clamp to the node count");
    }
}
