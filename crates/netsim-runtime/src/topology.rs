//! The communication topology seen by the engine.
//!
//! A [`Topology`] only answers "who can node `v` talk to"; the richer
//! structure (which edges belong to `H` vs `L`, node labels, …) lives in
//! `netsim-graph` and is made available to protocols at construction time.

use netsim_graph::{Csr, NodeId, SmallWorldNetwork, WattsStrogatz};

/// Communication topology: the set of edges messages may traverse.
pub trait Topology: Sync {
    /// Number of nodes.
    fn len(&self) -> usize;

    /// True when there are no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Nodes that `v` can exchange messages with (sorted, deduplicated not
    /// required but recommended).
    fn neighbors(&self, v: NodeId) -> &[u32];

    /// Whether `from` may send a message to `to`.  The engine drops (and
    /// counts) any message violating this — Byzantine nodes included, since
    /// the paper's adversary "can send messages directly only to their
    /// neighbours".
    fn can_send(&self, from: NodeId, to: NodeId) -> bool {
        self.neighbors(from).binary_search(&to.0).is_ok()
    }
}

/// References delegate, so `&dyn Topology` (and `&T`) satisfy the engine's
/// `T: Topology` bound — the basis for spec-driven (dynamically chosen)
/// topologies.
impl<T: Topology + ?Sized> Topology for &T {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn neighbors(&self, v: NodeId) -> &[u32] {
        (**self).neighbors(v)
    }

    fn can_send(&self, from: NodeId, to: NodeId) -> bool {
        (**self).can_send(from, to)
    }
}

impl Topology for Csr {
    fn len(&self) -> usize {
        Csr::len(self)
    }

    fn neighbors(&self, v: NodeId) -> &[u32] {
        Csr::neighbors(self, v)
    }
}

/// A small-world network communicates over `G = H ∪ L`.
impl Topology for SmallWorldNetwork {
    fn len(&self) -> usize {
        SmallWorldNetwork::len(self)
    }

    fn neighbors(&self, v: NodeId) -> &[u32] {
        self.g_neighbors(v)
    }
}

/// A Watts–Strogatz graph communicates over its rewired ring lattice.
impl Topology for WattsStrogatz {
    fn len(&self) -> usize {
        WattsStrogatz::len(self)
    }

    fn neighbors(&self, v: NodeId) -> &[u32] {
        self.csr().neighbors(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_topology_respects_edges() {
        let g = Csr::from_undirected_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(Topology::len(&g), 3);
        assert!(g.can_send(NodeId(0), NodeId(1)));
        assert!(g.can_send(NodeId(1), NodeId(0)));
        assert!(!g.can_send(NodeId(0), NodeId(2)));
        assert!(!Topology::is_empty(&g));
    }

    #[test]
    fn small_world_topology_uses_g_edges() {
        let net = SmallWorldNetwork::generate_seeded(128, 8, 3).unwrap();
        let v = NodeId(0);
        // Every H-neighbour and every L-neighbour is reachable.
        for &u in net.g_neighbors(v) {
            assert!(Topology::can_send(&net, v, NodeId(u)));
        }
        assert_eq!(Topology::len(&net), 128);
    }
}
