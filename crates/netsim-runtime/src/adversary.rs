//! The full-information Byzantine adversary interface.
//!
//! The paper's adversary is *adaptive* and *omniscient*: at the beginning of
//! every round it knows the entire state of every node (including the random
//! choices they just made and the messages they are about to send) and may
//! make the Byzantine nodes deviate arbitrarily — subject only to the
//! network structure (messages travel along edges) and identity
//! non-forgeability (a node cannot claim a different ID to a direct
//! neighbour).
//!
//! The engine realises this by running the protocol for *all* nodes first
//! (so the adversary can also see what its own nodes "would" do), then
//! giving the adversary an [`AdversaryView`] of everything and letting it
//! replace the Byzantine nodes' outgoing messages.

use crate::message::Envelope;
use crate::node::Protocol;
use rand_chacha::ChaCha8Rng;

/// Everything the adversary can see at the intervention point of a round.
pub struct AdversaryView<'a, P: Protocol> {
    /// The current round.
    pub round: u64,
    /// Which nodes are Byzantine.
    pub byzantine: &'a [bool],
    /// Which nodes have crashed so far.
    pub crashed: &'a [bool],
    /// The full per-node protocol states (honest and Byzantine alike) —
    /// the "full information" part of the model.
    pub states: &'a [P],
    /// Messages queued by honest nodes this round (the adversary is
    /// rushing: it sees them before choosing its own).
    pub honest_messages: &'a [Envelope<P::Message>],
    /// Messages the Byzantine nodes would send if they followed the
    /// protocol.
    pub byzantine_default_messages: &'a [Envelope<P::Message>],
}

/// What the adversary decides to do with the Byzantine nodes this round.
pub enum AdversaryDecision<M> {
    /// Let every Byzantine node follow the protocol this round.
    FollowProtocol,
    /// Replace the Byzantine nodes' outgoing messages with exactly this set.
    /// Envelopes whose `from` is not a Byzantine node, or whose `(from, to)`
    /// pair is not an edge of the communication graph, are dropped (and
    /// counted) by the engine.
    Replace(Vec<Envelope<M>>),
}

/// A full-information Byzantine adversary.
pub trait Adversary<P: Protocol>: Send {
    /// Decide the Byzantine nodes' messages for this round.
    fn act(
        &mut self,
        view: &AdversaryView<'_, P>,
        rng: &mut ChaCha8Rng,
    ) -> AdversaryDecision<P::Message>;

    /// True when this adversary is a pure no-op on *idle* ticks — ticks
    /// at which no node stepped, so [`AdversaryView::honest_messages`]
    /// and [`AdversaryView::byzantine_default_messages`] are both empty.
    ///
    /// Opting in promises that every such `act` call (a) returns
    /// [`AdversaryDecision::FollowProtocol`] or an empty `Replace`,
    /// (b) draws nothing from `rng`, and (c) leaves no internal state
    /// behind that a later decision depends on.  Under that promise the
    /// async engines may *skip* idle ticks entirely (sparse ticking)
    /// without changing any observable result: the calls being elided
    /// would have produced nothing and consumed no randomness, so the
    /// adversary RNG stream stays tick-indexed and every later decision
    /// is bit-identical.
    ///
    /// Adversaries that inject messages out of nowhere or advance their
    /// RNG on every tick (e.g. per-tick coin flips) must keep the
    /// default `false`, which pins the engines to dense ticking.
    fn idle_passive(&self) -> bool {
        false
    }
}

/// Boxed adversaries forward to their contents, so heterogeneous adversary
/// sets (e.g. chosen from a serialized run specification) can drive the
/// engine through `Box<dyn Adversary<P>>`.
impl<P: Protocol> Adversary<P> for Box<dyn Adversary<P>> {
    fn act(
        &mut self,
        view: &AdversaryView<'_, P>,
        rng: &mut ChaCha8Rng,
    ) -> AdversaryDecision<P::Message> {
        (**self).act(view, rng)
    }

    fn idle_passive(&self) -> bool {
        (**self).idle_passive()
    }
}

/// The trivial adversary: Byzantine nodes behave exactly like honest nodes.
///
/// Useful as a control in experiments and whenever a protocol is run without
/// faults.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullAdversary;

impl<P: Protocol> Adversary<P> for NullAdversary {
    fn act(
        &mut self,
        _view: &AdversaryView<'_, P>,
        _rng: &mut ChaCha8Rng,
    ) -> AdversaryDecision<P::Message> {
        AdversaryDecision::FollowProtocol
    }

    // `act` never touches the RNG and always follows the protocol, so
    // eliding idle-tick calls is trivially unobservable.
    fn idle_passive(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Action, NodeContext, Outbox};

    #[derive(Clone)]
    struct Dummy;
    impl Protocol for Dummy {
        type Message = ();
        type Output = ();
        fn step(
            &mut self,
            _ctx: &NodeContext<'_>,
            _inbox: &[Envelope<()>],
            _outbox: &mut Outbox<()>,
            _rng: &mut ChaCha8Rng,
        ) -> Action<()> {
            Action::Continue
        }
    }

    #[test]
    fn null_adversary_always_follows_protocol() {
        use rand::SeedableRng;
        let states: Vec<Dummy> = vec![Dummy, Dummy];
        let view = AdversaryView::<Dummy> {
            round: 0,
            byzantine: &[false, true],
            crashed: &[false, false],
            states: &states,
            honest_messages: &[],
            byzantine_default_messages: &[],
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        match NullAdversary.act(&view, &mut rng) {
            AdversaryDecision::FollowProtocol => {}
            AdversaryDecision::Replace(_) => panic!("null adversary must not replace messages"),
        }
    }
}
