//! The event-driven asynchronous engine: per-node virtual clocks over a
//! deterministic calendar event queue.
//!
//! [`SyncEngine`](crate::SyncEngine) materializes "a round" as a global
//! barrier: every node steps in lock-step, once per loop iteration.  The
//! deferred-delivery [`DelayRing`](crate::DelayRing) already smuggled
//! Δ-bounded asynchrony *inside* that barrier, but the barrier itself caps
//! what the simulator can express — every node is forced onto the same
//! clock.  [`AsyncEngine`] removes the barrier: virtual time advances in
//! discrete ticks, and a [`CalendarQueue`] of typed events decides what
//! happens at each tick —
//!
//! * **plan-tick events** consult the installed [`FaultPlan`] (churn
//!   transitions, and the advancement of round-windowed behaviours such
//!   as partitions), one per tick, self-rescheduling;
//! * **node-step events** fire each node's protocol state machine on its
//!   own cadence ([`ClockPlan`]): a node with period `p` steps every `p`
//!   ticks, consuming whatever arrived in its mailbox since its previous
//!   step;
//! * **deliver events** complete the fault layer's deferred deliveries at
//!   their due tick.
//!
//! Events are totally ordered by `(time, class, node, seq)` — see
//! [`EventKey`] — so a run is a pure function of its inputs: permuting the
//! *insertion* order of same-tick events can never change the order in
//! which they fire (locked down by a property test in
//! `tests/property_based.rs`).
//!
//! ## The synchronous-parity contract
//!
//! For a *synchronous* clock plan ([`ClockPlan::Uniform`]: every node's
//! clock advances 1 per tick), [`AsyncEngine`] produces **byte-identical**
//! [`RunResult`]s to [`SyncEngine`](crate::SyncEngine) for equal
//! `(topology, protocol, adversary, seed, fault plan)`.  Each tick then
//! drains exactly one plan-tick, one step per live node (in node order —
//! the queue's `node` tie-break *is* the sync engine's phase-1 loop
//! order), the adversary cut, action application, envelope routing (fault
//! plan consulted per envelope in the sync engine's exact order, so every
//! RNG stream stays aligned) and the due deferred deliveries — precisely
//! the synchronous round pipeline.  `tests/async_parity.rs` locks this
//! down over the golden fixtures, a fresh full-fault-stack spec, a
//! baseline workload and a batch case.
//!
//! With heterogeneous clocks ([`ClockPlan::Stratified`] /
//! [`ClockPlan::Jittered`]) the engine leaves the synchronous model: slow
//! nodes miss ticks entirely, mailboxes batch several ticks' arrivals into
//! one step, and a delayed envelope can overtake a slow recipient's entire
//! step cadence.  Runs remain fully deterministic (periods are spec- or
//! seed-derived; the queue order is total), which is what makes the new
//! scenario space regression-testable.
//!
//! ## The adversary cut
//!
//! The full-information adversary must see *all* messages queued at a
//! tick before any of them is routed — that is its contract.  The engine
//! therefore cuts each tick after the last node-step event: envelopes
//! gathered in node order, one `Adversary::act` per tick (every tick, so
//! the adversary RNG stream is tick-indexed and clock-plan-independent),
//! then routing.  Under `Uniform` clocks this is exactly the synchronous
//! phase 2; under heterogeneous clocks the adversary sees whichever nodes
//! stepped this tick — still full information, per tick.

use crate::adversary::{Adversary, AdversaryDecision, AdversaryView};
use crate::engine::{
    emit_metric_deltas, envelope_admissible, splitmix, EngineConfig, MetricsSnap, RunResult,
};
use crate::message::{Envelope, MessageSize};
use crate::metrics::RunMetrics;
use crate::node::{Action, NodeContext, NodeStatus, Outbox, Protocol};
use crate::topology::Topology;
use netsim_faults::{ChurnEvent, EnvelopeFate, FaultPlan};
use netsim_graph::NodeId;
use netsim_trace::{Counter, Gauge, Phase, Recorder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Per-node virtual clocks
// ---------------------------------------------------------------------------

/// How each node's virtual clock maps onto the global tick counter.
///
/// A node with period `p` runs one protocol step every `p` ticks (first
/// step at tick 0).  `Uniform` — every period 1 — is the synchronous
/// model, and under it the engine is contractually byte-identical to
/// [`SyncEngine`](crate::SyncEngine).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ClockPlan {
    /// Every node steps every tick (the synchronous model).
    #[default]
    Uniform,
    /// Every `every`-th node (`node % every == 0`) runs slow, at `period`
    /// ticks per step; the rest step every tick.  A deterministic,
    /// seed-independent heterogeneity: the same nodes are slow in every
    /// run of the spec.
    Stratified {
        /// Stride selecting the slow nodes (≥ 1; `1` = every node slow).
        every: u32,
        /// Step period of the slow nodes (≥ 1).
        period: u32,
    },
    /// Every node draws its period uniformly from `1..=max_period`,
    /// derived from the run seed (SplitMix64 per node) — decorrelated
    /// from every protocol RNG stream, and reproducible per spec+seed.
    Jittered {
        /// Largest period a node can draw (≥ 1; `1` = synchronous).
        max_period: u32,
    },
}

/// Seed-stream tag for [`ClockPlan::Jittered`] period derivation, keeping
/// clock randomness decorrelated from the node RNG streams (which use the
/// plain node index).
const CLOCK_STREAM: u64 = 0xC10C_0000_0000_0000;

impl ClockPlan {
    /// The step period of `node` under this plan (≥ 1), for a run seeded
    /// with `seed`.
    pub fn period_of(&self, node: usize, seed: u64) -> u64 {
        match *self {
            ClockPlan::Uniform => 1,
            ClockPlan::Stratified { every, period } => {
                if node.is_multiple_of(every.max(1) as usize) {
                    period.max(1) as u64
                } else {
                    1
                }
            }
            ClockPlan::Jittered { max_period } => {
                let max = max_period.max(1) as u64;
                splitmix(seed ^ CLOCK_STREAM, node as u64) % max + 1
            }
        }
    }

    /// True when every node's period is 1 — the plans for which the
    /// engine's synchronous-parity contract applies.
    pub fn is_synchronous(&self) -> bool {
        match *self {
            ClockPlan::Uniform => true,
            ClockPlan::Stratified { period, .. } => period == 1,
            ClockPlan::Jittered { max_period } => max_period == 1,
        }
    }

    /// Check the plan is well-formed.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            ClockPlan::Uniform => Ok(()),
            ClockPlan::Stratified { every: 0, .. } => {
                Err("stratified clocks need a stride of at least 1".into())
            }
            ClockPlan::Stratified { period: 0, .. } => {
                Err("stratified clocks need a period of at least 1".into())
            }
            ClockPlan::Stratified { .. } => Ok(()),
            ClockPlan::Jittered { max_period: 0 } => {
                Err("jittered clocks need a max period of at least 1".into())
            }
            ClockPlan::Jittered { .. } => Ok(()),
        }
    }

    /// Short stable label (used in engine descriptions and bench reports).
    pub fn describe(&self) -> String {
        match *self {
            ClockPlan::Uniform => "uniform".into(),
            ClockPlan::Stratified { every, period } => format!("strat-{every}x{period}"),
            ClockPlan::Jittered { max_period } => format!("jitter-{max_period}"),
        }
    }
}

// ---------------------------------------------------------------------------
// The calendar event queue
// ---------------------------------------------------------------------------

/// What kind of event fires; the second component of the total order.
///
/// Within one tick, all plan-ticks fire before all node-steps, and the
/// engine's adversary cut + routing happen between the node-steps and the
/// deliver events — which is exactly the synchronous engine's phase
/// pipeline, re-expressed as event classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventClass {
    /// Consult the fault plan: churn transitions, partition-window
    /// advancement.  One per tick, self-rescheduling.
    PlanTick = 0,
    /// Run one node's protocol step.
    NodeStep = 1,
    /// Complete a deferred envelope delivery.
    Deliver = 2,
}

/// The total order on events: `(time, class, node, seq)`, lexicographic.
///
/// `time` is the virtual tick, `class` the event kind, `node` the owning
/// node (stepping node, or envelope recipient; 0 for plan ticks), and
/// `seq` a queue-assigned monotone counter that breaks the remaining ties
/// in first-pushed-first-fired order (it only ever decides between events
/// of the same class on the same node at the same tick — e.g. two
/// envelopes deferred to one recipient — where insertion order is itself
/// deterministic).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Virtual tick at which the event fires.
    pub time: u64,
    /// Event kind (orders the classes within a tick).
    pub class: EventClass,
    /// Owning node (tie-break within a class).
    pub node: u32,
    /// Queue-assigned monotone push counter (final tie-break).
    pub seq: u64,
}

/// One scheduled event.
#[derive(Clone, Debug)]
struct Event<E> {
    class: EventClass,
    node: u32,
    seq: u64,
    payload: E,
}

/// A bucket of events for one tick.
#[derive(Clone, Debug)]
struct TickBucket<E> {
    due: u64,
    items: Vec<Event<E>>,
}

/// Initial ring size (grown on demand, like [`DelayRing`](crate::DelayRing)).
const INITIAL_BUCKETS: usize = 8;

/// Hard cap on the ring: events further out than this window spill into a
/// `BTreeMap` side table, bounding ring memory no matter how far ahead a
/// fault plan defers an envelope.
const MAX_BUCKETS: usize = 4096;

/// A calendar queue of tick-bucketed events with the fixed total order of
/// [`EventKey`]; the discrete-event generalization of
/// [`DelayRing`](crate::DelayRing).
///
/// Buckets are a ring indexed by `tick % capacity` with a far-future
/// overflow side table (same memory discipline as the ring: drained
/// buckets keep their capacity, delays beyond the `MAX_BUCKETS` cap cost
/// O(events), never O(Δ)).  Unlike the ring, drained events come out
/// sorted by `(class, node, seq)` — *not* in insertion order — which is
/// what makes the drain order independent of how same-tick events were
/// interleaved at push time.
#[derive(Debug, Default)]
pub struct CalendarQueue<E> {
    buckets: Vec<TickBucket<E>>,
    overflow: BTreeMap<u64, Vec<Event<E>>>,
    scheduled: usize,
    next_seq: u64,
    /// Reusable sort buffer for class drains (capacity kept).
    drain_scratch: Vec<Event<E>>,
}

impl<E> CalendarQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..INITIAL_BUCKETS)
                .map(|_| TickBucket {
                    due: 0,
                    items: Vec::new(),
                })
                .collect(),
            overflow: BTreeMap::new(),
            scheduled: 0,
            next_seq: 0,
            drain_scratch: Vec::new(),
        }
    }

    /// Events currently scheduled (all classes).
    pub fn scheduled(&self) -> usize {
        self.scheduled
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.scheduled == 0
    }

    fn slot(&self, due: u64) -> usize {
        (due % self.buckets.len() as u64) as usize
    }

    /// Schedule `payload` as a `(time, class, node)` event.  Returns the
    /// key it was filed under (the `seq` component is queue-assigned).
    ///
    /// `time` may equal the tick currently being processed — the engine
    /// pushes recovery steps at the recovery tick itself — but classes
    /// already drained for that tick will not see the late event until
    /// their next drain, so callers must only push at the current tick
    /// for classes that have not yet drained (the engine drains classes
    /// in ascending order, which makes this easy to honour).
    ///
    /// # Panics
    ///
    /// Panics if `time < current`.  The ring files events by
    /// `time % capacity`, so an event pushed into the past would land in
    /// a bucket the drain cursor has already passed — silently lost until
    /// the tick counter wraps the ring, which is never.  A past push is
    /// always a caller bug (a mis-derived due tick), and losing an event
    /// would break the engines' determinism contract invisibly, so the
    /// queue refuses loudly instead of filing it as "due now".
    pub fn push(
        &mut self,
        current: u64,
        time: u64,
        class: EventClass,
        node: u32,
        payload: E,
    ) -> EventKey {
        assert!(
            time >= current,
            "CalendarQueue::push: event due at tick {time} is in the past \
             (current tick {current}); events cannot fire in the past"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let event = Event {
            class,
            node,
            seq,
            payload,
        };
        self.scheduled += 1;
        // A tick that already has overflow items keeps accumulating there
        // (one side per tick keeps the drain complete in one pass).
        if !self.overflow.is_empty() {
            if let Some(spilled) = self.overflow.get_mut(&time) {
                spilled.push(event);
                return EventKey {
                    time,
                    class,
                    node,
                    seq,
                };
            }
        }
        let window = time.saturating_sub(current);
        if window >= MAX_BUCKETS as u64 {
            self.overflow.entry(time).or_default().push(event);
            return EventKey {
                time,
                class,
                node,
                seq,
            };
        }
        let window = window as usize;
        if window >= self.buckets.len() {
            self.grow(window + 1);
        }
        let mut event = Some(event);
        loop {
            let slot = self.slot(time);
            let bucket = &mut self.buckets[slot];
            if bucket.items.is_empty() {
                bucket.due = time;
            }
            if bucket.due == time {
                bucket.items.push(event.take().expect("pushed once"));
                return EventKey {
                    time,
                    class,
                    node,
                    seq,
                };
            }
            let doubled = 2 * self.buckets.len();
            if doubled > MAX_BUCKETS {
                self.overflow
                    .entry(time)
                    .or_default()
                    .push(event.take().expect("pushed once"));
                return EventKey {
                    time,
                    class,
                    node,
                    seq,
                };
            }
            self.grow(doubled);
        }
    }

    /// Move every event of `class` due at `tick` into `out`, sorted by
    /// `(node, seq)` — the [`EventKey`] order restricted to one
    /// `(time, class)` cell.  Events of other classes stay scheduled.
    ///
    /// `out` is cleared first; passing the same scratch vector every call
    /// keeps the drain allocation-free in steady state.
    pub fn drain_class_into(&mut self, tick: u64, class: EventClass, out: &mut Vec<(u32, E)>) {
        out.clear();
        if self.scheduled == 0 {
            return;
        }
        let mut scratch = std::mem::take(&mut self.drain_scratch);
        scratch.clear();
        let slot = self.slot(tick);
        let bucket = &mut self.buckets[slot];
        if bucket.due == tick && !bucket.items.is_empty() {
            extract_class(&mut bucket.items, class, &mut scratch);
        }
        if !self.overflow.is_empty() {
            let emptied = if let Some(spilled) = self.overflow.get_mut(&tick) {
                extract_class(spilled, class, &mut scratch);
                spilled.is_empty()
            } else {
                false
            };
            if emptied {
                self.overflow.remove(&tick);
            }
        }
        self.scheduled -= scratch.len();
        scratch.sort_by_key(|e| (e.node, e.seq));
        out.extend(scratch.drain(..).map(|e| (e.node, e.payload)));
        self.drain_scratch = scratch;
    }

    /// Drain *every* event due at `tick`, in full `(class, node, seq)`
    /// order.  This is the order contract the engine's per-class pipeline
    /// refines; the tie-break property test drives the queue through this
    /// entry point.
    pub fn drain_due(&mut self, tick: u64, mut consume: impl FnMut(EventKey, E)) {
        if self.scheduled == 0 {
            return;
        }
        let mut drained: Vec<Event<E>> = Vec::new();
        let slot = self.slot(tick);
        let bucket = &mut self.buckets[slot];
        if bucket.due == tick && !bucket.items.is_empty() {
            drained.append(&mut bucket.items);
        }
        if !self.overflow.is_empty() {
            if let Some(spilled) = self.overflow.remove(&tick) {
                drained.extend(spilled);
            }
        }
        self.scheduled -= drained.len();
        drained.sort_by_key(|e| (e.class, e.node, e.seq));
        for e in drained {
            consume(
                EventKey {
                    time: tick,
                    class: e.class,
                    node: e.node,
                    seq: e.seq,
                },
                e.payload,
            );
        }
    }

    /// The earliest tick at which any scheduled event fires, or `None`
    /// when the queue is empty.
    ///
    /// One pass over the ring's occupied buckets plus a first-key peek at
    /// the overflow table — O(capacity), not O(events).  The sparse-ticking
    /// engines consult it once per *executed* tick to find the next tick
    /// worth visiting, so over a run the total cost is O(events × ring
    /// capacity / events-per-tick), which is the O(events) shape the dense
    /// tick loop lacks.
    pub fn next_event_time(&self) -> Option<u64> {
        if self.scheduled == 0 {
            return None;
        }
        let ring_min = self
            .buckets
            .iter()
            .filter(|b| !b.items.is_empty())
            .map(|b| b.due)
            .min();
        let overflow_min = self.overflow.keys().next().copied();
        match (ring_min, overflow_min) {
            (Some(r), Some(o)) => Some(r.min(o)),
            (r, o) => r.or(o),
        }
    }

    /// Grow the ring to at least `min_buckets`, re-slotting outstanding
    /// buckets (same policy as [`DelayRing`](crate::DelayRing)).
    fn grow(&mut self, min_buckets: usize) {
        let new_len = min_buckets.next_power_of_two().max(2 * self.buckets.len());
        let old = std::mem::replace(
            &mut self.buckets,
            (0..new_len)
                .map(|_| TickBucket {
                    due: 0,
                    items: Vec::new(),
                })
                .collect(),
        );
        for bucket in old {
            if bucket.items.is_empty() {
                continue;
            }
            let slot = (bucket.due % new_len as u64) as usize;
            debug_assert!(self.buckets[slot].items.is_empty());
            self.buckets[slot] = bucket;
        }
    }
}

/// Move every event of `class` out of `items` into `into` (order within
/// `items` is irrelevant — callers sort by key afterwards).
fn extract_class<E>(items: &mut Vec<Event<E>>, class: EventClass, into: &mut Vec<Event<E>>) {
    let mut i = 0;
    while i < items.len() {
        if items[i].class == class {
            into.push(items.swap_remove(i));
        } else {
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// Payload of a scheduled engine event (the class lives beside it in
/// [`Event`]; the two are kept consistent by construction).
enum EnginePayload<M> {
    /// Consult the fault plan for this tick.
    PlanTick,
    /// Step the owning node.
    NodeStep,
    /// Deliver a deferred envelope to the owning node.
    Deliver(Envelope<M>),
}

/// The event-driven asynchronous engine; see the module documentation.
pub struct AsyncEngine<'a, T, P, A>
where
    T: Topology,
    P: Protocol,
    A: Adversary<P>,
{
    topology: &'a T,
    states: Vec<P>,
    byzantine: Vec<bool>,
    adversary: A,
    config: EngineConfig,
    rngs: Vec<ChaCha8Rng>,
    adversary_rng: ChaCha8Rng,
    /// Per-node accumulating mailbox: everything delivered since the
    /// node's previous step (drained at each step; capacity kept).  The
    /// async replacement for the sync engine's double-buffered inboxes —
    /// with uniform clocks the two are indistinguishable, because every
    /// mailbox is drained every tick.
    mailboxes: Vec<Vec<Envelope<P::Message>>>,
    outboxes: Vec<Outbox<P::Message>>,
    actions: Vec<Action<P::Output>>,
    /// Per-node step period (from the [`ClockPlan`]).
    periods: Vec<u64>,
    /// Tick-scoped envelope arenas, gathered in node order (the queue's
    /// node tie-break), exactly like the sync engine's phase 2.
    honest_arena: Vec<Envelope<P::Message>>,
    byz_default: Vec<Envelope<P::Message>>,
    crashed_scratch: Vec<bool>,
    statuses: Vec<NodeStatus>,
    outputs: Vec<Option<P::Output>>,
    decided_round: Vec<Option<u64>>,
    metrics: RunMetrics,
    /// Fully processed ticks (the async generalization of the round
    /// counter; reported as `rounds`).
    time: u64,
    queue: CalendarQueue<EnginePayload<P::Message>>,
    /// Reusable drain scratch (cleared by the queue on every drain).
    scratch: Vec<(u32, EnginePayload<P::Message>)>,
    /// Deferred envelopes currently scheduled as deliver events; whatever
    /// remains when the run stops has expired.
    deferred_in_flight: u64,
    /// Whether the adversary licensed sparse ticking
    /// ([`Adversary::idle_passive`], cached at construction).  When a
    /// fault plan is installed its self-rescheduling plan-tick event makes
    /// every tick an event tick, so the flag alone never causes a skip
    /// the plan would have observed.
    skip_enabled: bool,
    /// Idle ticks jumped over by [`advance`](Self::advance) without being
    /// executed (they still count into `metrics.rounds`).
    ticks_skipped: u64,
    fault_plan: Option<Box<dyn FaultPlan>>,
    reset_state: Option<Box<dyn Fn(usize) -> P + Send>>,
    churned_down: Vec<bool>,
    /// Optional observer (tick phases map onto the synchronous phase
    /// vocabulary; the calendar-queue occupancy is this engine's extra
    /// gauge).  `None` costs one branch per phase boundary.
    recorder: Option<&'a dyn Recorder>,
}

impl<'a, T, P, A> AsyncEngine<'a, T, P, A>
where
    T: Topology,
    P: Protocol + Sync,
    P::Output: Send,
    A: Adversary<P>,
{
    /// Create an engine with the given clock plan.
    ///
    /// # Panics
    /// Panics if `states.len()` or `byzantine.len()` differ from the
    /// topology size.
    pub fn new(
        topology: &'a T,
        states: Vec<P>,
        byzantine: Vec<bool>,
        adversary: A,
        config: EngineConfig,
        seed: u64,
        clocks: ClockPlan,
    ) -> Self {
        let n = topology.len();
        assert_eq!(states.len(), n, "one protocol state per node required");
        assert_eq!(byzantine.len(), n, "byzantine mask must cover every node");
        // Node RNG streams are derived per node exactly as in `SyncEngine`
        // — the clock plan must never reach the protocol randomness.
        let rngs = (0..n)
            .map(|i| ChaCha8Rng::seed_from_u64(splitmix(seed, i as u64)))
            .collect();
        let periods: Vec<u64> = (0..n).map(|i| clocks.period_of(i, seed)).collect();
        let mut queue = CalendarQueue::new();
        for (i, _) in periods.iter().enumerate() {
            queue.push(
                0,
                0,
                EventClass::NodeStep,
                i as u32,
                EnginePayload::NodeStep,
            );
        }
        let skip_enabled = adversary.idle_passive();
        AsyncEngine {
            topology,
            states,
            byzantine,
            adversary,
            config,
            rngs,
            adversary_rng: ChaCha8Rng::seed_from_u64(splitmix(seed, u64::MAX)),
            mailboxes: vec![Vec::new(); n],
            outboxes: (0..n).map(|_| Outbox::new()).collect(),
            actions: vec![Action::Continue; n],
            periods,
            honest_arena: Vec::new(),
            byz_default: Vec::new(),
            crashed_scratch: Vec::with_capacity(n),
            statuses: vec![NodeStatus::Active; n],
            outputs: vec![None; n],
            decided_round: vec![None; n],
            metrics: RunMetrics::default(),
            time: 0,
            queue,
            scratch: Vec::new(),
            deferred_in_flight: 0,
            skip_enabled,
            ticks_skipped: 0,
            fault_plan: None,
            reset_state: None,
            churned_down: vec![false; n],
            recorder: None,
        }
    }

    /// Attach a [`Recorder`]; see
    /// [`SyncEngine::with_recorder`](crate::SyncEngine::with_recorder).
    pub fn with_recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// [`with_recorder`](Self::with_recorder) that is a no-op for `None`.
    pub fn with_recorder_opt(mut self, recorder: Option<&'a dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Install a [`FaultPlan`]; see
    /// [`SyncEngine::with_fault_plan`](crate::SyncEngine::with_fault_plan).
    /// Also schedules the self-rescheduling plan-tick event that consults
    /// the plan once per tick.
    pub fn with_fault_plan(mut self, plan: Box<dyn FaultPlan>) -> Self
    where
        P: Clone + Send + 'static,
    {
        let pristine: Vec<P> = self.states.clone();
        self.reset_state = Some(Box::new(move |i| pristine[i].clone()));
        self.fault_plan = Some(plan);
        self.queue.push(
            self.time,
            self.time,
            EventClass::PlanTick,
            0,
            EnginePayload::PlanTick,
        );
        self
    }

    /// [`with_fault_plan`](Self::with_fault_plan) that is a no-op for
    /// `None`.
    pub fn with_fault_plan_opt(self, plan: Option<Box<dyn FaultPlan>>) -> Self
    where
        P: Clone + Send + 'static,
    {
        match plan {
            Some(plan) => self.with_fault_plan(plan),
            None => self,
        }
    }

    /// Mark nodes as crashed before the first tick; see
    /// [`SyncEngine::with_initial_crashes`](crate::SyncEngine::with_initial_crashes).
    pub fn with_initial_crashes(mut self, crashed: &[bool]) -> Self {
        assert_eq!(
            crashed.len(),
            self.statuses.len(),
            "crash mask must cover every node"
        );
        for (status, &is_crashed) in self.statuses.iter_mut().zip(crashed) {
            if is_crashed {
                *status = NodeStatus::Crashed;
            }
        }
        self
    }

    /// The current virtual tick (number of ticks fully executed,
    /// including skipped idle ticks).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Idle ticks jumped over by the sparse-ticking skip so far.  Always
    /// zero under dense execution ([`step_tick`](Self::step_tick) in a
    /// loop), under a fault plan (its self-rescheduling plan-tick event
    /// occupies every tick), or when the adversary did not opt into
    /// [`Adversary::idle_passive`].
    pub fn ticks_skipped(&self) -> u64 {
        self.ticks_skipped
    }

    /// The per-node step periods resolved from the clock plan.
    pub fn periods(&self) -> &[u64] {
        &self.periods
    }

    /// Read access to the per-node protocol states (for instrumentation).
    pub fn states(&self) -> &[P] {
        &self.states
    }

    /// Node statuses so far.
    pub fn statuses(&self) -> &[NodeStatus] {
        &self.statuses
    }

    /// Whether the stop condition has been reached (`max_rounds` caps the
    /// tick count; the all-decided check is the sync engine's, verbatim).
    pub fn finished(&self) -> bool {
        if self.time >= self.config.max_rounds {
            return true;
        }
        if self.config.stop_when_all_decided {
            let all_done = self
                .statuses
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.byzantine[*i])
                .all(|(_, s)| *s != NodeStatus::Active);
            if all_done {
                return true;
            }
        }
        false
    }

    /// Execute one virtual tick.  Returns `false` when the stop condition
    /// has been reached (the tick is still executed).
    pub fn step_tick(&mut self) -> bool {
        let n = self.topology.len();
        self.metrics.begin_round();
        let tick = self.time;

        // Observability: the tick maps onto the synchronous phase
        // vocabulary (plan tick = churn, class-1 drain = node-step, cut +
        // action application = adversary-cut, delivery = routing, class-2
        // drain = deferred-drain), all under tid 0.
        let rec = self.recorder;
        let snap = rec.map(|_| MetricsSnap::of(&self.metrics));
        if let Some(rec) = rec {
            rec.phase_begin(0, tick, Phase::Round);
            rec.phase_begin(0, tick, Phase::Churn);
        }

        // Class 0 — plan tick: churn transitions requested by the fault
        // plan, in plan order (identical to the sync engine's phase 0;
        // this is also where round-windowed plan behaviour such as
        // partitions advances).  The event reschedules itself for the next
        // tick, so the plan's RNG streams stay tick-indexed no matter what
        // the node clocks do.
        let mut scratch = std::mem::take(&mut self.scratch);
        self.queue
            .drain_class_into(tick, EventClass::PlanTick, &mut scratch);
        if !scratch.is_empty() {
            self.queue.push(
                tick,
                tick + 1,
                EventClass::PlanTick,
                0,
                EnginePayload::PlanTick,
            );
            if let Some(plan) = self.fault_plan.as_mut() {
                for event in plan.begin_round(tick) {
                    match event {
                        ChurnEvent::Crash(v) => {
                            let i = v.index();
                            if i < n
                                && !self.byzantine[i]
                                && self.statuses[i] != NodeStatus::Crashed
                            {
                                self.statuses[i] = NodeStatus::Crashed;
                                self.churned_down[i] = true;
                                self.metrics.record_churn_crash();
                            }
                        }
                        ChurnEvent::Recover(v) => {
                            let i = v.index();
                            // Only churn-injected crashes are recoverable;
                            // see the sync engine.
                            if i < n
                                && self.churned_down[i]
                                && self.statuses[i] == NodeStatus::Crashed
                            {
                                if let Some(reset) = self.reset_state.as_ref() {
                                    self.states[i] = reset(i);
                                    self.outputs[i] = None;
                                    self.decided_round[i] = None;
                                    self.statuses[i] = NodeStatus::Active;
                                    self.churned_down[i] = false;
                                    self.mailboxes[i].clear();
                                    self.metrics.record_churn_recovery();
                                }
                            }
                        }
                    }
                }
            }
        }

        if let Some(rec) = rec {
            rec.phase_end(0, tick, Phase::Churn);
            rec.phase_begin(0, tick, Phase::NodeStep);
        }

        // Class 1 — node steps, in node order (the queue's tie-break).
        // Each due node consumes its accumulated mailbox, fills its
        // engine-owned outbox, and its envelopes move straight into the
        // tick arenas — still in global node order, because the steps
        // themselves are.  Crashed nodes skip the step but keep their
        // cadence (the event reschedules unconditionally), so a node
        // recovered by churn resumes on its original clock phase.
        self.honest_arena.clear();
        self.byz_default.clear();
        self.queue
            .drain_class_into(tick, EventClass::NodeStep, &mut scratch);
        for &(node, _) in scratch.iter() {
            let i = node as usize;
            self.queue.push(
                tick,
                tick + self.periods[i],
                EventClass::NodeStep,
                node,
                EnginePayload::NodeStep,
            );
            if self.statuses[i] == NodeStatus::Crashed {
                self.actions[i] = Action::Continue;
                continue;
            }
            let id = NodeId::from_index(i);
            let outbox = &mut self.outboxes[i];
            outbox.clear();
            let mailbox = std::mem::take(&mut self.mailboxes[i]);
            let ctx = NodeContext {
                id,
                round: tick,
                neighbors: self.topology.neighbors(id),
                decided: self.outputs[i].is_some(),
            };
            self.actions[i] = self.states[i].step(&ctx, &mailbox, outbox, &mut self.rngs[i]);
            let mut mailbox = mailbox;
            mailbox.clear();
            self.mailboxes[i] = mailbox;
            let target: &mut Vec<Envelope<P::Message>> = if self.byzantine[i] {
                &mut self.byz_default
            } else {
                &mut self.honest_arena
            };
            outbox.drain_envelopes(id, |env| target.push(env));
        }

        if let Some(rec) = rec {
            rec.phase_end(0, tick, Phase::NodeStep);
            rec.phase_begin(0, tick, Phase::AdversaryCut);
        }

        // Adversary cut: one full-information `act` per tick, every tick,
        // over the envelopes gathered above (sync engine's phase 2).
        self.crashed_scratch.clear();
        self.crashed_scratch
            .extend(self.statuses.iter().map(|s| *s == NodeStatus::Crashed));
        let decision = {
            let view = AdversaryView {
                round: tick,
                byzantine: &self.byzantine,
                crashed: &self.crashed_scratch,
                states: &self.states,
                honest_messages: &self.honest_arena,
                byzantine_default_messages: &self.byz_default,
            };
            self.adversary.act(&view, &mut self.adversary_rng)
        };

        // Apply actions (honest nodes only; sync engine's phase 3).  Nodes
        // that did not step this tick hold `Continue` — their previous
        // action was consumed when it was applied.
        for i in 0..n {
            if self.byzantine[i] || self.statuses[i] == NodeStatus::Crashed {
                continue;
            }
            match std::mem::replace(&mut self.actions[i], Action::Continue) {
                Action::Continue => {}
                Action::Decide(output) => {
                    if self.outputs[i].is_none() {
                        self.outputs[i] = Some(output);
                        self.decided_round[i] = Some(tick);
                        self.statuses[i] = NodeStatus::Decided;
                    }
                }
                Action::Crash => {
                    self.statuses[i] = NodeStatus::Crashed;
                }
            }
        }

        if let Some(rec) = rec {
            rec.gauge(
                0,
                tick,
                Gauge::HonestArenaHighWater,
                self.honest_arena.len() as u64,
            );
            rec.gauge(
                0,
                tick,
                Gauge::ByzArenaHighWater,
                self.byz_default.len() as u64,
            );
            rec.phase_end(0, tick, Phase::AdversaryCut);
            rec.phase_begin(0, tick, Phase::Routing);
        }

        // Routing: validate, account and deliver — honest arena first,
        // then the Byzantine path, with the fault plan consulted per
        // envelope in exactly the sync engine's phase-4 order (its RNG
        // stream depends on it).  Immediate deliveries land in mailboxes
        // now; deferred ones become deliver events at their due tick.
        let mut honest = std::mem::take(&mut self.honest_arena);
        for env in honest.drain(..) {
            self.deliver(tick, env, false);
        }
        self.honest_arena = honest;
        match decision {
            AdversaryDecision::FollowProtocol => {
                let mut byz = std::mem::take(&mut self.byz_default);
                for env in byz.drain(..) {
                    self.deliver(tick, env, false);
                }
                self.byz_default = byz;
            }
            AdversaryDecision::Replace(msgs) => {
                for env in msgs {
                    self.deliver(tick, env, true);
                }
            }
        }

        if let Some(rec) = rec {
            rec.phase_end(0, tick, Phase::Routing);
            rec.phase_begin(0, tick, Phase::DeferredDrain);
        }

        // Class 2 — deferred deliveries due this tick (sync engine's phase
        // 5).  An envelope whose recipient crashed while it was in flight
        // expires here, never delivered.
        self.queue
            .drain_class_into(tick, EventClass::Deliver, &mut scratch);
        for (node, payload) in scratch.drain(..) {
            let EnginePayload::Deliver(env) = payload else {
                unreachable!("Deliver events always carry an envelope");
            };
            self.deferred_in_flight -= 1;
            if self.statuses[node as usize] == NodeStatus::Crashed {
                self.metrics.record_fault_expired(1);
            } else {
                self.metrics.record_delivery(env.payload.message_size());
                self.mailboxes[node as usize].push(env);
            }
        }
        self.scratch = scratch;

        if let Some(rec) = rec {
            rec.phase_end(0, tick, Phase::DeferredDrain);
            rec.gauge(0, tick, Gauge::DelayRingPending, self.deferred_in_flight);
            rec.gauge(
                0,
                tick,
                Gauge::CalendarOccupancy,
                self.queue.scheduled() as u64,
            );
            emit_metric_deltas(
                rec,
                0,
                tick,
                snap.expect("snapshotted with recorder"),
                MetricsSnap::of(&self.metrics),
            );
            rec.add(0, tick, Counter::Rounds, 1);
            rec.phase_end(0, tick, Phase::Round);
        }

        self.time += 1;
        !self.finished()
    }

    /// Validate, account and deliver (or lose / defer) one envelope queued
    /// at `tick` (mirrors `SyncEngine::deliver`; the validation rules are
    /// literally shared via `envelope_admissible`).
    fn deliver(&mut self, tick: u64, env: Envelope<P::Message>, authored_by_adversary: bool) {
        if !envelope_admissible(
            self.topology,
            &self.statuses,
            &self.byzantine,
            &env,
            authored_by_adversary,
        ) {
            self.metrics.record_drop();
            return;
        }
        let fate = match self.fault_plan.as_mut() {
            Some(plan) if !self.byzantine[env.from.index()] => {
                plan.envelope_fate(tick, env.from, env.to)
            }
            _ => EnvelopeFate::Deliver,
        };
        match fate {
            // `Delay(0)` accounts as plain delivery in every engine (see
            // the cross-engine regression test in `sharded_async`).
            EnvelopeFate::Deliver | EnvelopeFate::Delay(0) => {
                self.metrics.record_delivery(env.payload.message_size());
                self.mailboxes[env.to.index()].push(env);
            }
            EnvelopeFate::Drop => self.metrics.record_fault_loss(),
            EnvelopeFate::Delay(delay) => {
                self.metrics.record_fault_delay();
                self.deferred_in_flight += 1;
                let to = env.to.0;
                self.queue.push(
                    tick,
                    tick + delay,
                    EventClass::Deliver,
                    to,
                    EnginePayload::Deliver(env),
                );
            }
        }
    }

    /// Jump over the span of dead ticks ahead of the current tick —
    /// ticks at which no event fires — performing the bulk accounting
    /// dense execution would have produced tick by tick.
    ///
    /// Only runs when the adversary opted into
    /// [`Adversary::idle_passive`]: an idle tick's only side effects are
    /// then `metrics.begin_round()` (an empty per-round slot), the
    /// recorder's `Rounds` increment, and `time += 1` — every one of
    /// which this skip replays in bulk, so a skipped span is
    /// observationally identical to executing the empty ticks.  With a
    /// fault plan installed the self-rescheduling plan-tick event is due
    /// every tick, so `next_event_time()` never exceeds the current tick
    /// and the skip is a no-op — plan RNG streams stay tick-indexed by
    /// construction, not by special-casing.
    fn skip_idle_ticks(&mut self) {
        if !self.skip_enabled {
            return;
        }
        let target = self
            .queue
            .next_event_time()
            .unwrap_or(self.config.max_rounds)
            .min(self.config.max_rounds);
        if target <= self.time {
            return;
        }
        let skipped = target - self.time;
        self.metrics.skip_rounds(skipped);
        self.ticks_skipped += skipped;
        if let Some(rec) = self.recorder {
            // Skipped ticks are completed ticks: trace-derived `rounds`
            // totals must keep matching `RunMetrics` bit-for-bit.
            rec.add(0, self.time, Counter::Rounds, skipped);
            rec.add(0, self.time, Counter::TicksSkipped, skipped);
        }
        self.time = target;
    }

    /// Advance to the next tick at which anything can happen and execute
    /// it: [`step_tick`](Self::step_tick) preceded by the sparse skip
    /// over idle ticks.  Returns `false` when the stop condition has been
    /// reached (possibly by the skip alone — the skip never crosses
    /// `max_rounds`).  This is what [`run`](Self::run) iterates; calling
    /// `step_tick` directly instead yields dense execution with
    /// byte-identical results.
    pub fn advance(&mut self) -> bool {
        self.skip_idle_ticks();
        if self.finished() {
            return false;
        }
        self.step_tick()
    }

    /// Run until the stop condition and return the result.
    pub fn run(mut self) -> RunResult<P::Output> {
        while !self.finished() {
            self.advance();
        }
        self.into_result()
    }

    /// Consume the engine and produce the result without running further.
    /// Deferred envelopes still scheduled — delayed past the run's final
    /// tick — count as expired, never delivered.
    pub fn into_result(mut self) -> RunResult<P::Output> {
        if self.deferred_in_flight > 0 {
            self.metrics.record_fault_expired(self.deferred_in_flight);
            if let Some(rec) = self.recorder {
                // Mirror the end-of-run expiries so trace-derived totals
                // keep matching `RunMetrics` bit-for-bit.
                rec.add(
                    0,
                    self.time,
                    Counter::MessagesExpired,
                    self.deferred_in_flight,
                );
            }
        }
        let completed = self
            .statuses
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.byzantine[*i])
            .all(|(_, s)| *s != NodeStatus::Active);
        let crashed = self
            .statuses
            .iter()
            .map(|s| *s == NodeStatus::Crashed)
            .collect();
        RunResult {
            outputs: self.outputs,
            decided_round: self.decided_round,
            crashed,
            statuses: self.statuses,
            metrics: self.metrics,
            completed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::NullAdversary;
    use crate::engine::SyncEngine;
    use crate::message::SizedMessage;
    use netsim_faults::FaultSpec;
    use netsim_graph::Csr;
    use rand::Rng;

    #[derive(Clone, Debug, PartialEq)]
    struct Val(u64);
    impl MessageSize for Val {
        fn message_size(&self) -> SizedMessage {
            SizedMessage::new(0, 64)
        }
    }

    /// Max-flooding (the engine test-suite workhorse).
    #[derive(Clone)]
    struct MaxFlood {
        value: u64,
        best: u64,
        ttl: u64,
        started: bool,
    }

    impl Protocol for MaxFlood {
        type Message = Val;
        type Output = u64;
        fn step(
            &mut self,
            ctx: &NodeContext<'_>,
            inbox: &[Envelope<Val>],
            outbox: &mut Outbox<Val>,
            rng: &mut ChaCha8Rng,
        ) -> Action<u64> {
            if !self.started {
                self.started = true;
                if self.value == 0 {
                    self.value = rng.gen::<u64>() | 1;
                }
                self.best = self.value;
                outbox.broadcast(ctx.neighbors.iter(), Val(self.best));
                return Action::Continue;
            }
            let mut improved = false;
            for env in inbox {
                if env.payload.0 > self.best {
                    self.best = env.payload.0;
                    improved = true;
                }
            }
            if improved {
                outbox.broadcast(ctx.neighbors.iter(), Val(self.best));
            }
            if ctx.round >= self.ttl {
                Action::Decide(self.best)
            } else {
                Action::Continue
            }
        }
    }

    fn line_graph(n: usize) -> Csr {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Csr::from_undirected_edges(n, &edges).unwrap()
    }

    fn flood_states(n: usize, ttl: u64) -> Vec<MaxFlood> {
        (0..n)
            .map(|_| MaxFlood {
                value: 0,
                best: 0,
                ttl,
                started: false,
            })
            .collect()
    }

    fn assert_results_equal(a: &RunResult<u64>, b: &RunResult<u64>, label: &str) {
        assert_eq!(a.outputs, b.outputs, "{label}: outputs diverged");
        assert_eq!(a.decided_round, b.decided_round, "{label}: decided_round");
        assert_eq!(a.crashed, b.crashed, "{label}: crash masks");
        assert_eq!(a.statuses, b.statuses, "{label}: statuses");
        assert_eq!(a.metrics, b.metrics, "{label}: metrics");
        assert_eq!(a.completed, b.completed, "{label}: completed");
    }

    // -- CalendarQueue ------------------------------------------------------

    #[test]
    fn queue_drains_in_class_node_seq_order_regardless_of_insertion_order() {
        // Two insertion permutations of the same same-tick event set must
        // drain identically: the order is the key, not the push history.
        let events = [
            (EventClass::Deliver, 3u32, "d3"),
            (EventClass::NodeStep, 7, "s7"),
            (EventClass::PlanTick, 0, "p"),
            (EventClass::NodeStep, 2, "s2"),
            (EventClass::Deliver, 1, "d1"),
        ];
        let drain = |order: &[usize]| {
            let mut q: CalendarQueue<&'static str> = CalendarQueue::new();
            for &i in order {
                let (class, node, tag) = events[i];
                q.push(0, 5, class, node, tag);
            }
            let mut out = Vec::new();
            q.drain_due(5, |key, tag| out.push((key.class, key.node, tag)));
            assert!(q.is_empty());
            out
        };
        let a = drain(&[0, 1, 2, 3, 4]);
        let b = drain(&[4, 3, 2, 1, 0]);
        assert_eq!(a, b);
        assert_eq!(
            a,
            vec![
                (EventClass::PlanTick, 0, "p"),
                (EventClass::NodeStep, 2, "s2"),
                (EventClass::NodeStep, 7, "s7"),
                (EventClass::Deliver, 1, "d1"),
                (EventClass::Deliver, 3, "d3"),
            ]
        );
    }

    #[test]
    fn queue_seq_preserves_fifo_for_equal_keys() {
        // Two envelopes to the same recipient due the same tick keep their
        // push order — `seq` is the last tie-break.
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        q.push(0, 2, EventClass::Deliver, 4, 100);
        q.push(0, 2, EventClass::Deliver, 4, 200);
        let mut out = Vec::new();
        q.drain_due(2, |_, v| out.push(v));
        assert_eq!(out, vec![100, 200]);
    }

    #[test]
    fn queue_far_future_events_take_the_overflow_path() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        q.push(0, u64::MAX / 2, EventClass::Deliver, 0, 1);
        q.push(0, 1_000_000_000, EventClass::Deliver, 0, 2);
        q.push(0, 3, EventClass::Deliver, 0, 3);
        assert_eq!(q.scheduled(), 3);
        assert!(q.buckets.len() <= MAX_BUCKETS);
        let mut out = Vec::new();
        q.drain_due(3, |_, v| out.push(v));
        q.drain_due(1_000_000_000, |_, v| out.push(v));
        q.drain_due(u64::MAX / 2, |_, v| out.push(v));
        assert_eq!(out, vec![3, 2, 1]);
        assert!(q.is_empty());
    }

    #[test]
    fn queue_class_drains_leave_other_classes_scheduled() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        q.push(0, 1, EventClass::NodeStep, 2, 20);
        q.push(0, 1, EventClass::Deliver, 1, 10);
        q.push(0, 1, EventClass::NodeStep, 0, 0);
        let mut scratch = Vec::new();
        q.drain_class_into(1, EventClass::NodeStep, &mut scratch);
        assert_eq!(
            scratch.iter().map(|(n, v)| (*n, *v)).collect::<Vec<_>>(),
            vec![(0, 0), (2, 20)]
        );
        assert_eq!(q.scheduled(), 1, "the deliver event must stay scheduled");
        q.drain_class_into(1, EventClass::Deliver, &mut scratch);
        assert_eq!(scratch.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "events cannot fire in the past")]
    fn queue_rejects_pushes_into_the_past() {
        // Regression: a push with `time < current` used to be silently
        // filed as "due now" (`time.saturating_sub(current)` == 0) into a
        // ring bucket the drain had already passed, losing the event.  The
        // queue must refuse loudly instead.
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        q.push(10, 9, EventClass::Deliver, 0, 1);
    }

    #[test]
    fn queue_next_event_time_tracks_ring_and_overflow() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        assert_eq!(q.next_event_time(), None, "empty queue has no next event");
        // Far-future first: the overflow table alone answers.
        q.push(0, 1_000_000, EventClass::Deliver, 0, 1);
        assert_eq!(q.next_event_time(), Some(1_000_000));
        // A nearer ring event wins the min.
        q.push(0, 7, EventClass::NodeStep, 2, 2);
        assert_eq!(q.next_event_time(), Some(7));
        q.push(0, 3, EventClass::PlanTick, 0, 3);
        assert_eq!(q.next_event_time(), Some(3));
        // Draining the nearest tick advances the answer.
        let mut scratch = Vec::new();
        q.drain_class_into(3, EventClass::PlanTick, &mut scratch);
        assert_eq!(q.next_event_time(), Some(7));
        q.drain_class_into(7, EventClass::NodeStep, &mut scratch);
        assert_eq!(
            q.next_event_time(),
            Some(1_000_000),
            "only the overflow event remains"
        );
        q.drain_class_into(1_000_000, EventClass::Deliver, &mut scratch);
        assert_eq!(q.next_event_time(), None);
    }

    // -- ClockPlan ----------------------------------------------------------

    #[test]
    fn clock_plans_resolve_and_validate() {
        assert_eq!(ClockPlan::Uniform.period_of(17, 9), 1);
        assert!(ClockPlan::Uniform.is_synchronous());
        let strat = ClockPlan::Stratified {
            every: 3,
            period: 4,
        };
        assert_eq!(strat.period_of(0, 9), 4);
        assert_eq!(strat.period_of(1, 9), 1);
        assert_eq!(strat.period_of(3, 9), 4);
        assert!(!strat.is_synchronous());
        assert!(strat.validate().is_ok());
        assert!(ClockPlan::Stratified {
            every: 0,
            period: 2
        }
        .validate()
        .is_err());
        assert!(ClockPlan::Stratified {
            every: 2,
            period: 0
        }
        .validate()
        .is_err());
        assert!(ClockPlan::Jittered { max_period: 0 }.validate().is_err());
        let jitter = ClockPlan::Jittered { max_period: 3 };
        assert!(jitter.validate().is_ok());
        for node in 0..50 {
            let p = jitter.period_of(node, 123);
            assert!((1..=3).contains(&p));
            assert_eq!(p, jitter.period_of(node, 123), "seed-deterministic");
        }
        assert!(ClockPlan::Jittered { max_period: 1 }.is_synchronous());
        assert_eq!(ClockPlan::Uniform.describe(), "uniform");
        assert_eq!(strat.describe(), "strat-3x4");
        assert_eq!(jitter.describe(), "jitter-3");
    }

    // -- Sync parity --------------------------------------------------------

    #[test]
    fn uniform_clocks_match_the_sync_engine_on_clean_runs() {
        let n = 24;
        let g = line_graph(n);
        let reference = SyncEngine::new(
            &g,
            flood_states(n, 3 * n as u64),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            42,
        )
        .run();
        let asynced = AsyncEngine::new(
            &g,
            flood_states(n, 3 * n as u64),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            42,
            ClockPlan::Uniform,
        )
        .run();
        assert_results_equal(&reference, &asynced, "clean uniform clocks");
    }

    #[test]
    fn uniform_clocks_match_the_sync_engine_under_the_full_fault_stack() {
        let n = 32;
        let g = line_graph(n);
        let spec = FaultSpec::Compose(vec![
            FaultSpec::Loss { rate: 0.15 },
            FaultSpec::Delay {
                max_delay: 3,
                rate: 0.3,
            },
            FaultSpec::Churn {
                rate: 0.04,
                downtime: 3,
            },
            FaultSpec::Partition {
                start: 2,
                duration: 5,
            },
        ]);
        let plan = |seed: u64| {
            spec.build_plan(n, &vec![true; n], seed ^ 0xFA17)
                .expect("plan")
        };
        let reference = SyncEngine::new(
            &g,
            flood_states(n, 90),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            7,
        )
        .with_fault_plan(plan(7))
        .run();
        let asynced = AsyncEngine::new(
            &g,
            flood_states(n, 90),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            7,
            ClockPlan::Uniform,
        )
        .with_fault_plan(plan(7))
        .run();
        assert_results_equal(&reference, &asynced, "faulty uniform clocks");
        assert!(
            reference.metrics.messages_lost > 0 && reference.metrics.messages_delayed > 0,
            "the fault stack must actually have fired for this test to mean anything"
        );
    }

    /// An adversary that makes Byzantine nodes shout a huge value at node
    /// 0 plus an illegal long-range message (mirrors the engine suites).
    struct Shouter;
    impl Adversary<MaxFlood> for Shouter {
        fn act(
            &mut self,
            view: &AdversaryView<'_, MaxFlood>,
            _rng: &mut ChaCha8Rng,
        ) -> AdversaryDecision<Val> {
            let mut msgs = Vec::new();
            for (i, &b) in view.byzantine.iter().enumerate() {
                if b {
                    msgs.push(Envelope::new(
                        NodeId::from_index(i),
                        NodeId(0),
                        Val(u64::MAX),
                    ));
                    msgs.push(Envelope::new(
                        NodeId::from_index(i),
                        NodeId(5),
                        Val(u64::MAX),
                    ));
                }
            }
            AdversaryDecision::Replace(msgs)
        }
    }

    #[test]
    fn uniform_clocks_match_the_sync_engine_under_an_adversary() {
        let n = 16;
        let g = line_graph(n);
        let mut byz = vec![false; n];
        byz[1] = true;
        byz[9] = true;
        let reference = SyncEngine::new(
            &g,
            flood_states(n, 30),
            byz.clone(),
            Shouter,
            EngineConfig::default(),
            3,
        )
        .run();
        let asynced = AsyncEngine::new(
            &g,
            flood_states(n, 30),
            byz.clone(),
            Shouter,
            EngineConfig::default(),
            3,
            ClockPlan::Uniform,
        )
        .run();
        assert_results_equal(&reference, &asynced, "adversarial uniform clocks");
        assert!(reference.metrics.messages_dropped > 0);
    }

    #[test]
    fn uniform_clocks_match_the_sync_engine_with_initial_crashes() {
        let n = 16;
        let g = line_graph(n);
        let mut crashed = vec![false; n];
        crashed[3] = true;
        crashed[12] = true;
        let reference = SyncEngine::new(
            &g,
            flood_states(n, 50),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            5,
        )
        .with_initial_crashes(&crashed)
        .run();
        let asynced = AsyncEngine::new(
            &g,
            flood_states(n, 50),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            5,
            ClockPlan::Uniform,
        )
        .with_initial_crashes(&crashed)
        .run();
        assert_results_equal(&reference, &asynced, "initial crashes");
    }

    // -- Expiry regressions -------------------------------------------------

    #[test]
    fn envelopes_delayed_past_the_final_tick_expire_and_are_never_delivered() {
        // Regression test for the async expiry path: a deliver event still
        // scheduled when the run stops counts as `messages_expired`, never
        // delivered — equal to the sync engine on synchronous specs.
        struct DelayOne;
        impl FaultPlan for DelayOne {
            fn envelope_fate(&mut self, round: u64, from: NodeId, to: NodeId) -> EnvelopeFate {
                if round == 0 && from == NodeId(3) && to == NodeId(4) {
                    EnvelopeFate::Delay(1000)
                } else {
                    EnvelopeFate::Deliver
                }
            }
        }
        let n = 8;
        let g = line_graph(n);
        let cfg = EngineConfig {
            max_rounds: 4,
            stop_when_all_decided: true,
        };
        let reference = SyncEngine::new(
            &g,
            flood_states(n, 1000),
            vec![false; n],
            NullAdversary,
            cfg,
            11,
        )
        .with_fault_plan(Box::new(DelayOne))
        .run();
        let asynced = AsyncEngine::new(
            &g,
            flood_states(n, 1000),
            vec![false; n],
            NullAdversary,
            cfg,
            11,
            ClockPlan::Uniform,
        )
        .with_fault_plan(Box::new(DelayOne))
        .run();
        assert_results_equal(&reference, &asynced, "expiry at the cap");
        assert_eq!(asynced.metrics.messages_delayed, 1);
        assert_eq!(
            asynced.metrics.messages_expired, 1,
            "the deferred envelope must expire at the cap, not deliver"
        );
    }

    #[test]
    fn envelopes_delayed_to_a_recipient_that_crashes_in_flight_expire() {
        // The delayed-then-crashed-recipient case: the deliver event fires
        // at its due tick, finds the recipient crashed, and expires.
        struct DelayThenCrash;
        impl FaultPlan for DelayThenCrash {
            fn begin_round(&mut self, round: u64) -> Vec<ChurnEvent> {
                if round == 1 {
                    vec![ChurnEvent::Crash(NodeId(1))]
                } else {
                    Vec::new()
                }
            }
            fn envelope_fate(&mut self, round: u64, _from: NodeId, to: NodeId) -> EnvelopeFate {
                if round == 0 && to == NodeId(1) {
                    EnvelopeFate::Delay(2)
                } else {
                    EnvelopeFate::Deliver
                }
            }
        }
        let n = 4;
        let g = line_graph(n);
        let run_async = || {
            AsyncEngine::new(
                &g,
                flood_states(n, 12),
                vec![false; n],
                NullAdversary,
                EngineConfig::default(),
                6,
                ClockPlan::Uniform,
            )
            .with_fault_plan(Box::new(DelayThenCrash))
            .run()
        };
        let reference = SyncEngine::new(
            &g,
            flood_states(n, 12),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            6,
        )
        .with_fault_plan(Box::new(DelayThenCrash))
        .run();
        let asynced = run_async();
        assert_results_equal(&reference, &asynced, "delay-then-crash expiry");
        assert!(asynced.crashed[1]);
        assert!(asynced.metrics.messages_expired > 0);
        assert_eq!(
            asynced.metrics.messages_delayed, asynced.metrics.messages_expired,
            "every deferred envelope was addressed to the crashed node"
        );
    }

    #[test]
    fn delay_past_a_slow_receivers_last_step_expires_at_the_cap() {
        // Heterogeneous leg of the expiry regression: the receiver's clock
        // is so slow it never steps again, and the envelope's due tick
        // lies past the cap — it must expire, never deliver, and never
        // count toward the delivered metrics.
        struct DelayFar;
        impl FaultPlan for DelayFar {
            fn envelope_fate(&mut self, round: u64, _from: NodeId, to: NodeId) -> EnvelopeFate {
                if round == 0 && to == NodeId(0) {
                    EnvelopeFate::Delay(500)
                } else {
                    EnvelopeFate::Deliver
                }
            }
        }
        let n = 6;
        let g = line_graph(n);
        let cfg = EngineConfig {
            max_rounds: 10,
            stop_when_all_decided: true,
        };
        let result = AsyncEngine::new(
            &g,
            flood_states(n, 1000),
            vec![false; n],
            NullAdversary,
            cfg,
            3,
            // Node 0 is the slow stratum: one step every 64 ticks, so its
            // only step inside the cap is tick 0.
            ClockPlan::Stratified {
                every: 6,
                period: 64,
            },
        )
        .with_fault_plan(Box::new(DelayFar))
        .run();
        assert_eq!(result.metrics.messages_delayed, 1);
        assert_eq!(result.metrics.messages_expired, 1);
        assert_eq!(
            result.metrics.messages_delayed,
            result.metrics.messages_expired
        );
    }

    // -- Genuinely asynchronous behaviour ------------------------------------

    #[test]
    fn heterogeneous_clocks_are_deterministic_and_slow_nodes_step_less() {
        let n = 24;
        let g = line_graph(n);
        let cfg = EngineConfig {
            max_rounds: 40,
            stop_when_all_decided: true,
        };
        let run = || {
            AsyncEngine::new(
                &g,
                flood_states(n, 30),
                vec![false; n],
                NullAdversary,
                cfg,
                9,
                ClockPlan::Stratified {
                    every: 4,
                    period: 3,
                },
            )
            .run()
        };
        let a = run();
        let b = run();
        assert_results_equal(&a, &b, "heterogeneous determinism");
        // Slow nodes genuinely change the execution: the run differs from
        // the synchronous one.
        let sync = SyncEngine::new(
            &g,
            flood_states(n, 30),
            vec![false; n],
            NullAdversary,
            cfg,
            9,
        )
        .run();
        assert_ne!(
            a.metrics, sync.metrics,
            "stratified clocks must actually change the execution"
        );
    }

    #[test]
    fn jittered_clocks_derive_from_the_seed() {
        let n = 16;
        let g = line_graph(n);
        let cfg = EngineConfig {
            max_rounds: 60,
            stop_when_all_decided: true,
        };
        let run = |seed: u64| {
            AsyncEngine::new(
                &g,
                flood_states(n, 40),
                vec![false; n],
                NullAdversary,
                cfg,
                seed,
                ClockPlan::Jittered { max_period: 4 },
            )
            .run()
        };
        let a = run(5);
        let b = run(5);
        assert_results_equal(&a, &b, "jittered determinism");
        let c = run(6);
        assert_ne!(
            (a.outputs, a.metrics),
            (c.outputs, c.metrics),
            "a different seed draws different periods and values"
        );
    }

    #[test]
    fn mailboxes_batch_arrivals_between_slow_steps() {
        // A slow node consumes everything that arrived since its previous
        // step in one batch — the max still propagates through it, just
        // later than on uniform clocks.
        let n = 12;
        let g = line_graph(n);
        let result = AsyncEngine::new(
            &g,
            flood_states(n, 8 * n as u64),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            21,
            ClockPlan::Stratified {
                every: 3,
                period: 4,
            },
        )
        .run();
        assert!(result.completed);
        let first = result.outputs[0].unwrap();
        assert!(
            result.outputs.iter().all(|o| *o == Some(first)),
            "the network max must still reach every node through slow hops"
        );
    }

    #[test]
    fn churned_nodes_resume_on_their_clock_phase() {
        use netsim_faults::{ChurnEvent, FaultPlan};
        struct Script;
        impl FaultPlan for Script {
            fn begin_round(&mut self, round: u64) -> Vec<ChurnEvent> {
                match round {
                    1 => vec![ChurnEvent::Crash(NodeId(2))],
                    4 => vec![ChurnEvent::Recover(NodeId(2))],
                    _ => Vec::new(),
                }
            }
        }
        let n = 8;
        let g = line_graph(n);
        let reference = SyncEngine::new(
            &g,
            flood_states(n, 3 * n as u64),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            17,
        )
        .with_fault_plan(Box::new(Script))
        .run();
        let asynced = AsyncEngine::new(
            &g,
            flood_states(n, 3 * n as u64),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            17,
            ClockPlan::Uniform,
        )
        .with_fault_plan(Box::new(Script))
        .run();
        assert_results_equal(&reference, &asynced, "churn rejoin parity");
        assert_eq!(asynced.metrics.churn_crashes, 1);
        assert_eq!(asynced.metrics.churn_recoveries, 1);
        assert!(!asynced.crashed[2], "node 2 rejoined");
    }

    // -- Sparse ticking -------------------------------------------------------

    /// Run the given engine densely — every integer tick executed — and
    /// return the result plus the skip counter (which must stay zero).
    fn run_dense(
        mut engine: AsyncEngine<'_, Csr, MaxFlood, NullAdversary>,
    ) -> (RunResult<u64>, u64) {
        while !engine.finished() {
            engine.step_tick();
        }
        let skipped = engine.ticks_skipped();
        (engine.into_result(), skipped)
    }

    #[test]
    fn sparse_ticking_is_byte_identical_to_dense_on_heterogeneous_clocks() {
        let n = 18;
        let g = line_graph(n);
        let cfg = EngineConfig {
            max_rounds: 600,
            stop_when_all_decided: true,
        };
        for clocks in [
            ClockPlan::Uniform,
            ClockPlan::Stratified {
                every: 3,
                period: 5,
            },
            ClockPlan::Jittered { max_period: 6 },
        ] {
            let mk = || {
                AsyncEngine::new(
                    &g,
                    flood_states(n, 200),
                    vec![false; n],
                    NullAdversary,
                    cfg,
                    13,
                    clocks,
                )
            };
            let (dense, dense_skips) = run_dense(mk());
            assert_eq!(dense_skips, 0, "step_tick loops never skip");
            let sparse = mk().run();
            assert_results_equal(&dense, &sparse, &format!("sparse {}", clocks.describe()));
        }
    }

    #[test]
    fn sparse_ticking_visits_o_events_ticks_on_an_idle_heavy_run() {
        // The acceptance scenario: every node on a slow clock (one step per
        // 64 ticks), so all but one in 64 ticks are dead.  The skip counter
        // must show that the ticks actually *visited* scale with the number
        // of node-step events, not with the tick span of the run.
        let n = 6;
        let g = line_graph(n);
        let period = 64u64;
        let ttl = 2000u64;
        let cfg = EngineConfig {
            max_rounds: 100_000,
            stop_when_all_decided: true,
        };
        let mk = || {
            AsyncEngine::new(
                &g,
                flood_states(n, ttl),
                vec![false; n],
                NullAdversary,
                cfg,
                29,
                ClockPlan::Stratified {
                    every: 1,
                    period: period as u32,
                },
            )
        };
        let mut sparse = mk();
        while !sparse.finished() {
            sparse.advance();
        }
        let span = sparse.time();
        let skipped = sparse.ticks_skipped();
        let visited = span - skipped;
        // Steps happen only at multiples of `period`, so the visited tick
        // count is bounded by the event ticks (span / period, plus the
        // final partial span), while the span itself is > ttl ticks.
        assert!(span > ttl, "the run must cover the idle-heavy span");
        assert!(
            visited <= span / period + 2,
            "sparse ticking must visit only event ticks: visited {visited} of {span}"
        );
        assert!(
            skipped > 30 * visited,
            "the overwhelming majority of ticks must be skipped \
             (skipped {skipped}, visited {visited})"
        );
        // And the skip is observationally free: byte-identical to dense.
        let sparse_result = sparse.into_result();
        let (dense, _) = run_dense(mk());
        assert_results_equal(&dense, &sparse_result, "idle-heavy sparse parity");
        assert_eq!(
            sparse_result.metrics.rounds, span,
            "skipped ticks still count as completed rounds"
        );
    }

    #[test]
    fn sparse_ticking_respects_the_round_cap_between_events() {
        // Next event beyond `max_rounds`: the skip must stop at the cap and
        // report exactly as many rounds as dense execution would.
        let n = 4;
        let g = line_graph(n);
        let cfg = EngineConfig {
            max_rounds: 100,
            stop_when_all_decided: false,
        };
        let mk = || {
            AsyncEngine::new(
                &g,
                flood_states(n, 100_000),
                vec![false; n],
                NullAdversary,
                cfg,
                31,
                ClockPlan::Stratified {
                    every: 1,
                    period: 64,
                },
            )
        };
        let (dense, _) = run_dense(mk());
        let sparse = mk().run();
        assert_results_equal(&dense, &sparse, "cap-bounded sparse parity");
        assert_eq!(sparse.metrics.rounds, 100);
    }

    #[test]
    fn sparse_skip_reports_rounds_and_skips_to_the_recorder() {
        use netsim_trace::CounterSet;
        let n = 4;
        let g = line_graph(n);
        let cfg = EngineConfig {
            max_rounds: 512,
            stop_when_all_decided: false,
        };
        let counters = CounterSet::new();
        let result = AsyncEngine::new(
            &g,
            flood_states(n, 100_000),
            vec![false; n],
            NullAdversary,
            cfg,
            37,
            ClockPlan::Stratified {
                every: 1,
                period: 32,
            },
        )
        .with_recorder(&counters)
        .run();
        let snap = counters.snapshot();
        assert_eq!(
            snap.total(Counter::Rounds),
            result.metrics.rounds,
            "trace-derived round totals must include skipped ticks"
        );
        let skipped = snap.total(Counter::TicksSkipped);
        assert!(skipped > 0, "the idle-heavy run must actually skip");
        assert!(skipped < result.metrics.rounds);
    }
}
