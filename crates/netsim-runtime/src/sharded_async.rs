//! The sharded asynchronous engine: per-shard calendar queues and clock
//! domains, rendezvousing only at the cross-shard routing step.
//!
//! [`ShardedAsyncEngine`] marries the two earlier engine generalizations:
//! [`ShardedSyncEngine`](crate::ShardedSyncEngine)'s node-id-range
//! partitioning of the per-node hot state, and [`AsyncEngine`]'s
//! event-driven virtual time.  Each shard owns a private
//! [`CalendarQueue`] — its nodes' self-rescheduling step events plus the
//! deferred deliveries *addressed into* its node range — so the only
//! global synchronization points in a tick are the ones the semantics
//! force: the fault plan's churn consultation, the full-information
//! adversary cut over the gathered arenas, and the sequential routing
//! step that consults the fault plan per envelope in the unsharded
//! engine's exact order (its RNG stream depends on it).  This is the
//! single-process rehearsal of the distributed layout the ROADMAP aims
//! at: shard-local event loops, one rendezvous per tick.
//!
//! ## Determinism contract
//!
//! For equal `(topology, protocol, adversary, seed, fault plan, clock
//! plan)`, a [`ShardedAsyncEngine`] run is **byte-identical** to an
//! [`AsyncEngine`] run for every shard count — and therefore, under
//! [`ClockPlan::Uniform`], to [`SyncEngine`](crate::SyncEngine) and
//! [`ShardedSyncEngine`](crate::ShardedSyncEngine) as well.  The
//! ingredients are the same as the sharded synchronous engine's: per-node
//! RNG streams are seed-derived per node, shard concatenation order *is*
//! global node order (shards are contiguous ranges), each destination
//! node lives in exactly one shard queue so per-mailbox arrival order is
//! preserved, and per-shard queue `seq` counters only ever tie-break
//! same-`(time, class, node)` events — whose relative push order the
//! global routing order already fixes.
//!
//! ## Sparse ticking
//!
//! The engine skips idle ticks exactly like [`AsyncEngine`]: when the
//! adversary opted into [`Adversary::idle_passive`] and no fault plan is
//! installed (the plan must be consulted every tick), virtual time jumps
//! to the minimum [`CalendarQueue::next_event_time`] over all shard
//! queues, bulk-replaying the empty ticks' accounting so the results stay
//! byte-identical to dense execution.
//!
//! [`AsyncEngine`]: crate::async_engine::AsyncEngine

use crate::adversary::{Adversary, AdversaryDecision, AdversaryView};
use crate::async_engine::{CalendarQueue, ClockPlan, EventClass};
use crate::engine::{
    emit_metric_deltas, envelope_admissible, splitmix, EngineConfig, MetricsSnap, RunResult,
};
use crate::message::{Envelope, MessageSize};
use crate::metrics::RunMetrics;
use crate::node::{Action, NodeContext, NodeStatus, Outbox, Protocol};
use crate::sharded::{for_each_shard, shard_bounds};
use crate::topology::Topology;
use netsim_faults::{ChurnEvent, EnvelopeFate, FaultPlan};
use netsim_graph::NodeId;
use netsim_trace::{Counter, Gauge, Phase, Recorder, SHARD_ROUTER};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Payload of a shard-queue event (no plan ticks: the fault plan is a
/// global concern, consulted once per tick outside the shard queues).
enum ShardEvent<M> {
    /// Step the owning node.
    NodeStep,
    /// Deliver a deferred envelope to the owning node.
    Deliver(Envelope<M>),
}

/// The per-shard mutable view used by the parallel node-step phase:
/// disjoint slices of the node-indexed engine state plus the shard-owned
/// queue, scratch and arenas.
struct ShardTask<'b, P: Protocol> {
    /// This shard's index (the `tid` its trace records report under).
    shard: u32,
    /// First global node id of this shard.
    start: usize,
    queue: &'b mut CalendarQueue<ShardEvent<P::Message>>,
    scratch: &'b mut Vec<(u32, ShardEvent<P::Message>)>,
    states: &'b mut [P],
    rngs: &'b mut [ChaCha8Rng],
    outboxes: &'b mut [Outbox<P::Message>],
    actions: &'b mut [Action<P::Output>],
    mailboxes: &'b mut [Vec<Envelope<P::Message>>],
    periods: &'b [u64],
    /// Shard-owned arena for its honest nodes' envelopes this tick.
    honest: &'b mut Vec<Envelope<P::Message>>,
    /// Shard-owned buffer for its Byzantine nodes' protocol-following
    /// envelopes.
    byz: &'b mut Vec<Envelope<P::Message>>,
}

/// The sharded asynchronous engine; see the module documentation.
pub struct ShardedAsyncEngine<'a, T, P, A>
where
    T: Topology,
    P: Protocol,
    A: Adversary<P>,
{
    topology: &'a T,
    states: Vec<P>,
    byzantine: Vec<bool>,
    adversary: A,
    config: EngineConfig,
    rngs: Vec<ChaCha8Rng>,
    adversary_rng: ChaCha8Rng,
    /// Per-node accumulating mailbox (see [`AsyncEngine`]); shards view it
    /// through disjoint contiguous slices during the node-step phase.
    mailboxes: Vec<Vec<Envelope<P::Message>>>,
    outboxes: Vec<Outbox<P::Message>>,
    actions: Vec<Action<P::Output>>,
    /// Per-node step period (from the [`ClockPlan`]).
    periods: Vec<u64>,
    /// Shard boundaries: shard `s` owns nodes `bounds[s]..bounds[s + 1]`.
    bounds: Vec<usize>,
    /// Destination shard of each node (contiguous ranges, precomputed).
    shard_of: Vec<u32>,
    /// One calendar queue per shard: the shard's node-step events plus
    /// the deferred deliveries addressed into its node range.
    shard_queues: Vec<CalendarQueue<ShardEvent<P::Message>>>,
    /// Per-shard reusable drain scratch.
    shard_scratch: Vec<Vec<(u32, ShardEvent<P::Message>)>>,
    /// Per-shard count of deferred envelopes currently scheduled as
    /// deliver events; whatever remains when the run stops has expired.
    shard_deferred_in_flight: Vec<u64>,
    /// Per-shard tick arenas, gathered in shard order (= global node
    /// order) at the adversary cut.
    shard_honest: Vec<Vec<Envelope<P::Message>>>,
    shard_byz: Vec<Vec<Envelope<P::Message>>>,
    honest_arena: Vec<Envelope<P::Message>>,
    byz_default: Vec<Envelope<P::Message>>,
    crashed_scratch: Vec<bool>,
    statuses: Vec<NodeStatus>,
    outputs: Vec<Option<P::Output>>,
    decided_round: Vec<Option<u64>>,
    /// Router-side accounting: rounds, validation drops, fault
    /// losses/delays, churn.  Merged with the shard metrics at the end.
    router_metrics: RunMetrics,
    /// Per-shard delivery-side accounting.
    shard_metrics: Vec<RunMetrics>,
    time: u64,
    /// Whether the adversary licensed sparse ticking (cached at
    /// construction); an installed fault plan additionally pins the
    /// engine to dense ticking, since the plan is consulted per tick.
    skip_enabled: bool,
    /// Idle ticks jumped over without being executed.
    ticks_skipped: u64,
    fault_plan: Option<Box<dyn FaultPlan>>,
    reset_state: Option<Box<dyn Fn(usize) -> P + Send>>,
    churned_down: Vec<bool>,
    recorder: Option<&'a dyn Recorder>,
    /// Per-destination-shard count of envelopes routed across a shard
    /// boundary this tick (recorder-only accounting).
    cross_shard_scratch: Vec<u64>,
}

impl<'a, T, P, A> ShardedAsyncEngine<'a, T, P, A>
where
    T: Topology,
    P: Protocol + Sync,
    P::Output: Send + Sync,
    A: Adversary<P>,
{
    /// Create an engine over `shards` contiguous node-id ranges with the
    /// given clock plan.  The shard count is clamped to `1..=n`.
    ///
    /// # Panics
    /// Panics if `states.len()` or `byzantine.len()` differ from the
    /// topology size.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        topology: &'a T,
        states: Vec<P>,
        byzantine: Vec<bool>,
        adversary: A,
        config: EngineConfig,
        seed: u64,
        shards: usize,
        clocks: ClockPlan,
    ) -> Self {
        let n = topology.len();
        assert_eq!(states.len(), n, "one protocol state per node required");
        assert_eq!(byzantine.len(), n, "byzantine mask must cover every node");
        let bounds = shard_bounds(n, shards);
        let shard_count = bounds.len() - 1;
        let mut shard_of = vec![0u32; n];
        for (s, w) in bounds.windows(2).enumerate() {
            for owner in &mut shard_of[w[0]..w[1]] {
                *owner = s as u32;
            }
        }
        // Node RNG streams are derived per *node*, exactly as in
        // `SyncEngine` — neither the shard layout nor the clock plan must
        // ever reach the protocol randomness.
        let rngs = (0..n)
            .map(|i| ChaCha8Rng::seed_from_u64(splitmix(seed, i as u64)))
            .collect();
        let periods: Vec<u64> = (0..n).map(|i| clocks.period_of(i, seed)).collect();
        let mut shard_queues: Vec<CalendarQueue<ShardEvent<P::Message>>> =
            (0..shard_count).map(|_| CalendarQueue::new()).collect();
        for (s, w) in bounds.windows(2).enumerate() {
            for i in w[0]..w[1] {
                shard_queues[s].push(0, 0, EventClass::NodeStep, i as u32, ShardEvent::NodeStep);
            }
        }
        let skip_enabled = adversary.idle_passive();
        ShardedAsyncEngine {
            topology,
            states,
            byzantine,
            adversary,
            config,
            rngs,
            adversary_rng: ChaCha8Rng::seed_from_u64(splitmix(seed, u64::MAX)),
            mailboxes: vec![Vec::new(); n],
            outboxes: (0..n).map(|_| Outbox::new()).collect(),
            actions: vec![Action::Continue; n],
            periods,
            bounds,
            shard_of,
            shard_queues,
            shard_scratch: (0..shard_count).map(|_| Vec::new()).collect(),
            shard_deferred_in_flight: vec![0; shard_count],
            shard_honest: (0..shard_count).map(|_| Vec::new()).collect(),
            shard_byz: (0..shard_count).map(|_| Vec::new()).collect(),
            honest_arena: Vec::new(),
            byz_default: Vec::new(),
            crashed_scratch: Vec::with_capacity(n),
            statuses: vec![NodeStatus::Active; n],
            outputs: vec![None; n],
            decided_round: vec![None; n],
            router_metrics: RunMetrics::default(),
            shard_metrics: vec![RunMetrics::default(); shard_count],
            time: 0,
            skip_enabled,
            ticks_skipped: 0,
            fault_plan: None,
            reset_state: None,
            churned_down: vec![false; n],
            recorder: None,
            cross_shard_scratch: vec![0; shard_count],
        }
    }

    /// Attach a [`Recorder`]; see
    /// [`SyncEngine::with_recorder`](crate::SyncEngine::with_recorder).
    pub fn with_recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// [`with_recorder`](Self::with_recorder) that is a no-op for `None`.
    pub fn with_recorder_opt(mut self, recorder: Option<&'a dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Install a [`FaultPlan`]; see
    /// [`SyncEngine::with_fault_plan`](crate::SyncEngine::with_fault_plan).
    /// The plan is consulted once per tick (the
    /// [`AsyncEngine`](crate::AsyncEngine)'s
    /// self-rescheduling plan-tick event, expressed as a global per-tick
    /// step here), which also pins the engine to dense ticking.
    pub fn with_fault_plan(mut self, plan: Box<dyn FaultPlan>) -> Self
    where
        P: Clone + Send + 'static,
    {
        let pristine: Vec<P> = self.states.clone();
        self.reset_state = Some(Box::new(move |i| pristine[i].clone()));
        self.fault_plan = Some(plan);
        self
    }

    /// [`with_fault_plan`](Self::with_fault_plan) that is a no-op for
    /// `None`.
    pub fn with_fault_plan_opt(self, plan: Option<Box<dyn FaultPlan>>) -> Self
    where
        P: Clone + Send + 'static,
    {
        match plan {
            Some(plan) => self.with_fault_plan(plan),
            None => self,
        }
    }

    /// Mark nodes as crashed before the first tick; see
    /// [`SyncEngine::with_initial_crashes`](crate::SyncEngine::with_initial_crashes).
    pub fn with_initial_crashes(mut self, crashed: &[bool]) -> Self {
        assert_eq!(
            crashed.len(),
            self.statuses.len(),
            "crash mask must cover every node"
        );
        for (status, &is_crashed) in self.statuses.iter_mut().zip(crashed) {
            if is_crashed {
                *status = NodeStatus::Crashed;
            }
        }
        self
    }

    /// Number of shards the engine actually runs with (after clamping).
    pub fn shard_count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The current virtual tick (number of ticks fully executed,
    /// including skipped idle ticks).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// The per-node step periods resolved from the clock plan.
    pub fn periods(&self) -> &[u64] {
        &self.periods
    }

    /// Read access to the per-node protocol states (for instrumentation).
    pub fn states(&self) -> &[P] {
        &self.states
    }

    /// Node statuses so far.
    pub fn statuses(&self) -> &[NodeStatus] {
        &self.statuses
    }

    /// Idle ticks jumped over by the sparse-ticking skip so far; see
    /// [`AsyncEngine::ticks_skipped`](crate::AsyncEngine::ticks_skipped).
    pub fn ticks_skipped(&self) -> u64 {
        self.ticks_skipped
    }

    /// Whether the stop condition has been reached.
    pub fn finished(&self) -> bool {
        if self.time >= self.config.max_rounds {
            return true;
        }
        if self.config.stop_when_all_decided {
            let all_done = self
                .statuses
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.byzantine[*i])
                .all(|(_, s)| *s != NodeStatus::Active);
            if all_done {
                return true;
            }
        }
        false
    }

    /// Execute one virtual tick.  Returns `false` when the stop condition
    /// has been reached (the tick is still executed).
    pub fn step_tick(&mut self) -> bool {
        let n = self.topology.len();
        self.router_metrics.begin_round();
        for metrics in &mut self.shard_metrics {
            metrics.begin_round();
        }
        let tick = self.time;

        let rec = self.recorder;
        let router_snap = rec.map(|_| MetricsSnap::of(&self.router_metrics));
        let shard_snaps: Vec<MetricsSnap> = if rec.is_some() {
            self.shard_metrics.iter().map(MetricsSnap::of).collect()
        } else {
            Vec::new()
        };
        if let Some(rec) = rec {
            for c in &mut self.cross_shard_scratch {
                *c = 0;
            }
            rec.phase_begin(SHARD_ROUTER, tick, Phase::Round);
            rec.phase_begin(SHARD_ROUTER, tick, Phase::Churn);
        }

        // Global step 0 — the fault plan's churn consultation, once per
        // tick (the async engine's plan-tick event, expressed directly):
        // global and sequential, exactly the unsharded order.
        if let Some(plan) = self.fault_plan.as_mut() {
            for event in plan.begin_round(tick) {
                match event {
                    ChurnEvent::Crash(v) => {
                        let i = v.index();
                        if i < n && !self.byzantine[i] && self.statuses[i] != NodeStatus::Crashed {
                            self.statuses[i] = NodeStatus::Crashed;
                            self.churned_down[i] = true;
                            self.router_metrics.record_churn_crash();
                        }
                    }
                    ChurnEvent::Recover(v) => {
                        let i = v.index();
                        if i < n && self.churned_down[i] && self.statuses[i] == NodeStatus::Crashed
                        {
                            if let Some(reset) = self.reset_state.as_ref() {
                                self.states[i] = reset(i);
                                self.outputs[i] = None;
                                self.decided_round[i] = None;
                                self.statuses[i] = NodeStatus::Active;
                                self.churned_down[i] = false;
                                self.mailboxes[i].clear();
                                self.router_metrics.record_churn_recovery();
                            }
                        }
                    }
                }
            }
        }

        if let Some(rec) = rec {
            rec.phase_end(SHARD_ROUTER, tick, Phase::Churn);
        }

        // Per-shard node steps: each shard drains its own queue's due
        // step events (node order within the shard — the queue's
        // tie-break), steps those nodes against its mailbox slice, and
        // reschedules them on their own clock.  Crashed nodes skip the
        // step but keep their cadence, so a churn-recovered node resumes
        // on its original clock phase.
        {
            let mut tasks: Vec<ShardTask<'_, P>> = Vec::with_capacity(self.shard_count());
            {
                let mut states = self.states.as_mut_slice();
                let mut rngs = self.rngs.as_mut_slice();
                let mut outboxes = self.outboxes.as_mut_slice();
                let mut actions = self.actions.as_mut_slice();
                let mut mailboxes = self.mailboxes.as_mut_slice();
                let mut periods = self.periods.as_slice();
                let mut queues = self.shard_queues.iter_mut();
                let mut scratches = self.shard_scratch.iter_mut();
                let mut honest = self.shard_honest.iter_mut();
                let mut byz = self.shard_byz.iter_mut();
                for (s, w) in self.bounds.windows(2).enumerate() {
                    let len = w[1] - w[0];
                    let (task_states, rest) = states.split_at_mut(len);
                    states = rest;
                    let (task_rngs, rest) = rngs.split_at_mut(len);
                    rngs = rest;
                    let (task_outboxes, rest) = outboxes.split_at_mut(len);
                    outboxes = rest;
                    let (task_actions, rest) = actions.split_at_mut(len);
                    actions = rest;
                    let (task_mailboxes, rest) = mailboxes.split_at_mut(len);
                    mailboxes = rest;
                    let (task_periods, rest) = periods.split_at(len);
                    periods = rest;
                    tasks.push(ShardTask {
                        shard: s as u32,
                        start: w[0],
                        queue: queues.next().expect("one queue per shard"),
                        scratch: scratches.next().expect("one scratch per shard"),
                        states: task_states,
                        rngs: task_rngs,
                        outboxes: task_outboxes,
                        actions: task_actions,
                        mailboxes: task_mailboxes,
                        periods: task_periods,
                        honest: honest.next().expect("one arena per shard"),
                        byz: byz.next().expect("one buffer per shard"),
                    });
                }
            }
            let statuses = &self.statuses;
            let outputs = &self.outputs;
            let byzantine = &self.byzantine;
            let topology = self.topology;
            for_each_shard(&mut tasks, &|task: &mut ShardTask<'_, P>| {
                if let Some(rec) = rec {
                    rec.phase_begin(task.shard, tick, Phase::NodeStep);
                }
                task.queue
                    .drain_class_into(tick, EventClass::NodeStep, task.scratch);
                for &(node, _) in task.scratch.iter() {
                    let i = node as usize;
                    let local = i - task.start;
                    task.queue.push(
                        tick,
                        tick + task.periods[local],
                        EventClass::NodeStep,
                        node,
                        ShardEvent::NodeStep,
                    );
                    if statuses[i] == NodeStatus::Crashed {
                        task.actions[local] = Action::Continue;
                        continue;
                    }
                    let id = NodeId::from_index(i);
                    let outbox = &mut task.outboxes[local];
                    outbox.clear();
                    let mailbox = std::mem::take(&mut task.mailboxes[local]);
                    let ctx = NodeContext {
                        id,
                        round: tick,
                        neighbors: topology.neighbors(id),
                        decided: outputs[i].is_some(),
                    };
                    task.actions[local] =
                        task.states[local].step(&ctx, &mailbox, outbox, &mut task.rngs[local]);
                    let mut mailbox = mailbox;
                    mailbox.clear();
                    task.mailboxes[local] = mailbox;
                    let target: &mut Vec<Envelope<P::Message>> =
                        if byzantine[i] { task.byz } else { task.honest };
                    outbox.drain_envelopes(id, |env| target.push(env));
                }
                if let Some(rec) = rec {
                    rec.phase_end(task.shard, tick, Phase::NodeStep);
                }
            });
        }

        if let Some(rec) = rec {
            rec.phase_begin(SHARD_ROUTER, tick, Phase::AdversaryCut);
        }

        // Rendezvous, step 1: gather the shard arenas in shard order
        // (= global node order) and take the adversary cut — one
        // full-information `act` per executed tick, like [`AsyncEngine`].
        self.honest_arena.clear();
        self.byz_default.clear();
        for arena in &mut self.shard_honest {
            self.honest_arena.append(arena);
        }
        for buffer in &mut self.shard_byz {
            self.byz_default.append(buffer);
        }
        self.crashed_scratch.clear();
        self.crashed_scratch
            .extend(self.statuses.iter().map(|s| *s == NodeStatus::Crashed));
        let decision = {
            let view = AdversaryView {
                round: tick,
                byzantine: &self.byzantine,
                crashed: &self.crashed_scratch,
                states: &self.states,
                honest_messages: &self.honest_arena,
                byzantine_default_messages: &self.byz_default,
            };
            self.adversary.act(&view, &mut self.adversary_rng)
        };

        // Apply actions (honest nodes only).  Nodes that did not step
        // this tick hold `Continue`.
        for i in 0..n {
            if self.byzantine[i] || self.statuses[i] == NodeStatus::Crashed {
                continue;
            }
            match std::mem::replace(&mut self.actions[i], Action::Continue) {
                Action::Continue => {}
                Action::Decide(output) => {
                    if self.outputs[i].is_none() {
                        self.outputs[i] = Some(output);
                        self.decided_round[i] = Some(tick);
                        self.statuses[i] = NodeStatus::Decided;
                    }
                }
                Action::Crash => {
                    self.statuses[i] = NodeStatus::Crashed;
                }
            }
        }

        if let Some(rec) = rec {
            rec.gauge(
                SHARD_ROUTER,
                tick,
                Gauge::HonestArenaHighWater,
                self.honest_arena.len() as u64,
            );
            rec.gauge(
                SHARD_ROUTER,
                tick,
                Gauge::ByzArenaHighWater,
                self.byz_default.len() as u64,
            );
            rec.phase_end(SHARD_ROUTER, tick, Phase::AdversaryCut);
            rec.phase_begin(SHARD_ROUTER, tick, Phase::Routing);
        }

        // Rendezvous, step 2: validate, account and route every envelope
        // — honest stream first, then the Byzantine path, with the fault
        // plan consulted per envelope in exactly the unsharded engine's
        // order (its RNG stream depends on it).  Immediate deliveries
        // land in mailboxes now; deferred ones become deliver events in
        // the destination shard's queue.
        let mut honest = std::mem::take(&mut self.honest_arena);
        for env in honest.drain(..) {
            self.route(tick, env, false);
        }
        self.honest_arena = honest;
        match decision {
            AdversaryDecision::FollowProtocol => {
                let mut byz = std::mem::take(&mut self.byz_default);
                for env in byz.drain(..) {
                    self.route(tick, env, false);
                }
                self.byz_default = byz;
            }
            AdversaryDecision::Replace(msgs) => {
                for env in msgs {
                    self.route(tick, env, true);
                }
            }
        }

        if let Some(rec) = rec {
            rec.phase_end(SHARD_ROUTER, tick, Phase::Routing);
        }

        // Per-shard deferred drains: each shard completes the deliver
        // events due in its own queue this tick.  Each destination lives
        // in exactly one shard queue and the drain is `(node, seq)`
        // sorted, so per-mailbox arrival order matches the unsharded
        // async engine.
        {
            let statuses = &self.statuses;
            let mailboxes = &mut self.mailboxes;
            for (s, ((queue, scratch), (metrics, in_flight))) in self
                .shard_queues
                .iter_mut()
                .zip(self.shard_scratch.iter_mut())
                .zip(
                    self.shard_metrics
                        .iter_mut()
                        .zip(self.shard_deferred_in_flight.iter_mut()),
                )
                .enumerate()
            {
                if let Some(rec) = rec {
                    rec.phase_begin(s as u32, tick, Phase::DeferredDrain);
                }
                queue.drain_class_into(tick, EventClass::Deliver, scratch);
                for (node, payload) in scratch.drain(..) {
                    let ShardEvent::Deliver(env) = payload else {
                        unreachable!("Deliver events always carry an envelope");
                    };
                    *in_flight -= 1;
                    if statuses[node as usize] == NodeStatus::Crashed {
                        metrics.record_fault_expired(1);
                    } else {
                        metrics.record_delivery(env.payload.message_size());
                        mailboxes[node as usize].push(env);
                    }
                }
                if let Some(rec) = rec {
                    rec.phase_end(s as u32, tick, Phase::DeferredDrain);
                    rec.gauge(s as u32, tick, Gauge::DelayRingPending, *in_flight);
                    rec.gauge(
                        s as u32,
                        tick,
                        Gauge::CalendarOccupancy,
                        queue.scheduled() as u64,
                    );
                }
            }
        }

        if let Some(rec) = rec {
            for (s, (snap, after)) in shard_snaps
                .iter()
                .zip(self.shard_metrics.iter())
                .enumerate()
            {
                emit_metric_deltas(rec, s as u32, tick, *snap, MetricsSnap::of(after));
                let crossed = self.cross_shard_scratch[s];
                if crossed > 0 {
                    rec.add(s as u32, tick, Counter::CrossShardRouted, crossed);
                }
            }
            emit_metric_deltas(
                rec,
                SHARD_ROUTER,
                tick,
                router_snap.expect("snapshotted with recorder"),
                MetricsSnap::of(&self.router_metrics),
            );
            rec.add(SHARD_ROUTER, tick, Counter::Rounds, 1);
            rec.phase_end(SHARD_ROUTER, tick, Phase::Round);
        }

        self.time += 1;
        !self.finished()
    }

    /// Validate, account and route one envelope queued at `tick` into its
    /// destination shard (mirrors [`AsyncEngine`]'s `deliver` with the
    /// sharded engine's metrics partitioning; the validation rules are
    /// literally shared via [`envelope_admissible`]).
    fn route(&mut self, tick: u64, env: Envelope<P::Message>, authored_by_adversary: bool) {
        if !envelope_admissible(
            self.topology,
            &self.statuses,
            &self.byzantine,
            &env,
            authored_by_adversary,
        ) {
            self.router_metrics.record_drop();
            return;
        }
        let fate = match self.fault_plan.as_mut() {
            Some(plan) if !self.byzantine[env.from.index()] => {
                plan.envelope_fate(tick, env.from, env.to)
            }
            _ => EnvelopeFate::Deliver,
        };
        let dest_shard = self.shard_of[env.to.index()] as usize;
        if self.recorder.is_some() && self.shard_of[env.from.index()] as usize != dest_shard {
            self.cross_shard_scratch[dest_shard] += 1;
        }
        match fate {
            // `Delay(0)` accounts as plain delivery in every engine (see
            // the cross-engine regression test below).
            EnvelopeFate::Deliver | EnvelopeFate::Delay(0) => {
                self.shard_metrics[dest_shard].record_delivery(env.payload.message_size());
                self.mailboxes[env.to.index()].push(env);
            }
            EnvelopeFate::Drop => self.router_metrics.record_fault_loss(),
            EnvelopeFate::Delay(delay) => {
                self.router_metrics.record_fault_delay();
                self.shard_deferred_in_flight[dest_shard] += 1;
                let to = env.to.0;
                self.shard_queues[dest_shard].push(
                    tick,
                    tick + delay,
                    EventClass::Deliver,
                    to,
                    ShardEvent::Deliver(env),
                );
            }
        }
    }

    /// Jump over the span of dead ticks ahead of the current tick; see
    /// [`AsyncEngine`]'s sparse-ticking documentation.  The skip target is
    /// the minimum next event time over *all* shard queues — the earliest
    /// tick at which any clock domain has work.  An installed fault plan
    /// disables the skip outright: the plan is consulted every tick here
    /// (there is no plan-tick event occupying the queues), so every tick
    /// is an event tick for it.
    fn skip_idle_ticks(&mut self) {
        if !self.skip_enabled || self.fault_plan.is_some() {
            return;
        }
        let target = self
            .shard_queues
            .iter()
            .filter_map(|q| q.next_event_time())
            .min()
            .unwrap_or(self.config.max_rounds)
            .min(self.config.max_rounds);
        if target <= self.time {
            return;
        }
        let skipped = target - self.time;
        // Bulk-replay the empty ticks' accounting on the router *and*
        // every shard stream, keeping the per-round series aligned for
        // the end-of-run `absorb_shard` merge.
        self.router_metrics.skip_rounds(skipped);
        for metrics in &mut self.shard_metrics {
            metrics.skip_rounds(skipped);
        }
        self.ticks_skipped += skipped;
        if let Some(rec) = self.recorder {
            rec.add(SHARD_ROUTER, self.time, Counter::Rounds, skipped);
            rec.add(SHARD_ROUTER, self.time, Counter::TicksSkipped, skipped);
        }
        self.time = target;
    }

    /// Advance to the next tick at which anything can happen and execute
    /// it; see [`AsyncEngine::advance`](crate::AsyncEngine::advance).
    pub fn advance(&mut self) -> bool {
        self.skip_idle_ticks();
        if self.finished() {
            return false;
        }
        self.step_tick()
    }

    /// Run until the stop condition and return the result.
    pub fn run(mut self) -> RunResult<P::Output> {
        while !self.finished() {
            self.advance();
        }
        self.into_result()
    }

    /// Consume the engine and produce the result without running further.
    /// Deferred envelopes still scheduled expire in their destination
    /// shard, never delivered.
    pub fn into_result(mut self) -> RunResult<P::Output> {
        for (s, (metrics, in_flight)) in self
            .shard_metrics
            .iter_mut()
            .zip(self.shard_deferred_in_flight.iter())
            .enumerate()
        {
            if *in_flight > 0 {
                metrics.record_fault_expired(*in_flight);
                if let Some(rec) = self.recorder {
                    // Mirror the end-of-run expiries so trace-derived
                    // totals keep matching `RunMetrics` bit-for-bit.
                    rec.add(s as u32, self.time, Counter::MessagesExpired, *in_flight);
                }
            }
        }
        let mut metrics = self.router_metrics;
        for shard in &self.shard_metrics {
            metrics.absorb_shard(shard);
        }
        let completed = self
            .statuses
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.byzantine[*i])
            .all(|(_, s)| *s != NodeStatus::Active);
        let crashed = self
            .statuses
            .iter()
            .map(|s| *s == NodeStatus::Crashed)
            .collect();
        RunResult {
            outputs: self.outputs,
            decided_round: self.decided_round,
            crashed,
            statuses: self.statuses,
            metrics,
            completed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::NullAdversary;
    use crate::async_engine::AsyncEngine;
    use crate::engine::SyncEngine;
    use crate::message::SizedMessage;
    use crate::sharded::ShardedSyncEngine;
    use netsim_faults::FaultSpec;
    use netsim_graph::Csr;
    use netsim_trace::CounterSet;
    use rand::Rng;

    #[derive(Clone, Debug, PartialEq)]
    struct Val(u64);
    impl MessageSize for Val {
        fn message_size(&self) -> SizedMessage {
            SizedMessage::new(0, 64)
        }
    }

    /// Max-flooding (the engine test-suite workhorse).
    #[derive(Clone)]
    struct MaxFlood {
        value: u64,
        best: u64,
        ttl: u64,
        started: bool,
    }

    impl Protocol for MaxFlood {
        type Message = Val;
        type Output = u64;
        fn step(
            &mut self,
            ctx: &NodeContext<'_>,
            inbox: &[Envelope<Val>],
            outbox: &mut Outbox<Val>,
            rng: &mut ChaCha8Rng,
        ) -> Action<u64> {
            if !self.started {
                self.started = true;
                if self.value == 0 {
                    self.value = rng.gen::<u64>() | 1;
                }
                self.best = self.value;
                outbox.broadcast(ctx.neighbors.iter(), Val(self.best));
                return Action::Continue;
            }
            let mut improved = false;
            for env in inbox {
                if env.payload.0 > self.best {
                    self.best = env.payload.0;
                    improved = true;
                }
            }
            if improved {
                outbox.broadcast(ctx.neighbors.iter(), Val(self.best));
            }
            if ctx.round >= self.ttl {
                Action::Decide(self.best)
            } else {
                Action::Continue
            }
        }
    }

    fn line_graph(n: usize) -> Csr {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Csr::from_undirected_edges(n, &edges).unwrap()
    }

    fn flood_states(n: usize, ttl: u64) -> Vec<MaxFlood> {
        (0..n)
            .map(|_| MaxFlood {
                value: 0,
                best: 0,
                ttl,
                started: false,
            })
            .collect()
    }

    fn assert_results_equal(a: &RunResult<u64>, b: &RunResult<u64>, label: &str) {
        assert_eq!(a.outputs, b.outputs, "{label}: outputs diverged");
        assert_eq!(a.decided_round, b.decided_round, "{label}: decided_round");
        assert_eq!(a.crashed, b.crashed, "{label}: crash masks");
        assert_eq!(a.statuses, b.statuses, "{label}: statuses");
        assert_eq!(a.metrics, b.metrics, "{label}: metrics");
        assert_eq!(a.completed, b.completed, "{label}: completed");
    }

    const SHARD_COUNTS: [usize; 5] = [1, 2, 3, 4, 8];

    // -- Parity with the unsharded async engine -----------------------------

    #[test]
    fn sharded_async_matches_async_for_every_shard_count_and_clock_plan() {
        let n = 18;
        let g = line_graph(n);
        let cfg = EngineConfig {
            max_rounds: 400,
            stop_when_all_decided: true,
        };
        for clocks in [
            ClockPlan::Uniform,
            ClockPlan::Stratified {
                every: 3,
                period: 5,
            },
            ClockPlan::Jittered { max_period: 6 },
        ] {
            let reference = AsyncEngine::new(
                &g,
                flood_states(n, 150),
                vec![false; n],
                NullAdversary,
                cfg,
                13,
                clocks,
            )
            .run();
            for shards in SHARD_COUNTS {
                let sharded = ShardedAsyncEngine::new(
                    &g,
                    flood_states(n, 150),
                    vec![false; n],
                    NullAdversary,
                    cfg,
                    13,
                    shards,
                    clocks,
                )
                .run();
                assert_results_equal(
                    &reference,
                    &sharded,
                    &format!("S={shards} clocks={}", clocks.describe()),
                );
            }
        }
    }

    #[test]
    fn sharded_async_matches_async_under_the_full_fault_stack() {
        let n = 32;
        let g = line_graph(n);
        let spec = FaultSpec::Compose(vec![
            FaultSpec::Loss { rate: 0.15 },
            FaultSpec::Delay {
                max_delay: 3,
                rate: 0.3,
            },
            FaultSpec::Churn {
                rate: 0.04,
                downtime: 3,
            },
            FaultSpec::Partition {
                start: 2,
                duration: 5,
            },
        ]);
        let plan = |seed: u64| {
            spec.build_plan(n, &vec![true; n], seed ^ 0xFA17)
                .expect("plan")
        };
        for clocks in [
            ClockPlan::Uniform,
            ClockPlan::Stratified {
                every: 4,
                period: 3,
            },
        ] {
            let reference = AsyncEngine::new(
                &g,
                flood_states(n, 90),
                vec![false; n],
                NullAdversary,
                EngineConfig::default(),
                7,
                clocks,
            )
            .with_fault_plan(plan(7))
            .run();
            assert!(
                reference.metrics.messages_lost > 0 && reference.metrics.messages_delayed > 0,
                "the fault stack must actually have fired for this test to mean anything"
            );
            for shards in SHARD_COUNTS {
                let sharded = ShardedAsyncEngine::new(
                    &g,
                    flood_states(n, 90),
                    vec![false; n],
                    NullAdversary,
                    EngineConfig::default(),
                    7,
                    shards,
                    clocks,
                )
                .with_fault_plan(plan(7))
                .run();
                assert_results_equal(
                    &reference,
                    &sharded,
                    &format!("faulty S={shards} clocks={}", clocks.describe()),
                );
            }
        }
    }

    /// An adversary that makes Byzantine nodes shout a huge value at node
    /// 0 plus an illegal long-range message (mirrors the engine suites).
    struct Shouter;
    impl Adversary<MaxFlood> for Shouter {
        fn act(
            &mut self,
            view: &AdversaryView<'_, MaxFlood>,
            _rng: &mut ChaCha8Rng,
        ) -> AdversaryDecision<Val> {
            let mut msgs = Vec::new();
            for (i, &b) in view.byzantine.iter().enumerate() {
                if b {
                    msgs.push(Envelope::new(
                        NodeId::from_index(i),
                        NodeId(0),
                        Val(u64::MAX),
                    ));
                    msgs.push(Envelope::new(
                        NodeId::from_index(i),
                        NodeId(5),
                        Val(u64::MAX),
                    ));
                }
            }
            AdversaryDecision::Replace(msgs)
        }
    }

    #[test]
    fn sharded_async_matches_async_under_an_adversary() {
        let n = 16;
        let g = line_graph(n);
        let mut byz = vec![false; n];
        byz[1] = true;
        byz[9] = true;
        let clocks = ClockPlan::Stratified {
            every: 3,
            period: 4,
        };
        let reference = AsyncEngine::new(
            &g,
            flood_states(n, 30),
            byz.clone(),
            Shouter,
            EngineConfig::default(),
            3,
            clocks,
        )
        .run();
        assert!(reference.metrics.messages_dropped > 0);
        for shards in SHARD_COUNTS {
            let sharded = ShardedAsyncEngine::new(
                &g,
                flood_states(n, 30),
                byz.clone(),
                Shouter,
                EngineConfig::default(),
                3,
                shards,
                clocks,
            )
            .run();
            assert_results_equal(&reference, &sharded, &format!("adversarial S={shards}"));
        }
    }

    #[test]
    fn sharded_async_matches_async_with_initial_crashes() {
        let n = 16;
        let g = line_graph(n);
        let mut crashed = vec![false; n];
        crashed[3] = true;
        crashed[12] = true;
        let clocks = ClockPlan::Jittered { max_period: 3 };
        let reference = AsyncEngine::new(
            &g,
            flood_states(n, 50),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            5,
            clocks,
        )
        .with_initial_crashes(&crashed)
        .run();
        for shards in SHARD_COUNTS {
            let sharded = ShardedAsyncEngine::new(
                &g,
                flood_states(n, 50),
                vec![false; n],
                NullAdversary,
                EngineConfig::default(),
                5,
                shards,
                clocks,
            )
            .with_initial_crashes(&crashed)
            .run();
            assert_results_equal(&reference, &sharded, &format!("initial crashes S={shards}"));
        }
    }

    // -- Four-engine parity on uniform clocks --------------------------------

    #[test]
    fn uniform_clocks_match_all_four_engines() {
        let n = 24;
        let g = line_graph(n);
        let reference = SyncEngine::new(
            &g,
            flood_states(n, 3 * n as u64),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            42,
        )
        .run();
        let sharded_sync = ShardedSyncEngine::new(
            &g,
            flood_states(n, 3 * n as u64),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            42,
            3,
        )
        .run();
        assert_results_equal(&reference, &sharded_sync, "sharded-sync");
        let asynced = AsyncEngine::new(
            &g,
            flood_states(n, 3 * n as u64),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            42,
            ClockPlan::Uniform,
        )
        .run();
        assert_results_equal(&reference, &asynced, "async");
        let sharded_async = ShardedAsyncEngine::new(
            &g,
            flood_states(n, 3 * n as u64),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            42,
            3,
            ClockPlan::Uniform,
        )
        .run();
        assert_results_equal(&reference, &sharded_async, "sharded-async");
    }

    // -- Delay(0) accounting (cross-engine regression) -----------------------

    /// Defers every honest envelope by zero rounds — must be
    /// indistinguishable from a plan that answers `Deliver`.
    struct DelayZero;
    impl FaultPlan for DelayZero {
        fn envelope_fate(&mut self, _round: u64, _from: NodeId, _to: NodeId) -> EnvelopeFate {
            EnvelopeFate::Delay(0)
        }
    }

    #[test]
    fn delay_zero_accounts_as_immediate_delivery_in_all_four_engines() {
        // Regression (cross-engine): `EnvelopeFate::Delay(0)` is immediate
        // delivery.  All engines must agree on the (delivered, delayed)
        // split — delivered counted now, `messages_delayed` untouched —
        // and produce results identical to a faultless run.
        let n = 12;
        let g = line_graph(n);
        let baseline = SyncEngine::new(
            &g,
            flood_states(n, 30),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            23,
        )
        .run();
        assert!(baseline.metrics.messages_delivered > 0);
        let check = |result: RunResult<u64>, label: &str| {
            assert_eq!(
                result.metrics.messages_delayed, 0,
                "{label}: Delay(0) must not count as delayed"
            );
            assert_eq!(
                result.metrics.messages_expired, 0,
                "{label}: nothing defers"
            );
            assert_results_equal(&baseline, &result, label);
        };
        check(
            SyncEngine::new(
                &g,
                flood_states(n, 30),
                vec![false; n],
                NullAdversary,
                EngineConfig::default(),
                23,
            )
            .with_fault_plan(Box::new(DelayZero))
            .run(),
            "sync",
        );
        check(
            ShardedSyncEngine::new(
                &g,
                flood_states(n, 30),
                vec![false; n],
                NullAdversary,
                EngineConfig::default(),
                23,
                4,
            )
            .with_fault_plan(Box::new(DelayZero))
            .run(),
            "sharded",
        );
        check(
            AsyncEngine::new(
                &g,
                flood_states(n, 30),
                vec![false; n],
                NullAdversary,
                EngineConfig::default(),
                23,
                ClockPlan::Uniform,
            )
            .with_fault_plan(Box::new(DelayZero))
            .run(),
            "async",
        );
        check(
            ShardedAsyncEngine::new(
                &g,
                flood_states(n, 30),
                vec![false; n],
                NullAdversary,
                EngineConfig::default(),
                23,
                4,
                ClockPlan::Uniform,
            )
            .with_fault_plan(Box::new(DelayZero))
            .run(),
            "sharded-async",
        );
    }

    // -- Sparse ticking -------------------------------------------------------

    #[test]
    fn sparse_ticking_matches_dense_and_skips_idle_spans() {
        // Idle-heavy scenario on the sharded engine: all clocks slow, so
        // the shard queues agree that almost every tick is dead.  Sparse
        // execution must be byte-identical to dense while visiting only
        // O(events) ticks.
        let n = 8;
        let g = line_graph(n);
        let period = 32u64;
        let cfg = EngineConfig {
            max_rounds: 50_000,
            stop_when_all_decided: true,
        };
        let mk = |shards: usize| {
            ShardedAsyncEngine::new(
                &g,
                flood_states(n, 800),
                vec![false; n],
                NullAdversary,
                cfg,
                29,
                shards,
                ClockPlan::Stratified {
                    every: 1,
                    period: period as u32,
                },
            )
        };
        // Dense reference: step_tick visits every integer tick.
        let mut dense = mk(3);
        while !dense.finished() {
            dense.step_tick();
        }
        assert_eq!(dense.ticks_skipped(), 0, "step_tick loops never skip");
        let dense_result = dense.into_result();
        for shards in SHARD_COUNTS {
            let mut sparse = mk(shards);
            while !sparse.finished() {
                sparse.advance();
            }
            let span = sparse.time();
            let skipped = sparse.ticks_skipped();
            let visited = span - skipped;
            assert!(
                visited <= span / period + 2,
                "S={shards}: sparse ticking must visit only event ticks \
                 (visited {visited} of {span})"
            );
            assert!(skipped > 10 * visited, "S={shards}: most ticks skipped");
            assert_results_equal(
                &dense_result,
                &sparse.into_result(),
                &format!("sparse S={shards}"),
            );
        }
    }

    #[test]
    fn an_installed_fault_plan_pins_the_engine_to_dense_ticking() {
        // The plan is consulted once per tick here (there is no plan-tick
        // queue event), so sparse ticking must be disabled outright.
        struct Benign;
        impl FaultPlan for Benign {}
        let n = 6;
        let g = line_graph(n);
        let mut engine = ShardedAsyncEngine::new(
            &g,
            flood_states(n, 100),
            vec![false; n],
            NullAdversary,
            EngineConfig {
                max_rounds: 500,
                stop_when_all_decided: true,
            },
            11,
            2,
            ClockPlan::Stratified {
                every: 1,
                period: 16,
            },
        )
        .with_fault_plan(Box::new(Benign));
        while !engine.finished() {
            engine.advance();
        }
        assert_eq!(
            engine.ticks_skipped(),
            0,
            "a fault plan must disable the idle-tick skip"
        );
    }

    #[test]
    fn sparse_skip_reports_rounds_and_skips_to_the_recorder() {
        // Trace-vs-truth under skipping: the recorder's Rounds total must
        // still equal the metrics' rounds, and TicksSkipped reports the
        // saved work.
        let n = 6;
        let g = line_graph(n);
        let counters = CounterSet::new();
        let result = ShardedAsyncEngine::new(
            &g,
            flood_states(n, 200),
            vec![false; n],
            NullAdversary,
            EngineConfig {
                max_rounds: 10_000,
                stop_when_all_decided: true,
            },
            17,
            2,
            ClockPlan::Stratified {
                every: 1,
                period: 16,
            },
        )
        .with_recorder(&counters)
        .run();
        let snap = counters.snapshot();
        assert_eq!(
            snap.total(Counter::Rounds),
            result.metrics.rounds,
            "trace-derived rounds must match RunMetrics bit-for-bit"
        );
        assert!(
            snap.total(Counter::TicksSkipped) > 0,
            "the idle-heavy run must actually have skipped"
        );
        assert_eq!(
            snap.total(Counter::MessagesDelivered),
            result.metrics.messages_delivered,
        );
    }
}
