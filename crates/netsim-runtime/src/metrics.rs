//! Run metrics: rounds, message counts, and the paper's message-size units.

use crate::message::SizedMessage;
use serde::{Deserialize, Serialize};

/// Aggregate metrics for one protocol execution.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Number of rounds executed.
    pub rounds: u64,
    /// Total number of messages delivered.
    pub messages_delivered: u64,
    /// Total number of messages dropped because the sender/receiver pair was
    /// not an edge of the communication graph or the recipient had crashed.
    pub messages_dropped: u64,
    /// Messages destroyed by the fault layer (i.i.d. loss or an active
    /// partition).  Lost traffic never counts as delivered.
    pub messages_lost: u64,
    /// Messages the fault layer deferred to a later round.  A delayed
    /// message is only counted as delivered (and its size accounted) in the
    /// round it actually reaches its recipient.
    pub messages_delayed: u64,
    /// Deferred messages that never arrived: their recipient crashed in the
    /// meantime, or the run ended with them still in flight.
    pub messages_expired: u64,
    /// Fail-stop crashes injected by churn.
    pub churn_crashes: u64,
    /// Churned nodes that rejoined (with a fresh protocol state).
    pub churn_recoveries: u64,
    /// Sum over delivered messages of the number of IDs they carry.
    pub total_ids: u64,
    /// Sum over delivered messages of their additional payload bits.
    pub total_bits: u64,
    /// Largest single-message size observed.
    pub max_message: SizedMessage,
    /// Messages delivered per round.
    pub per_round_messages: Vec<u64>,
}

impl RunMetrics {
    /// Record one delivered message of the given size.
    pub fn record_delivery(&mut self, size: SizedMessage) {
        self.messages_delivered += 1;
        self.total_ids += size.ids as u64;
        self.total_bits += size.bits as u64;
        if size.ids > self.max_message.ids
            || (size.ids == self.max_message.ids && size.bits > self.max_message.bits)
        {
            self.max_message = size;
        }
        if let Some(last) = self.per_round_messages.last_mut() {
            *last += 1;
        }
    }

    /// Record one dropped message.
    pub fn record_drop(&mut self) {
        self.messages_dropped += 1;
    }

    /// Record one message destroyed by the fault layer.
    pub fn record_fault_loss(&mut self) {
        self.messages_lost += 1;
    }

    /// Record one message deferred by the fault layer.
    pub fn record_fault_delay(&mut self) {
        self.messages_delayed += 1;
    }

    /// Record `count` deferred messages that will never arrive.
    pub fn record_fault_expired(&mut self, count: u64) {
        self.messages_expired += count;
    }

    /// Record one churn-injected crash.
    pub fn record_churn_crash(&mut self) {
        self.churn_crashes += 1;
    }

    /// Record one churn recovery.
    pub fn record_churn_recovery(&mut self) {
        self.churn_recoveries += 1;
    }

    /// Open accounting for a new round.
    pub fn begin_round(&mut self) {
        self.rounds += 1;
        self.per_round_messages.push(0);
    }

    /// Average messages per round.
    pub fn avg_messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages_delivered as f64 / self.rounds as f64
        }
    }

    /// Average messages per node per round.
    pub fn avg_messages_per_node_round(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.avg_messages_per_round() / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_accumulates() {
        let mut m = RunMetrics::default();
        m.begin_round();
        m.record_delivery(SizedMessage::new(2, 10));
        m.record_delivery(SizedMessage::new(1, 64));
        m.record_drop();
        m.begin_round();
        m.record_delivery(SizedMessage::new(3, 1));
        m.record_fault_loss();
        m.record_fault_delay();
        m.record_fault_expired(2);
        m.record_churn_crash();
        m.record_churn_recovery();
        assert_eq!(m.rounds, 2);
        assert_eq!(m.messages_delivered, 3);
        assert_eq!(m.messages_dropped, 1);
        assert_eq!(m.messages_lost, 1);
        assert_eq!(m.messages_delayed, 1);
        assert_eq!(m.messages_expired, 2);
        assert_eq!(m.churn_crashes, 1);
        assert_eq!(m.churn_recoveries, 1);
        assert_eq!(m.total_ids, 6);
        assert_eq!(m.total_bits, 75);
        assert_eq!(m.max_message, SizedMessage::new(3, 1));
        assert_eq!(m.per_round_messages, vec![2, 1]);
        assert!((m.avg_messages_per_round() - 1.5).abs() < 1e-12);
        assert!((m.avg_messages_per_node_round(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = RunMetrics::default();
        assert_eq!(m.avg_messages_per_round(), 0.0);
        assert_eq!(m.avg_messages_per_node_round(10), 0.0);
    }
}
