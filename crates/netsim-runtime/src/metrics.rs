//! Run metrics: rounds, message counts, and the paper's message-size units.

use crate::message::SizedMessage;
use serde::{Deserialize, Serialize};

/// Aggregate metrics for one protocol execution.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Number of rounds executed.
    pub rounds: u64,
    /// Total number of messages delivered.
    pub messages_delivered: u64,
    /// Total number of messages dropped because the sender/receiver pair was
    /// not an edge of the communication graph or the recipient had crashed.
    pub messages_dropped: u64,
    /// Messages destroyed by the fault layer (i.i.d. loss or an active
    /// partition).  Lost traffic never counts as delivered.
    pub messages_lost: u64,
    /// Messages the fault layer deferred to a later round.  A delayed
    /// message is only counted as delivered (and its size accounted) in the
    /// round it actually reaches its recipient.
    pub messages_delayed: u64,
    /// Deferred messages that never arrived: their recipient crashed in the
    /// meantime, or the run ended with them still in flight.
    pub messages_expired: u64,
    /// Fail-stop crashes injected by churn.
    pub churn_crashes: u64,
    /// Churned nodes that rejoined (with a fresh protocol state).
    pub churn_recoveries: u64,
    /// Sum over delivered messages of the number of IDs they carry.
    pub total_ids: u64,
    /// Sum over delivered messages of their additional payload bits.
    pub total_bits: u64,
    /// Largest single-message size observed.
    pub max_message: SizedMessage,
    /// Messages delivered per round.
    pub per_round_messages: Vec<u64>,
}

impl RunMetrics {
    /// Record one delivered message of the given size.
    pub fn record_delivery(&mut self, size: SizedMessage) {
        self.messages_delivered += 1;
        self.total_ids += size.ids as u64;
        self.total_bits += size.bits as u64;
        if size.ids > self.max_message.ids
            || (size.ids == self.max_message.ids && size.bits > self.max_message.bits)
        {
            self.max_message = size;
        }
        if let Some(last) = self.per_round_messages.last_mut() {
            *last += 1;
        }
    }

    /// Record one dropped message.
    pub fn record_drop(&mut self) {
        self.messages_dropped += 1;
    }

    /// Record one message destroyed by the fault layer.
    pub fn record_fault_loss(&mut self) {
        self.messages_lost += 1;
    }

    /// Record one message deferred by the fault layer.
    pub fn record_fault_delay(&mut self) {
        self.messages_delayed += 1;
    }

    /// Record `count` deferred messages that will never arrive.
    pub fn record_fault_expired(&mut self, count: u64) {
        self.messages_expired += count;
    }

    /// Record one churn-injected crash.
    pub fn record_churn_crash(&mut self) {
        self.churn_crashes += 1;
    }

    /// Record one churn recovery.
    pub fn record_churn_recovery(&mut self) {
        self.churn_recoveries += 1;
    }

    /// Open accounting for a new round.
    pub fn begin_round(&mut self) {
        self.rounds += 1;
        self.per_round_messages.push(0);
    }

    /// Account for `count` consecutive rounds in which nothing happened —
    /// exactly what `count` [`begin_round`](Self::begin_round) calls with
    /// no deliveries in between would have recorded.  The sparse-ticking
    /// async engines use this to bulk-advance over skipped idle ticks
    /// while keeping the metrics byte-identical to dense execution.
    pub fn skip_rounds(&mut self, count: u64) {
        self.rounds += count;
        self.per_round_messages
            .extend(std::iter::repeat_n(0, count as usize));
    }

    /// Fold one shard's accounting into this (router-side) metrics value.
    ///
    /// The sharded engine partitions delivery accounting by destination
    /// shard: each shard records the messages (and deferred expiries)
    /// arriving in its node range, while the router records round counts,
    /// validation drops, fault losses/delays and churn.  Merging is a plain
    /// sum of the additive counters plus a lexicographic `(ids, bits)` max
    /// of `max_message` and an element-wise sum of the per-round series —
    /// every one of which is order-insensitive, so the merged value equals
    /// what a single unsharded engine stream would have recorded.
    ///
    /// `rounds` is deliberately *not* summed: all shards observe the same
    /// rounds, which the router already counted.
    pub fn absorb_shard(&mut self, shard: &RunMetrics) {
        self.messages_delivered += shard.messages_delivered;
        self.messages_dropped += shard.messages_dropped;
        self.messages_lost += shard.messages_lost;
        self.messages_delayed += shard.messages_delayed;
        self.messages_expired += shard.messages_expired;
        self.churn_crashes += shard.churn_crashes;
        self.churn_recoveries += shard.churn_recoveries;
        self.total_ids += shard.total_ids;
        self.total_bits += shard.total_bits;
        if shard.max_message.ids > self.max_message.ids
            || (shard.max_message.ids == self.max_message.ids
                && shard.max_message.bits > self.max_message.bits)
        {
            self.max_message = shard.max_message;
        }
        for (mine, theirs) in self
            .per_round_messages
            .iter_mut()
            .zip(&shard.per_round_messages)
        {
            *mine += *theirs;
        }
    }

    /// Average messages per round.
    pub fn avg_messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages_delivered as f64 / self.rounds as f64
        }
    }

    /// Average messages per node per round.
    pub fn avg_messages_per_node_round(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.avg_messages_per_round() / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_accumulates() {
        let mut m = RunMetrics::default();
        m.begin_round();
        m.record_delivery(SizedMessage::new(2, 10));
        m.record_delivery(SizedMessage::new(1, 64));
        m.record_drop();
        m.begin_round();
        m.record_delivery(SizedMessage::new(3, 1));
        m.record_fault_loss();
        m.record_fault_delay();
        m.record_fault_expired(2);
        m.record_churn_crash();
        m.record_churn_recovery();
        assert_eq!(m.rounds, 2);
        assert_eq!(m.messages_delivered, 3);
        assert_eq!(m.messages_dropped, 1);
        assert_eq!(m.messages_lost, 1);
        assert_eq!(m.messages_delayed, 1);
        assert_eq!(m.messages_expired, 2);
        assert_eq!(m.churn_crashes, 1);
        assert_eq!(m.churn_recoveries, 1);
        assert_eq!(m.total_ids, 6);
        assert_eq!(m.total_bits, 75);
        assert_eq!(m.max_message, SizedMessage::new(3, 1));
        assert_eq!(m.per_round_messages, vec![2, 1]);
        assert!((m.avg_messages_per_round() - 1.5).abs() < 1e-12);
        assert!((m.avg_messages_per_node_round(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn absorb_shard_merges_like_a_single_stream() {
        // Router side: two rounds, one drop, one fault loss, one delay.
        let mut router = RunMetrics::default();
        router.begin_round();
        router.record_drop();
        router.record_fault_delay();
        router.begin_round();
        router.record_fault_loss();
        // Two shards keep per-round series aligned with the router.
        let mut a = RunMetrics::default();
        let mut b = RunMetrics::default();
        for shard in [&mut a, &mut b] {
            shard.begin_round();
            shard.begin_round();
        }
        a.record_delivery(SizedMessage::new(2, 10)); // lands in round 2
        b.per_round_messages[0] += 1; // simulate a round-1 delivery...
        b.messages_delivered += 1; // ...recorded before round 2 opened
        b.total_bits += 64;
        b.max_message = SizedMessage::new(2, 64);
        b.record_fault_expired(3);
        router.absorb_shard(&a);
        router.absorb_shard(&b);
        assert_eq!(router.rounds, 2, "rounds are counted once, not summed");
        assert_eq!(router.messages_delivered, 2);
        assert_eq!(router.messages_dropped, 1);
        assert_eq!(router.messages_lost, 1);
        assert_eq!(router.messages_delayed, 1);
        assert_eq!(router.messages_expired, 3);
        assert_eq!(router.total_ids, 2);
        assert_eq!(router.total_bits, 74);
        assert_eq!(router.max_message, SizedMessage::new(2, 64));
        assert_eq!(router.per_round_messages, vec![1, 1]);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = RunMetrics::default();
        assert_eq!(m.avg_messages_per_round(), 0.0);
        assert_eq!(m.avg_messages_per_node_round(10), 0.0);
    }
}
