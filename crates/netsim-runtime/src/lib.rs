//! # netsim-runtime
//!
//! A deterministic, synchronous, round-based message-passing simulator with
//! full-information Byzantine adversaries.
//!
//! This is the execution substrate for the Byzantine counting reproduction:
//! the paper assumes the standard synchronous model (all nodes run in
//! lock-step rounds; a message sent in round `r` is received by the end of
//! round `r`) with an adaptive, full-information adversary controlling up to
//! `O(n^{1−δ})` nodes.  The [`engine::SyncEngine`] implements exactly that:
//!
//! * every node runs a [`node::Protocol`] state machine;
//! * in each round, every active node consumes its inbox (the messages
//!   addressed to it in the previous round) and emits an outbox;
//! * the [`adversary::Adversary`] then observes *everything* — all node
//!   states, every message queued by honest nodes this round, and the
//!   messages the Byzantine nodes would have sent had they been honest — and
//!   may replace the Byzantine nodes' outboxes arbitrarily (it cannot forge
//!   the sender identity nor send over non-existent edges, matching the
//!   paper's "cannot lie about its ID to a neighbour" and "can communicate
//!   only along network edges" assumptions);
//! * message and byte accounting implements the paper's "small-sized
//!   message" metric (number of IDs plus additional bits).
//!
//! Determinism: every node receives its own `ChaCha8` RNG stream derived
//! from the master seed, and message delivery order within a round is
//! canonical (sorted by sender), so a run is a pure function of
//! `(topology, protocol, adversary, seed)` regardless of thread scheduling.
//!
//! Four engines execute the same semantics: the classic
//! [`engine::SyncEngine`], the node-range-partitioned
//! [`sharded::ShardedSyncEngine`], the event-driven
//! [`async_engine::AsyncEngine`] (per-node virtual clocks over a
//! deterministic calendar queue — byte-identical to the synchronous
//! engines under [`async_engine::ClockPlan::Uniform`], and the gateway to
//! heterogeneous-clock scenarios beyond the synchronous model), and the
//! [`sharded_async::ShardedAsyncEngine`] (per-shard calendar queues and
//! clock domains rendezvousing only at routing).  The event-driven
//! engines additionally *sparse-tick*: when the adversary is
//! [`adversary::Adversary::idle_passive`] and no fault plan is installed,
//! virtual time jumps straight to the next scheduled event, making
//! idle-heavy heterogeneous-clock runs cost O(events) instead of
//! O(ticks) — with byte-identical results.

pub mod adversary;
pub mod async_engine;
pub mod distributed;
pub mod engine;
pub mod message;
pub mod metrics;
pub mod node;
pub mod ring;
pub mod sharded;
pub mod sharded_async;
pub mod topology;

pub use adversary::{Adversary, AdversaryDecision, AdversaryView, NullAdversary};
pub use async_engine::{AsyncEngine, CalendarQueue, ClockPlan, EventClass, EventKey};
pub use distributed::{
    serve_shard_session, DistributedSyncEngine, RemoteFleet, RunError, ShardServeConfig,
};
pub use engine::{EngineConfig, RunResult, SyncEngine};
pub use message::{Envelope, MessageSize, SizedMessage};
pub use metrics::RunMetrics;
pub use node::{Action, NodeContext, NodeStatus, Outbox, Protocol};
pub use ring::DelayRing;
pub use sharded::{
    run_with_engine, run_with_engine_fleet, run_with_engine_recorded, shard_bounds, EngineKind,
    ShardedSyncEngine,
};
pub use sharded_async::ShardedAsyncEngine;
pub use topology::Topology;

/// The structured-tracing subsystem (re-exported from [`netsim_trace`]):
/// an optional [`Recorder`] installed via `with_recorder` on any engine
/// observes phase spans, counters and gauges without perturbing the run.
pub use netsim_trace as trace;
pub use netsim_trace::{NoopRecorder, Recorder};

/// The wire layer (re-exported from [`netsim_wire`]): the binary codec,
/// checksummed frames and versioned handshake the
/// [`DistributedSyncEngine`]'s shard channels speak.  A protocol's message
/// type must implement [`netsim_wire::Wire`] to run on the distributed
/// engine (and, through the shared dispatcher, on [`run_with_engine`]).
pub use netsim_wire as wire;

/// The fault-injection subsystem (re-exported from [`netsim_faults`]): an
/// optional [`FaultPlan`] installed via [`SyncEngine::with_fault_plan`]
/// makes the network itself lossy, slow, churning or partitioned.
pub use netsim_faults as faults;
pub use netsim_faults::{ChurnEvent, EnvelopeFate, FaultPlan, FaultSpec, NoFaults};

/// Convenient re-exports for downstream crates.
pub mod prelude {
    pub use crate::adversary::{Adversary, AdversaryDecision, AdversaryView, NullAdversary};
    pub use crate::async_engine::{AsyncEngine, ClockPlan};
    pub use crate::distributed::{
        serve_shard_session, DistributedSyncEngine, RemoteFleet, RunError, ShardServeConfig,
    };
    pub use crate::engine::{EngineConfig, RunResult, SyncEngine};
    pub use crate::message::{Envelope, MessageSize, SizedMessage};
    pub use crate::metrics::RunMetrics;
    pub use crate::node::{Action, NodeContext, NodeStatus, Outbox, Protocol};
    pub use crate::sharded::{
        run_with_engine, run_with_engine_fleet, run_with_engine_recorded, EngineKind,
        ShardedSyncEngine,
    };
    pub use crate::sharded_async::ShardedAsyncEngine;
    pub use crate::topology::Topology;
    pub use netsim_faults::{ChurnEvent, EnvelopeFate, FaultPlan, FaultSpec, NoFaults};
    pub use netsim_trace::{NoopRecorder, Recorder};
}
