//! The per-node protocol abstraction.
//!
//! A [`Protocol`] is a deterministic state machine driven once per round.
//! Each invocation receives the node's inbox (every message addressed to it
//! in the previous round), may enqueue messages into an [`Outbox`], and
//! returns an [`Action`]: keep going, decide on an output (while continuing
//! to forward messages, as the counting protocol requires), or crash
//! (Algorithm 2's voluntary shutdown on conflicting neighbourhood reports).

use crate::message::Envelope;
use netsim_graph::NodeId;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Life-cycle status of a node as tracked by the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeStatus {
    /// Participating normally, no output decided yet.
    Active,
    /// Has decided an output but keeps participating (forwarding tokens).
    Decided,
    /// Crashed: sends and receives nothing from now on.
    Crashed,
}

/// What a node wants the engine to do after a round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action<O> {
    /// Keep running.
    Continue,
    /// Record `O` as this node's output.  The node keeps being scheduled
    /// (the counting protocol's decided nodes still forward other nodes'
    /// tokens); deciding twice keeps the first output.
    Decide(O),
    /// Stop participating entirely (crash failure).
    Crash,
}

/// Read-only per-round context handed to a protocol.
#[derive(Clone, Copy, Debug)]
pub struct NodeContext<'a> {
    /// This node's id.
    pub id: NodeId,
    /// The current round (0-based; round 0 is the first time `step` runs).
    pub round: u64,
    /// Nodes this node may send to this round.
    pub neighbors: &'a [u32],
    /// Whether this node has already decided an output.
    pub decided: bool,
}

/// Inline outbox slots: the common low-degree broadcast queues this many
/// messages without touching the heap; higher-degree nodes spill once and
/// the engine reuses the spilled buffer for every later round.
const OUTBOX_INLINE: usize = 16;

/// Outgoing message buffer for one node in one round.
///
/// Engine-owned and reused across rounds: the engine clears it before each
/// `step` and drains it afterwards, so the hot path performs no per-round
/// allocation (messages live inline below the 16-slot inline capacity, and any
/// spilled heap buffer keeps its capacity).
#[derive(Clone, Debug)]
pub struct Outbox<M> {
    messages: smallvec::SmallVec<(NodeId, M), OUTBOX_INLINE>,
}

impl<M> Outbox<M> {
    /// Create an empty outbox.
    pub fn new() -> Self {
        Outbox {
            messages: smallvec::SmallVec::new(),
        }
    }

    /// Queue a message to a single recipient.
    pub fn send(&mut self, to: NodeId, payload: M) {
        self.messages.push((to, payload));
    }

    /// Queue the same message to many recipients.
    pub fn broadcast<'a, I>(&mut self, to: I, payload: M)
    where
        M: Clone,
        I: IntoIterator<Item = &'a u32>,
    {
        for &t in to {
            self.messages.push((NodeId(t), payload.clone()));
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True when nothing has been queued.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Drop any queued messages, keeping spilled capacity for reuse.
    pub fn clear(&mut self) {
        self.messages.clear();
    }

    /// Move every queued message out as an envelope stamped with the sender
    /// id, in queueing order, leaving the outbox empty and reusable.
    pub(crate) fn drain_envelopes(&mut self, from: NodeId, mut consume: impl FnMut(Envelope<M>)) {
        self.messages
            .drain_into(|(to, payload)| consume(Envelope { from, to, payload }));
    }

    /// Drain into envelopes stamped with the sender id.
    #[cfg(test)]
    pub(crate) fn into_envelopes(mut self, from: NodeId) -> Vec<Envelope<M>> {
        let mut out = Vec::with_capacity(self.len());
        self.drain_envelopes(from, |env| out.push(env));
        out
    }
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox::new()
    }
}

/// A synchronous per-node protocol.
pub trait Protocol: Send + Sized {
    /// The message type exchanged between nodes.
    type Message: Clone + Send + Sync + crate::message::MessageSize;
    /// The output a node eventually decides.
    type Output: Clone + Send + Sync;

    /// Run one round: consume the inbox, enqueue outgoing messages, and
    /// report the resulting action.
    fn step(
        &mut self,
        ctx: &NodeContext<'_>,
        inbox: &[Envelope<Self::Message>],
        outbox: &mut Outbox<Self::Message>,
        rng: &mut ChaCha8Rng,
    ) -> Action<Self::Output>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_send_and_broadcast() {
        let mut ob: Outbox<u64> = Outbox::new();
        assert!(ob.is_empty());
        ob.send(NodeId(1), 10);
        ob.broadcast([2u32, 3u32].iter(), 20);
        assert_eq!(ob.len(), 3);
        let envs = ob.into_envelopes(NodeId(0));
        assert_eq!(envs[0], Envelope::new(NodeId(0), NodeId(1), 10));
        assert_eq!(envs[1], Envelope::new(NodeId(0), NodeId(2), 20));
        assert_eq!(envs[2], Envelope::new(NodeId(0), NodeId(3), 20));
    }

    #[test]
    fn action_equality() {
        assert_eq!(Action::<u32>::Continue, Action::Continue);
        assert_eq!(Action::Decide(3u32), Action::Decide(3u32));
        assert_ne!(Action::Decide(3u32), Action::Decide(4u32));
    }
}
