//! Message envelopes and the "small-sized message" accounting of the paper.
//!
//! The paper's efficiency claim is that every message contains "a constant
//! number of IDs and `O(log n)` additional bits".  [`MessageSize`] lets each
//! protocol message report its cost in exactly those units so that the
//! engine can verify the claim empirically (experiment E2).

use netsim_graph::NodeId;
use serde::{Deserialize, Serialize};

/// The cost of one message in the paper's units.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizedMessage {
    /// Number of node identifiers carried by the message.
    pub ids: u32,
    /// Number of additional payload bits (beyond the IDs).
    pub bits: u32,
}

impl SizedMessage {
    /// A message carrying `ids` identifiers and `bits` extra bits.
    pub const fn new(ids: u32, bits: u32) -> Self {
        SizedMessage { ids, bits }
    }

    /// Combined size of two accounted parts.
    pub fn plus(self, other: SizedMessage) -> SizedMessage {
        SizedMessage {
            ids: self.ids + other.ids,
            bits: self.bits + other.bits,
        }
    }
}

/// Trait for protocol messages that can report their size.
pub trait MessageSize {
    /// The size of this message in IDs + bits.
    fn message_size(&self) -> SizedMessage;
}

/// Blanket convenience: `()` is a zero-sized message (useful in tests).
impl MessageSize for () {
    fn message_size(&self) -> SizedMessage {
        SizedMessage::new(0, 0)
    }
}

impl MessageSize for u64 {
    fn message_size(&self) -> SizedMessage {
        SizedMessage::new(0, 64)
    }
}

/// A message in flight: sender, recipient and payload.
///
/// The sender field is filled in by the engine and cannot be forged — this
/// models the paper's assumption that nodes (including Byzantine ones)
/// cannot lie about their own ID to a direct neighbour.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope<M> {
    pub from: NodeId,
    pub to: NodeId,
    pub payload: M,
}

impl<M> Envelope<M> {
    /// Construct an envelope.
    pub fn new(from: NodeId, to: NodeId, payload: M) -> Self {
        Envelope { from, to, payload }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_message_addition() {
        let a = SizedMessage::new(2, 16);
        let b = SizedMessage::new(1, 8);
        assert_eq!(a.plus(b), SizedMessage::new(3, 24));
    }

    #[test]
    fn unit_message_is_free() {
        assert_eq!(().message_size(), SizedMessage::new(0, 0));
        assert_eq!(7u64.message_size(), SizedMessage::new(0, 64));
    }

    #[test]
    fn envelope_roundtrip() {
        let e = Envelope::new(NodeId(1), NodeId(2), 42u64);
        assert_eq!(e.from, NodeId(1));
        assert_eq!(e.to, NodeId(2));
        assert_eq!(e.payload, 42);
    }
}
