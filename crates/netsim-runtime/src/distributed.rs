//! The distributed synchronous engine: shard workers behind a wire
//! protocol.
//!
//! [`DistributedSyncEngine`] executes the exact semantics of
//! [`ShardedSyncEngine`](crate::ShardedSyncEngine) — and therefore of
//! [`SyncEngine`](crate::SyncEngine) — but the shards are **workers**: each
//! owns a contiguous node-id range *privately* (its protocol states, RNG
//! streams, inbox double-buffers, deferred-delivery ring and delivery-side
//! metrics never leave it), and talks to a central **coordinator**
//! exclusively through `netsim-wire`'s versioned, checksummed binary frames.
//!
//! Workers run over one of two transports, chosen per run and invisible to
//! the protocol (the transport is an execution knob, never a spec field):
//!
//! * **In-process pipes** (the default): one scoped thread per shard over
//!   an in-memory [`netsim_wire::pipe`] duplex — the hermetic mode the
//!   differential suites and CI use.
//! * **Remote sockets** ([`with_remote_fleet`]): the coordinator dials a
//!   fleet of worker *processes* (Unix-domain or TCP, round-robin over the
//!   address list) and carries a [`ShardAssignment`] in its hello — the
//!   node range, the determinism anchors (engine seed, initial crashes,
//!   pristine flag) and an opaque payload (the serialized run spec) from
//!   which the worker rebuilds its slice of the simulation and then calls
//!   [`serve_shard_session`].
//!
//! Nothing the two sides exchange is an in-process shortcut: every
//! per-round payload crosses the full handshake/frame/codec stack, so the
//! same conversation is byte-identical over pipes, Unix sockets, TCP
//! loopback, or a mix.
//!
//! [`with_remote_fleet`]: DistributedSyncEngine::with_remote_fleet
//!
//! ## The conversation
//!
//! Per round (coordinator ⇄ each worker, workers addressed in shard order):
//!
//! 1. **`RoundBegin { round, churn }`** → worker.  The coordinator owns the
//!    fault plan and consults it exactly like the unsharded engine (churn
//!    first, globally and sequentially — the plan's RNG stream depends on
//!    the order); only the *effective* events for the worker's range are
//!    forwarded.  The worker applies them (a recovery resets the node from
//!    its pristine state), steps its nodes, and drains its outboxes into
//!    its honest/Byzantine arenas in node order.
//! 2. **`Arenas { honest, byz, transitions }`** → coordinator.  This is the
//!    ROADMAP's observation made concrete: the *only* per-round state a
//!    worker must ship is its gathered envelope arena — plus the
//!    status transitions (`Decide`/`Crash`) its nodes took, which the
//!    coordinator needs for admissibility checks and the stop condition.
//! 3. The coordinator gathers arenas **in shard order** (= global node
//!    order), shows the single gathered stream to the adversary against the
//!    pre-action statuses, applies the reported transitions, and routes
//!    every envelope — honest stream first, then the Byzantine path — in
//!    the unsharded engine's exact order, consulting the fault plan with
//!    the identical RNG stream.
//! 4. **`Fates { deliveries, deferred }`** → worker.  Each worker receives
//!    the envelopes destined for its range (already in global route order)
//!    plus the deferred ones with their due rounds.  It records the
//!    deliveries in its own metrics, feeds its [`DelayRing`], drains what
//!    is due this round, and swaps its inbox double-buffer.
//!
//! At the end, **`Finish`** prompts each worker to expire its in-flight
//! deferrals and ship one final **`Done`** frame: its [`RunMetrics`], its
//! range's outputs and its decision rounds.  Outputs travel the wire in
//! both transports (a `Protocol::Output` must be a [`Wire`] type to run
//! distributed) — one code path, no join-based side channel.
//!
//! ## Failure semantics
//!
//! A worker channel failing mid-conversation — a torn frame, a dead
//! process, an incompatible hello — is **not** a panic: every wire
//! interaction surfaces as [`RunError::WorkerLost`] naming the shard and
//! the protocol step it died in.  A SIGKILLed worker process closes its
//! socket, the coordinator's next read sees EOF, and the run returns a
//! clean `Err` the caller (e.g. the campaign scheduler) can retry.
//!
//! ## Determinism contract
//!
//! For equal `(topology, protocol, adversary, seed, fault plan)`, a
//! distributed run is **byte-identical** to `ShardedSyncEngine` and
//! `SyncEngine` for every shard count *and every transport* — the
//! differential suite (`tests/distributed_parity.rs`) locks this down over
//! the golden fixtures.  One documented caveat: the coordinator shows the
//! adversary an empty `states` slice (worker-owned protocol states are not
//! shipped).  No adversary in this workspace reads `AdversaryView::states`;
//! one that did would need the states on the wire, which plain `Protocol`
//! types do not support.
//!
//! Observability: a [`Recorder`] observes the coordinator side only (churn,
//! adversary cut, routing and the router's metric deltas, all under
//! [`SHARD_ROUTER`]).  Worker-side deltas are not traced in distributed
//! mode — the shard metrics still merge into the run's exact totals.

use crate::adversary::{Adversary, AdversaryDecision, AdversaryView};
use crate::engine::{
    emit_metric_deltas, envelope_admissible, splitmix, EngineConfig, MetricsSnap, RunResult,
};
use crate::message::{Envelope, MessageSize, SizedMessage};
use crate::metrics::RunMetrics;
use crate::node::{Action, NodeContext, NodeStatus, Outbox, Protocol};
use crate::ring::DelayRing;
use crate::sharded::shard_bounds;
use crate::topology::Topology;
use netsim_faults::{ChurnEvent, EnvelopeFate, FaultPlan};
use netsim_graph::NodeId;
use netsim_trace::{Counter, Gauge, Phase, Recorder, SHARD_ROUTER};
use netsim_wire::{
    decode_from_slice, duplex, encode_to_vec, read_frame, recv_hello, send_hello, write_frame,
    IoStream, PipeEnd, Reader, ShardAssignment, Wire, WireError, WireHello, SPEC_VERSION_ANY,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::io::{Read, Write};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Errors.

/// Why a distributed run could not complete.
///
/// These are *engine* faults (a transport or peer failed), never protocol
/// results: a run that merely fails to decide still returns
/// `Ok(RunResult { completed: false, .. })`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// A shard worker's channel failed mid-conversation: torn frame,
    /// closed socket (e.g. the worker process was killed), protocol
    /// violation or incompatible hello.
    WorkerLost {
        /// Which shard's channel failed.
        shard: usize,
        /// The protocol step the failure surfaced in (`"hello"`,
        /// `"round-begin"`, `"arenas"`, `"fates"`, `"finish"`, `"done"`).
        during: &'static str,
        /// The underlying error, stringified.
        detail: String,
    },
    /// The worker fleet could not be set up (bad address, refused dial).
    Fleet(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::WorkerLost {
                shard,
                during,
                detail,
            } => {
                write!(f, "shard worker {shard} lost during {during}: {detail}")
            }
            RunError::Fleet(msg) => write!(f, "worker fleet unavailable: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Shorthand for the per-step `WireError` → [`RunError::WorkerLost`]
/// mapping.
fn lost(shard: usize, during: &'static str) -> impl Fn(WireError) -> RunError {
    move |e| RunError::WorkerLost {
        shard,
        during,
        detail: e.to_string(),
    }
}

// ---------------------------------------------------------------------------
// The remote fleet knob.

/// Where (and how) to find process-level shard workers.
///
/// Handed to [`DistributedSyncEngine::with_remote_fleet`]; shard `s` dials
/// `addrs[s % addrs.len()]` (round-robin, so a fleet smaller than the
/// shard count serves several sessions per process, and a mixed
/// Unix/TCP address list yields a mixed-transport run).  The `payload`
/// rides the hello's [`ShardAssignment`] opaquely — for spec-driven runs
/// it is the serialized `RunSpec` the worker rebuilds its node range from.
#[derive(Clone, Debug)]
pub struct RemoteFleet {
    /// Worker addresses, `unix:<path>` or `host:port`.
    pub addrs: Vec<String>,
    /// Opaque application bytes shipped in every assignment.
    pub payload: Vec<u8>,
    /// Payload schema pin for the handshake ([`SPEC_VERSION_ANY`] to opt
    /// out).
    pub spec_version: u32,
    /// Read deadline for the handshake only (cleared once the hello
    /// verifies); a mute worker fails the run instead of hanging it.
    pub handshake_timeout: Duration,
}

impl RemoteFleet {
    /// A fleet with the default 10 s handshake deadline.
    pub fn new(addrs: Vec<String>, payload: Vec<u8>, spec_version: u32) -> Self {
        RemoteFleet {
            addrs,
            payload,
            spec_version,
            handshake_timeout: Duration::from_secs(10),
        }
    }
}

// ---------------------------------------------------------------------------
// Wire encodings for the runtime's transferable types.

impl Wire for SizedMessage {
    fn encode(&self, out: &mut Vec<u8>) {
        self.ids.encode(out);
        self.bits.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SizedMessage {
            ids: u32::decode(r)?,
            bits: u32::decode(r)?,
        })
    }
}

impl<M: Wire> Wire for Envelope<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.from.0.encode(out);
        self.to.0.encode(out);
        self.payload.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Envelope {
            from: NodeId(u32::decode(r)?),
            to: NodeId(u32::decode(r)?),
            payload: M::decode(r)?,
        })
    }
}

impl Wire for RunMetrics {
    fn encode(&self, out: &mut Vec<u8>) {
        self.rounds.encode(out);
        self.messages_delivered.encode(out);
        self.messages_dropped.encode(out);
        self.messages_lost.encode(out);
        self.messages_delayed.encode(out);
        self.messages_expired.encode(out);
        self.churn_crashes.encode(out);
        self.churn_recoveries.encode(out);
        self.total_ids.encode(out);
        self.total_bits.encode(out);
        self.max_message.encode(out);
        self.per_round_messages.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RunMetrics {
            rounds: u64::decode(r)?,
            messages_delivered: u64::decode(r)?,
            messages_dropped: u64::decode(r)?,
            messages_lost: u64::decode(r)?,
            messages_delayed: u64::decode(r)?,
            messages_expired: u64::decode(r)?,
            churn_crashes: u64::decode(r)?,
            churn_recoveries: u64::decode(r)?,
            total_ids: u64::decode(r)?,
            total_bits: u64::decode(r)?,
            max_message: SizedMessage::decode(r)?,
            per_round_messages: Vec::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------------
// The shard-channel protocol.

/// Churn op codes on the wire.
const CHURN_CRASH: u8 = 0;
const CHURN_RECOVER: u8 = 1;
/// Status-transition op codes on the wire.
const TRANSITION_DECIDED: u8 = 0;
const TRANSITION_CRASHED: u8 = 1;

/// Coordinator → worker messages.
enum CoordMsg<M> {
    /// Open a round: effective churn events for the worker's range, in the
    /// plan's global order.
    RoundBegin { round: u64, churn: Vec<(u32, u8)> },
    /// The round's routing verdicts for this worker's destinations:
    /// immediate deliveries (in global route order) and deferred envelopes
    /// with their due rounds.
    Fates {
        deliveries: Vec<Envelope<M>>,
        deferred: Vec<(u64, Envelope<M>)>,
    },
    /// The run is over: expire in-flight deferrals and ship `Done`.
    Finish,
}

/// Worker → coordinator messages.
enum WorkerMsg<M, O> {
    /// The round's gathered outboxes (honest and Byzantine-default arenas,
    /// each in node order) plus the status transitions the worker's nodes
    /// took (`(global node id, TRANSITION_*)`, in node order).
    Arenas {
        honest: Vec<Envelope<M>>,
        byz: Vec<Envelope<M>>,
        transitions: Vec<(u32, u8)>,
    },
    /// The worker's final frame: delivery-side metrics, its range's
    /// outputs and decision rounds.
    Done {
        metrics: RunMetrics,
        outputs: Vec<Option<O>>,
        decided: Vec<Option<u64>>,
    },
}

impl<M: Wire> Wire for CoordMsg<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CoordMsg::RoundBegin { round, churn } => {
                out.push(0);
                round.encode(out);
                churn.encode(out);
            }
            CoordMsg::Fates {
                deliveries,
                deferred,
            } => {
                out.push(1);
                deliveries.encode(out);
                deferred.encode(out);
            }
            CoordMsg::Finish => out.push(2),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(CoordMsg::RoundBegin {
                round: u64::decode(r)?,
                churn: Vec::decode(r)?,
            }),
            1 => Ok(CoordMsg::Fates {
                deliveries: Vec::decode(r)?,
                deferred: Vec::decode(r)?,
            }),
            2 => Ok(CoordMsg::Finish),
            other => Err(WireError::Corrupt(format!(
                "unknown coordinator message tag {other}"
            ))),
        }
    }
}

impl<M: Wire, O: Wire> Wire for WorkerMsg<M, O> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WorkerMsg::Arenas {
                honest,
                byz,
                transitions,
            } => {
                out.push(0);
                honest.encode(out);
                byz.encode(out);
                transitions.encode(out);
            }
            WorkerMsg::Done {
                metrics,
                outputs,
                decided,
            } => {
                out.push(1);
                metrics.encode(out);
                outputs.encode(out);
                decided.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(WorkerMsg::Arenas {
                honest: Vec::decode(r)?,
                byz: Vec::decode(r)?,
                transitions: Vec::decode(r)?,
            }),
            1 => Ok(WorkerMsg::Done {
                metrics: RunMetrics::decode(r)?,
                outputs: Vec::decode(r)?,
                decided: Vec::decode(r)?,
            }),
            other => Err(WireError::Corrupt(format!(
                "unknown worker message tag {other}"
            ))),
        }
    }
}

/// Send one codec message as one frame.
fn send_msg<W: Write, V: Wire>(w: &mut W, msg: &V) -> Result<(), WireError> {
    write_frame(w, &encode_to_vec(msg))
}

/// Receive one codec message from one frame (`scratch` is a reused buffer).
fn recv_msg<R: Read, V: Wire>(r: &mut R, scratch: &mut Vec<u8>) -> Result<V, WireError> {
    read_frame(r, scratch)?;
    decode_from_slice(scratch)
}

// ---------------------------------------------------------------------------
// The shard channel: one coordinator-side handle per worker, pipe or
// socket, behind one `Read + Write` face.

enum ShardChannel {
    /// In-memory duplex to a scoped worker thread.
    Pipe(PipeEnd),
    /// Socket to a worker process.
    Socket(IoStream),
}

impl Read for ShardChannel {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ShardChannel::Pipe(p) => p.read(buf),
            ShardChannel::Socket(s) => s.read(buf),
        }
    }
}

impl Write for ShardChannel {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ShardChannel::Pipe(p) => p.write(buf),
            ShardChannel::Socket(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ShardChannel::Pipe(p) => p.flush(),
            ShardChannel::Socket(s) => s.flush(),
        }
    }
}

// ---------------------------------------------------------------------------
// The worker.

/// One shard worker's private state: a contiguous node range no other
/// thread (or process) can see.  Everything that crosses its boundary goes
/// through the wire protocol above.
struct Worker<'a, T, P: Protocol> {
    topology: &'a T,
    /// First global node id of this worker's range.
    start: usize,
    states: Vec<P>,
    /// Pristine clones for churn recovery (present iff a fault plan is
    /// installed, mirroring `ShardedSyncEngine::with_fault_plan`).
    pristine: Option<Vec<P>>,
    byzantine: Vec<bool>,
    statuses: Vec<NodeStatus>,
    rngs: Vec<ChaCha8Rng>,
    outputs: Vec<Option<P::Output>>,
    decided_round: Vec<Option<u64>>,
    inboxes: Vec<Vec<Envelope<P::Message>>>,
    next_inboxes: Vec<Vec<Envelope<P::Message>>>,
    outboxes: Vec<Outbox<P::Message>>,
    actions: Vec<Action<P::Output>>,
    /// Deferred envelopes in flight *towards* this worker's range.
    ring: DelayRing<Envelope<P::Message>>,
    /// Delivery-side accounting for this worker's range.
    metrics: RunMetrics,
    /// The round currently open (set by `RoundBegin`).
    round: u64,
}

/// Build a worker over a node range.  Per-node RNG streams derive from the
/// *global* node id (`start + local`), so the shard layout — and the
/// transport — never reaches the randomness.
fn make_worker<T, P>(
    topology: &T,
    start: usize,
    states: Vec<P>,
    byzantine: Vec<bool>,
    statuses: Vec<NodeStatus>,
    seed: u64,
    keep_pristine: bool,
) -> Worker<'_, T, P>
where
    T: Topology,
    P: Protocol + Clone,
{
    let len = states.len();
    debug_assert_eq!(byzantine.len(), len);
    debug_assert_eq!(statuses.len(), len);
    let pristine = keep_pristine.then(|| states.clone());
    Worker {
        topology,
        start,
        states,
        pristine,
        byzantine,
        statuses,
        rngs: (start..start + len)
            .map(|i| ChaCha8Rng::seed_from_u64(splitmix(seed, i as u64)))
            .collect(),
        outputs: vec![None; len],
        decided_round: vec![None; len],
        inboxes: vec![Vec::new(); len],
        next_inboxes: vec![Vec::new(); len],
        outboxes: (0..len).map(|_| Outbox::new()).collect(),
        actions: vec![Action::Continue; len],
        ring: DelayRing::new(),
        metrics: RunMetrics::default(),
        round: 0,
    }
}

/// The worker's post-handshake event loop: serve `CoordMsg`s until
/// `Finish`, then ship the final `Done` frame (metrics, outputs, decision
/// rounds) and return.
fn serve_worker<T, P, S>(mut w: Worker<'_, T, P>, chan: &mut S) -> Result<(), WireError>
where
    T: Topology,
    P: Protocol + Clone,
    P::Message: Wire,
    P::Output: Wire,
    S: Read + Write,
{
    let mut scratch = Vec::new();
    loop {
        match recv_msg::<_, CoordMsg<P::Message>>(chan, &mut scratch)? {
            CoordMsg::RoundBegin { round, churn } => {
                w.round = round;
                w.metrics.begin_round();
                // Effective churn for this range, pre-validated by the
                // coordinator (which owns the global guards).
                for (node, op) in churn {
                    let local = node as usize - w.start;
                    match op {
                        CHURN_CRASH => w.statuses[local] = NodeStatus::Crashed,
                        CHURN_RECOVER => {
                            let pristine = w.pristine.as_ref().ok_or_else(|| {
                                WireError::Corrupt("recovery event without a fault plan".into())
                            })?;
                            w.states[local] = pristine[local].clone();
                            w.outputs[local] = None;
                            w.decided_round[local] = None;
                            w.statuses[local] = NodeStatus::Active;
                            w.inboxes[local].clear();
                        }
                        other => {
                            return Err(WireError::Corrupt(format!("unknown churn op {other}")))
                        }
                    }
                }
                // Compute: step every non-crashed node against its inbox,
                // exactly the sharded engine's phase 1.
                for local in 0..w.states.len() {
                    let i = w.start + local;
                    let outbox = &mut w.outboxes[local];
                    outbox.clear();
                    if w.statuses[local] == NodeStatus::Crashed {
                        w.actions[local] = Action::Continue;
                        continue;
                    }
                    let id = NodeId::from_index(i);
                    let ctx = NodeContext {
                        id,
                        round,
                        neighbors: w.topology.neighbors(id),
                        decided: w.outputs[local].is_some(),
                    };
                    w.actions[local] =
                        w.states[local].step(&ctx, &w.inboxes[local], outbox, &mut w.rngs[local]);
                }
                // Drain outboxes into the round's arenas, in node order.
                let mut honest = Vec::new();
                let mut byz = Vec::new();
                for local in 0..w.outboxes.len() {
                    let i = w.start + local;
                    let target = if w.byzantine[local] {
                        &mut byz
                    } else {
                        &mut honest
                    };
                    w.outboxes[local]
                        .drain_envelopes(NodeId::from_index(i), |env| target.push(env));
                }
                // Apply this range's actions locally and report the status
                // transitions.  The per-node guards are independent, so
                // applying here (before the coordinator's adversary cut)
                // and reporting is equivalent to the sharded engine's
                // global phase 3 — the coordinator defers *its* application
                // until after the adversary has seen the pre-action
                // statuses.
                let mut transitions = Vec::new();
                for local in 0..w.actions.len() {
                    if w.byzantine[local] || w.statuses[local] == NodeStatus::Crashed {
                        w.actions[local] = Action::Continue;
                        continue;
                    }
                    match std::mem::replace(&mut w.actions[local], Action::Continue) {
                        Action::Continue => {}
                        Action::Decide(output) => {
                            if w.outputs[local].is_none() {
                                w.outputs[local] = Some(output);
                                w.decided_round[local] = Some(round);
                                w.statuses[local] = NodeStatus::Decided;
                                transitions.push(((w.start + local) as u32, TRANSITION_DECIDED));
                            }
                        }
                        Action::Crash => {
                            w.statuses[local] = NodeStatus::Crashed;
                            transitions.push(((w.start + local) as u32, TRANSITION_CRASHED));
                        }
                    }
                }
                send_msg(
                    chan,
                    &WorkerMsg::<_, P::Output>::Arenas {
                        honest,
                        byz,
                        transitions,
                    },
                )?;
            }
            CoordMsg::Fates {
                deliveries,
                deferred,
            } => {
                // Immediate deliveries, already in global route order.
                for env in deliveries {
                    w.metrics.record_delivery(env.payload.message_size());
                    w.next_inboxes[env.to.index() - w.start].push(env);
                }
                for (due, env) in deferred {
                    w.ring.push(w.round, due, env);
                }
                // Phase 5: drain what is due this round (post-action
                // statuses, like the sharded engine).
                let Worker {
                    ring,
                    metrics,
                    next_inboxes,
                    statuses,
                    start,
                    round,
                    ..
                } = &mut w;
                ring.drain_due(*round, |env| {
                    if statuses[env.to.index() - *start] == NodeStatus::Crashed {
                        metrics.record_fault_expired(1);
                    } else {
                        metrics.record_delivery(env.payload.message_size());
                        next_inboxes[env.to.index() - *start].push(env);
                    }
                });
                // Round boundary: swap the inbox double-buffer.
                std::mem::swap(&mut w.inboxes, &mut w.next_inboxes);
                for inbox in &mut w.next_inboxes {
                    inbox.clear();
                }
            }
            CoordMsg::Finish => {
                let in_flight = w.ring.in_flight() as u64;
                if in_flight > 0 {
                    w.metrics.record_fault_expired(in_flight);
                }
                send_msg(
                    chan,
                    &WorkerMsg::<P::Message, P::Output>::Done {
                        metrics: w.metrics,
                        outputs: w.outputs,
                        decided: w.decided_round,
                    },
                )?;
                return Ok(());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Process-level worker entry point.

/// Everything a process-level shard worker needs beyond its node range's
/// states and Byzantine mask — normally lifted straight off the
/// coordinator's hello via [`ShardServeConfig::from_assignment`].
#[derive(Clone, Debug)]
pub struct ShardServeConfig {
    /// First global node id of the range.
    pub start: usize,
    /// The engine seed (per-node RNG sub-streams derive from it by global
    /// node id).
    pub seed: u64,
    /// Keep pristine state clones for churn recovery (true iff the
    /// coordinator runs a fault plan).
    pub keep_pristine: bool,
    /// Global ids within the range that start crashed.
    pub crashed: Vec<u32>,
}

impl ShardServeConfig {
    /// Lift the serve parameters off a coordinator's [`ShardAssignment`].
    pub fn from_assignment(a: &ShardAssignment) -> Self {
        ShardServeConfig {
            start: a.start as usize,
            seed: a.seed,
            keep_pristine: a.pristine,
            crashed: a.crashed.clone(),
        }
    }
}

/// Serve one coordinator session over an already-handshaken channel: the
/// process-level worker's side of the engine, fed with the node range's
/// freshly built states (`states`/`byzantine` cover the range only).
///
/// Determinism: given states built identically to the coordinator's (the
/// spec-driven runners construct per-node states by global node id, so a
/// range chunk is trivially identical), the conversation — and therefore
/// the run result — is byte-identical to the in-process transport.
pub fn serve_shard_session<T, P, S>(
    topology: &T,
    states: Vec<P>,
    byzantine: Vec<bool>,
    cfg: &ShardServeConfig,
    chan: &mut S,
) -> Result<(), WireError>
where
    T: Topology,
    P: Protocol + Clone,
    P::Message: Wire,
    P::Output: Wire,
    S: Read + Write,
{
    let len = states.len();
    if byzantine.len() != len {
        return Err(WireError::Corrupt(format!(
            "byzantine mask covers {} nodes, range has {len}",
            byzantine.len()
        )));
    }
    let mut statuses = vec![NodeStatus::Active; len];
    for &id in &cfg.crashed {
        let local = (id as usize)
            .checked_sub(cfg.start)
            .filter(|&l| l < len)
            .ok_or_else(|| {
                WireError::Corrupt(format!(
                    "initial crash id {id} outside range {}..{}",
                    cfg.start,
                    cfg.start + len
                ))
            })?;
        statuses[local] = NodeStatus::Crashed;
    }
    let worker = make_worker(
        topology,
        cfg.start,
        states,
        byzantine,
        statuses,
        cfg.seed,
        cfg.keep_pristine,
    );
    serve_worker(worker, chan)
}

// ---------------------------------------------------------------------------
// The coordinator.

/// Validate, account and route one envelope into its destination worker's
/// delivery or deferral batch (the distributed form of
/// `ShardedSyncEngine::route`; validation is literally shared via
/// [`envelope_admissible`]).
#[allow(clippy::too_many_arguments)]
fn route_one<T: Topology, M: MessageSize>(
    topology: &T,
    statuses: &[NodeStatus],
    byzantine: &[bool],
    shard_of: &[u32],
    round: u64,
    env: Envelope<M>,
    authored_by_adversary: bool,
    fault_plan: &mut Option<Box<dyn FaultPlan>>,
    router_metrics: &mut RunMetrics,
    deliveries: &mut [Vec<Envelope<M>>],
    deferred: &mut [Vec<(u64, Envelope<M>)>],
) {
    if !envelope_admissible(topology, statuses, byzantine, &env, authored_by_adversary) {
        router_metrics.record_drop();
        return;
    }
    let fate = match fault_plan.as_mut() {
        Some(plan) if !byzantine[env.from.index()] => plan.envelope_fate(round, env.from, env.to),
        _ => EnvelopeFate::Deliver,
    };
    let dest = shard_of[env.to.index()] as usize;
    match fate {
        // `Delay(0)` accounts as plain delivery in every engine.
        EnvelopeFate::Deliver | EnvelopeFate::Delay(0) => deliveries[dest].push(env),
        EnvelopeFate::Drop => router_metrics.record_fault_loss(),
        EnvelopeFate::Delay(delay) => {
            router_metrics.record_fault_delay();
            deferred[dest].push((round + delay, env));
        }
    }
}

/// The coordinator's round loop over already-handshaken worker channels.
/// Transport-generic: the channels may be pipes to scoped threads or
/// sockets to worker processes — the conversation is identical.
#[allow(clippy::too_many_arguments)]
fn coordinate<T, P, A, S>(
    topology: &T,
    byzantine: Vec<bool>,
    mut adversary: A,
    config: EngineConfig,
    seed: u64,
    bounds: &[usize],
    mut statuses: Vec<NodeStatus>,
    mut fault_plan: Option<Box<dyn FaultPlan>>,
    recorder: Option<&dyn Recorder>,
    chans: &mut [S],
) -> Result<RunResult<P::Output>, RunError>
where
    T: Topology,
    P: Protocol,
    P::Message: Wire,
    P::Output: Wire,
    A: Adversary<P>,
    S: Read + Write,
{
    let n = topology.len();
    let shard_count = bounds.len() - 1;
    let mut shard_of = vec![0u32; n];
    for (s, w) in bounds.windows(2).enumerate() {
        for owner in &mut shard_of[w[0]..w[1]] {
            *owner = s as u32;
        }
    }
    let mut adversary_rng = ChaCha8Rng::seed_from_u64(splitmix(seed, u64::MAX));
    let mut churned_down = vec![false; n];
    let mut router_metrics = RunMetrics::default();
    let mut round: u64 = 0;
    let mut scratch = Vec::new();
    let mut crashed_scratch: Vec<bool> = Vec::with_capacity(n);

    loop {
        // Stop condition, identical to the other engines.
        if round >= config.max_rounds {
            break;
        }
        if config.stop_when_all_decided
            && statuses
                .iter()
                .zip(&byzantine)
                .filter(|(_, byz)| !**byz)
                .all(|(s, _)| *s != NodeStatus::Active)
        {
            break;
        }

        router_metrics.begin_round();
        let rec = recorder;
        let router_snap = rec.map(|_| MetricsSnap::of(&router_metrics));
        if let Some(rec) = rec {
            rec.phase_begin(SHARD_ROUTER, round, Phase::Round);
            rec.phase_begin(SHARD_ROUTER, round, Phase::Churn);
        }

        // Phase 0: churn — validated centrally in the plan's global
        // order (its RNG stream depends on it), then forwarded as
        // effective events to the owning workers.
        let mut shard_churn: Vec<Vec<(u32, u8)>> = vec![Vec::new(); shard_count];
        if let Some(plan) = fault_plan.as_mut() {
            for event in plan.begin_round(round) {
                match event {
                    ChurnEvent::Crash(v) => {
                        let i = v.index();
                        if i < n && !byzantine[i] && statuses[i] != NodeStatus::Crashed {
                            statuses[i] = NodeStatus::Crashed;
                            churned_down[i] = true;
                            router_metrics.record_churn_crash();
                            shard_churn[shard_of[i] as usize].push((i as u32, CHURN_CRASH));
                        }
                    }
                    ChurnEvent::Recover(v) => {
                        let i = v.index();
                        // Workers hold pristine states whenever a fault
                        // plan is installed, so the sharded engine's
                        // reset-availability guard is implied here.
                        if i < n && churned_down[i] && statuses[i] == NodeStatus::Crashed {
                            statuses[i] = NodeStatus::Active;
                            churned_down[i] = false;
                            router_metrics.record_churn_recovery();
                            shard_churn[shard_of[i] as usize].push((i as u32, CHURN_RECOVER));
                        }
                    }
                }
            }
        }
        if let Some(rec) = rec {
            rec.phase_end(SHARD_ROUTER, round, Phase::Churn);
        }

        // Open the round on every worker.
        for (s, chan) in chans.iter_mut().enumerate() {
            send_msg(
                chan,
                &CoordMsg::<P::Message>::RoundBegin {
                    round,
                    churn: std::mem::take(&mut shard_churn[s]),
                },
            )
            .map_err(lost(s, "round-begin"))?;
        }

        // Gather arenas in shard order (= global node order).
        let mut honest_arena: Vec<Envelope<P::Message>> = Vec::new();
        let mut byz_default: Vec<Envelope<P::Message>> = Vec::new();
        let mut transitions_all: Vec<(u32, u8)> = Vec::new();
        for (s, chan) in chans.iter_mut().enumerate() {
            match recv_msg::<_, WorkerMsg<P::Message, P::Output>>(chan, &mut scratch)
                .map_err(lost(s, "arenas"))?
            {
                WorkerMsg::Arenas {
                    honest,
                    byz,
                    transitions,
                } => {
                    honest_arena.extend(honest);
                    byz_default.extend(byz);
                    transitions_all.extend(transitions);
                }
                WorkerMsg::Done { .. } => {
                    return Err(RunError::WorkerLost {
                        shard: s,
                        during: "arenas",
                        detail: "worker sent its final frame mid-run".into(),
                    });
                }
            }
        }

        if let Some(rec) = rec {
            rec.phase_begin(SHARD_ROUTER, round, Phase::AdversaryCut);
        }
        // The adversary observes the gathered stream against the
        // pre-action statuses (worker-owned protocol states are not
        // shipped; see the module docs).
        crashed_scratch.clear();
        crashed_scratch.extend(statuses.iter().map(|s| *s == NodeStatus::Crashed));
        let decision = {
            let view = AdversaryView {
                round,
                byzantine: &byzantine,
                crashed: &crashed_scratch,
                states: &[],
                honest_messages: &honest_arena,
                byzantine_default_messages: &byz_default,
            };
            adversary.act(&view, &mut adversary_rng)
        };
        // Phase 3: apply the worker-reported transitions, after the
        // adversary observed the pre-action statuses.
        for &(node, op) in &transitions_all {
            statuses[node as usize] = if op == TRANSITION_DECIDED {
                NodeStatus::Decided
            } else {
                NodeStatus::Crashed
            };
        }
        if let Some(rec) = rec {
            rec.gauge(
                SHARD_ROUTER,
                round,
                Gauge::HonestArenaHighWater,
                honest_arena.len() as u64,
            );
            rec.gauge(
                SHARD_ROUTER,
                round,
                Gauge::ByzArenaHighWater,
                byz_default.len() as u64,
            );
            rec.phase_end(SHARD_ROUTER, round, Phase::AdversaryCut);
            rec.phase_begin(SHARD_ROUTER, round, Phase::Routing);
        }

        // Route every envelope in the unsharded engine's exact order:
        // honest stream first, then the Byzantine path.
        let mut deliveries: Vec<Vec<Envelope<P::Message>>> =
            (0..shard_count).map(|_| Vec::new()).collect();
        let mut deferred: Vec<Vec<(u64, Envelope<P::Message>)>> =
            (0..shard_count).map(|_| Vec::new()).collect();
        for env in honest_arena.drain(..) {
            route_one(
                topology,
                &statuses,
                &byzantine,
                &shard_of,
                round,
                env,
                false,
                &mut fault_plan,
                &mut router_metrics,
                &mut deliveries,
                &mut deferred,
            );
        }
        match decision {
            AdversaryDecision::FollowProtocol => {
                for env in byz_default.drain(..) {
                    route_one(
                        topology,
                        &statuses,
                        &byzantine,
                        &shard_of,
                        round,
                        env,
                        false,
                        &mut fault_plan,
                        &mut router_metrics,
                        &mut deliveries,
                        &mut deferred,
                    );
                }
            }
            AdversaryDecision::Replace(msgs) => {
                for env in msgs {
                    route_one(
                        topology,
                        &statuses,
                        &byzantine,
                        &shard_of,
                        round,
                        env,
                        true,
                        &mut fault_plan,
                        &mut router_metrics,
                        &mut deliveries,
                        &mut deferred,
                    );
                }
            }
        }
        if let Some(rec) = rec {
            rec.phase_end(SHARD_ROUTER, round, Phase::Routing);
        }

        // Scatter the fates back to the owning workers.
        for (s, chan) in chans.iter_mut().enumerate() {
            send_msg(
                chan,
                &CoordMsg::Fates {
                    deliveries: std::mem::take(&mut deliveries[s]),
                    deferred: std::mem::take(&mut deferred[s]),
                },
            )
            .map_err(lost(s, "fates"))?;
        }

        if let Some(rec) = rec {
            emit_metric_deltas(
                rec,
                SHARD_ROUTER,
                round,
                router_snap.expect("snapshotted with recorder"),
                MetricsSnap::of(&router_metrics),
            );
            rec.add(SHARD_ROUTER, round, Counter::Rounds, 1);
            rec.phase_end(SHARD_ROUTER, round, Phase::Round);
        }
        round += 1;
    }

    // Wind down: one `Done` frame per worker (shard order) carries its
    // metrics, outputs and decision rounds.
    for (s, chan) in chans.iter_mut().enumerate() {
        send_msg(chan, &CoordMsg::<P::Message>::Finish).map_err(lost(s, "finish"))?;
    }
    let mut metrics = router_metrics;
    let mut outputs = Vec::with_capacity(n);
    let mut decided_round = Vec::with_capacity(n);
    for (s, chan) in chans.iter_mut().enumerate() {
        match recv_msg::<_, WorkerMsg<P::Message, P::Output>>(chan, &mut scratch)
            .map_err(lost(s, "done"))?
        {
            WorkerMsg::Done {
                metrics: shard,
                outputs: shard_outputs,
                decided,
            } => {
                let expected = bounds[s + 1] - bounds[s];
                if shard_outputs.len() != expected || decided.len() != expected {
                    return Err(RunError::WorkerLost {
                        shard: s,
                        during: "done",
                        detail: format!(
                            "worker reported {} outputs / {} decisions for a {expected}-node range",
                            shard_outputs.len(),
                            decided.len()
                        ),
                    });
                }
                metrics.absorb_shard(&shard);
                outputs.extend(shard_outputs);
                decided_round.extend(decided);
            }
            WorkerMsg::Arenas { .. } => {
                return Err(RunError::WorkerLost {
                    shard: s,
                    during: "done",
                    detail: "worker sent arenas at finish".into(),
                });
            }
        }
    }
    let completed = statuses
        .iter()
        .zip(&byzantine)
        .filter(|(_, byz)| !**byz)
        .all(|(s, _)| *s != NodeStatus::Active);
    let crashed = statuses.iter().map(|s| *s == NodeStatus::Crashed).collect();
    Ok(RunResult {
        outputs,
        decided_round,
        crashed,
        statuses,
        metrics,
        completed,
    })
}

/// The distributed synchronous engine; see the module documentation.
pub struct DistributedSyncEngine<'a, T, P, A>
where
    T: Topology,
    P: Protocol,
    A: Adversary<P>,
{
    topology: &'a T,
    states: Vec<P>,
    byzantine: Vec<bool>,
    adversary: A,
    config: EngineConfig,
    seed: u64,
    shards: usize,
    fault_plan: Option<Box<dyn FaultPlan>>,
    initial_crashed: Vec<bool>,
    recorder: Option<&'a dyn Recorder>,
    spec_version: u32,
    fleet: Option<RemoteFleet>,
}

impl<'a, T, P, A> DistributedSyncEngine<'a, T, P, A>
where
    T: Topology,
    P: Protocol + Clone,
    P::Output: Send + Wire,
    P::Message: Wire,
    A: Adversary<P>,
{
    /// Create an engine over `shards` worker-owned contiguous node ranges.
    ///
    /// The shard count is clamped to `1..=n`, exactly like
    /// [`shard_bounds`].
    ///
    /// # Panics
    /// Panics if `states.len()` or `byzantine.len()` differ from the
    /// topology size.
    pub fn new(
        topology: &'a T,
        states: Vec<P>,
        byzantine: Vec<bool>,
        adversary: A,
        config: EngineConfig,
        seed: u64,
        shards: usize,
    ) -> Self {
        let n = topology.len();
        assert_eq!(states.len(), n, "one protocol state per node required");
        assert_eq!(byzantine.len(), n, "byzantine mask must cover every node");
        DistributedSyncEngine {
            topology,
            states,
            byzantine,
            adversary,
            config,
            seed,
            shards,
            fault_plan: None,
            initial_crashed: vec![false; n],
            recorder: None,
            spec_version: SPEC_VERSION_ANY,
            fleet: None,
        }
    }

    /// Install a [`FaultPlan`]; workers keep pristine state clones for
    /// churn recovery, mirroring `ShardedSyncEngine::with_fault_plan`.
    pub fn with_fault_plan(mut self, plan: Box<dyn FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// [`with_fault_plan`](Self::with_fault_plan) that is a no-op for
    /// `None`.
    pub fn with_fault_plan_opt(mut self, plan: Option<Box<dyn FaultPlan>>) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Mark nodes as crashed before the first round.
    pub fn with_initial_crashes(mut self, crashed: &[bool]) -> Self {
        assert_eq!(
            crashed.len(),
            self.initial_crashed.len(),
            "crash mask must cover every node"
        );
        self.initial_crashed.copy_from_slice(crashed);
        self
    }

    /// Attach a [`Recorder`] (coordinator-side instrumentation only; see
    /// the module docs).
    pub fn with_recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// [`with_recorder`](Self::with_recorder) that is a no-op for `None`.
    pub fn with_recorder_opt(mut self, recorder: Option<&'a dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Pin the handshake's payload-schema version (defaults to
    /// [`SPEC_VERSION_ANY`]; in-process workers always share the build, so
    /// the pin is exercised rather than load-bearing there — a remote
    /// fleet carries its own pin in [`RemoteFleet::spec_version`]).
    pub fn with_spec_version(mut self, spec_version: u32) -> Self {
        self.spec_version = spec_version;
        self
    }

    /// Run the workers as separate processes dialed from `fleet` instead
    /// of scoped threads over pipes.  `None` (or an empty address list)
    /// keeps the in-process transport — results are byte-identical either
    /// way.  Coordinator-side `states` are discarded in remote mode: each
    /// worker rebuilds its range deterministically from the assignment's
    /// payload.
    pub fn with_remote_fleet(mut self, fleet: Option<RemoteFleet>) -> Self {
        self.fleet = fleet;
        self
    }

    /// Number of workers the engine actually runs with (after clamping).
    pub fn shard_count(&self) -> usize {
        shard_bounds(self.topology.len(), self.shards).len() - 1
    }

    /// Run to the stop condition and return the result.
    ///
    /// # Errors
    /// A worker channel failing mid-conversation (a torn frame, a dead
    /// worker process, an incompatible hello) surfaces as
    /// [`RunError::WorkerLost`]; a fleet address that cannot be dialed as
    /// [`RunError::Fleet`].  This path never panics on wire faults.
    pub fn run(self) -> Result<RunResult<P::Output>, RunError>
    where
        P: Send,
    {
        let DistributedSyncEngine {
            topology,
            states,
            byzantine,
            adversary,
            config,
            seed,
            shards,
            fault_plan,
            initial_crashed,
            recorder,
            spec_version,
            fleet,
        } = self;
        let n = topology.len();
        let bounds = shard_bounds(n, shards);
        let mut statuses = vec![NodeStatus::Active; n];
        for (status, &is_crashed) in statuses.iter_mut().zip(&initial_crashed) {
            if is_crashed {
                *status = NodeStatus::Crashed;
            }
        }
        let pristine_needed = fault_plan.is_some();

        if let Some(fleet) = fleet.as_ref().filter(|f| !f.addrs.is_empty()) {
            // Remote transport: dial one socket per shard (round-robin
            // over the fleet) and hand each worker its assignment in the
            // hello.  The workers rebuild their states from the payload;
            // ours are not needed.
            drop(states);
            let mut chans: Vec<ShardChannel> = Vec::with_capacity(bounds.len() - 1);
            for (s, w) in bounds.windows(2).enumerate() {
                let addr = &fleet.addrs[s % fleet.addrs.len()];
                let mut stream = IoStream::connect(addr)
                    .map_err(|e| RunError::Fleet(format!("dialing {addr} for shard {s}: {e}")))?;
                let crashed: Vec<u32> = (w[0]..w[1])
                    .filter(|&i| initial_crashed[i])
                    .map(|i| i as u32)
                    .collect();
                let hello = WireHello::with_assignment(
                    fleet.spec_version,
                    ShardAssignment {
                        start: w[0] as u32,
                        end: w[1] as u32,
                        n: n as u32,
                        seed,
                        pristine: pristine_needed,
                        crashed,
                        payload: fleet.payload.clone(),
                    },
                );
                stream
                    .exchange_hello(&hello, fleet.handshake_timeout)
                    .map_err(lost(s, "hello"))?;
                chans.push(ShardChannel::Socket(stream));
            }
            coordinate::<T, P, A, _>(
                topology, byzantine, adversary, config, seed, &bounds, statuses, fault_plan,
                recorder, &mut chans,
            )
        } else {
            // In-process transport: one scoped worker thread per shard
            // over a pipe duplex.  Worker closures return `Result` and
            // never panic; when the coordinator errors out, dropping the
            // channels gives every worker EOF and the scope joins cleanly.
            let hello = WireHello::current(spec_version);
            std::thread::scope(|scope| {
                let mut chans: Vec<ShardChannel> = Vec::with_capacity(bounds.len() - 1);
                let mut state_iter = states.into_iter();
                for w in bounds.windows(2) {
                    let (start, end) = (w[0], w[1]);
                    let worker = make_worker(
                        topology,
                        start,
                        state_iter.by_ref().take(end - start).collect(),
                        byzantine[start..end].to_vec(),
                        statuses[start..end].to_vec(),
                        seed,
                        pristine_needed,
                    );
                    let (coord_end, mut worker_end) = duplex();
                    let worker_hello = hello.clone();
                    scope.spawn(move || -> Result<(), WireError> {
                        send_hello(&mut worker_end, &worker_hello)?;
                        let theirs = recv_hello(&mut worker_end)?;
                        theirs.check_compatible(&worker_hello)?;
                        serve_worker(worker, &mut worker_end)
                    });
                    chans.push(ShardChannel::Pipe(coord_end));
                }
                // Handshake every worker channel before the first round.
                for (s, chan) in chans.iter_mut().enumerate() {
                    send_hello(chan, &hello).map_err(lost(s, "hello"))?;
                    let theirs = recv_hello(chan).map_err(lost(s, "hello"))?;
                    theirs.check_compatible(&hello).map_err(lost(s, "hello"))?;
                }
                coordinate::<T, P, A, _>(
                    topology, byzantine, adversary, config, seed, &bounds, statuses, fault_plan,
                    recorder, &mut chans,
                )
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::NullAdversary;
    use crate::engine::SyncEngine;
    use crate::sharded::ShardedSyncEngine;
    use netsim_faults::FaultSpec;
    use netsim_graph::Csr;
    use netsim_wire::Listener;
    use rand::Rng;

    #[derive(Clone, Debug, PartialEq)]
    struct Val(u64);
    impl MessageSize for Val {
        fn message_size(&self) -> SizedMessage {
            SizedMessage::new(0, 64)
        }
    }
    impl Wire for Val {
        fn encode(&self, out: &mut Vec<u8>) {
            self.0.encode(out);
        }
        fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
            Ok(Val(u64::decode(r)?))
        }
    }

    /// Max-flooding, the engine test-suite workhorse (identical to the
    /// sharded suite's protocol so the parity claims line up).
    #[derive(Clone)]
    struct MaxFlood {
        value: u64,
        best: u64,
        ttl: u64,
        started: bool,
    }

    impl Protocol for MaxFlood {
        type Message = Val;
        type Output = u64;
        fn step(
            &mut self,
            ctx: &NodeContext<'_>,
            inbox: &[Envelope<Val>],
            outbox: &mut Outbox<Val>,
            rng: &mut ChaCha8Rng,
        ) -> Action<u64> {
            if !self.started {
                self.started = true;
                if self.value == 0 {
                    self.value = rng.gen::<u64>() | 1;
                }
                self.best = self.value;
                outbox.broadcast(ctx.neighbors.iter(), Val(self.best));
                return Action::Continue;
            }
            let mut improved = false;
            for env in inbox {
                if env.payload.0 > self.best {
                    self.best = env.payload.0;
                    improved = true;
                }
            }
            if improved {
                outbox.broadcast(ctx.neighbors.iter(), Val(self.best));
            }
            if ctx.round >= self.ttl {
                Action::Decide(self.best)
            } else {
                Action::Continue
            }
        }
    }

    fn line_graph(n: usize) -> Csr {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Csr::from_undirected_edges(n, &edges).unwrap()
    }

    fn flood_states(n: usize, ttl: u64) -> Vec<MaxFlood> {
        (0..n)
            .map(|_| MaxFlood {
                value: 0,
                best: 0,
                ttl,
                started: false,
            })
            .collect()
    }

    fn assert_results_equal(a: &RunResult<u64>, b: &RunResult<u64>, label: &str) {
        assert_eq!(a.outputs, b.outputs, "{label}: outputs diverged");
        assert_eq!(a.decided_round, b.decided_round, "{label}: decided_round");
        assert_eq!(a.crashed, b.crashed, "{label}: crash masks");
        assert_eq!(a.statuses, b.statuses, "{label}: statuses");
        assert_eq!(a.metrics, b.metrics, "{label}: metrics");
        assert_eq!(a.completed, b.completed, "{label}: completed");
    }

    #[test]
    fn wire_round_trips_for_runtime_types() {
        let env = Envelope::new(NodeId(7), NodeId(3), Val(0xDEAD_BEEF));
        let bytes = encode_to_vec(&env);
        let back: Envelope<Val> = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, env);

        let mut metrics = RunMetrics::default();
        metrics.begin_round();
        metrics.record_delivery(SizedMessage::new(2, 17));
        metrics.record_fault_delay();
        metrics.begin_round();
        metrics.record_fault_expired(3);
        metrics.record_churn_crash();
        let bytes = encode_to_vec(&metrics);
        let back: RunMetrics = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, metrics);

        // Truncation is a clean error for composite payloads too.
        assert!(decode_from_slice::<RunMetrics>(&bytes[..bytes.len() - 3]).is_err());

        // The final worker frame round-trips with outputs and decisions.
        let done = WorkerMsg::<Val, u64>::Done {
            metrics: back,
            outputs: vec![Some(9), None, Some(u64::MAX)],
            decided: vec![Some(4), None, Some(7)],
        };
        let bytes = encode_to_vec(&done);
        match decode_from_slice::<WorkerMsg<Val, u64>>(&bytes).unwrap() {
            WorkerMsg::Done {
                outputs, decided, ..
            } => {
                assert_eq!(outputs, vec![Some(9), None, Some(u64::MAX)]);
                assert_eq!(decided, vec![Some(4), None, Some(7)]);
            }
            WorkerMsg::Arenas { .. } => panic!("wrong tag"),
        }
    }

    #[test]
    fn distributed_clean_runs_match_the_unsharded_engine_for_every_shard_count() {
        let n = 24;
        let g = line_graph(n);
        let reference = SyncEngine::new(
            &g,
            flood_states(n, 3 * n as u64),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            42,
        )
        .run();
        for shards in [1usize, 2, 3, 4, 8, 24, 100] {
            let distributed = DistributedSyncEngine::new(
                &g,
                flood_states(n, 3 * n as u64),
                vec![false; n],
                NullAdversary,
                EngineConfig::default(),
                42,
                shards,
            )
            .run()
            .unwrap();
            assert_results_equal(&reference, &distributed, &format!("S={shards}"));
        }
    }

    #[test]
    fn distributed_faulty_runs_match_both_synchronous_engines() {
        // The full fault stack: loss + bounded delay + churn + partition.
        let n = 32;
        let g = line_graph(n);
        let spec = FaultSpec::Compose(vec![
            FaultSpec::Loss { rate: 0.15 },
            FaultSpec::Delay {
                max_delay: 3,
                rate: 0.3,
            },
            FaultSpec::Churn {
                rate: 0.04,
                downtime: 3,
            },
            FaultSpec::Partition {
                start: 2,
                duration: 5,
            },
        ]);
        let plan = |seed: u64| {
            spec.build_plan(n, &vec![true; n], seed ^ 0xFA17)
                .expect("plan")
        };
        let reference = SyncEngine::new(
            &g,
            flood_states(n, 90),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            7,
        )
        .with_fault_plan(plan(7))
        .run();
        for shards in [1usize, 2, 4, 8] {
            let distributed = DistributedSyncEngine::new(
                &g,
                flood_states(n, 90),
                vec![false; n],
                NullAdversary,
                EngineConfig::default(),
                7,
                shards,
            )
            .with_fault_plan(plan(7))
            .run()
            .unwrap();
            assert_results_equal(&reference, &distributed, &format!("faulty S={shards}"));
            let sharded = ShardedSyncEngine::new(
                &g,
                flood_states(n, 90),
                vec![false; n],
                NullAdversary,
                EngineConfig::default(),
                7,
                shards,
            )
            .with_fault_plan(plan(7))
            .run();
            assert_results_equal(&sharded, &distributed, &format!("vs sharded S={shards}"));
        }
        assert!(
            reference.metrics.messages_lost > 0 && reference.metrics.messages_delayed > 0,
            "the fault stack must actually have fired for this test to mean anything"
        );
        assert!(
            reference.metrics.churn_crashes > 0,
            "churn must cross the wire for this test to mean anything"
        );
    }

    #[test]
    fn distributed_initial_crashes_match_the_unsharded_engine() {
        let n = 16;
        let g = line_graph(n);
        let mut crashed = vec![false; n];
        crashed[3] = true;
        crashed[12] = true;
        let reference = SyncEngine::new(
            &g,
            flood_states(n, 50),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            5,
        )
        .with_initial_crashes(&crashed)
        .run();
        let distributed = DistributedSyncEngine::new(
            &g,
            flood_states(n, 50),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            5,
            4,
        )
        .with_initial_crashes(&crashed)
        .run()
        .unwrap();
        assert_results_equal(&reference, &distributed, "initial crashes");
    }

    /// The sharded suite's Shouter: Byzantine nodes shout a huge value at
    /// node 0 plus an illegal long-range message.
    struct Shouter;
    impl Adversary<MaxFlood> for Shouter {
        fn act(
            &mut self,
            view: &AdversaryView<'_, MaxFlood>,
            _rng: &mut ChaCha8Rng,
        ) -> AdversaryDecision<Val> {
            let mut msgs = Vec::new();
            for (i, &b) in view.byzantine.iter().enumerate() {
                if b {
                    msgs.push(Envelope::new(
                        NodeId::from_index(i),
                        NodeId(0),
                        Val(u64::MAX),
                    ));
                    msgs.push(Envelope::new(
                        NodeId::from_index(i),
                        NodeId(5),
                        Val(u64::MAX),
                    ));
                }
            }
            AdversaryDecision::Replace(msgs)
        }
    }

    #[test]
    fn distributed_adversarial_runs_match_the_unsharded_engine() {
        let n = 16;
        let g = line_graph(n);
        let mut byz = vec![false; n];
        byz[1] = true;
        byz[9] = true;
        let reference = SyncEngine::new(
            &g,
            flood_states(n, 30),
            byz.clone(),
            Shouter,
            EngineConfig::default(),
            3,
        )
        .run();
        for shards in [2usize, 4, 8] {
            let distributed = DistributedSyncEngine::new(
                &g,
                flood_states(n, 30),
                byz.clone(),
                Shouter,
                EngineConfig::default(),
                3,
                shards,
            )
            .run()
            .unwrap();
            assert_results_equal(&reference, &distributed, &format!("adversarial S={shards}"));
        }
        assert!(reference.metrics.messages_dropped > 0);
    }

    #[test]
    fn cross_shard_delay_past_the_final_round_expires_in_the_worker_ring() {
        struct DelayAcross;
        impl FaultPlan for DelayAcross {
            fn envelope_fate(&mut self, round: u64, from: NodeId, to: NodeId) -> EnvelopeFate {
                // With n = 8 and S = 2, worker 0 owns 0..4 and worker 1
                // owns 4..8: the 3 → 4 edge crosses the worker boundary.
                if round == 0 && from == NodeId(3) && to == NodeId(4) {
                    EnvelopeFate::Delay(1000)
                } else {
                    EnvelopeFate::Deliver
                }
            }
        }
        let n = 8;
        let g = line_graph(n);
        let cfg = EngineConfig {
            max_rounds: 4,
            stop_when_all_decided: true,
        };
        let reference = SyncEngine::new(
            &g,
            flood_states(n, 1000),
            vec![false; n],
            NullAdversary,
            cfg,
            11,
        )
        .with_fault_plan(Box::new(DelayAcross))
        .run();
        let distributed = DistributedSyncEngine::new(
            &g,
            flood_states(n, 1000),
            vec![false; n],
            NullAdversary,
            cfg,
            11,
            2,
        )
        .with_fault_plan(Box::new(DelayAcross))
        .run()
        .unwrap();
        assert_results_equal(&reference, &distributed, "cross-shard expiry");
        assert_eq!(distributed.metrics.messages_delayed, 1);
        assert_eq!(
            distributed.metrics.messages_expired, 1,
            "the deferred envelope must expire in the destination worker's ring"
        );
    }

    #[test]
    fn shard_count_reports_the_clamped_value_and_spec_pin_is_accepted() {
        let g = line_graph(4);
        let engine = DistributedSyncEngine::new(
            &g,
            flood_states(4, 10),
            vec![false; 4],
            NullAdversary,
            EngineConfig::default(),
            0,
            64,
        )
        .with_spec_version(6);
        assert_eq!(engine.shard_count(), 4, "shards clamp to the node count");
        // Both sides pin spec 6 → the handshake passes and the run works.
        let result = engine.run().unwrap();
        assert!(result.completed);
    }

    /// A process-worker stand-in: accept `sessions` coordinator sessions,
    /// serving each in its own thread (a coordinator holds several
    /// sessions on one address concurrently), rebuild the assigned node
    /// range from the hello, and serve it — exactly what
    /// `byzcount-cli shard-worker` does, minus the spec parsing.
    fn spawn_flood_worker(
        listener: Listener,
        sessions: usize,
        ttl: u64,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let mut serving = Vec::new();
            for _ in 0..sessions {
                let mut stream = listener.accept().unwrap().expect("blocking accept");
                serving.push(std::thread::spawn(move || {
                    let theirs = stream
                        .exchange_hello(
                            &WireHello::current(SPEC_VERSION_ANY),
                            Duration::from_secs(5),
                        )
                        .unwrap();
                    let a = theirs.assignment.expect("coordinator sends an assignment");
                    let g = line_graph(a.n as usize);
                    let len = (a.end - a.start) as usize;
                    let cfg = ShardServeConfig::from_assignment(&a);
                    serve_shard_session(
                        &g,
                        flood_states(len, ttl),
                        vec![false; len],
                        &cfg,
                        &mut stream,
                    )
                    .unwrap();
                }));
            }
            for handle in serving {
                handle.join().unwrap();
            }
        })
    }

    #[test]
    fn remote_socket_workers_match_in_process_pipes_unix_tcp_and_mixed() {
        let n = 24;
        let ttl = 3 * n as u64;
        let g = line_graph(n);
        let reference = DistributedSyncEngine::new(
            &g,
            flood_states(n, ttl),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            42,
            2,
        )
        .run()
        .unwrap();
        let unix_addr = format!(
            "unix:{}",
            std::env::temp_dir()
                .join(format!("nsr-dist-{}.sock", std::process::id()))
                .display()
        );
        let unix_listener = Listener::bind(&unix_addr).unwrap();
        let tcp_listener = Listener::bind("127.0.0.1:0").unwrap();
        let tcp_addr = tcp_listener.local_addr().unwrap();
        // Three transport legs: all-unix (both shards via one listener),
        // all-tcp, and mixed (shard 0 unix, shard 1 tcp) — so each worker
        // serves 2 + 1 sessions.
        let unix_worker = spawn_flood_worker(unix_listener, 3, ttl);
        let tcp_worker = spawn_flood_worker(tcp_listener, 3, ttl);
        for (label, addrs) in [
            ("unix", vec![unix_addr.clone()]),
            ("tcp", vec![tcp_addr.clone()]),
            ("mixed", vec![unix_addr.clone(), tcp_addr.clone()]),
        ] {
            let remote = DistributedSyncEngine::new(
                &g,
                flood_states(n, ttl),
                vec![false; n],
                NullAdversary,
                EngineConfig::default(),
                42,
                2,
            )
            .with_remote_fleet(Some(RemoteFleet::new(addrs, Vec::new(), SPEC_VERSION_ANY)))
            .run()
            .unwrap();
            assert_results_equal(&reference, &remote, label);
        }
        unix_worker.join().unwrap();
        tcp_worker.join().unwrap();
        if let Some(path) = unix_addr.strip_prefix("unix:") {
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn a_worker_dying_mid_run_is_a_clean_error_not_a_panic() {
        // The worker accepts, handshakes, answers the first round, then
        // drops the connection cold — exactly what SIGKILL does to a real
        // worker process.  The coordinator must surface
        // `RunError::WorkerLost`, never panic (regression for the eleven
        // panicking wire call sites this path used to have).
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let quitter = std::thread::spawn(move || {
            let mut stream = listener.accept().unwrap().expect("blocking accept");
            let theirs = stream
                .exchange_hello(
                    &WireHello::current(SPEC_VERSION_ANY),
                    Duration::from_secs(5),
                )
                .unwrap();
            assert!(
                theirs.assignment.is_some(),
                "assignment must ride the hello"
            );
            let mut scratch = Vec::new();
            let _round: CoordMsg<Val> = recv_msg(&mut stream, &mut scratch).unwrap();
            send_msg(
                &mut stream,
                &WorkerMsg::<Val, u64>::Arenas {
                    honest: Vec::new(),
                    byz: Vec::new(),
                    transitions: Vec::new(),
                },
            )
            .unwrap();
            // Drop the stream: the coordinator's next read sees EOF.
        });
        let n = 8;
        let g = line_graph(n);
        let err = DistributedSyncEngine::new(
            &g,
            flood_states(n, 20),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            1,
            1,
        )
        .with_remote_fleet(Some(RemoteFleet::new(
            vec![addr],
            Vec::new(),
            SPEC_VERSION_ANY,
        )))
        .run()
        .expect_err("a dead worker must fail the run cleanly");
        match err {
            RunError::WorkerLost { shard, .. } => assert_eq!(shard, 0),
            other => panic!("expected WorkerLost, got {other}"),
        }
        quitter.join().unwrap();
    }

    #[test]
    fn an_unreachable_fleet_is_a_clean_error() {
        let n = 4;
        let g = line_graph(n);
        let err = DistributedSyncEngine::new(
            &g,
            flood_states(n, 10),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            0,
            2,
        )
        .with_remote_fleet(Some(RemoteFleet::new(
            // A reserved port nobody listens on.
            vec!["127.0.0.1:1".into()],
            Vec::new(),
            SPEC_VERSION_ANY,
        )))
        .run()
        .expect_err("nothing listens there");
        assert!(matches!(err, RunError::Fleet(_)), "{err}");
    }
}
