//! The synchronous round engine.
//!
//! One [`SyncEngine`] instance drives one protocol execution over a fixed
//! topology.  Rounds are processed in lock-step:
//!
//! 1. every non-crashed node consumes the messages addressed to it in the
//!    previous round and queues its outgoing messages into an engine-owned,
//!    reused outbox (sequentially, in node order — batch-level rayon
//!    parallelism lives in the simulation API one level up; every node
//!    still has its own RNG stream, so the schedule is deterministic);
//! 2. the full-information adversary inspects every state and every queued
//!    message and may replace the Byzantine nodes' outboxes;
//! 3. messages are validated against the topology (no edge → dropped),
//!    accounted, and delivered into the next round's inboxes.
//!
//! The engine stops when every honest node has decided (or crashed), or when
//! `max_rounds` is reached.
//!
//! ## Fault injection
//!
//! An optional [`FaultPlan`] (see [`netsim_faults`]) makes the *network*
//! imperfect.  It hooks into the loop at two points:
//!
//! * at every round boundary the plan may churn honest nodes — fail-stop
//!   them and later bring them back with a freshly reset protocol state;
//! * between outbox collection and inbox delivery, every validated honest
//!   envelope is given a fate: delivered, silently lost, or deferred up to
//!   `Δ` rounds (bounded-delay asynchrony).
//!
//! Byzantine envelopes never pass through the plan — the adversary already
//! controls that traffic, and fault injection models an unreliable network,
//! not extra adversarial power.  Lost and still-deferred envelopes are
//! never counted as delivered; see [`RunMetrics`] for the dedicated
//! counters.  With no plan installed the loop is exactly the classic
//! synchronous engine (a `None` check per round and per envelope).

use crate::adversary::{Adversary, AdversaryDecision, AdversaryView};
use crate::message::{Envelope, MessageSize};
use crate::metrics::RunMetrics;
use crate::node::{Action, NodeContext, NodeStatus, Outbox, Protocol};
use crate::ring::DelayRing;
use crate::topology::Topology;
use netsim_faults::{ChurnEvent, EnvelopeFate, FaultPlan};
use netsim_graph::NodeId;
use netsim_trace::{Counter, Gauge, Phase, Recorder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Snapshot of the `RunMetrics` counters a [`Recorder`] mirrors; taken at
/// a phase boundary so per-round deltas can be emitted without touching
/// the per-envelope accounting path.
#[derive(Clone, Copy, Default)]
pub(crate) struct MetricsSnap {
    delivered: u64,
    dropped: u64,
    lost: u64,
    delayed: u64,
    expired: u64,
    crashes: u64,
    recoveries: u64,
}

impl MetricsSnap {
    pub(crate) fn of(m: &RunMetrics) -> Self {
        MetricsSnap {
            delivered: m.messages_delivered,
            dropped: m.messages_dropped,
            lost: m.messages_lost,
            delayed: m.messages_delayed,
            expired: m.messages_expired,
            crashes: m.churn_crashes,
            recoveries: m.churn_recoveries,
        }
    }
}

/// Emit the per-round counter deltas between two snapshots (zero deltas
/// are suppressed by the recorders, but skipping them here keeps the dyn
/// call count minimal too).
pub(crate) fn emit_metric_deltas(
    rec: &dyn Recorder,
    shard: u32,
    time: u64,
    before: MetricsSnap,
    after: MetricsSnap,
) {
    let pairs = [
        (
            Counter::MessagesDelivered,
            after.delivered - before.delivered,
        ),
        (Counter::MessagesDropped, after.dropped - before.dropped),
        (Counter::MessagesLost, after.lost - before.lost),
        (Counter::MessagesDelayed, after.delayed - before.delayed),
        (Counter::MessagesExpired, after.expired - before.expired),
        (Counter::ChurnCrashes, after.crashes - before.crashes),
        (
            Counter::ChurnRecoveries,
            after.recoveries - before.recoveries,
        ),
    ];
    for (counter, delta) in pairs {
        if delta > 0 {
            rec.add(shard, time, counter, delta);
        }
    }
}

/// Engine configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Hard cap on the number of rounds (safety net for protocols whose
    /// termination is being studied).
    pub max_rounds: u64,
    /// Stop as soon as every honest, non-crashed node has decided.
    pub stop_when_all_decided: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_rounds: 100_000,
            stop_when_all_decided: true,
        }
    }
}

/// The outcome of a run.
#[derive(Clone, Debug)]
pub struct RunResult<O> {
    /// Output decided by each node (None for crashed / undecided nodes).
    pub outputs: Vec<Option<O>>,
    /// The round in which each node decided.
    pub decided_round: Vec<Option<u64>>,
    /// Which nodes crashed.
    pub crashed: Vec<bool>,
    /// Final status of each node.
    pub statuses: Vec<NodeStatus>,
    /// Message/round accounting.
    pub metrics: RunMetrics,
    /// True when every honest node decided or crashed before `max_rounds`.
    pub completed: bool,
}

impl<O> RunResult<O> {
    /// Number of honest nodes that decided, given the Byzantine mask used
    /// for the run.
    pub fn honest_decided(&self, byzantine: &[bool]) -> usize {
        self.outputs
            .iter()
            .enumerate()
            .filter(|(i, o)| !byzantine[*i] && o.is_some())
            .count()
    }
}

/// The synchronous engine; see the module documentation.
///
/// ## Buffer-reuse invariants (the zero-allocation hot path)
///
/// Every per-round buffer is owned by the engine and *cleared, never
/// dropped* between rounds, so after warm-up a round performs no heap
/// allocation on the honest path:
///
/// * `inboxes` holds the messages consumed this round; `next_inboxes`
///   receives this round's deliveries.  The two are swapped at the round
///   boundary and the stale side is cleared with its capacity kept.
/// * `outboxes` are per-node reused [`Outbox`]es (inline below 16
///   messages, spilled capacity kept) the engine clears before each
///   `step`.
/// * `honest_arena` / `byz_default` are the round-scoped envelope arenas:
///   outbox messages are *moved* into them (the pre-refactor engine cloned
///   every envelope every round), the adversary views them by reference,
///   and delivery drains them in place.
/// * `deferred` is a [`DelayRing`] of round buckets (replacing a
///   `BTreeMap`): deferral and due-drain are O(1) and bucket capacity is
///   reused.
///
/// Reports are byte-identical to the pre-refactor engine for equal spec and
/// seed: node order, RNG streams and the fault plan's consultation order
/// are unchanged (locked down by `tests/golden_reports.rs`).
pub struct SyncEngine<'a, T, P, A>
where
    T: Topology,
    P: Protocol,
    A: Adversary<P>,
{
    topology: &'a T,
    states: Vec<P>,
    byzantine: Vec<bool>,
    adversary: A,
    config: EngineConfig,
    rngs: Vec<ChaCha8Rng>,
    adversary_rng: ChaCha8Rng,
    /// Messages to consume this round (delivered last round).
    inboxes: Vec<Vec<Envelope<P::Message>>>,
    /// Messages delivered this round, consumed next round.
    next_inboxes: Vec<Vec<Envelope<P::Message>>>,
    /// Per-node reusable outgoing buffers.
    outboxes: Vec<Outbox<P::Message>>,
    /// Per-node action of the current round.
    actions: Vec<Action<P::Output>>,
    /// Round arena for honest envelopes (moved out of outboxes, drained by
    /// delivery; capacity reused).
    honest_arena: Vec<Envelope<P::Message>>,
    /// Round buffer for the Byzantine nodes' protocol-following envelopes.
    byz_default: Vec<Envelope<P::Message>>,
    /// Scratch crash mask handed to the adversary view.
    crashed_scratch: Vec<bool>,
    statuses: Vec<NodeStatus>,
    outputs: Vec<Option<P::Output>>,
    decided_round: Vec<Option<u64>>,
    metrics: RunMetrics,
    round: u64,
    fault_plan: Option<Box<dyn FaultPlan>>,
    /// Deferred envelopes bucketed by the round in which they are delivered
    /// (i.e. pushed into an inbox for consumption one round later).
    deferred: DelayRing<Envelope<P::Message>>,
    /// Produces a pristine protocol state for node `i`; installed together
    /// with a fault plan so churned nodes can rejoin reset.
    reset_state: Option<Box<dyn Fn(usize) -> P + Send>>,
    /// Nodes whose *current* crash was injected by churn.  A `Recover`
    /// event only revives these: nodes that fail-stopped any other way
    /// (initial crashes, protocol self-crash) stay down forever.
    churned_down: Vec<bool>,
    /// Observation sink, if one is installed.  `None` costs one branch per
    /// *phase boundary* (a handful per round, never per envelope), so the
    /// zero-allocation hot path is untouched.  Recorders only observe:
    /// they can never influence an RNG stream or a delivery order.
    recorder: Option<&'a dyn Recorder>,
}

impl<'a, T, P, A> SyncEngine<'a, T, P, A>
where
    T: Topology,
    P: Protocol + Sync,
    P::Output: Send,
    A: Adversary<P>,
{
    /// Create an engine.
    ///
    /// # Panics
    /// Panics if `states.len()` or `byzantine.len()` differ from the
    /// topology size.
    pub fn new(
        topology: &'a T,
        states: Vec<P>,
        byzantine: Vec<bool>,
        adversary: A,
        config: EngineConfig,
        seed: u64,
    ) -> Self {
        let n = topology.len();
        assert_eq!(states.len(), n, "one protocol state per node required");
        assert_eq!(byzantine.len(), n, "byzantine mask must cover every node");
        let rngs = (0..n)
            .map(|i| ChaCha8Rng::seed_from_u64(splitmix(seed, i as u64)))
            .collect();
        SyncEngine {
            topology,
            states,
            byzantine,
            adversary,
            config,
            rngs,
            adversary_rng: ChaCha8Rng::seed_from_u64(splitmix(seed, u64::MAX)),
            inboxes: vec![Vec::new(); n],
            next_inboxes: vec![Vec::new(); n],
            outboxes: (0..n).map(|_| Outbox::new()).collect(),
            actions: vec![Action::Continue; n],
            honest_arena: Vec::new(),
            byz_default: Vec::new(),
            crashed_scratch: Vec::with_capacity(n),
            statuses: vec![NodeStatus::Active; n],
            outputs: vec![None; n],
            decided_round: vec![None; n],
            metrics: RunMetrics::default(),
            round: 0,
            fault_plan: None,
            deferred: DelayRing::new(),
            reset_state: None,
            churned_down: vec![false; n],
            recorder: None,
        }
    }

    /// Install an observation [`Recorder`].  Purely additive: reports are
    /// byte-identical with and without one (locked down by the
    /// observability test suite).
    pub fn with_recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// [`with_recorder`](Self::with_recorder) that is a no-op for `None`.
    pub fn with_recorder_opt(mut self, recorder: Option<&'a dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Install a [`FaultPlan`]: the network may now lose, delay and defer
    /// honest traffic and churn honest nodes.
    ///
    /// Requires `P: Clone` because churned nodes rejoin with a *fresh*
    /// protocol state: the engine snapshots the initial states here and
    /// restores a node's snapshot when the plan recovers it.
    pub fn with_fault_plan(mut self, plan: Box<dyn FaultPlan>) -> Self
    where
        P: Clone + Send + 'static,
    {
        let pristine: Vec<P> = self.states.clone();
        self.reset_state = Some(Box::new(move |i| pristine[i].clone()));
        self.fault_plan = Some(plan);
        self
    }

    /// [`with_fault_plan`](Self::with_fault_plan) that is a no-op for
    /// `None` — the shape every spec-driven runner needs.
    pub fn with_fault_plan_opt(self, plan: Option<Box<dyn FaultPlan>>) -> Self
    where
        P: Clone + Send + 'static,
    {
        match plan {
            Some(plan) => self.with_fault_plan(plan),
            None => self,
        }
    }

    /// Mark nodes as crashed before the first round (fail-stop fault
    /// injection).  Crashed nodes never step and their messages are dropped,
    /// Byzantine ones included.
    pub fn with_initial_crashes(mut self, crashed: &[bool]) -> Self {
        assert_eq!(
            crashed.len(),
            self.statuses.len(),
            "crash mask must cover every node"
        );
        for (status, &is_crashed) in self.statuses.iter_mut().zip(crashed) {
            if is_crashed {
                *status = NodeStatus::Crashed;
            }
        }
        self
    }

    /// The current round number (number of rounds fully executed).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Read access to the per-node protocol states (for instrumentation).
    pub fn states(&self) -> &[P] {
        &self.states
    }

    /// Node statuses so far.
    pub fn statuses(&self) -> &[NodeStatus] {
        &self.statuses
    }

    /// Whether the stop condition has been reached.
    pub fn finished(&self) -> bool {
        if self.round >= self.config.max_rounds {
            return true;
        }
        if self.config.stop_when_all_decided {
            let all_done = self
                .statuses
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.byzantine[*i])
                .all(|(_, s)| *s != NodeStatus::Active);
            if all_done {
                return true;
            }
        }
        false
    }

    /// Execute one round.  Returns `false` when the stop condition has been
    /// reached (the round is still executed).
    pub fn step_round(&mut self) -> bool {
        let n = self.topology.len();
        self.metrics.begin_round();
        let round = self.round;
        let rec = self.recorder;
        // The unsharded engine reports everything under shard (tid) 0.
        let shard = 0u32;
        let metrics_base = match rec {
            Some(r) => {
                r.phase_begin(shard, round, Phase::Round);
                r.phase_begin(shard, round, Phase::Churn);
                MetricsSnap::of(&self.metrics)
            }
            None => MetricsSnap::default(),
        };

        // Phase 0: churn transitions requested by the fault plan.  Only
        // honest nodes are touched; a recovered node rejoins with a fresh
        // protocol state and no memory of its previous incarnation.
        if let Some(plan) = self.fault_plan.as_mut() {
            for event in plan.begin_round(round) {
                match event {
                    ChurnEvent::Crash(v) => {
                        let i = v.index();
                        if i < n && !self.byzantine[i] && self.statuses[i] != NodeStatus::Crashed {
                            self.statuses[i] = NodeStatus::Crashed;
                            self.churned_down[i] = true;
                            self.metrics.record_churn_crash();
                        }
                    }
                    ChurnEvent::Recover(v) => {
                        let i = v.index();
                        // Only crashes the fault layer itself injected are
                        // recoverable: a node that fail-stopped any other
                        // way (initial crashes, protocol self-crash) must
                        // stay silent forever, even if a plan unknowingly
                        // names it.
                        if i < n && self.churned_down[i] && self.statuses[i] == NodeStatus::Crashed
                        {
                            if let Some(reset) = self.reset_state.as_ref() {
                                self.states[i] = reset(i);
                                self.outputs[i] = None;
                                self.decided_round[i] = None;
                                self.statuses[i] = NodeStatus::Active;
                                self.churned_down[i] = false;
                                self.inboxes[i].clear();
                                self.metrics.record_churn_recovery();
                            }
                        }
                    }
                }
            }
        }

        if let Some(r) = rec {
            r.phase_end(shard, round, Phase::Churn);
            r.phase_begin(shard, round, Phase::NodeStep);
        }

        // Phase 1: run every non-crashed node against its inbox, writing
        // into its engine-owned, reused outbox (cleared, never dropped).
        //
        // This loop is sequential by design.  The workspace's rayon shim
        // intentionally refuses to split borrowed-slice pipelines (per-node
        // work is microseconds; spawning scoped threads every round costs
        // more than it buys — see `rayon`'s module docs), so a `par_iter`
        // chain here would run sequentially *and* materialize a fresh
        // `Vec<&mut _>` per adapter per round.  Parallelism lives one level
        // up, across the runs of a batch.  Determinism is unaffected either
        // way: each node owns its RNG stream and results land in node
        // order.
        {
            let inboxes = &self.inboxes;
            let topology = self.topology;
            let statuses = &self.statuses;
            let outputs = &self.outputs;
            for (i, ((state, rng), (outbox, action))) in self
                .states
                .iter_mut()
                .zip(self.rngs.iter_mut())
                .zip(self.outboxes.iter_mut().zip(self.actions.iter_mut()))
                .enumerate()
            {
                outbox.clear();
                if statuses[i] == NodeStatus::Crashed {
                    *action = Action::Continue;
                    continue;
                }
                let id = NodeId::from_index(i);
                let ctx = NodeContext {
                    id,
                    round,
                    neighbors: topology.neighbors(id),
                    decided: outputs[i].is_some(),
                };
                *action = state.step(&ctx, &inboxes[i], outbox, rng);
            }
        }

        if let Some(r) = rec {
            r.phase_end(shard, round, Phase::NodeStep);
            r.phase_begin(shard, round, Phase::AdversaryCut);
        }

        // Phase 2: move every queued message — no clones — into the round
        // arena (honest senders, in node order) or the Byzantine-default
        // buffer, and let the adversary intervene.
        self.honest_arena.clear();
        self.byz_default.clear();
        {
            let honest_arena = &mut self.honest_arena;
            let byz_default = &mut self.byz_default;
            let byzantine = &self.byzantine;
            for (i, outbox) in self.outboxes.iter_mut().enumerate() {
                let target: &mut Vec<Envelope<P::Message>> = if byzantine[i] {
                    byz_default
                } else {
                    honest_arena
                };
                outbox.drain_envelopes(NodeId::from_index(i), |env| target.push(env));
            }
        }
        self.crashed_scratch.clear();
        self.crashed_scratch
            .extend(self.statuses.iter().map(|s| *s == NodeStatus::Crashed));
        // `FollowProtocol` messages carry engine-stamped sender ids;
        // `Replace` messages are adversary-authored and their claimed sender
        // must be validated against the Byzantine mask below.
        let decision = {
            let view = AdversaryView {
                round,
                byzantine: &self.byzantine,
                crashed: &self.crashed_scratch,
                states: &self.states,
                honest_messages: &self.honest_arena,
                byzantine_default_messages: &self.byz_default,
            };
            self.adversary.act(&view, &mut self.adversary_rng)
        };

        // Phase 3: apply actions (honest nodes only; Byzantine nodes are
        // puppets of the adversary and their "decisions" are meaningless).
        for i in 0..n {
            if self.byzantine[i] || self.statuses[i] == NodeStatus::Crashed {
                continue;
            }
            match std::mem::replace(&mut self.actions[i], Action::Continue) {
                Action::Continue => {}
                Action::Decide(output) => {
                    if self.outputs[i].is_none() {
                        self.outputs[i] = Some(output);
                        self.decided_round[i] = Some(round);
                        self.statuses[i] = NodeStatus::Decided;
                    }
                }
                Action::Crash => {
                    self.statuses[i] = NodeStatus::Crashed;
                }
            }
        }

        if let Some(r) = rec {
            r.gauge(
                shard,
                round,
                Gauge::HonestArenaHighWater,
                self.honest_arena.len() as u64,
            );
            r.gauge(
                shard,
                round,
                Gauge::ByzArenaHighWater,
                self.byz_default.len() as u64,
            );
            r.phase_end(shard, round, Phase::AdversaryCut);
            r.phase_begin(shard, round, Phase::Routing);
        }

        // Phase 4: validate, account and deliver messages for the next
        // round — honest arena first, then the Byzantine path, exactly the
        // pre-refactor order (the fault plan's RNG stream depends on it).
        let mut honest = std::mem::take(&mut self.honest_arena);
        for env in honest.drain(..) {
            self.deliver(round, env, false);
        }
        self.honest_arena = honest;
        match decision {
            AdversaryDecision::FollowProtocol => {
                let mut byz = std::mem::take(&mut self.byz_default);
                for env in byz.drain(..) {
                    self.deliver(round, env, false);
                }
                self.byz_default = byz;
            }
            AdversaryDecision::Replace(msgs) => {
                for env in msgs {
                    self.deliver(round, env, true);
                }
            }
        }

        if let Some(r) = rec {
            r.phase_end(shard, round, Phase::Routing);
            r.phase_begin(shard, round, Phase::DeferredDrain);
        }

        // Phase 5: deferred envelopes whose delay elapses this round arrive
        // now (for consumption next round, like any other delivery).  Their
        // size is accounted here — a message deferred forever is never
        // counted as delivered.
        {
            let metrics = &mut self.metrics;
            let statuses = &self.statuses;
            let next_inboxes = &mut self.next_inboxes;
            self.deferred.drain_due(round, |env| {
                if statuses[env.to.index()] == NodeStatus::Crashed {
                    metrics.record_fault_expired(1);
                } else {
                    metrics.record_delivery(env.payload.message_size());
                    next_inboxes[env.to.index()].push(env);
                }
            });
        }

        if let Some(r) = rec {
            r.phase_end(shard, round, Phase::DeferredDrain);
            r.gauge(
                shard,
                round,
                Gauge::DelayRingPending,
                self.deferred.in_flight() as u64,
            );
            emit_metric_deltas(
                r,
                shard,
                round,
                metrics_base,
                MetricsSnap::of(&self.metrics),
            );
            r.add(shard, round, Counter::Rounds, 1);
            r.phase_end(shard, round, Phase::Round);
        }

        // Round boundary: this round's deliveries become next round's
        // inboxes; the consumed side is cleared with its capacity kept.
        std::mem::swap(&mut self.inboxes, &mut self.next_inboxes);
        for inbox in &mut self.next_inboxes {
            inbox.clear();
        }

        self.round += 1;
        !self.finished()
    }

    /// Validate, account and deliver (or lose / defer) one envelope queued
    /// in `round`.
    fn deliver(&mut self, round: u64, env: Envelope<P::Message>, authored_by_adversary: bool) {
        if !envelope_admissible(
            self.topology,
            &self.statuses,
            &self.byzantine,
            &env,
            authored_by_adversary,
        ) {
            self.metrics.record_drop();
            return;
        }
        // The fault layer only touches honest traffic: Byzantine
        // envelopes (protocol-following or adversary-authored) already
        // went through the adversary path and are delivered as-is.
        let fate = match self.fault_plan.as_mut() {
            Some(plan) if !self.byzantine[env.from.index()] => {
                plan.envelope_fate(round, env.from, env.to)
            }
            _ => EnvelopeFate::Deliver,
        };
        match fate {
            // A zero-round delay is indistinguishable from plain delivery,
            // so it must account as one: delivered now, never counted as
            // delayed.  Every engine shares this reading (pinned by the
            // cross-engine `Delay(0)` regression test).
            EnvelopeFate::Deliver | EnvelopeFate::Delay(0) => {
                self.metrics.record_delivery(env.payload.message_size());
                self.next_inboxes[env.to.index()].push(env);
            }
            EnvelopeFate::Drop => self.metrics.record_fault_loss(),
            EnvelopeFate::Delay(delay) => {
                self.metrics.record_fault_delay();
                self.deferred.push(round, round + delay, env);
            }
        }
    }

    /// Run until the stop condition and return the result.
    pub fn run(mut self) -> RunResult<P::Output> {
        while !self.finished() {
            self.step_round();
        }
        self.into_result()
    }

    /// Consume the engine and produce the result without running further.
    pub fn into_result(mut self) -> RunResult<P::Output> {
        let in_flight = self.deferred.in_flight() as u64;
        if in_flight > 0 {
            self.metrics.record_fault_expired(in_flight);
            // End-of-run expiry happens outside any round span; mirror it
            // so trace-derived totals still match the final metrics.
            if let Some(r) = self.recorder {
                r.add(0, self.round, Counter::MessagesExpired, in_flight);
            }
        }
        let completed = self
            .statuses
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.byzantine[*i])
            .all(|(_, s)| *s != NodeStatus::Active);
        let crashed = self
            .statuses
            .iter()
            .map(|s| *s == NodeStatus::Crashed)
            .collect();
        RunResult {
            outputs: self.outputs,
            decided_round: self.decided_round,
            crashed,
            statuses: self.statuses,
            metrics: self.metrics,
            completed,
        }
    }
}

/// Shared envelope validation, used verbatim by both engines so the rules
/// — and in particular the `from_ok` operator-precedence hazard fixed in
/// PR 1 — live in exactly one place.
///
/// A sender must exist and must not have crashed — a crashed node stays
/// silent forever, even a Byzantine one.  Adversary-authored envelopes
/// must additionally claim a Byzantine sender (identity non-forgeability:
/// the adversary may only speak through the nodes it controls).  The
/// `(from, to)` pair must be an edge, and the recipient must be alive.
pub(crate) fn envelope_admissible<T: Topology, M>(
    topology: &T,
    statuses: &[NodeStatus],
    byzantine: &[bool],
    env: &Envelope<M>,
    authored_by_adversary: bool,
) -> bool {
    let n = topology.len();
    let from_ok = env.from.index() < n
        && statuses[env.from.index()] != NodeStatus::Crashed
        && (!authored_by_adversary || byzantine[env.from.index()]);
    let edge_ok = env.to.index() < n && topology.can_send(env.from, env.to);
    let to_ok = env.to.index() < n && statuses[env.to.index()] != NodeStatus::Crashed;
    from_ok && edge_ok && to_ok
}

/// SplitMix64-style seed derivation so per-node RNG streams are independent.
/// Shared with the sharded engine: both derive node `i`'s stream the same
/// way, which is what makes their runs comparable seed-for-seed.
pub(crate) fn splitmix(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::NullAdversary;
    use crate::message::SizedMessage;
    use netsim_graph::Csr;
    use rand::Rng;

    /// Message carrying a single value; one ID's worth of payload.
    #[derive(Clone, Debug, PartialEq)]
    struct Val(u64);
    impl MessageSize for Val {
        fn message_size(&self) -> SizedMessage {
            SizedMessage::new(0, 64)
        }
    }

    /// Max-flooding: every node starts with a random value and repeatedly
    /// forwards the maximum it has seen; decides after `ttl` rounds.
    #[derive(Clone)]
    struct MaxFlood {
        value: u64,
        best: u64,
        ttl: u64,
        started: bool,
    }

    impl Protocol for MaxFlood {
        type Message = Val;
        type Output = u64;
        fn step(
            &mut self,
            ctx: &NodeContext<'_>,
            inbox: &[Envelope<Val>],
            outbox: &mut Outbox<Val>,
            rng: &mut ChaCha8Rng,
        ) -> Action<u64> {
            if !self.started {
                self.started = true;
                if self.value == 0 {
                    self.value = rng.gen::<u64>() | 1;
                }
                self.best = self.value;
                outbox.broadcast(ctx.neighbors.iter(), Val(self.best));
                return Action::Continue;
            }
            let mut improved = false;
            for env in inbox {
                if env.payload.0 > self.best {
                    self.best = env.payload.0;
                    improved = true;
                }
            }
            if improved {
                outbox.broadcast(ctx.neighbors.iter(), Val(self.best));
            }
            if ctx.round >= self.ttl {
                Action::Decide(self.best)
            } else {
                Action::Continue
            }
        }
    }

    fn line_graph(n: usize) -> Csr {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Csr::from_undirected_edges(n, &edges).unwrap()
    }

    fn flood_states(n: usize, ttl: u64) -> Vec<MaxFlood> {
        (0..n)
            .map(|_| MaxFlood {
                value: 0,
                best: 0,
                ttl,
                started: false,
            })
            .collect()
    }

    #[test]
    fn max_flood_converges_on_a_line() {
        let n = 16;
        let g = line_graph(n);
        let engine = SyncEngine::new(
            &g,
            flood_states(n, 2 * n as u64),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            42,
        );
        let result = engine.run();
        assert!(result.completed);
        let first = result.outputs[0].unwrap();
        assert!(result.outputs.iter().all(|o| *o == Some(first)));
        assert!(result.metrics.rounds <= 2 * n as u64 + 1);
        assert!(result.metrics.messages_delivered > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let n = 12;
        let g = line_graph(n);
        let run = |seed| {
            SyncEngine::new(
                &g,
                flood_states(n, 40),
                vec![false; n],
                NullAdversary,
                EngineConfig::default(),
                seed,
            )
            .run()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics, b.metrics);
        assert_ne!(
            a.outputs, c.outputs,
            "different seeds should give different values"
        );
    }

    #[test]
    fn max_rounds_caps_execution() {
        let n = 8;
        let g = line_graph(n);
        let cfg = EngineConfig {
            max_rounds: 3,
            stop_when_all_decided: true,
        };
        let result = SyncEngine::new(
            &g,
            flood_states(n, 1000),
            vec![false; n],
            NullAdversary,
            cfg,
            1,
        )
        .run();
        assert!(!result.completed);
        assert_eq!(result.metrics.rounds, 3);
    }

    /// An adversary that makes Byzantine nodes shout a huge value.
    struct Shouter;
    impl Adversary<MaxFlood> for Shouter {
        fn act(
            &mut self,
            view: &AdversaryView<'_, MaxFlood>,
            _rng: &mut ChaCha8Rng,
        ) -> AdversaryDecision<Val> {
            let mut msgs = Vec::new();
            for (i, &b) in view.byzantine.iter().enumerate() {
                if b {
                    // Send the maximum possible value to node 0 (a neighbour
                    // in the line graph only if i == 1).
                    msgs.push(Envelope::new(
                        NodeId::from_index(i),
                        NodeId(0),
                        Val(u64::MAX),
                    ));
                    // Also an illegal long-range message that must be dropped.
                    msgs.push(Envelope::new(
                        NodeId::from_index(i),
                        NodeId(5),
                        Val(u64::MAX),
                    ));
                }
            }
            AdversaryDecision::Replace(msgs)
        }
    }

    #[test]
    fn adversary_messages_respect_topology() {
        let n = 8;
        let g = line_graph(n);
        let mut byz = vec![false; n];
        byz[1] = true;
        let result = SyncEngine::new(
            &g,
            flood_states(n, 20),
            byz.clone(),
            Shouter,
            EngineConfig::default(),
            3,
        )
        .run();
        // Node 0 is adjacent to the Byzantine node 1, so the huge value
        // poisons it (this is exactly why the naive protocol fails).
        assert_eq!(result.outputs[0], Some(u64::MAX));
        // Node 5 is NOT adjacent to node 1; the illegal direct message was
        // dropped every round.
        assert!(result.metrics.messages_dropped > 0);
        assert!(result.honest_decided(&byz) == n - 1);
    }

    #[test]
    fn crashed_byzantine_sender_messages_are_dropped() {
        // Regression test for the `from_ok` operator-precedence hazard: the
        // old `a && b || (a && c)` validation let messages whose claimed
        // sender was a *crashed* Byzantine node through.  A crashed node must
        // stay silent forever, no matter who authors envelopes in its name.
        let n = 8;
        let g = line_graph(n);
        let mut byz = vec![false; n];
        byz[1] = true;
        let mut crashed = vec![false; n];
        crashed[1] = true; // the Byzantine node fail-stops before round 0
        let engine = SyncEngine::new(
            &g,
            flood_states(n, 20),
            byz.clone(),
            Shouter, // keeps authoring envelopes claiming node 1 as sender
            EngineConfig::default(),
            3,
        )
        .with_initial_crashes(&crashed);
        let result = engine.run();
        // Node 0 must NOT be poisoned by u64::MAX from its crashed neighbour.
        assert_ne!(result.outputs[0], Some(u64::MAX));
        assert!(result.metrics.messages_dropped > 0);
    }

    #[test]
    fn adversary_cannot_forge_honest_sender_ids() {
        // Identity non-forgeability: adversary-authored envelopes claiming an
        // honest sender are dropped even when the edge exists.
        struct ForgeHonest;
        impl Adversary<MaxFlood> for ForgeHonest {
            fn act(
                &mut self,
                _view: &AdversaryView<'_, MaxFlood>,
                _rng: &mut ChaCha8Rng,
            ) -> AdversaryDecision<Val> {
                // Claim honest node 1 (a neighbour of node 0) as the sender.
                AdversaryDecision::Replace(vec![Envelope::new(NodeId(1), NodeId(0), Val(u64::MAX))])
            }
        }
        let n = 8;
        let g = line_graph(n);
        let mut byz = vec![false; n];
        byz[4] = true; // the adversary controls node 4, not node 1
        let result = SyncEngine::new(
            &g,
            flood_states(n, 20),
            byz,
            ForgeHonest,
            EngineConfig::default(),
            5,
        )
        .run();
        assert_ne!(
            result.outputs[0],
            Some(u64::MAX),
            "forged envelope must be dropped"
        );
        assert!(result.metrics.messages_dropped > 0);
    }

    /// Protocol that crashes immediately; used to test crash bookkeeping.
    #[derive(Clone)]
    struct CrashImmediately;
    impl Protocol for CrashImmediately {
        type Message = ();
        type Output = ();
        fn step(
            &mut self,
            _ctx: &NodeContext<'_>,
            _inbox: &[Envelope<()>],
            _outbox: &mut Outbox<()>,
            _rng: &mut ChaCha8Rng,
        ) -> Action<()> {
            Action::Crash
        }
    }

    #[test]
    fn total_loss_silences_honest_traffic_and_its_accounting() {
        // Regression test for the fault-layer accounting contract: an
        // envelope destroyed by the plan must never count toward the
        // delivered-message or byte (IDs/bits) metrics.
        use netsim_faults::IidLoss;
        let n = 8;
        let g = line_graph(n);
        let result = SyncEngine::new(
            &g,
            flood_states(n, 10),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            11,
        )
        .with_fault_plan(Box::new(IidLoss::new(1.0, 5)))
        .run();
        assert_eq!(result.metrics.messages_delivered, 0);
        assert_eq!(result.metrics.total_ids, 0);
        assert_eq!(result.metrics.total_bits, 0);
        assert!(result.metrics.messages_lost > 0);
        // Every node still decides — on its own value, having heard nobody.
        assert!(result.completed);
        let distinct: std::collections::HashSet<_> =
            result.outputs.iter().map(|o| o.unwrap()).collect();
        assert_eq!(distinct.len(), n, "no value ever propagated");
    }

    #[test]
    fn byzantine_envelopes_bypass_the_fault_layer() {
        // Total loss for honest traffic, yet the adversary's envelopes go
        // through the adversary path untouched: node 0 is still poisoned by
        // its Byzantine neighbour.
        use netsim_faults::IidLoss;
        let n = 8;
        let g = line_graph(n);
        let mut byz = vec![false; n];
        byz[1] = true;
        let result = SyncEngine::new(
            &g,
            flood_states(n, 20),
            byz,
            Shouter,
            EngineConfig::default(),
            3,
        )
        .with_fault_plan(Box::new(IidLoss::new(1.0, 5)))
        .run();
        assert_eq!(
            result.outputs[0],
            Some(u64::MAX),
            "Byzantine traffic must not be lost"
        );
        assert!(result.metrics.messages_lost > 0, "honest traffic was");
        assert!(
            result.metrics.messages_delivered > 0,
            "the Byzantine deliveries are the only ones counted"
        );
    }

    #[test]
    fn delayed_messages_arrive_late_and_are_counted_once() {
        use netsim_faults::RandomDelay;
        let n = 12;
        let g = line_graph(n);
        let run = |plan: Option<Box<dyn FaultPlan>>| {
            let engine = SyncEngine::new(
                &g,
                flood_states(n, 6 * n as u64),
                vec![false; n],
                NullAdversary,
                EngineConfig::default(),
                21,
            );
            match plan {
                Some(p) => engine.with_fault_plan(p).run(),
                None => engine.run(),
            }
        };
        let clean = run(None);
        let delayed = run(Some(Box::new(RandomDelay::new(3, 1.0, 9))));
        assert!(delayed.completed);
        assert_eq!(
            delayed.outputs[0], clean.outputs[0],
            "delay reorders nothing on a flood of maxima; the value still wins"
        );
        assert!(delayed.metrics.messages_delayed > 0);
        // Conservation: every queued honest envelope is delivered, lost,
        // expired, or was rejected by validation — delivered ones exactly
        // once.
        assert_eq!(
            delayed.metrics.messages_delayed,
            delayed.metrics.messages_delivered + delayed.metrics.messages_expired,
            "all traffic was delayed here, so delivered + expired must add up"
        );
    }

    #[test]
    fn deferred_messages_to_a_crashed_recipient_expire_on_arrival() {
        // Regression test for the second expiry path: an envelope deferred
        // to a node that crashes while it is in flight must be counted as
        // expired in its due round — never as delivered.
        use netsim_faults::{ChurnEvent, EnvelopeFate, FaultPlan};
        struct DelayThenCrash;
        impl FaultPlan for DelayThenCrash {
            fn begin_round(&mut self, round: u64) -> Vec<ChurnEvent> {
                // Crash node 1 after round 0's messages (to it) were
                // deferred to round 2.
                if round == 1 {
                    vec![ChurnEvent::Crash(NodeId(1))]
                } else {
                    Vec::new()
                }
            }
            fn envelope_fate(&mut self, round: u64, _from: NodeId, to: NodeId) -> EnvelopeFate {
                if round == 0 && to == NodeId(1) {
                    EnvelopeFate::Delay(2)
                } else {
                    EnvelopeFate::Deliver
                }
            }
        }
        let n = 4;
        let g = line_graph(n);
        let result = SyncEngine::new(
            &g,
            flood_states(n, 12),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            6,
        )
        .with_fault_plan(Box::new(DelayThenCrash))
        .run();
        assert!(result.crashed[1]);
        assert!(
            result.metrics.messages_expired > 0,
            "in-flight envelopes to the crashed node must expire"
        );
        assert_eq!(
            result.metrics.messages_delayed, result.metrics.messages_expired,
            "every deferred envelope was addressed to the crashed node"
        );
    }

    #[test]
    fn deferred_messages_still_in_flight_expire_at_the_cap() {
        use netsim_faults::RandomDelay;
        let n = 8;
        let g = line_graph(n);
        let cfg = EngineConfig {
            max_rounds: 3,
            stop_when_all_decided: true,
        };
        let result = SyncEngine::new(
            &g,
            flood_states(n, 1000),
            vec![false; n],
            NullAdversary,
            cfg,
            2,
        )
        .with_fault_plan(Box::new(RandomDelay::new(50, 1.0, 4)))
        .run();
        assert!(result.metrics.messages_expired > 0, "in-flight at the cap");
        assert_eq!(
            result.metrics.messages_delayed,
            result.metrics.messages_delivered + result.metrics.messages_expired
        );
    }

    #[test]
    fn churned_nodes_rejoin_with_reset_state() {
        use netsim_faults::{ChurnEvent, FaultPlan};
        // A scripted plan: crash node 2 at round 1, recover it at round 4.
        struct Script;
        impl FaultPlan for Script {
            fn begin_round(&mut self, round: u64) -> Vec<ChurnEvent> {
                match round {
                    1 => vec![ChurnEvent::Crash(NodeId(2))],
                    4 => vec![ChurnEvent::Recover(NodeId(2))],
                    _ => Vec::new(),
                }
            }
        }
        let n = 8;
        let g = line_graph(n);
        let result = SyncEngine::new(
            &g,
            flood_states(n, 3 * n as u64),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            17,
        )
        .with_fault_plan(Box::new(Script))
        .run();
        assert_eq!(result.metrics.churn_crashes, 1);
        assert_eq!(result.metrics.churn_recoveries, 1);
        assert!(!result.crashed[2], "node 2 rejoined");
        assert!(result.completed);
        // The reset node restarted the protocol from scratch and decided
        // again in its second life.
        assert!(result.outputs[2].is_some());
        assert!(result.decided_round[2].unwrap() >= 4, "decided post-rejoin");
    }

    #[test]
    fn churn_never_touches_byzantine_nodes() {
        use netsim_faults::NodeChurn;
        let n = 8;
        let g = line_graph(n);
        let mut byz = vec![false; n];
        byz[1] = true;
        let honest: Vec<bool> = byz.iter().map(|b| !b).collect();
        // Churn everyone eligible, every round — and also hand the plan a
        // mask that (wrongly) marks the Byzantine node eligible, to check
        // the engine-side guard.
        let all = vec![true; n];
        let _ = honest;
        let result = SyncEngine::new(
            &g,
            flood_states(n, 10),
            byz.clone(),
            Shouter,
            EngineConfig {
                max_rounds: 6,
                stop_when_all_decided: true,
            },
            3,
        )
        .with_fault_plan(Box::new(NodeChurn::new(1.0, 2, &all, 8)))
        .run();
        assert!(
            !result.crashed[1],
            "the engine must refuse churn events on Byzantine nodes"
        );
        assert!(result.metrics.churn_crashes > 0);
    }

    #[test]
    fn churn_cannot_resurrect_nodes_that_crashed_for_other_reasons() {
        use netsim_faults::{ChurnEvent, FaultPlan};
        // A plan that (wrongly) claims node 3 as its own: crash at round 1
        // (ignored — node 3 is already down), recover at round 3.
        struct Script;
        impl FaultPlan for Script {
            fn begin_round(&mut self, round: u64) -> Vec<ChurnEvent> {
                match round {
                    1 => vec![ChurnEvent::Crash(NodeId(3))],
                    3 => vec![ChurnEvent::Recover(NodeId(3))],
                    _ => Vec::new(),
                }
            }
        }
        let n = 8;
        let g = line_graph(n);
        let mut crashed = vec![false; n];
        crashed[3] = true; // fail-stopped before round 0, NOT by churn
        let result = SyncEngine::new(
            &g,
            flood_states(n, 20),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            13,
        )
        .with_fault_plan(Box::new(Script))
        .with_initial_crashes(&crashed)
        .run();
        assert!(result.crashed[3], "a fail-stopped node stays down forever");
        assert_eq!(result.outputs[3], None);
        assert_eq!(result.metrics.churn_crashes, 0, "no transition happened");
        assert_eq!(result.metrics.churn_recoveries, 0);
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        use netsim_faults::FaultSpec;
        let n = 16;
        let g = line_graph(n);
        let spec = FaultSpec::Compose(vec![
            FaultSpec::Loss { rate: 0.2 },
            FaultSpec::Delay {
                max_delay: 2,
                rate: 0.3,
            },
            FaultSpec::Churn {
                rate: 0.05,
                downtime: 3,
            },
            FaultSpec::Partition {
                start: 2,
                duration: 4,
            },
        ]);
        let run = |seed: u64| {
            let plan = spec
                .build_plan(n, &vec![true; n], seed ^ 0xFA17)
                .expect("plan");
            SyncEngine::new(
                &g,
                flood_states(n, 60),
                vec![false; n],
                NullAdversary,
                EngineConfig::default(),
                seed,
            )
            .with_fault_plan(plan)
            .run()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics, b.metrics);
        assert_ne!(
            (a.outputs, a.metrics),
            (c.outputs, c.metrics),
            "a different seed must change the faulty run"
        );
    }

    #[test]
    fn crashed_nodes_stop_participating() {
        let n = 4;
        let g = line_graph(n);
        let cfg = EngineConfig {
            max_rounds: 5,
            stop_when_all_decided: true,
        };
        let result = SyncEngine::new(
            &g,
            vec![CrashImmediately; n],
            vec![false; n],
            NullAdversary,
            cfg,
            0,
        )
        .run();
        assert!(result.crashed.iter().all(|&c| c));
        assert!(
            result.completed,
            "all honest nodes crashed counts as completed"
        );
        assert_eq!(result.metrics.rounds, 1);
        assert!(result.outputs.iter().all(|o| o.is_none()));
    }
}
