//! The synchronous round engine.
//!
//! One [`SyncEngine`] instance drives one protocol execution over a fixed
//! topology.  Rounds are processed in lock-step:
//!
//! 1. every non-crashed node consumes the messages addressed to it in the
//!    previous round and queues its outgoing messages (all nodes run in
//!    parallel; determinism is preserved because every node has its own RNG
//!    stream and results are collected in node order);
//! 2. the full-information adversary inspects every state and every queued
//!    message and may replace the Byzantine nodes' outboxes;
//! 3. messages are validated against the topology (no edge → dropped),
//!    accounted, and delivered into the next round's inboxes.
//!
//! The engine stops when every honest node has decided (or crashed), or when
//! `max_rounds` is reached.

use crate::adversary::{Adversary, AdversaryDecision, AdversaryView};
use crate::message::{Envelope, MessageSize};
use crate::metrics::RunMetrics;
use crate::node::{Action, NodeContext, NodeStatus, Outbox, Protocol};
use crate::topology::Topology;
use netsim_graph::NodeId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Engine configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Hard cap on the number of rounds (safety net for protocols whose
    /// termination is being studied).
    pub max_rounds: u64,
    /// Stop as soon as every honest, non-crashed node has decided.
    pub stop_when_all_decided: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_rounds: 100_000,
            stop_when_all_decided: true,
        }
    }
}

/// The outcome of a run.
#[derive(Clone, Debug)]
pub struct RunResult<O> {
    /// Output decided by each node (None for crashed / undecided nodes).
    pub outputs: Vec<Option<O>>,
    /// The round in which each node decided.
    pub decided_round: Vec<Option<u64>>,
    /// Which nodes crashed.
    pub crashed: Vec<bool>,
    /// Final status of each node.
    pub statuses: Vec<NodeStatus>,
    /// Message/round accounting.
    pub metrics: RunMetrics,
    /// True when every honest node decided or crashed before `max_rounds`.
    pub completed: bool,
}

impl<O> RunResult<O> {
    /// Number of honest nodes that decided, given the Byzantine mask used
    /// for the run.
    pub fn honest_decided(&self, byzantine: &[bool]) -> usize {
        self.outputs
            .iter()
            .enumerate()
            .filter(|(i, o)| !byzantine[*i] && o.is_some())
            .count()
    }
}

/// Per-node result of one protocol step: queued envelopes plus the action.
type StepResult<P> = (
    Vec<Envelope<<P as Protocol>::Message>>,
    Action<<P as Protocol>::Output>,
);

/// The synchronous engine; see the module documentation.
pub struct SyncEngine<'a, T, P, A>
where
    T: Topology,
    P: Protocol,
    A: Adversary<P>,
{
    topology: &'a T,
    states: Vec<P>,
    byzantine: Vec<bool>,
    adversary: A,
    config: EngineConfig,
    rngs: Vec<ChaCha8Rng>,
    adversary_rng: ChaCha8Rng,
    inboxes: Vec<Vec<Envelope<P::Message>>>,
    statuses: Vec<NodeStatus>,
    outputs: Vec<Option<P::Output>>,
    decided_round: Vec<Option<u64>>,
    metrics: RunMetrics,
    round: u64,
}

impl<'a, T, P, A> SyncEngine<'a, T, P, A>
where
    T: Topology,
    P: Protocol + Sync,
    P::Output: Send,
    A: Adversary<P>,
{
    /// Create an engine.
    ///
    /// # Panics
    /// Panics if `states.len()` or `byzantine.len()` differ from the
    /// topology size.
    pub fn new(
        topology: &'a T,
        states: Vec<P>,
        byzantine: Vec<bool>,
        adversary: A,
        config: EngineConfig,
        seed: u64,
    ) -> Self {
        let n = topology.len();
        assert_eq!(states.len(), n, "one protocol state per node required");
        assert_eq!(byzantine.len(), n, "byzantine mask must cover every node");
        let rngs = (0..n)
            .map(|i| ChaCha8Rng::seed_from_u64(splitmix(seed, i as u64)))
            .collect();
        SyncEngine {
            topology,
            states,
            byzantine,
            adversary,
            config,
            rngs,
            adversary_rng: ChaCha8Rng::seed_from_u64(splitmix(seed, u64::MAX)),
            inboxes: vec![Vec::new(); n],
            statuses: vec![NodeStatus::Active; n],
            outputs: vec![None; n],
            decided_round: vec![None; n],
            metrics: RunMetrics::default(),
            round: 0,
        }
    }

    /// Mark nodes as crashed before the first round (fail-stop fault
    /// injection).  Crashed nodes never step and their messages are dropped,
    /// Byzantine ones included.
    pub fn with_initial_crashes(mut self, crashed: &[bool]) -> Self {
        assert_eq!(
            crashed.len(),
            self.statuses.len(),
            "crash mask must cover every node"
        );
        for (status, &is_crashed) in self.statuses.iter_mut().zip(crashed) {
            if is_crashed {
                *status = NodeStatus::Crashed;
            }
        }
        self
    }

    /// The current round number (number of rounds fully executed).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Read access to the per-node protocol states (for instrumentation).
    pub fn states(&self) -> &[P] {
        &self.states
    }

    /// Node statuses so far.
    pub fn statuses(&self) -> &[NodeStatus] {
        &self.statuses
    }

    /// Whether the stop condition has been reached.
    pub fn finished(&self) -> bool {
        if self.round >= self.config.max_rounds {
            return true;
        }
        if self.config.stop_when_all_decided {
            let all_done = self
                .statuses
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.byzantine[*i])
                .all(|(_, s)| *s != NodeStatus::Active);
            if all_done {
                return true;
            }
        }
        false
    }

    /// Execute one round.  Returns `false` when the stop condition has been
    /// reached (the round is still executed).
    pub fn step_round(&mut self) -> bool {
        let n = self.topology.len();
        self.metrics.begin_round();
        let round = self.round;

        // Phase 1: run every non-crashed node against its inbox.
        let inboxes = std::mem::replace(&mut self.inboxes, vec![Vec::new(); n]);
        let topology = self.topology;
        let statuses = &self.statuses;
        let outputs = &self.outputs;
        let step_results: Vec<StepResult<P>> = self
            .states
            .par_iter_mut()
            .zip(self.rngs.par_iter_mut())
            .enumerate()
            .map(|(i, (state, rng))| {
                if statuses[i] == NodeStatus::Crashed {
                    return (Vec::new(), Action::Continue);
                }
                let id = NodeId::from_index(i);
                let ctx = NodeContext {
                    id,
                    round,
                    neighbors: topology.neighbors(id),
                    decided: outputs[i].is_some(),
                };
                let mut outbox = Outbox::new();
                let action = state.step(&ctx, &inboxes[i], &mut outbox, rng);
                (outbox.into_envelopes(id), action)
            })
            .collect();

        // Phase 2: split messages into honest vs Byzantine-default and let
        // the adversary intervene.
        let mut honest_messages: Vec<Envelope<P::Message>> = Vec::new();
        let mut byz_default: Vec<Envelope<P::Message>> = Vec::new();
        for (i, (msgs, _)) in step_results.iter().enumerate() {
            if self.byzantine[i] {
                byz_default.extend(msgs.iter().cloned());
            } else {
                honest_messages.extend(msgs.iter().cloned());
            }
        }
        let crashed_mask: Vec<bool> = self
            .statuses
            .iter()
            .map(|s| *s == NodeStatus::Crashed)
            .collect();
        let decision = {
            let view = AdversaryView {
                round,
                byzantine: &self.byzantine,
                crashed: &crashed_mask,
                states: &self.states,
                honest_messages: &honest_messages,
                byzantine_default_messages: &byz_default,
            };
            self.adversary.act(&view, &mut self.adversary_rng)
        };
        // `FollowProtocol` messages carry engine-stamped sender ids;
        // `Replace` messages are adversary-authored and their claimed sender
        // must be validated against the Byzantine mask below.
        let (byz_messages, adversary_authored) = match decision {
            AdversaryDecision::FollowProtocol => (byz_default, false),
            AdversaryDecision::Replace(msgs) => (msgs, true),
        };

        // Phase 3: apply actions (honest nodes only; Byzantine nodes are
        // puppets of the adversary and their "decisions" are meaningless).
        for (i, (_, action)) in step_results.iter().enumerate() {
            if self.byzantine[i] || self.statuses[i] == NodeStatus::Crashed {
                continue;
            }
            match action {
                Action::Continue => {}
                Action::Decide(o) => {
                    if self.outputs[i].is_none() {
                        self.outputs[i] = Some(o.clone());
                        self.decided_round[i] = Some(round);
                        self.statuses[i] = NodeStatus::Decided;
                    }
                }
                Action::Crash => {
                    self.statuses[i] = NodeStatus::Crashed;
                }
            }
        }

        // Phase 4: validate, account and deliver messages for the next round.
        let tagged = honest_messages
            .into_iter()
            .zip(std::iter::repeat(false))
            .chain(
                byz_messages
                    .into_iter()
                    .zip(std::iter::repeat(adversary_authored)),
            );
        for (env, authored_by_adversary) in tagged {
            // A sender must exist and must not have crashed — a crashed node
            // stays silent forever, even a Byzantine one.  Adversary-authored
            // envelopes must additionally claim a Byzantine sender (identity
            // non-forgeability: the adversary may only speak through the
            // nodes it controls).
            let from_ok = env.from.index() < n
                && self.statuses[env.from.index()] != NodeStatus::Crashed
                && (!authored_by_adversary || self.byzantine[env.from.index()]);
            let edge_ok = env.to.index() < n && self.topology.can_send(env.from, env.to);
            let to_ok = env.to.index() < n && self.statuses[env.to.index()] != NodeStatus::Crashed;
            if from_ok && edge_ok && to_ok {
                self.metrics.record_delivery(env.payload.message_size());
                self.inboxes[env.to.index()].push(env);
            } else {
                self.metrics.record_drop();
            }
        }

        self.round += 1;
        !self.finished()
    }

    /// Run until the stop condition and return the result.
    pub fn run(mut self) -> RunResult<P::Output> {
        while !self.finished() {
            self.step_round();
        }
        self.into_result()
    }

    /// Consume the engine and produce the result without running further.
    pub fn into_result(self) -> RunResult<P::Output> {
        let completed = self
            .statuses
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.byzantine[*i])
            .all(|(_, s)| *s != NodeStatus::Active);
        let crashed = self
            .statuses
            .iter()
            .map(|s| *s == NodeStatus::Crashed)
            .collect();
        RunResult {
            outputs: self.outputs,
            decided_round: self.decided_round,
            crashed,
            statuses: self.statuses,
            metrics: self.metrics,
            completed,
        }
    }
}

/// SplitMix64-style seed derivation so per-node RNG streams are independent.
fn splitmix(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::NullAdversary;
    use crate::message::SizedMessage;
    use netsim_graph::Csr;
    use rand::Rng;

    /// Message carrying a single value; one ID's worth of payload.
    #[derive(Clone, Debug, PartialEq)]
    struct Val(u64);
    impl MessageSize for Val {
        fn message_size(&self) -> SizedMessage {
            SizedMessage::new(0, 64)
        }
    }

    /// Max-flooding: every node starts with a random value and repeatedly
    /// forwards the maximum it has seen; decides after `ttl` rounds.
    #[derive(Clone)]
    struct MaxFlood {
        value: u64,
        best: u64,
        ttl: u64,
        started: bool,
    }

    impl Protocol for MaxFlood {
        type Message = Val;
        type Output = u64;
        fn step(
            &mut self,
            ctx: &NodeContext<'_>,
            inbox: &[Envelope<Val>],
            outbox: &mut Outbox<Val>,
            rng: &mut ChaCha8Rng,
        ) -> Action<u64> {
            if !self.started {
                self.started = true;
                if self.value == 0 {
                    self.value = rng.gen::<u64>() | 1;
                }
                self.best = self.value;
                outbox.broadcast(ctx.neighbors.iter(), Val(self.best));
                return Action::Continue;
            }
            let mut improved = false;
            for env in inbox {
                if env.payload.0 > self.best {
                    self.best = env.payload.0;
                    improved = true;
                }
            }
            if improved {
                outbox.broadcast(ctx.neighbors.iter(), Val(self.best));
            }
            if ctx.round >= self.ttl {
                Action::Decide(self.best)
            } else {
                Action::Continue
            }
        }
    }

    fn line_graph(n: usize) -> Csr {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Csr::from_undirected_edges(n, &edges).unwrap()
    }

    fn flood_states(n: usize, ttl: u64) -> Vec<MaxFlood> {
        (0..n)
            .map(|_| MaxFlood {
                value: 0,
                best: 0,
                ttl,
                started: false,
            })
            .collect()
    }

    #[test]
    fn max_flood_converges_on_a_line() {
        let n = 16;
        let g = line_graph(n);
        let engine = SyncEngine::new(
            &g,
            flood_states(n, 2 * n as u64),
            vec![false; n],
            NullAdversary,
            EngineConfig::default(),
            42,
        );
        let result = engine.run();
        assert!(result.completed);
        let first = result.outputs[0].unwrap();
        assert!(result.outputs.iter().all(|o| *o == Some(first)));
        assert!(result.metrics.rounds <= 2 * n as u64 + 1);
        assert!(result.metrics.messages_delivered > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let n = 12;
        let g = line_graph(n);
        let run = |seed| {
            SyncEngine::new(
                &g,
                flood_states(n, 40),
                vec![false; n],
                NullAdversary,
                EngineConfig::default(),
                seed,
            )
            .run()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics, b.metrics);
        assert_ne!(
            a.outputs, c.outputs,
            "different seeds should give different values"
        );
    }

    #[test]
    fn max_rounds_caps_execution() {
        let n = 8;
        let g = line_graph(n);
        let cfg = EngineConfig {
            max_rounds: 3,
            stop_when_all_decided: true,
        };
        let result = SyncEngine::new(
            &g,
            flood_states(n, 1000),
            vec![false; n],
            NullAdversary,
            cfg,
            1,
        )
        .run();
        assert!(!result.completed);
        assert_eq!(result.metrics.rounds, 3);
    }

    /// An adversary that makes Byzantine nodes shout a huge value.
    struct Shouter;
    impl Adversary<MaxFlood> for Shouter {
        fn act(
            &mut self,
            view: &AdversaryView<'_, MaxFlood>,
            _rng: &mut ChaCha8Rng,
        ) -> AdversaryDecision<Val> {
            let mut msgs = Vec::new();
            for (i, &b) in view.byzantine.iter().enumerate() {
                if b {
                    // Send the maximum possible value to node 0 (a neighbour
                    // in the line graph only if i == 1).
                    msgs.push(Envelope::new(
                        NodeId::from_index(i),
                        NodeId(0),
                        Val(u64::MAX),
                    ));
                    // Also an illegal long-range message that must be dropped.
                    msgs.push(Envelope::new(
                        NodeId::from_index(i),
                        NodeId(5),
                        Val(u64::MAX),
                    ));
                }
            }
            AdversaryDecision::Replace(msgs)
        }
    }

    #[test]
    fn adversary_messages_respect_topology() {
        let n = 8;
        let g = line_graph(n);
        let mut byz = vec![false; n];
        byz[1] = true;
        let result = SyncEngine::new(
            &g,
            flood_states(n, 20),
            byz.clone(),
            Shouter,
            EngineConfig::default(),
            3,
        )
        .run();
        // Node 0 is adjacent to the Byzantine node 1, so the huge value
        // poisons it (this is exactly why the naive protocol fails).
        assert_eq!(result.outputs[0], Some(u64::MAX));
        // Node 5 is NOT adjacent to node 1; the illegal direct message was
        // dropped every round.
        assert!(result.metrics.messages_dropped > 0);
        assert!(result.honest_decided(&byz) == n - 1);
    }

    #[test]
    fn crashed_byzantine_sender_messages_are_dropped() {
        // Regression test for the `from_ok` operator-precedence hazard: the
        // old `a && b || (a && c)` validation let messages whose claimed
        // sender was a *crashed* Byzantine node through.  A crashed node must
        // stay silent forever, no matter who authors envelopes in its name.
        let n = 8;
        let g = line_graph(n);
        let mut byz = vec![false; n];
        byz[1] = true;
        let mut crashed = vec![false; n];
        crashed[1] = true; // the Byzantine node fail-stops before round 0
        let engine = SyncEngine::new(
            &g,
            flood_states(n, 20),
            byz.clone(),
            Shouter, // keeps authoring envelopes claiming node 1 as sender
            EngineConfig::default(),
            3,
        )
        .with_initial_crashes(&crashed);
        let result = engine.run();
        // Node 0 must NOT be poisoned by u64::MAX from its crashed neighbour.
        assert_ne!(result.outputs[0], Some(u64::MAX));
        assert!(result.metrics.messages_dropped > 0);
    }

    #[test]
    fn adversary_cannot_forge_honest_sender_ids() {
        // Identity non-forgeability: adversary-authored envelopes claiming an
        // honest sender are dropped even when the edge exists.
        struct ForgeHonest;
        impl Adversary<MaxFlood> for ForgeHonest {
            fn act(
                &mut self,
                _view: &AdversaryView<'_, MaxFlood>,
                _rng: &mut ChaCha8Rng,
            ) -> AdversaryDecision<Val> {
                // Claim honest node 1 (a neighbour of node 0) as the sender.
                AdversaryDecision::Replace(vec![Envelope::new(NodeId(1), NodeId(0), Val(u64::MAX))])
            }
        }
        let n = 8;
        let g = line_graph(n);
        let mut byz = vec![false; n];
        byz[4] = true; // the adversary controls node 4, not node 1
        let result = SyncEngine::new(
            &g,
            flood_states(n, 20),
            byz,
            ForgeHonest,
            EngineConfig::default(),
            5,
        )
        .run();
        assert_ne!(
            result.outputs[0],
            Some(u64::MAX),
            "forged envelope must be dropped"
        );
        assert!(result.metrics.messages_dropped > 0);
    }

    /// Protocol that crashes immediately; used to test crash bookkeeping.
    #[derive(Clone)]
    struct CrashImmediately;
    impl Protocol for CrashImmediately {
        type Message = ();
        type Output = ();
        fn step(
            &mut self,
            _ctx: &NodeContext<'_>,
            _inbox: &[Envelope<()>],
            _outbox: &mut Outbox<()>,
            _rng: &mut ChaCha8Rng,
        ) -> Action<()> {
            Action::Crash
        }
    }

    #[test]
    fn crashed_nodes_stop_participating() {
        let n = 4;
        let g = line_graph(n);
        let cfg = EngineConfig {
            max_rounds: 5,
            stop_when_all_decided: true,
        };
        let result = SyncEngine::new(
            &g,
            vec![CrashImmediately; n],
            vec![false; n],
            NullAdversary,
            cfg,
            0,
        )
        .run();
        assert!(result.crashed.iter().all(|&c| c));
        assert!(
            result.completed,
            "all honest nodes crashed counts as completed"
        );
        assert_eq!(result.metrics.rounds, 1);
        assert!(result.outputs.iter().all(|o| o.is_none()));
    }
}
