//! A ring of round buckets for deferred message delivery.
//!
//! The engine's bounded-delay fault injection defers envelopes to a later
//! round.  The original implementation kept them in a
//! `BTreeMap<u64, Vec<Envelope>>`, paying tree rebalancing and a fresh
//! `Vec` allocation per (round, delay) pair.  [`DelayRing`] replaces it
//! with a circular array of buckets indexed by `due_round % capacity`:
//! push and drain are O(1) bucket lookups, and drained buckets keep their
//! capacity, so after warm-up the deferred path allocates nothing.
//!
//! Correctness relies on one invariant the ring enforces itself: every
//! ring-resident due round lies within one capacity window of the current
//! round, so each owns a distinct slot.  Delays too large for the ring to
//! cover affordably — the ring never grows past `MAX_BUCKETS` — spill
//! into a `BTreeMap` side table with the original structure's exact
//! semantics, so a spec with an enormous `Δ` costs O(deferred messages)
//! memory (as it always did) instead of an O(Δ) allocation.  All items for
//! one due round live on one side (a due round that ever spilled keeps
//! spilling), which preserves per-round insertion order exactly.

use std::collections::BTreeMap;

/// One bucket: the due round it currently holds, plus the items.
#[derive(Clone, Debug)]
struct Bucket<T> {
    due: u64,
    items: Vec<T>,
}

/// A circular buffer of round-indexed buckets with a far-future overflow
/// side table; see the module docs.
#[derive(Clone, Debug)]
pub struct DelayRing<T> {
    buckets: Vec<Bucket<T>>,
    /// Due rounds too far out for the ring ([`MAX_BUCKETS`] cap); the
    /// rare path — realistic delays stay in the ring.
    overflow: BTreeMap<u64, Vec<T>>,
    /// Total items across buckets and overflow.
    in_flight: usize,
}

/// Initial number of buckets (grown on demand).
const INITIAL_BUCKETS: usize = 8;

/// Hard cap on the ring size: delays beyond this window take the overflow
/// path instead of growing the ring, bounding the ring's memory at
/// `MAX_BUCKETS` buckets no matter what `Δ` a spec requests.
const MAX_BUCKETS: usize = 4096;

impl<T> DelayRing<T> {
    /// An empty ring.
    pub fn new() -> Self {
        DelayRing {
            buckets: (0..INITIAL_BUCKETS)
                .map(|_| Bucket {
                    due: 0,
                    items: Vec::new(),
                })
                .collect(),
            overflow: BTreeMap::new(),
            in_flight: 0,
        }
    }

    /// Items currently deferred.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// True when nothing is deferred.
    pub fn is_empty(&self) -> bool {
        self.in_flight == 0
    }

    fn slot(&self, due: u64) -> usize {
        (due % self.buckets.len() as u64) as usize
    }

    /// Defer `item` until `due` (which must be strictly after the current
    /// round — the engine only calls this with `due = round + delay`,
    /// `delay ≥ 1`).
    ///
    /// Callers that drain every consecutive round (the engine does) keep
    /// the ring at its minimal size: ring-resident due rounds then span
    /// less than one capacity window, so every due round owns a distinct
    /// slot.  Skipping rounds is still *correct* — a collision with a
    /// bucket holding a different due round (e.g. a stale, never-drained
    /// one) grows the ring until the slots separate (or spills to the
    /// overflow table at the cap), it never misfiles items.
    pub fn push(&mut self, current: u64, due: u64, item: T) {
        debug_assert!(due > current, "deferred items must be due in the future");
        // A due round that already has overflow items keeps accumulating
        // there, even once its window shrinks into ring range — one side
        // per due round is what keeps per-round insertion order exact.
        if !self.overflow.is_empty() {
            if let Some(spilled) = self.overflow.get_mut(&due) {
                spilled.push(item);
                self.in_flight += 1;
                return;
            }
        }
        let window = due.saturating_sub(current);
        if window >= MAX_BUCKETS as u64 {
            self.overflow.entry(due).or_default().push(item);
            self.in_flight += 1;
            return;
        }
        let window = window as usize;
        if window >= self.buckets.len() {
            self.grow(window + 1);
        }
        loop {
            let slot = self.slot(due);
            let bucket = &mut self.buckets[slot];
            if bucket.items.is_empty() {
                // A drained (or never-used) bucket is free to adopt a new
                // due round; its kept capacity is what makes the ring
                // allocation-free in steady state.
                bucket.due = due;
            }
            if bucket.due == due {
                bucket.items.push(item);
                self.in_flight += 1;
                return;
            }
            // Slot occupied by a different due round: grow and retry, or
            // spill once the ring refuses to grow further.  The loop
            // terminates because capacity doubles each iteration and
            // finitely many distinct due rounds are outstanding.
            let doubled = 2 * self.buckets.len();
            if doubled > MAX_BUCKETS {
                self.overflow.entry(due).or_default().push(item);
                self.in_flight += 1;
                return;
            }
            self.grow(doubled);
        }
    }

    /// Feed every item due exactly at `round` to `consume`, in insertion
    /// order, keeping ring-bucket capacity for reuse.
    pub fn drain_due(&mut self, round: u64, mut consume: impl FnMut(T)) {
        if self.in_flight == 0 {
            return;
        }
        let slot = self.slot(round);
        let bucket = &mut self.buckets[slot];
        if bucket.due == round && !bucket.items.is_empty() {
            self.in_flight -= bucket.items.len();
            for item in bucket.items.drain(..) {
                consume(item);
            }
        }
        if !self.overflow.is_empty() {
            if let Some(spilled) = self.overflow.remove(&round) {
                self.in_flight -= spilled.len();
                for item in spilled {
                    consume(item);
                }
            }
        }
    }

    /// Grow to at least `min_buckets`, re-slotting outstanding buckets.
    fn grow(&mut self, min_buckets: usize) {
        let new_len = min_buckets.next_power_of_two().max(2 * self.buckets.len());
        let old = std::mem::replace(
            &mut self.buckets,
            (0..new_len)
                .map(|_| Bucket {
                    due: 0,
                    items: Vec::new(),
                })
                .collect(),
        );
        for bucket in old {
            if bucket.items.is_empty() {
                continue;
            }
            let slot = (bucket.due % new_len as u64) as usize;
            debug_assert!(self.buckets[slot].items.is_empty());
            self.buckets[slot] = bucket;
        }
    }
}

impl<T> Default for DelayRing<T> {
    fn default() -> Self {
        DelayRing::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_vec(ring: &mut DelayRing<u32>, round: u64) -> Vec<u32> {
        let mut out = Vec::new();
        ring.drain_due(round, |x| out.push(x));
        out
    }

    #[test]
    fn items_come_out_at_their_due_round_in_order() {
        let mut ring = DelayRing::new();
        ring.push(0, 2, 10);
        ring.push(0, 1, 20);
        ring.push(0, 2, 11);
        assert_eq!(ring.in_flight(), 3);
        assert_eq!(drain_vec(&mut ring, 0), Vec::<u32>::new());
        assert_eq!(drain_vec(&mut ring, 1), vec![20]);
        assert_eq!(drain_vec(&mut ring, 2), vec![10, 11]);
        assert!(ring.is_empty());
        // Draining again is a no-op.
        assert_eq!(drain_vec(&mut ring, 2), Vec::<u32>::new());
    }

    #[test]
    fn slots_are_reused_across_wrapping_rounds() {
        let mut ring = DelayRing::new();
        for round in 0..100u64 {
            ring.push(round, round + 3, round as u32);
            let due: Vec<u32> = drain_vec(&mut ring, round);
            if round >= 3 {
                assert_eq!(due, vec![round as u32 - 3]);
            } else {
                assert!(due.is_empty());
            }
        }
        assert_eq!(ring.in_flight(), 3);
    }

    #[test]
    fn long_delays_grow_the_ring() {
        let mut ring = DelayRing::new();
        ring.push(0, 1, 1);
        ring.push(0, 500, 500); // far past the initial 8 buckets
        ring.push(0, 2, 2);
        assert_eq!(ring.in_flight(), 3);
        assert_eq!(drain_vec(&mut ring, 1), vec![1]);
        assert_eq!(drain_vec(&mut ring, 2), vec![2]);
        for round in 3..500 {
            assert_eq!(drain_vec(&mut ring, round), Vec::<u32>::new());
        }
        assert_eq!(drain_vec(&mut ring, 500), vec![500]);
        assert!(ring.is_empty());
    }

    #[test]
    fn skipped_drain_rounds_never_misfile_items() {
        // A caller that does NOT drain every round (no engine drives this
        // ring) must still get every item back at its due round: stale
        // buckets force growth instead of silently absorbing new items.
        let mut ring = DelayRing::new();
        ring.push(0, 5, 5u32); // never drained before the wrap
        ring.push(10, 13, 13); // 13 % 8 == 5: collides with the stale bucket
        assert_eq!(ring.in_flight(), 2);
        assert_eq!(drain_vec(&mut ring, 13), vec![13]);
        assert_eq!(drain_vec(&mut ring, 5), vec![5], "stale item still there");
        assert!(ring.is_empty());
    }

    #[test]
    fn gigantic_delays_take_the_overflow_path_without_growing_the_ring() {
        // Regression test: a spec-valid but enormous Δ must cost
        // O(messages), not an O(Δ) ring allocation.
        let mut ring = DelayRing::new();
        ring.push(0, u64::MAX / 2, 1u32);
        ring.push(0, 1_000_000_000, 2);
        ring.push(0, 3, 3);
        assert_eq!(ring.in_flight(), 3);
        assert!(
            ring.buckets.len() <= MAX_BUCKETS,
            "the ring must never grow past its cap (got {})",
            ring.buckets.len()
        );
        assert_eq!(drain_vec(&mut ring, 3), vec![3]);
        assert_eq!(drain_vec(&mut ring, 1_000_000_000), vec![2]);
        assert_eq!(drain_vec(&mut ring, u64::MAX / 2), vec![1]);
        assert!(ring.is_empty());
    }

    #[test]
    fn overflowed_due_rounds_keep_insertion_order_as_their_window_shrinks() {
        // An item pushed early (window ≥ cap → overflow) and one pushed
        // late (window < cap) for the SAME due round must come out in
        // insertion order: once a due round spills, it stays spilled.
        let mut ring = DelayRing::new();
        let due = 10_000;
        ring.push(0, due, 1u32); // window 10 000 ≥ 4096 → overflow
        ring.push(due - 5, due, 2); // window 5: would fit the ring
        assert_eq!(ring.in_flight(), 2);
        assert_eq!(drain_vec(&mut ring, due), vec![1, 2]);
        assert!(ring.is_empty());
    }

    #[test]
    fn mixed_delays_across_growth_keep_every_item() {
        let mut ring = DelayRing::new();
        let mut expected: std::collections::HashMap<u64, Vec<u32>> = Default::default();
        let mut id = 0u32;
        for round in 0..40u64 {
            for delay in [1u64, 2, 7, 31, 64, 5000] {
                ring.push(round, round + delay, id);
                expected.entry(round + delay).or_default().push(id);
                id += 1;
            }
        }
        let mut seen = 0usize;
        for round in 0..6000u64 {
            let got = drain_vec(&mut ring, round);
            seen += got.len();
            assert_eq!(got, expected.remove(&round).unwrap_or_default());
        }
        assert_eq!(seen, 40 * 6);
        assert!(ring.is_empty());
    }
}
