//! What the adversary knows.
//!
//! The full-information adversary knows the entire network: the topology
//! (including which edges belong to `H` — information honest nodes have to
//! reconstruct), the protocol parameters and schedule, and (via
//! [`netsim_runtime::AdversaryView`]) every node's state and queued message
//! each round.  [`AdversaryKnowledge`] packages the static part so that the
//! concrete strategies can be constructed once and then moved into the
//! engine.

use byzcount_core::{ProtocolParams, Schedule};
use netsim_graph::{NodeId, SmallWorldNetwork};
use serde::{Deserialize, Serialize};

/// Per-Byzantine-node static information.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ByzantineNodeInfo {
    /// The Byzantine node.
    pub node: NodeId,
    /// Its true `H`-neighbours (ground truth — the adversary knows the
    /// topology even though honest nodes must reconstruct it).
    pub h_neighbors: Vec<u32>,
    /// Its `G`-neighbours.
    pub g_neighbors: Vec<u32>,
}

/// Static knowledge shared by all adversary strategies.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AdversaryKnowledge {
    /// Network size (the very quantity the honest nodes are estimating —
    /// the adversary is allowed to know it).
    pub n: usize,
    /// Protocol parameters in force.
    pub params: ProtocolParams,
    /// The phase/subphase schedule all nodes follow.
    pub schedule: Schedule,
    /// The corrupted nodes and their neighbourhoods.
    pub byzantine: Vec<ByzantineNodeInfo>,
}

impl AdversaryKnowledge {
    /// Gather the static knowledge for a network, parameter set and
    /// Byzantine mask.
    pub fn gather(net: &SmallWorldNetwork, params: &ProtocolParams, byzantine: &[bool]) -> Self {
        assert_eq!(byzantine.len(), net.len(), "byzantine mask length mismatch");
        let byz_info: Vec<ByzantineNodeInfo> = byzantine
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| {
                let v = NodeId::from_index(i);
                let mut h: Vec<u32> = net.h_neighbors(v).to_vec();
                h.dedup();
                ByzantineNodeInfo {
                    node: v,
                    h_neighbors: h,
                    g_neighbors: net.g_neighbors(v).to_vec(),
                }
            })
            .collect();
        AdversaryKnowledge {
            n: net.len(),
            params: *params,
            schedule: Schedule::new(params.d, params.epsilon),
            byzantine: byz_info,
        }
    }

    /// Number of corrupted nodes.
    pub fn byzantine_count(&self) -> usize {
        self.byzantine.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Placement;

    #[test]
    fn gather_collects_neighborhoods_of_byzantine_nodes_only() {
        let net = SmallWorldNetwork::generate_seeded(200, 8, 1).unwrap();
        let params = ProtocolParams::for_network_default_expansion(&net, 0.6, 0.1);
        let placement = Placement::random(net.len(), 7, 3);
        let k = AdversaryKnowledge::gather(&net, &params, placement.mask());
        assert_eq!(k.byzantine_count(), 7);
        assert_eq!(k.n, 200);
        for info in &k.byzantine {
            assert!(placement.is_byzantine(info.node));
            assert!(!info.h_neighbors.is_empty());
            assert!(info.g_neighbors.len() >= info.h_neighbors.len());
            // Every H-neighbour is also a G-neighbour.
            for h in &info.h_neighbors {
                assert!(info.g_neighbors.contains(h));
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mask_length_is_validated() {
        let net = SmallWorldNetwork::generate_seeded(64, 8, 2).unwrap();
        let params = ProtocolParams::for_network_default_expansion(&net, 0.6, 0.1);
        let _ = AdversaryKnowledge::gather(&net, &params, &[false; 3]);
    }
}
