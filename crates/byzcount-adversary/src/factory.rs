//! Spec-driven adversary construction for the unified simulation API.
//!
//! [`SpecAdversaryFactory`] interprets an
//! [`AdversarySpec`] into a concrete
//! adversary for each run.  The knowledge-based strategies (inflation,
//! suppression, fake chains, combined) gather
//! [`AdversaryKnowledge`] from the topology and
//! therefore require a small-world network; the oblivious ones (null,
//! honest-behaving, silent) work over any topology.

use crate::knowledge::AdversaryKnowledge;
use crate::strategies::{
    ColorInflationAdversary, CombinedAdversary, FakeChainAdversary, HonestBehavingAdversary,
    InjectionTiming, SilentAdversary, SuppressionAdversary,
};
use byzcount_core::sim::{AdversaryFactory, AdversarySpec, SimContext, SimError, TimingSpec};
use byzcount_core::{CountingNode, ProtocolParams};
use netsim_runtime::{Adversary, NullAdversary};

/// Map the spec-layer timing to the strategy crate's enum.
pub fn timing_from_spec(spec: TimingSpec) -> InjectionTiming {
    match spec {
        TimingSpec::Legal => InjectionTiming::Legal,
        TimingSpec::LastStep => InjectionTiming::LastStep,
    }
}

/// Builds the adversary named by an [`AdversarySpec`], gathering fresh
/// knowledge per run.
#[derive(Clone, Copy, Debug)]
pub struct SpecAdversaryFactory {
    /// The adversary to build.
    pub spec: AdversarySpec,
}

impl SpecAdversaryFactory {
    /// Factory for a spec.
    pub fn new(spec: AdversarySpec) -> Self {
        SpecAdversaryFactory { spec }
    }
}

impl AdversaryFactory for SpecAdversaryFactory {
    fn build(
        &self,
        ctx: &SimContext<'_>,
        params: &ProtocolParams,
    ) -> Result<Box<dyn Adversary<CountingNode>>, SimError> {
        let knowledge = || -> Result<AdversaryKnowledge, SimError> {
            let net = ctx.topology.small_world().ok_or_else(|| {
                SimError::Unsupported(format!(
                    "adversary `{}` gathers small-world topology knowledge and \
                     cannot run on this topology; use Null/HonestBehaving/Silent instead",
                    self.spec.name()
                ))
            })?;
            Ok(AdversaryKnowledge::gather(net, params, ctx.byzantine))
        };
        Ok(match self.spec {
            AdversarySpec::Null => Box::new(NullAdversary),
            AdversarySpec::HonestBehaving => Box::new(HonestBehavingAdversary),
            AdversarySpec::Silent => Box::new(SilentAdversary),
            AdversarySpec::ColorInflation { timing } => Box::new(ColorInflationAdversary::new(
                knowledge()?,
                timing_from_spec(timing),
            )),
            AdversarySpec::Suppression => Box::new(SuppressionAdversary::new(knowledge()?)),
            AdversarySpec::FakeChain => Box::new(FakeChainAdversary::new(knowledge()?)),
            AdversarySpec::Combined => Box::new(CombinedAdversary::new(knowledge()?)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzcount_core::sim::TopologySpec;

    #[test]
    fn oblivious_adversaries_build_on_any_topology() {
        let topo = TopologySpec::BalancedTree { n: 40, arity: 3 }
            .build(1)
            .unwrap();
        let byz = vec![false; 40];
        let params = ProtocolParams::for_degree(4, 0.6, 0.1);
        let ctx = SimContext {
            topology: &topo,
            byzantine: &byz,
            seed: 0,
            max_rounds: None,
            fault: &byzcount_core::sim::FaultSpec::None,
            fault_seed: 0,
            engine: byzcount_core::sim::EngineKind::Sync,
            recorder: None,
            fleet: None,
        };
        for spec in [
            AdversarySpec::Null,
            AdversarySpec::HonestBehaving,
            AdversarySpec::Silent,
        ] {
            assert!(
                SpecAdversaryFactory::new(spec).build(&ctx, &params).is_ok(),
                "{spec:?}"
            );
        }
    }

    #[test]
    fn knowledge_adversaries_need_a_small_world_network() {
        let tree = TopologySpec::BalancedTree { n: 40, arity: 3 }
            .build(1)
            .unwrap();
        let byz = vec![false; 40];
        let params = ProtocolParams::for_degree(4, 0.6, 0.1);
        let ctx = SimContext {
            topology: &tree,
            byzantine: &byz,
            seed: 0,
            max_rounds: None,
            fault: &byzcount_core::sim::FaultSpec::None,
            fault_seed: 0,
            engine: byzcount_core::sim::EngineKind::Sync,
            recorder: None,
            fleet: None,
        };
        match SpecAdversaryFactory::new(AdversarySpec::Combined).build(&ctx, &params) {
            Err(SimError::Unsupported(_)) => {}
            Err(other) => panic!("unexpected error: {other}"),
            Ok(_) => panic!("knowledge adversary must be rejected on a tree"),
        }

        let sw = TopologySpec::SmallWorld { n: 64, d: 6 }.build(1).unwrap();
        let byz = vec![false; 64];
        let params = ProtocolParams::for_degree(6, 0.6, 0.1);
        let ctx = SimContext {
            topology: &sw,
            byzantine: &byz,
            seed: 0,
            max_rounds: None,
            fault: &byzcount_core::sim::FaultSpec::None,
            fault_seed: 0,
            engine: byzcount_core::sim::EngineKind::Sync,
            recorder: None,
            fleet: None,
        };
        assert!(SpecAdversaryFactory::new(AdversarySpec::Combined)
            .build(&ctx, &params)
            .is_ok());
    }
}
