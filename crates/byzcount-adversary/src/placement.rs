//! Byzantine node placement.
//!
//! The paper assumes the Byzantine nodes are *randomly distributed* in the
//! network; it explicitly leaves adversarial placement as an open problem.
//! [`Placement`] supports both (random for the main experiments, clustered
//! for the E11 ablation), plus targeted placement for unit tests.

use byzcount_core::sim::PlacementSpec;
use netsim_graph::{bfs, NodeId, SmallWorldNetwork};
use netsim_runtime::Topology;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A choice of Byzantine nodes.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    mask: Vec<bool>,
    count: usize,
}

impl Placement {
    /// No Byzantine nodes at all.
    pub fn none(n: usize) -> Self {
        Placement {
            mask: vec![false; n],
            count: 0,
        }
    }

    /// `count` Byzantine nodes chosen uniformly at random (the paper's
    /// model).
    pub fn random(n: usize, count: usize, seed: u64) -> Self {
        let count = count.min(n);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut rng);
        let mut mask = vec![false; n];
        for &i in idx.iter().take(count) {
            mask[i] = true;
        }
        Placement { mask, count }
    }

    /// The paper's Byzantine budget: `⌊n^{1−δ}⌋` random nodes.
    pub fn random_budget(n: usize, delta: f64, seed: u64) -> Self {
        let count = (n as f64).powf(1.0 - delta).floor() as usize;
        Self::random(n, count, seed)
    }

    /// `count` Byzantine nodes clustered around a random centre: the centre's
    /// BFS ball in `H` is corrupted first (adversarial placement ablation,
    /// experiment E11).
    pub fn clustered(net: &SmallWorldNetwork, count: usize, seed: u64) -> Self {
        let n = net.len();
        let count = count.min(n);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let center = NodeId::from_index(
            (0..n)
                .collect::<Vec<_>>()
                .choose(&mut rng)
                .copied()
                .unwrap_or(0),
        );
        let dist = bfs::bfs_distances(net.h().csr(), center, usize::MAX);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| dist[i]);
        let mut mask = vec![false; n];
        for &i in order.iter().take(count) {
            mask[i] = true;
        }
        Placement { mask, count }
    }

    /// `count` Byzantine nodes clustered around a random centre on *any*
    /// topology (BFS over the communication graph instead of `H`).
    pub fn clustered_on<T: Topology>(topo: &T, count: usize, seed: u64) -> Self {
        let n = topo.len();
        let count = count.min(n);
        let mut mask = vec![false; n];
        if count > 0 && n > 0 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let center = rng.gen_range(0..n);
            let mut dist = vec![u32::MAX; n];
            dist[center] = 0;
            let mut queue = std::collections::VecDeque::from([center as u32]);
            while let Some(v) = queue.pop_front() {
                let dv = dist[v as usize];
                for &u in topo.neighbors(NodeId(v)) {
                    if (u as usize) < n && dist[u as usize] == u32::MAX {
                        dist[u as usize] = dv + 1;
                        queue.push_back(u);
                    }
                }
            }
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&i| dist[i]);
            for &i in order.iter().take(count) {
                mask[i] = true;
            }
        }
        Placement { mask, count }
    }

    /// The equivalent [`PlacementSpec`]: an exact node list, so a concrete
    /// placement can be embedded in a serializable
    /// [`RunSpec`](byzcount_core::sim::RunSpec) and reproduced verbatim.
    pub fn to_spec(&self) -> PlacementSpec {
        PlacementSpec::Exact {
            nodes: self.nodes().iter().map(|v| v.0).collect(),
        }
    }

    /// Exactly these nodes are Byzantine (for tests).
    pub fn exact(n: usize, nodes: &[NodeId]) -> Self {
        let mut mask = vec![false; n];
        let mut count = 0;
        for &v in nodes {
            if v.index() < n && !mask[v.index()] {
                mask[v.index()] = true;
                count += 1;
            }
        }
        Placement { mask, count }
    }

    /// The Byzantine mask, indexed by node.
    pub fn mask(&self) -> &[bool] {
        &self.mask
    }

    /// Number of Byzantine nodes.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.mask.len()
    }

    /// True when the placement covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.mask.is_empty()
    }

    /// The Byzantine node ids.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.mask
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// Whether a specific node is Byzantine.
    pub fn is_byzantine(&self, v: NodeId) -> bool {
        self.mask.get(v.index()).copied().unwrap_or(false)
    }
}

/// A concrete placement embeds into specs as its exact node list.
impl From<&Placement> for PlacementSpec {
    fn from(placement: &Placement) -> Self {
        placement.to_spec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_conversion_preserves_the_mask() {
        let p = Placement::random(50, 9, 4);
        let spec = p.to_spec();
        match &spec {
            PlacementSpec::Exact { nodes } => assert_eq!(nodes.len(), 9),
            other => panic!("expected exact placement, got {other:?}"),
        }
        let spec2: PlacementSpec = (&p).into();
        assert_eq!(spec, spec2);
    }

    #[test]
    fn clustered_on_matches_any_topology() {
        let net = SmallWorldNetwork::generate_seeded(200, 6, 3).unwrap();
        let p = Placement::clustered_on(&net, 15, 9);
        assert_eq!(p.count(), 15);
        // The chosen nodes form a tight ball in G.
        let nodes = p.nodes();
        let dist = bfs::bfs_distances(net.g(), nodes[0], usize::MAX);
        let max_d = nodes.iter().map(|v| dist[v.index()]).max().unwrap();
        assert!(max_d <= 4, "clustered nodes too spread out: {max_d}");
    }

    #[test]
    fn none_has_no_byzantine_nodes() {
        let p = Placement::none(10);
        assert_eq!(p.count(), 0);
        assert_eq!(p.len(), 10);
        assert!(p.nodes().is_empty());
    }

    #[test]
    fn random_placement_has_exact_count_and_is_reproducible() {
        let a = Placement::random(100, 17, 3);
        let b = Placement::random(100, 17, 3);
        let c = Placement::random(100, 17, 4);
        assert_eq!(a.count(), 17);
        assert_eq!(a.nodes().len(), 17);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_budget_matches_formula() {
        let p = Placement::random_budget(1 << 10, 0.6, 0);
        // (2^10)^{0.4} = 2^4 = 16.
        assert_eq!(p.count(), 16);
    }

    #[test]
    fn count_is_clamped_to_n() {
        let p = Placement::random(5, 50, 0);
        assert_eq!(p.count(), 5);
    }

    #[test]
    fn clustered_placement_is_connected_around_a_center() {
        let net = SmallWorldNetwork::generate_seeded(300, 6, 2).unwrap();
        let p = Placement::clustered(&net, 20, 7);
        assert_eq!(p.count(), 20);
        // The chosen nodes form a ball: their pairwise H-distances are small.
        let nodes = p.nodes();
        let dist = bfs::bfs_distances(net.h().csr(), nodes[0], usize::MAX);
        let max_d = nodes.iter().map(|v| dist[v.index()]).max().unwrap();
        assert!(max_d <= 6, "clustered nodes too spread out: {max_d}");
    }

    #[test]
    fn exact_placement_deduplicates() {
        let p = Placement::exact(10, &[NodeId(1), NodeId(1), NodeId(3)]);
        assert_eq!(p.count(), 2);
        assert!(p.is_byzantine(NodeId(1)));
        assert!(p.is_byzantine(NodeId(3)));
        assert!(!p.is_byzantine(NodeId(2)));
    }
}
