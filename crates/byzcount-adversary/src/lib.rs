//! # byzcount-adversary
//!
//! Concrete full-information Byzantine adversary strategies for the counting
//! protocols.
//!
//! A real Byzantine adversary is computationally unbounded and can deviate
//! arbitrarily; a simulation can only exercise *specific* behaviours.  This
//! crate implements every attack the paper's analysis explicitly defends
//! against, plus controls:
//!
//! * [`HonestBehavingAdversary`] — Byzantine nodes follow the protocol
//!   (control group);
//! * [`SilentAdversary`] — Byzantine nodes never send anything (their
//!   refusal to report an adjacency list crashes their audit neighbourhood,
//!   a loss bounded by Lemma 14);
//! * [`ColorInflationAdversary`] — inject colors far above the honest
//!   maximum, either in the legal injection window (the first `k−1` steps of
//!   a subphase, the attack Lemma 17 absorbs) or in the *last* step of a
//!   subphase with a fabricated provenance path (the attack Lemma 16 shows
//!   is always rejected by Algorithm 2 — and which breaks Algorithm 1);
//! * [`SuppressionAdversary`] — participate honestly in discovery, then
//!   never generate or forward any color (the attack that breaks the naive
//!   geometric max-propagation protocol);
//! * [`FakeChainAdversary`] — lie during neighbourhood discovery by hiding a
//!   real neighbour and inventing a fake one (the Figure 1 attack; detected
//!   via the symmetry check, crashing only the liar's audit neighbourhood);
//! * [`CombinedAdversary`] — discovery lies plus inflation plus suppression.
//!
//! [`Placement`] chooses which nodes are Byzantine (random, as the paper
//! assumes, or adversarially clustered for the open-problem ablation).

pub mod factory;
pub mod knowledge;
pub mod placement;
pub mod strategies;

pub use factory::{timing_from_spec, SpecAdversaryFactory};
pub use knowledge::AdversaryKnowledge;
pub use placement::Placement;
pub use strategies::{
    ColorInflationAdversary, CombinedAdversary, FakeChainAdversary, HonestBehavingAdversary,
    InjectionTiming, SilentAdversary, SuppressionAdversary,
};

use byzcount_core::CountingNode;
use netsim_runtime::Adversary;

/// Marker trait: any adversary usable with the counting protocol node.
pub trait CountingAdversary: Adversary<CountingNode> {}
impl<T: Adversary<CountingNode>> CountingAdversary for T {}
