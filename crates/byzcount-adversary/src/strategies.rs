//! Concrete adversary strategies.
//!
//! All strategies are *full-information*: they are constructed with
//! [`AdversaryKnowledge`] (the true topology, parameters and schedule) and
//! receive the complete [`netsim_runtime::AdversaryView`] every round.  They
//! differ in what they make the Byzantine nodes send.

use crate::knowledge::AdversaryKnowledge;
use byzcount_core::{Color, CountingMessage, CountingNode, Position, MAX_COLOR};
use netsim_runtime::{Adversary, AdversaryDecision, AdversaryView, Envelope};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// When the color-inflation adversary injects its fabricated colors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectionTiming {
    /// At the generation step of every subphase — indistinguishable from
    /// legitimately drawing an absurdly lucky color.  Lemma 17 shows the
    /// protocol terminates anyway (the fake maximum floods the core early,
    /// so it no longer arrives in the *last* step once `i` exceeds the core
    /// diameter).
    Legal,
    /// In the second-to-last step of every subphase, so the fabricated color
    /// arrives exactly in the step the continuation criterion looks at.
    /// Algorithm 2's provenance verification rejects it (Lemma 16); the
    /// basic Algorithm 1 is fooled into never terminating.
    LastStep,
}

/// Control strategy: Byzantine nodes follow the protocol to the letter.
#[derive(Clone, Copy, Debug, Default)]
pub struct HonestBehavingAdversary;

impl Adversary<CountingNode> for HonestBehavingAdversary {
    fn act(
        &mut self,
        _view: &AdversaryView<'_, CountingNode>,
        _rng: &mut ChaCha8Rng,
    ) -> AdversaryDecision<CountingMessage> {
        AdversaryDecision::FollowProtocol
    }

    // Stateless, RNG-free and always `FollowProtocol`: eliding idle-tick
    // calls (sparse ticking) cannot change anything.
    fn idle_passive(&self) -> bool {
        true
    }
}

/// Byzantine nodes never send anything — not even their adjacency list,
/// which the discovery phase treats as a conflict, crashing (only) the
/// liar's `G`-neighbourhood.
#[derive(Clone, Copy, Debug, Default)]
pub struct SilentAdversary;

impl Adversary<CountingNode> for SilentAdversary {
    fn act(
        &mut self,
        _view: &AdversaryView<'_, CountingNode>,
        _rng: &mut ChaCha8Rng,
    ) -> AdversaryDecision<CountingMessage> {
        AdversaryDecision::Replace(Vec::new())
    }

    // Stateless, RNG-free and always an empty `Replace`: on an idle tick
    // (no queued envelopes to suppress) the call is a pure no-op.
    fn idle_passive(&self) -> bool {
        true
    }
}

/// Inject colors far above the honest maximum.
#[derive(Clone, Debug)]
pub struct ColorInflationAdversary {
    knowledge: AdversaryKnowledge,
    timing: InjectionTiming,
    color: Color,
}

impl ColorInflationAdversary {
    /// Create the inflation adversary with the default (maximal) fake color.
    pub fn new(knowledge: AdversaryKnowledge, timing: InjectionTiming) -> Self {
        ColorInflationAdversary {
            knowledge,
            timing,
            color: MAX_COLOR,
        }
    }

    /// Override the fake color value.
    pub fn with_color(mut self, color: Color) -> Self {
        self.color = color;
        self
    }

    fn injection_messages(&self, fabricate_path: bool) -> Vec<Envelope<CountingMessage>> {
        let k = self.knowledge.params.k;
        let mut msgs = Vec::new();
        for info in &self.knowledge.byzantine {
            let path: Vec<u32> = if fabricate_path {
                // Claim the color travelled through our first k−1 G-neighbours;
                // those are honest nodes whose audit logs will refute us.
                info.g_neighbors
                    .iter()
                    .copied()
                    .take(k.saturating_sub(1))
                    .collect()
            } else {
                Vec::new()
            };
            for &h in &info.h_neighbors {
                msgs.push(Envelope::new(
                    info.node,
                    netsim_graph::NodeId(h),
                    CountingMessage::Flood {
                        color: self.color,
                        path: path.clone(),
                    },
                ));
            }
            // Announce the fake color as an audit too, so that colluding
            // Byzantine relays corroborate each other where possible.
            for &g in &info.g_neighbors {
                msgs.push(Envelope::new(
                    info.node,
                    netsim_graph::NodeId(g),
                    CountingMessage::Audit { color: self.color },
                ));
            }
        }
        msgs
    }
}

impl Adversary<CountingNode> for ColorInflationAdversary {
    fn act(
        &mut self,
        view: &AdversaryView<'_, CountingNode>,
        _rng: &mut ChaCha8Rng,
    ) -> AdversaryDecision<CountingMessage> {
        match self.knowledge.schedule.locate(view.round) {
            Position::DiscoverySend | Position::DiscoveryProcess => {
                AdversaryDecision::FollowProtocol
            }
            Position::InPhase(pos) => {
                let inject_step = match self.timing {
                    InjectionTiming::Legal => 0,
                    // Send in step `phase − 1` so the color is *received* in
                    // the last step `phase`; phase 1 degenerates to step 0.
                    InjectionTiming::LastStep => pos.phase.saturating_sub(1),
                };
                if pos.step == inject_step {
                    let fabricate = self.timing == InjectionTiming::LastStep
                        && inject_step + 1 >= self.knowledge.params.k as u64;
                    AdversaryDecision::Replace(self.injection_messages(fabricate))
                } else {
                    AdversaryDecision::FollowProtocol
                }
            }
        }
    }
}

/// Participate honestly in discovery, then never generate or forward any
/// color — the attack that silently shrinks the support of the naive
/// max-propagation estimator.
#[derive(Clone, Debug)]
pub struct SuppressionAdversary {
    knowledge: AdversaryKnowledge,
}

impl SuppressionAdversary {
    /// Create the suppression adversary.
    pub fn new(knowledge: AdversaryKnowledge) -> Self {
        SuppressionAdversary { knowledge }
    }
}

impl Adversary<CountingNode> for SuppressionAdversary {
    fn act(
        &mut self,
        view: &AdversaryView<'_, CountingNode>,
        _rng: &mut ChaCha8Rng,
    ) -> AdversaryDecision<CountingMessage> {
        match self.knowledge.schedule.locate(view.round) {
            Position::DiscoverySend | Position::DiscoveryProcess => {
                AdversaryDecision::FollowProtocol
            }
            Position::InPhase(_) => AdversaryDecision::Replace(Vec::new()),
        }
    }
}

/// The Figure 1 attack: during discovery each Byzantine node hides one of
/// its real neighbours and invents a non-existent one, trying to make the
/// receiver believe in a fabricated chain.  The honest hidden neighbour's
/// truthful report exposes the asymmetry and the receiver crashes itself
/// (Lemma 15) instead of accepting the fake topology.
#[derive(Clone, Debug)]
pub struct FakeChainAdversary {
    knowledge: AdversaryKnowledge,
}

impl FakeChainAdversary {
    /// Create the fake-chain adversary.
    pub fn new(knowledge: AdversaryKnowledge) -> Self {
        FakeChainAdversary { knowledge }
    }

    fn lying_reports(&self) -> Vec<Envelope<CountingMessage>> {
        let n = self.knowledge.n as u32;
        let mut msgs = Vec::new();
        for (idx, info) in self.knowledge.byzantine.iter().enumerate() {
            // Suppress the first real neighbour, insert a fabricated id far
            // outside the real id range.
            let fake_id = n + 1_000_000 + idx as u32;
            let mut claimed: Vec<u32> = info.g_neighbors.iter().copied().skip(1).collect();
            claimed.push(fake_id);
            for &g in &info.g_neighbors {
                msgs.push(Envelope::new(
                    info.node,
                    netsim_graph::NodeId(g),
                    CountingMessage::Adjacency {
                        neighbors: claimed.clone(),
                    },
                ));
            }
        }
        msgs
    }
}

impl Adversary<CountingNode> for FakeChainAdversary {
    fn act(
        &mut self,
        view: &AdversaryView<'_, CountingNode>,
        _rng: &mut ChaCha8Rng,
    ) -> AdversaryDecision<CountingMessage> {
        match self.knowledge.schedule.locate(view.round) {
            Position::DiscoverySend => AdversaryDecision::Replace(self.lying_reports()),
            _ => AdversaryDecision::FollowProtocol,
        }
    }
}

/// Everything at once: lie during discovery, inject maximal colors in every
/// subphase, and never forward honest colors.
#[derive(Clone, Debug)]
pub struct CombinedAdversary {
    fake_chain: FakeChainAdversary,
    inflation: ColorInflationAdversary,
}

impl CombinedAdversary {
    /// Create the combined adversary.
    pub fn new(knowledge: AdversaryKnowledge) -> Self {
        CombinedAdversary {
            fake_chain: FakeChainAdversary::new(knowledge.clone()),
            inflation: ColorInflationAdversary::new(knowledge, InjectionTiming::Legal),
        }
    }
}

impl Adversary<CountingNode> for CombinedAdversary {
    fn act(
        &mut self,
        view: &AdversaryView<'_, CountingNode>,
        rng: &mut ChaCha8Rng,
    ) -> AdversaryDecision<CountingMessage> {
        let schedule = self.inflation.knowledge.schedule;
        match schedule.locate(view.round) {
            Position::DiscoverySend => self.fake_chain.act(view, rng),
            Position::DiscoveryProcess => AdversaryDecision::FollowProtocol,
            Position::InPhase(pos) => {
                if pos.step == 0 {
                    self.inflation.act(view, rng)
                } else {
                    // Suppress all forwarding outside the injection step.
                    AdversaryDecision::Replace(Vec::new())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Placement;
    use byzcount_core::{run_basic_counting_with, run_counting_with, ProtocolParams};
    use netsim_graph::SmallWorldNetwork;

    /// Test networks use d = 6 (G-degree ≈ 36) so that a Byzantine node's
    /// audit neighbourhood is a small fraction of the network even at the
    /// few-hundred-node sizes unit tests can afford; the asymptotic regime
    /// (G-degree ≪ n) is exercised at larger n by the experiment harness.
    fn setup(
        n: usize,
        d: usize,
        byz_count: usize,
        seed: u64,
    ) -> (
        SmallWorldNetwork,
        ProtocolParams,
        Placement,
        AdversaryKnowledge,
    ) {
        let net = SmallWorldNetwork::generate_seeded(n, d, seed).unwrap();
        let params = ProtocolParams::for_network_default_expansion(&net, 0.6, 0.1);
        let placement = Placement::random(n, byz_count, seed ^ 0xABCD);
        let knowledge = AdversaryKnowledge::gather(&net, &params, placement.mask());
        (net, params, placement, knowledge)
    }

    #[test]
    fn honest_behaving_byzantine_nodes_change_nothing() {
        let (net, params, placement, _) = setup(256, 8, 8, 1);
        let outcome =
            run_counting_with(&net, &params, placement.mask(), HonestBehavingAdversary, 11);
        assert!(outcome.completed);
        let eval = outcome.evaluate();
        assert_eq!(eval.honest_crashed, 0);
        assert!(eval.good_fraction_of_honest > 0.9, "{eval:?}");
    }

    #[test]
    fn legal_inflation_is_tolerated_by_algorithm_2() {
        let (net, params, placement, knowledge) = setup(256, 8, 8, 2);
        let adversary = ColorInflationAdversary::new(knowledge, InjectionTiming::Legal);
        let outcome = run_counting_with(&net, &params, placement.mask(), adversary, 13);
        assert!(
            outcome.completed,
            "inflated colors must not prevent termination"
        );
        let eval = outcome.evaluate();
        assert!(
            eval.good_fraction_of_honest > 0.8,
            "legal inflation should leave most honest nodes accurate: {eval:?}"
        );
    }

    #[test]
    fn last_step_inflation_breaks_algorithm_1_but_not_algorithm_2() {
        let (net, params, placement, knowledge) = setup(256, 8, 8, 3);
        // Algorithm 1 (no verification): the fabricated last-step colors keep
        // arriving as "new maxima", so the continuation criterion keeps
        // firing for nodes near the Byzantine nodes and their estimates blow
        // up (or they never decide before the round cap).
        let adv1 = ColorInflationAdversary::new(knowledge.clone(), InjectionTiming::LastStep);
        let basic = run_basic_counting_with(&net, &params, placement.mask(), adv1, 17);
        let eval_basic = basic.evaluate();
        // Algorithm 2 (verification): unattested late colors are rejected.
        let adv2 = ColorInflationAdversary::new(knowledge, InjectionTiming::LastStep);
        let byz = run_counting_with(&net, &params, placement.mask(), adv2, 17);
        let eval_byz = byz.evaluate();
        assert!(
            eval_byz.good_fraction_of_honest > 0.8,
            "Algorithm 2 must reject the late injection: {eval_byz:?}"
        );
        assert!(
            eval_byz.good_fraction_of_honest > eval_basic.good_fraction_of_honest,
            "verification must help: basic {} vs byzantine {}",
            eval_basic.good_fraction_of_honest,
            eval_byz.good_fraction_of_honest
        );
    }

    #[test]
    fn suppression_is_tolerated() {
        let (net, params, placement, knowledge) = setup(256, 8, 8, 4);
        let adversary = SuppressionAdversary::new(knowledge);
        let outcome = run_counting_with(&net, &params, placement.mask(), adversary, 19);
        assert!(outcome.completed);
        let eval = outcome.evaluate();
        assert!(eval.good_fraction_of_honest > 0.8, "{eval:?}");
    }

    #[test]
    fn fake_chain_lies_crash_only_a_small_neighborhood() {
        let (net, params, placement, knowledge) = setup(600, 6, 3, 5);
        let adversary = FakeChainAdversary::new(knowledge);
        let outcome = run_counting_with(&net, &params, placement.mask(), adversary, 23);
        let eval = outcome.evaluate();
        // Some nodes crash (the liars' audit neighbourhoods), but only a
        // bounded fraction — and nobody accepts the fabricated topology.
        assert!(
            eval.honest_crashed > 0,
            "the lie must be detected by someone"
        );
        assert!(
            (eval.honest_crashed as f64) < 0.35 * net.len() as f64,
            "crashes must stay local: {}",
            eval.honest_crashed
        );
        assert!(eval.good_fraction_of_honest > 0.55, "{eval:?}");
    }

    #[test]
    fn silent_adversary_is_tolerated() {
        let (net, params, placement, _) = setup(600, 6, 4, 6);
        let outcome = run_counting_with(&net, &params, placement.mask(), SilentAdversary, 29);
        let eval = outcome.evaluate();
        assert!(eval.good_fraction_of_honest > 0.6, "{eval:?}");
    }

    #[test]
    fn combined_adversary_is_tolerated_by_algorithm_2() {
        let (net, params, placement, knowledge) = setup(600, 6, 4, 7);
        let adversary = CombinedAdversary::new(knowledge);
        let outcome = run_counting_with(&net, &params, placement.mask(), adversary, 31);
        let eval = outcome.evaluate();
        assert!(
            eval.good_fraction_of_honest > 0.6,
            "combined attack must still leave most honest nodes accurate: {eval:?}"
        );
    }
}
