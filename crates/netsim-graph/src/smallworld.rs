//! The small-world network `G = H ∪ L` of Section 2.1.
//!
//! `H` is an `H(n, d)` random regular graph and `L` adds an edge between
//! every pair of nodes whose `H`-distance is at most `k = ⌈d/3⌉`.  The
//! resulting graph `G` keeps the expansion of `H` while gaining a large
//! clustering coefficient, and the counting protocol exploits both:
//! flooding happens along `H`-edges only, while the `L`-edges are used to
//! audit neighbours' claims (topology reconstruction, Lemma 3, and color
//! provenance checks, Lemma 16).

use crate::bfs::bfs_distances;
use crate::csr::Csr;
use crate::error::GraphError;
use crate::hgraph::HGraph;
use crate::ids::{random_labels, NodeId, NodeLabel};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration for generating a [`SmallWorldNetwork`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SmallWorldConfig {
    /// Number of nodes `n`.
    pub n: usize,
    /// Degree `d` of the underlying `H(n, d)` graph (even, ≥ 4).
    pub d: usize,
    /// Small-world radius `k`; defaults to `⌈d/3⌉` as in the paper.
    pub k: Option<usize>,
}

impl SmallWorldConfig {
    /// Create a configuration with the paper's default `k = ⌈d/3⌉`.
    pub fn new(n: usize, d: usize) -> Self {
        SmallWorldConfig { n, d, k: None }
    }

    /// Override the small-world radius.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// The effective small-world radius.
    pub fn effective_k(&self) -> usize {
        self.k.unwrap_or(self.d.div_ceil(3)).max(1)
    }
}

/// The small-world network `G = H ∪ L`.
///
/// Stores both the base graph `H` and the full graph `G`, plus the
/// `H`-distance of every `G`-edge (1 for `H`-edges, `2..=k` for pure
/// `L`-edges).  Each node also carries a [`NodeLabel`] from a large ID
/// space.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SmallWorldNetwork {
    h: HGraph,
    g: Csr,
    /// `H`-distance of each adjacency entry of `g`, aligned with
    /// `g.neighbors(v)` for every `v`.
    g_edge_dist: Vec<Vec<u8>>,
    k: usize,
    labels: Vec<NodeLabel>,
    label_index: HashMap<NodeLabel, NodeId>,
}

impl SmallWorldNetwork {
    /// Generate a small-world network from a configuration and RNG.
    pub fn generate<R: Rng + ?Sized>(
        config: SmallWorldConfig,
        rng: &mut R,
    ) -> Result<Self, GraphError> {
        let h = HGraph::generate(config.n, config.d, rng)?;
        let labels = random_labels(config.n, rng);
        Self::from_hgraph(h, config.effective_k(), labels)
    }

    /// Convenience constructor: generate from `(n, d, seed)` with the default
    /// `k`, using a dedicated ChaCha RNG.
    pub fn generate_seeded(n: usize, d: usize, seed: u64) -> Result<Self, GraphError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Self::generate(SmallWorldConfig::new(n, d), &mut rng)
    }

    /// Build `G = H ∪ L` from an existing `H` graph, radius `k` and labels.
    pub fn from_hgraph(h: HGraph, k: usize, labels: Vec<NodeLabel>) -> Result<Self, GraphError> {
        let n = h.len();
        if labels.len() != n {
            return Err(GraphError::InvalidParameter {
                name: "labels",
                value: labels.len() as f64,
                reason: "label count must equal node count",
            });
        }
        if k == 0 {
            return Err(GraphError::InvalidParameter {
                name: "k",
                value: 0.0,
                reason: "small-world radius must be at least 1",
            });
        }
        // For every node compute its k-ball in H; those are its G-neighbours.
        let per_node: Vec<(Vec<u32>, Vec<u8>)> = (0..n)
            .into_par_iter()
            .map(|i| {
                let dist = bfs_distances(h.csr(), NodeId::from_index(i), k);
                let mut neigh = Vec::new();
                let mut dists = Vec::new();
                for (j, &dj) in dist.iter().enumerate() {
                    if j != i && dj != u32::MAX && dj as usize <= k {
                        neigh.push(j as u32);
                        dists.push(dj as u8);
                    }
                }
                // Already in increasing j order (enumeration order), hence sorted.
                (neigh, dists)
            })
            .collect();
        let lists: Vec<Vec<u32>> = per_node.iter().map(|(l, _)| l.clone()).collect();
        let g_edge_dist: Vec<Vec<u8>> = per_node.into_iter().map(|(_, d)| d).collect();
        let g = Csr::from_adjacency_lists(&lists)?;
        let label_index = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, NodeId::from_index(i)))
            .collect();
        Ok(SmallWorldNetwork {
            h,
            g,
            g_edge_dist,
            k,
            labels,
            label_index,
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.h.len()
    }

    /// True when the network has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.h.is_empty()
    }

    /// The base expander `H`.
    #[inline]
    pub fn h(&self) -> &HGraph {
        &self.h
    }

    /// The full small-world graph `G = H ∪ L`.
    #[inline]
    pub fn g(&self) -> &Csr {
        &self.g
    }

    /// The small-world radius `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Degree `d` of the base graph.
    #[inline]
    pub fn d(&self) -> usize {
        self.h.d()
    }

    /// Node labels (large-ID-space identities), indexed by [`NodeId`].
    #[inline]
    pub fn labels(&self) -> &[NodeLabel] {
        &self.labels
    }

    /// The label of a node.
    #[inline]
    pub fn label_of(&self, v: NodeId) -> NodeLabel {
        self.labels[v.index()]
    }

    /// Look up the node carrying a label (simulator-side ground truth; the
    /// protocol itself never uses this).
    pub fn node_of_label(&self, label: NodeLabel) -> Option<NodeId> {
        self.label_index.get(&label).copied()
    }

    /// `H`-neighbours of `v` (the flooding edges).
    #[inline]
    pub fn h_neighbors(&self, v: NodeId) -> &[u32] {
        self.h.neighbors(v)
    }

    /// `G`-neighbours of `v` (flooding plus audit edges): exactly the nodes
    /// within `H`-distance `k` of `v`.
    #[inline]
    pub fn g_neighbors(&self, v: NodeId) -> &[u32] {
        self.g.neighbors(v)
    }

    /// The `H`-distances of `v`'s `G`-neighbours, aligned with
    /// [`SmallWorldNetwork::g_neighbors`].
    #[inline]
    pub fn g_neighbor_h_distances(&self, v: NodeId) -> &[u8] {
        &self.g_edge_dist[v.index()]
    }

    /// True if `{u, v}` is an edge of `H`.
    pub fn is_h_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.h.csr().has_edge(u, v)
    }

    /// True if `{u, v}` is an edge of `G` (i.e. `dist_H(u,v) ≤ k`).
    pub fn is_g_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.g.has_edge(u, v)
    }

    /// The ball `B_H(v, r)` (including `v`), used for audits with `r ≤ k`.
    pub fn h_ball(&self, v: NodeId, r: usize) -> Vec<NodeId> {
        crate::bfs::ball(self.h.csr(), v, r)
    }

    /// Iterate over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u32).map(NodeId)
    }

    /// Number of pure-`L` undirected edges (G-edges that are not H-edges).
    pub fn num_l_edges(&self) -> usize {
        let total_g: usize = self.g.num_undirected_edges();
        // H may contain parallel edges which collapse to single entries in G;
        // count distinct H pairs instead.
        let mut distinct_h = 0usize;
        for v in self.node_ids() {
            let mut prev = u32::MAX;
            for &u in self.h_neighbors(v) {
                if u != prev && (u as usize) > v.index() {
                    distinct_h += 1;
                }
                prev = u;
            }
        }
        total_g.saturating_sub(distinct_h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_net(n: usize, d: usize, seed: u64) -> SmallWorldNetwork {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        SmallWorldNetwork::generate(SmallWorldConfig::new(n, d), &mut rng).unwrap()
    }

    #[test]
    fn default_k_matches_paper() {
        assert_eq!(SmallWorldConfig::new(100, 8).effective_k(), 3);
        assert_eq!(SmallWorldConfig::new(100, 6).effective_k(), 2);
        assert_eq!(SmallWorldConfig::new(100, 8).with_k(2).effective_k(), 2);
    }

    #[test]
    fn g_neighbors_are_exactly_the_k_ball() {
        let net = small_net(300, 6, 1);
        let k = net.k();
        for v in net.node_ids().take(25) {
            let ball: Vec<u32> = net
                .h_ball(v, k)
                .into_iter()
                .filter(|&u| u != v)
                .map(|u| u.0)
                .collect();
            assert_eq!(
                net.g_neighbors(v),
                &ball[..],
                "G-neighbourhood must equal B_H(v,k)\\{{v}}"
            );
        }
    }

    #[test]
    fn g_edge_distances_match_h_distances() {
        let net = small_net(200, 8, 2);
        for v in net.node_ids().take(10) {
            let dist = bfs_distances(net.h().csr(), v, net.k());
            let neigh = net.g_neighbors(v);
            let dists = net.g_neighbor_h_distances(v);
            assert_eq!(neigh.len(), dists.len());
            for (&u, &du) in neigh.iter().zip(dists) {
                assert_eq!(dist[u as usize], du as u32);
                assert!(du as usize >= 1 && du as usize <= net.k());
            }
        }
    }

    #[test]
    fn h_edges_are_g_edges() {
        let net = small_net(150, 6, 3);
        for v in net.node_ids() {
            for &u in net.h_neighbors(v) {
                if u as usize == v.index() {
                    continue;
                }
                assert!(net.is_g_edge(v, NodeId(u)), "every H-edge must be a G-edge");
            }
        }
    }

    #[test]
    fn g_is_symmetric() {
        let net = small_net(150, 8, 4);
        assert!(net.g().is_symmetric());
    }

    #[test]
    fn g_degree_is_bounded_by_observation_2() {
        // Observation 1: |B_H(v, k)| < (d-1)^{k+1}; hence G-degree < (d-1)^{k+1}.
        let net = small_net(400, 8, 5);
        let bound = (net.d() - 1).pow(net.k() as u32 + 1);
        for v in net.node_ids() {
            assert!(net.g_neighbors(v).len() < bound);
        }
    }

    #[test]
    fn labels_roundtrip() {
        let net = small_net(64, 6, 6);
        for v in net.node_ids() {
            assert_eq!(net.node_of_label(net.label_of(v)), Some(v));
        }
    }

    #[test]
    fn l_edges_exist_for_k_ge_2() {
        let net = small_net(256, 8, 7);
        assert!(net.k() >= 2);
        assert!(
            net.num_l_edges() > 0,
            "with k >= 2 there must be pure L-edges"
        );
    }

    #[test]
    fn rejects_zero_k() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let h = HGraph::generate(50, 6, &mut rng).unwrap();
        let labels = random_labels(50, &mut rng);
        assert!(SmallWorldNetwork::from_hgraph(h, 0, labels).is_err());
    }

    #[test]
    fn rejects_wrong_label_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let h = HGraph::generate(50, 6, &mut rng).unwrap();
        let labels = random_labels(49, &mut rng);
        assert!(SmallWorldNetwork::from_hgraph(h, 2, labels).is_err());
    }

    #[test]
    fn generate_seeded_is_deterministic() {
        let a = SmallWorldNetwork::generate_seeded(128, 8, 42).unwrap();
        let b = SmallWorldNetwork::generate_seeded(128, 8, 42).unwrap();
        assert_eq!(a.g(), b.g());
        assert_eq!(a.labels(), b.labels());
    }
}
