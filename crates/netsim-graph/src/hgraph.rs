//! The `H(n, d)` random regular graph model.
//!
//! Following Section 2.1 and Appendix A of the paper, `H(n, d)` is the union
//! of `d/2` Hamiltonian cycles drawn independently and uniformly at random
//! over the `n` nodes.  The resulting multigraph is `d`-regular and is an
//! expander (in fact close to Ramanujan) with high probability — the
//! property the counting protocol relies on for its `i = b·log n`
//! termination stage.

use crate::csr::Csr;
use crate::error::GraphError;
use crate::ids::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A `d`-regular multigraph built as the union of `d/2` random Hamiltonian
/// cycles.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HGraph {
    n: usize,
    d: usize,
    csr: Csr,
    /// Number of parallel edges created by overlapping cycles.
    parallel_edges: usize,
}

impl HGraph {
    /// Minimum admissible degree (the paper assumes `d ≥ 8`, but smaller even
    /// degrees are useful in unit tests; `d = 4` is the structural minimum
    /// for two distinct cycles).
    pub const MIN_DEGREE: usize = 4;

    /// Generate an `H(n, d)` graph.
    ///
    /// # Errors
    /// * `d` must be even and at least [`HGraph::MIN_DEGREE`];
    /// * `n` must be at least `3` so that a Hamiltonian cycle exists.
    pub fn generate<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Result<Self, GraphError> {
        if n < 3 {
            return Err(GraphError::TooFewNodes { n, minimum: 3 });
        }
        if !d.is_multiple_of(2) {
            return Err(GraphError::InvalidDegree {
                d,
                reason: "degree must be even",
            });
        }
        if d < Self::MIN_DEGREE {
            return Err(GraphError::InvalidDegree {
                d,
                reason: "degree must be at least 4",
            });
        }
        let cycles = d / 2;
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(cycles * n);
        let mut perm: Vec<u32> = (0..n as u32).collect();
        for _ in 0..cycles {
            perm.shuffle(rng);
            for i in 0..n {
                let u = perm[i];
                let v = perm[(i + 1) % n];
                edges.push((u, v));
            }
        }
        let csr = Csr::from_undirected_edges(n, &edges)?;
        let parallel_edges = csr.parallel_edge_entries();
        Ok(HGraph {
            n,
            d,
            csr,
            parallel_edges,
        })
    }

    /// Build an `HGraph` wrapper around an arbitrary regular CSR.
    ///
    /// This is used in tests and by the Watts–Strogatz comparison where a
    /// non-`H(n,d)` topology must be driven through the same protocol code.
    /// The graph is not checked for regularity; `d` is taken as the nominal
    /// degree.
    pub fn from_csr(csr: Csr, d: usize) -> Self {
        let n = csr.len();
        let parallel_edges = csr.parallel_edge_entries();
        HGraph {
            n,
            d,
            csr,
            parallel_edges,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The nominal degree `d`.
    #[inline]
    pub fn d(&self) -> usize {
        self.d
    }

    /// Degree of a node (equals `d` for every node of a true `H(n,d)`).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.csr.degree(v)
    }

    /// Neighbours of `v` (with multiplicity).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[u32] {
        self.csr.neighbors(v)
    }

    /// The underlying CSR adjacency.
    #[inline]
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Number of parallel edges produced by overlapping Hamiltonian cycles.
    ///
    /// The paper (footnote 6) observes that in expectation only a constant
    /// number of nodes are incident to multi-edges.
    #[inline]
    pub fn parallel_edges(&self) -> usize {
        self.parallel_edges
    }

    /// Iterate over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n as u32).map(NodeId)
    }

    /// Check `d`-regularity of the generated multigraph.
    pub fn is_regular(&self) -> bool {
        self.node_ids().all(|v| self.degree(v) == self.d)
    }

    /// The small-world radius `k = ⌈d/3⌉` prescribed by the paper for the
    /// overlay `L`.
    #[inline]
    pub fn small_world_k(&self) -> usize {
        self.d.div_ceil(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_distances;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rejects_bad_parameters() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(HGraph::generate(2, 8, &mut rng).is_err());
        assert!(HGraph::generate(100, 7, &mut rng).is_err());
        assert!(HGraph::generate(100, 2, &mut rng).is_err());
    }

    #[test]
    fn generated_graph_is_regular() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for &(n, d) in &[(50usize, 4usize), (200, 8), (333, 6)] {
            let h = HGraph::generate(n, d, &mut rng).unwrap();
            assert_eq!(h.len(), n);
            assert_eq!(h.d(), d);
            assert!(h.is_regular(), "every node must have degree d = {d}");
            assert_eq!(h.csr().num_undirected_edges(), n * d / 2);
        }
    }

    #[test]
    fn generated_graph_is_connected() {
        // A union of Hamiltonian cycles is trivially connected (each cycle
        // alone is); this guards the edge-list plumbing.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let h = HGraph::generate(500, 8, &mut rng).unwrap();
        let dist = bfs_distances(h.csr(), NodeId(0), usize::MAX);
        assert!(dist.iter().all(|&d| d != u32::MAX));
    }

    #[test]
    fn parallel_edges_are_rare() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let h = HGraph::generate(2000, 8, &mut rng).unwrap();
        // Expected number of coinciding edges across cycles is O(d^2) = O(1)
        // relative to n; allow a generous constant.
        assert!(
            h.parallel_edges() < 64,
            "parallel edges: {}",
            h.parallel_edges()
        );
    }

    #[test]
    fn small_world_k_follows_paper() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let h6 = HGraph::generate(50, 6, &mut rng).unwrap();
        let h8 = HGraph::generate(50, 8, &mut rng).unwrap();
        let h10 = HGraph::generate(50, 10, &mut rng).unwrap();
        assert_eq!(h6.small_world_k(), 2);
        assert_eq!(h8.small_world_k(), 3);
        assert_eq!(h10.small_world_k(), 4);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let ha = HGraph::generate(128, 8, &mut a).unwrap();
        let hb = HGraph::generate(128, 8, &mut b).unwrap();
        assert_eq!(ha.csr(), hb.csr());
    }

    #[test]
    fn diameter_is_logarithmic() {
        // Sanity check of the expander-ish behaviour used throughout the
        // analysis: the diameter of H(n, 8) should be a small multiple of
        // log n, certainly far below sqrt(n).
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 4096;
        let h = HGraph::generate(n, 8, &mut rng).unwrap();
        let dist = bfs_distances(h.csr(), NodeId(0), usize::MAX);
        let ecc = dist.iter().copied().max().unwrap();
        assert!(
            ecc as f64 <= 4.0 * (n as f64).log2(),
            "eccentricity {ecc} too large"
        );
    }
}
