//! Breadth-first search utilities: distances, balls `B(v, r)`, boundaries
//! `Bd(v, r)` and multi-source distances.
//!
//! These implement Definitions 2–6 of the paper and are used both by the
//! protocol (to materialise the `L` overlay and the `k`-ball audits) and by
//! the analysis (node categories, diameter, locally-tree-like checks).

use crate::csr::Csr;
use crate::ids::NodeId;

/// Sentinel distance for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances, truncated at `max_depth`.
///
/// Returns a vector of length `n` where entry `i` is `dist(source, i)` or
/// [`UNREACHABLE`] if node `i` is farther than `max_depth` (or disconnected).
pub fn bfs_distances(g: &Csr, source: NodeId, max_depth: usize) -> Vec<u32> {
    let n = g.len();
    let mut dist = vec![UNREACHABLE; n];
    if source.index() >= n {
        return dist;
    }
    let mut frontier = vec![source.0];
    dist[source.index()] = 0;
    let mut depth = 0u32;
    while !frontier.is_empty() && (depth as usize) < max_depth {
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in g.neighbors(NodeId(u)) {
                if dist[v as usize] == UNREACHABLE {
                    dist[v as usize] = depth + 1;
                    next.push(v);
                }
            }
        }
        frontier = next;
        depth += 1;
    }
    dist
}

/// Multi-source BFS distances (distance from the nearest source), truncated
/// at `max_depth`.  Implements Definition 3/4 (`dist(u, V′)`).
pub fn multi_source_distances(g: &Csr, sources: &[NodeId], max_depth: usize) -> Vec<u32> {
    let n = g.len();
    let mut dist = vec![UNREACHABLE; n];
    let mut frontier = Vec::with_capacity(sources.len());
    for &s in sources {
        if s.index() < n && dist[s.index()] == UNREACHABLE {
            dist[s.index()] = 0;
            frontier.push(s.0);
        }
    }
    let mut depth = 0u32;
    while !frontier.is_empty() && (depth as usize) < max_depth {
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in g.neighbors(NodeId(u)) {
                if dist[v as usize] == UNREACHABLE {
                    dist[v as usize] = depth + 1;
                    next.push(v);
                }
            }
        }
        frontier = next;
        depth += 1;
    }
    dist
}

/// The ball `B(v, r)`: all nodes within distance `r` of `v`, including `v`
/// itself (Definition 5).  Returned sorted by node index.
pub fn ball(g: &Csr, v: NodeId, r: usize) -> Vec<NodeId> {
    let dist = bfs_distances(g, v, r);
    let mut out: Vec<NodeId> = dist
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != UNREACHABLE && d as usize <= r)
        .map(|(i, _)| NodeId::from_index(i))
        .collect();
    out.sort_unstable();
    out
}

/// The boundary `Bd(v, r)`: all nodes at distance exactly `r` from `v`
/// (Definition 6).  Returned sorted by node index.
pub fn boundary(g: &Csr, v: NodeId, r: usize) -> Vec<NodeId> {
    let dist = bfs_distances(g, v, r);
    let mut out: Vec<NodeId> = dist
        .iter()
        .enumerate()
        .filter(|(_, &d)| d as usize == r && d != UNREACHABLE)
        .map(|(i, _)| NodeId::from_index(i))
        .collect();
    out.sort_unstable();
    out
}

/// Distance between `u` and the set `targets` (Definition 3); `UNREACHABLE`
/// if no target is reachable.
pub fn distance_to_set(g: &Csr, u: NodeId, targets: &[NodeId]) -> u32 {
    if targets.is_empty() {
        return UNREACHABLE;
    }
    let target_mask: Vec<bool> = {
        let mut m = vec![false; g.len()];
        for &t in targets {
            if t.index() < g.len() {
                m[t.index()] = true;
            }
        }
        m
    };
    if target_mask.get(u.index()).copied().unwrap_or(false) {
        return 0;
    }
    let dist = bfs_distances(g, u, usize::MAX);
    dist.iter()
        .enumerate()
        .filter(|(i, &d)| target_mask[*i] && d != UNREACHABLE)
        .map(|(_, &d)| d)
        .min()
        .unwrap_or(UNREACHABLE)
}

/// Eccentricity of `v`: the maximum finite BFS distance from `v`.
/// Returns `None` when some node is unreachable from `v`.
pub fn eccentricity(g: &Csr, v: NodeId) -> Option<u32> {
    let dist = bfs_distances(g, v, usize::MAX);
    if dist.contains(&UNREACHABLE) {
        None
    } else {
        dist.into_iter().max()
    }
}

/// Connected components; returns `(component_id_per_node, component_sizes)`.
pub fn connected_components(g: &Csr) -> (Vec<u32>, Vec<usize>) {
    let n = g.len();
    let mut comp = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    for start in 0..n {
        if comp[start] != u32::MAX {
            continue;
        }
        let id = sizes.len() as u32;
        let mut size = 0usize;
        let mut stack = vec![start as u32];
        comp[start] = id;
        while let Some(u) = stack.pop() {
            size += 1;
            for &v in g.neighbors(NodeId(u)) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = id;
                    stack.push(v);
                }
            }
        }
        sizes.push(size);
    }
    (comp, sizes)
}

/// The largest connected component of the subgraph induced by `keep`.
///
/// Used for the paper's `Core` (Lemma 14): the largest connected component
/// of `H` induced by the uncrashed honest nodes.  Returns the member set,
/// sorted by node index.
pub fn largest_component_induced(g: &Csr, keep: &[bool]) -> Vec<NodeId> {
    let n = g.len();
    assert_eq!(keep.len(), n, "keep mask length mismatch");
    let mut comp = vec![u32::MAX; n];
    let mut best: (usize, u32) = (0, u32::MAX);
    let mut next_id = 0u32;
    for start in 0..n {
        if !keep[start] || comp[start] != u32::MAX {
            continue;
        }
        let id = next_id;
        next_id += 1;
        let mut size = 0usize;
        let mut stack = vec![start as u32];
        comp[start] = id;
        while let Some(u) = stack.pop() {
            size += 1;
            for &v in g.neighbors(NodeId(u)) {
                if keep[v as usize] && comp[v as usize] == u32::MAX {
                    comp[v as usize] = id;
                    stack.push(v);
                }
            }
        }
        if size > best.0 {
            best = (size, id);
        }
    }
    let mut out: Vec<NodeId> = (0..n)
        .filter(|&i| keep[i] && comp[i] == best.1 && best.1 != u32::MAX)
        .map(NodeId::from_index)
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A path graph 0 - 1 - 2 - 3 - 4.
    fn path5() -> Csr {
        Csr::from_undirected_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap()
    }

    /// Two triangles: {0,1,2} and {3,4,5}.
    fn two_triangles() -> Csr {
        Csr::from_undirected_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap()
    }

    #[test]
    fn distances_on_path() {
        let g = path5();
        let d = bfs_distances(&g, NodeId(0), usize::MAX);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d = bfs_distances(&g, NodeId(2), usize::MAX);
        assert_eq!(d, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn truncated_bfs_stops_at_max_depth() {
        let g = path5();
        let d = bfs_distances(&g, NodeId(0), 2);
        assert_eq!(d, vec![0, 1, 2, UNREACHABLE, UNREACHABLE]);
    }

    #[test]
    fn ball_and_boundary_match_definitions() {
        let g = path5();
        assert_eq!(
            ball(&g, NodeId(2), 1),
            vec![NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(boundary(&g, NodeId(2), 2), vec![NodeId(0), NodeId(4)]);
        // Convention: dist(v, v) = 0 so v is in its own ball of any radius.
        assert_eq!(ball(&g, NodeId(0), 0), vec![NodeId(0)]);
        assert_eq!(boundary(&g, NodeId(0), 0), vec![NodeId(0)]);
    }

    #[test]
    fn multi_source_takes_nearest() {
        let g = path5();
        let d = multi_source_distances(&g, &[NodeId(0), NodeId(4)], usize::MAX);
        assert_eq!(d, vec![0, 1, 2, 1, 0]);
    }

    #[test]
    fn multi_source_empty_sources() {
        let g = path5();
        let d = multi_source_distances(&g, &[], usize::MAX);
        assert!(d.iter().all(|&x| x == UNREACHABLE));
    }

    #[test]
    fn distance_to_set_matches_min() {
        let g = path5();
        assert_eq!(distance_to_set(&g, NodeId(2), &[NodeId(0), NodeId(4)]), 2);
        assert_eq!(distance_to_set(&g, NodeId(4), &[NodeId(4)]), 0);
        assert_eq!(distance_to_set(&g, NodeId(4), &[]), UNREACHABLE);
    }

    #[test]
    fn eccentricity_on_path() {
        let g = path5();
        assert_eq!(eccentricity(&g, NodeId(0)), Some(4));
        assert_eq!(eccentricity(&g, NodeId(2)), Some(2));
    }

    #[test]
    fn eccentricity_disconnected_is_none() {
        let g = two_triangles();
        assert_eq!(eccentricity(&g, NodeId(0)), None);
    }

    #[test]
    fn components_of_two_triangles() {
        let g = two_triangles();
        let (comp, sizes) = connected_components(&g);
        assert_eq!(sizes, vec![3, 3]);
        assert_eq!(comp[0], comp[1]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn largest_induced_component_respects_mask() {
        let g = path5();
        // Remove node 2: components {0,1} and {3,4}; the first found of size 2 wins.
        let keep = vec![true, true, false, true, true];
        let core = largest_component_induced(&g, &keep);
        assert_eq!(core.len(), 2);
        // Remove nothing: whole path.
        let core = largest_component_induced(&g, &[true; 5]);
        assert_eq!(core.len(), 5);
        // Remove everything: empty.
        let core = largest_component_induced(&g, &[false; 5]);
        assert!(core.is_empty());
    }

    #[test]
    fn unreachable_in_disconnected_graph() {
        let g = two_triangles();
        let d = bfs_distances(&g, NodeId(0), usize::MAX);
        assert_eq!(d[3], UNREACHABLE);
        assert_eq!(d[1], 1);
    }
}
