//! Locally-tree-like classification (Definitions 7–8, Lemma 1).
//!
//! A node `w` of `H(n, d)` is *locally tree-like* when the subgraph induced
//! by the ball `B(w, r)` with `r = log n / (10 log d)` is a `(d−1)`-ary
//! tree: every non-root node in the ball has exactly one neighbour in the
//! previous BFS level, no neighbour in its own level, and (if it is not on
//! the boundary) exactly `d−1` neighbours in the next level.  Lemma 1 shows
//! that all but `O(n^{0.8})` nodes are locally tree-like with high
//! probability; the experiments verify this empirically.

use crate::csr::Csr;
use crate::hgraph::HGraph;
use crate::ids::NodeId;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The paper's locally-tree-like radius `r = ⌊log n / (10 log d)⌋`, clamped
/// to at least 1 so that the notion is non-trivial at simulation scales.
pub fn locally_tree_like_radius(n: usize, d: usize) -> usize {
    if n <= 1 || d <= 1 {
        return 1;
    }
    let r = (n as f64).log2() / (10.0 * (d as f64).log2());
    (r.floor() as usize).max(1)
}

/// Check whether `w` is locally tree-like at radius `r` in the graph `h`
/// (assumed to be the `d`-regular base graph).
pub fn is_locally_tree_like(h: &Csr, d: usize, w: NodeId, r: usize) -> bool {
    if r == 0 {
        return true;
    }
    let n = h.len();
    // Level of each discovered node; u32::MAX = undiscovered.
    let mut level = vec![u32::MAX; n];
    level[w.index()] = 0;
    let mut frontier = vec![w.0];
    let mut ball: Vec<u32> = vec![w.0];
    for depth in 0..r as u32 {
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in h.neighbors(NodeId(u)) {
                if level[v as usize] == u32::MAX {
                    level[v as usize] = depth + 1;
                    next.push(v);
                    ball.push(v);
                }
            }
        }
        frontier = next;
    }
    // Verify the per-node neighbour level profile inside the ball.
    for &u in &ball {
        let lu = level[u as usize];
        let mut up = 0usize; // neighbours one level closer to w
        let mut same = 0usize; // neighbours in the same level
        let mut down = 0usize; // neighbours one level farther
        for &v in h.neighbors(NodeId(u)) {
            let lv = level[v as usize];
            if lv == u32::MAX {
                continue; // outside the ball (only possible for boundary nodes)
            }
            if lv + 1 == lu {
                up += 1;
            } else if lv == lu {
                same += 1;
            } else if lv == lu + 1 {
                down += 1;
            }
        }
        if lu == 0 {
            // The root: all d neighbours must be distinct level-1 nodes and
            // there must be no self-loop.
            if same != 0 || up != 0 || down != d {
                return false;
            }
        } else {
            if up != 1 || same != 0 {
                return false;
            }
            if (lu as usize) < r && down != d - 1 {
                return false;
            }
            if lu as usize == r && down != 0 {
                // Neighbours strictly deeper than r are outside the ball and
                // therefore have level u32::MAX; seeing `down > 0` here means
                // a boundary node has a neighbour inside level r+1 of the
                // ball, which cannot happen by construction.
                return false;
            }
        }
    }
    true
}

/// Classification of every node of an `H(n, d)` graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TreeLikeReport {
    /// Radius used for the classification.
    pub radius: usize,
    /// `tree_like[i]` is true iff node `i` is locally tree-like.
    pub tree_like: Vec<bool>,
    /// Number of locally tree-like nodes.
    pub count: usize,
}

impl TreeLikeReport {
    /// Fraction of locally tree-like nodes.
    pub fn fraction(&self) -> f64 {
        if self.tree_like.is_empty() {
            1.0
        } else {
            self.count as f64 / self.tree_like.len() as f64
        }
    }

    /// Node ids of non-locally-tree-like (NLT) nodes.
    pub fn nlt_nodes(&self) -> Vec<NodeId> {
        self.tree_like
            .iter()
            .enumerate()
            .filter(|(_, &t)| !t)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }
}

/// Classify every node of `h` at the paper's radius (or a caller-provided
/// one).  Runs in parallel over nodes.
pub fn classify_all(h: &HGraph, radius: Option<usize>) -> TreeLikeReport {
    let r = radius.unwrap_or_else(|| locally_tree_like_radius(h.len(), h.d()));
    let d = h.d();
    let tree_like: Vec<bool> = (0..h.len())
        .into_par_iter()
        .map(|i| is_locally_tree_like(h.csr(), d, NodeId::from_index(i), r))
        .collect();
    let count = tree_like.iter().filter(|&&t| t).count();
    TreeLikeReport {
        radius: r,
        tree_like,
        count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn radius_formula_matches_paper() {
        // r = log2(n) / (10 * log2(d)), floored, min 1.
        assert_eq!(locally_tree_like_radius(1 << 30, 8), 1);
        assert_eq!(locally_tree_like_radius(1 << 12, 8), 1); // would be 0.4, clamped to 1
        assert_eq!(locally_tree_like_radius(1, 8), 1);
        // For n = 2^60, d = 8: 60 / 30 = 2.
        assert_eq!(locally_tree_like_radius(1usize << 60, 8), 2);
    }

    #[test]
    fn perfect_tree_root_is_tree_like() {
        // A 3-regular tree of depth 2 seen from the root; pad the leaves'
        // degree deficit by ignoring it (they are on the boundary).
        // Root 0; children 1,2,3; each child has 2 children.
        let edges = [
            (0u32, 1u32),
            (0, 2),
            (0, 3),
            (1, 4),
            (1, 5),
            (2, 6),
            (2, 7),
            (3, 8),
            (3, 9),
        ];
        let g = Csr::from_undirected_edges(10, &edges).unwrap();
        assert!(is_locally_tree_like(&g, 3, NodeId(0), 2));
        assert!(is_locally_tree_like(&g, 3, NodeId(0), 1));
    }

    #[test]
    fn cycle_in_ball_breaks_tree_likeness() {
        // Same tree but with an extra edge between two level-1 nodes.
        let edges = [
            (0u32, 1u32),
            (0, 2),
            (0, 3),
            (1, 4),
            (1, 5),
            (2, 6),
            (2, 7),
            (3, 8),
            (3, 9),
            (1, 2), // cross edge at level 1
        ];
        let g = Csr::from_undirected_edges(10, &edges).unwrap();
        assert!(!is_locally_tree_like(&g, 3, NodeId(0), 1));
        assert!(!is_locally_tree_like(&g, 3, NodeId(0), 2));
    }

    #[test]
    fn triangle_is_not_tree_like() {
        let g = Csr::from_undirected_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(!is_locally_tree_like(&g, 2, NodeId(0), 1));
    }

    #[test]
    fn multi_edge_breaks_tree_likeness() {
        // Node 0 has a double edge to node 1 and single edges to 2, 3 (d=4).
        let g = Csr::from_undirected_edges(4, &[(0, 1), (0, 1), (0, 2), (0, 3)]).unwrap();
        assert!(!is_locally_tree_like(&g, 4, NodeId(0), 1));
    }

    #[test]
    fn most_nodes_of_hnd_are_tree_like_at_radius_1() {
        // Lemma 1 (scaled down): at radius 1 the overwhelming majority of
        // nodes of H(n, d) have no triangle/multi-edge in their immediate
        // neighbourhood.
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let h = HGraph::generate(4000, 8, &mut rng).unwrap();
        let report = classify_all(&h, Some(1));
        assert!(
            report.fraction() > 0.95,
            "expected ≥95% locally tree-like, got {}",
            report.fraction()
        );
        assert_eq!(report.count, 4000 - report.nlt_nodes().len());
    }

    #[test]
    fn radius_zero_is_trivially_tree_like() {
        let g = Csr::from_undirected_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(is_locally_tree_like(&g, 2, NodeId(0), 0));
    }

    #[test]
    fn report_fraction_of_empty_graph_is_one() {
        let report = TreeLikeReport {
            radius: 1,
            tree_like: vec![],
            count: 0,
        };
        assert_eq!(report.fraction(), 1.0);
    }
}
