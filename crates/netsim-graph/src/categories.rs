//! The node-category partition of Definition 9 and the size accounting of
//! Lemma 2.
//!
//! Given the network `G`, the set of Byzantine nodes and the fault exponent
//! `δ`, the paper classifies nodes as Byzantine / honest, locally-tree-like
//! (LTL) / not (NLT), safe / unsafe (no NLT node within distance `a·log n`
//! in `G`), bad (`Byz ∪ NLT`) and Byzantine-safe / Byzantine-unsafe (no bad
//! node within `a·log n`).  The stage-1 analysis (`i < a log n`) only argues
//! about Byzantine-safe nodes; experiment E5 measures the sizes of all of
//! these sets.

use crate::bfs::{multi_source_distances, UNREACHABLE};
use crate::ids::NodeId;
use crate::smallworld::SmallWorldNetwork;
use crate::treelike::{classify_all, locally_tree_like_radius};
use serde::{Deserialize, Serialize};

/// Sizes of the node categories (Lemma 2's quantities).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoryCounts {
    pub n: usize,
    pub byzantine: usize,
    pub honest: usize,
    pub locally_tree_like: usize,
    pub not_locally_tree_like: usize,
    pub safe: usize,
    pub unsafe_: usize,
    pub bad: usize,
    pub byzantine_unsafe: usize,
    pub byzantine_safe: usize,
}

/// Per-node membership masks for the Definition 9 categories.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeCategories {
    /// Fault exponent `δ` used to derive the safety radius.
    pub delta: f64,
    /// The paper's constant `a = δ / (10 k log(d−1))`.
    pub a: f64,
    /// The safety radius `⌊a · log n⌋`.  At simulation scales this is often
    /// 0, in which case "unsafe" degenerates to "is itself an NLT/bad node"
    /// — exactly what Definition 9 prescribes for `dist ≤ a log n < 1`.
    pub safety_radius: usize,
    /// Radius used for the locally-tree-like classification.
    pub ltl_radius: usize,
    pub byzantine: Vec<bool>,
    pub locally_tree_like: Vec<bool>,
    pub safe: Vec<bool>,
    pub byzantine_safe: Vec<bool>,
}

impl NodeCategories {
    /// Compute the categories for a network, a Byzantine mask and `δ`.
    ///
    /// # Panics
    /// Panics if `byzantine.len()` does not match the network size.
    pub fn compute(net: &SmallWorldNetwork, byzantine: &[bool], delta: f64) -> Self {
        let n = net.len();
        assert_eq!(byzantine.len(), n, "byzantine mask length mismatch");
        let d = net.d();
        let k = net.k();
        let log_n = crate::log2n(n);
        let a = if d > 2 {
            delta / (10.0 * k as f64 * ((d - 1) as f64).log2())
        } else {
            delta / (10.0 * k as f64)
        };
        let safety_radius = (a * log_n).floor() as usize;
        let ltl_radius = locally_tree_like_radius(n, d);
        let report = classify_all(net.h(), Some(ltl_radius));
        let locally_tree_like = report.tree_like.clone();

        // Unsafe = within safety_radius (in G) of any NLT node.
        let nlt_nodes: Vec<NodeId> = report.nlt_nodes();
        let dist_nlt = multi_source_distances(net.g(), &nlt_nodes, safety_radius);
        let safe: Vec<bool> = dist_nlt
            .iter()
            .map(|&dv| dv == UNREACHABLE || dv as usize > safety_radius)
            .collect();

        // Bad = Byz ∪ NLT; Byzantine-unsafe = within safety_radius of Bad.
        let bad_nodes: Vec<NodeId> = (0..n)
            .filter(|&i| byzantine[i] || !locally_tree_like[i])
            .map(NodeId::from_index)
            .collect();
        let dist_bad = multi_source_distances(net.g(), &bad_nodes, safety_radius);
        let byzantine_safe: Vec<bool> = dist_bad
            .iter()
            .map(|&dv| dv == UNREACHABLE || dv as usize > safety_radius)
            .collect();

        NodeCategories {
            delta,
            a,
            safety_radius,
            ltl_radius,
            byzantine: byzantine.to_vec(),
            locally_tree_like,
            safe,
            byzantine_safe,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.byzantine.len()
    }

    /// True when there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.byzantine.is_empty()
    }

    /// Whether node `v` is honest.
    pub fn is_honest(&self, v: NodeId) -> bool {
        !self.byzantine[v.index()]
    }

    /// Whether node `v` is Byzantine-safe (Definition 9.9).
    pub fn is_byzantine_safe(&self, v: NodeId) -> bool {
        self.byzantine_safe[v.index()]
    }

    /// Aggregate category counts (the quantities bounded in Lemma 2).
    pub fn counts(&self) -> CategoryCounts {
        let n = self.len();
        let byz = self.byzantine.iter().filter(|&&b| b).count();
        let ltl = self.locally_tree_like.iter().filter(|&&b| b).count();
        let safe = self.safe.iter().filter(|&&b| b).count();
        let byz_safe = self.byzantine_safe.iter().filter(|&&b| b).count();
        let bad = (0..n)
            .filter(|&i| self.byzantine[i] || !self.locally_tree_like[i])
            .count();
        CategoryCounts {
            n,
            byzantine: byz,
            honest: n - byz,
            locally_tree_like: ltl,
            not_locally_tree_like: n - ltl,
            safe,
            unsafe_: n - safe,
            bad,
            byzantine_unsafe: n - byz_safe,
            byzantine_safe: byz_safe,
        }
    }
}

impl CategoryCounts {
    /// Structural identities that must hold for any valid partition
    /// (complement relations of Definition 9).
    pub fn is_consistent(&self) -> bool {
        self.byzantine + self.honest == self.n
            && self.locally_tree_like + self.not_locally_tree_like == self.n
            && self.safe + self.unsafe_ == self.n
            && self.byzantine_safe + self.byzantine_unsafe == self.n
            && self.bad <= self.byzantine + self.not_locally_tree_like
            && self.bad >= self.byzantine.max(self.not_locally_tree_like)
            && self.byzantine_safe <= self.safe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smallworld::{SmallWorldConfig, SmallWorldNetwork};
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn net_and_byz(
        n: usize,
        d: usize,
        num_byz: usize,
        seed: u64,
    ) -> (SmallWorldNetwork, Vec<bool>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = SmallWorldNetwork::generate(SmallWorldConfig::new(n, d), &mut rng).unwrap();
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut rng);
        let mut byz = vec![false; n];
        for &i in idx.iter().take(num_byz) {
            byz[i] = true;
        }
        (net, byz)
    }

    #[test]
    fn counts_are_consistent() {
        let (net, byz) = net_and_byz(800, 8, 20, 1);
        let cats = NodeCategories::compute(&net, &byz, 0.6);
        let counts = cats.counts();
        assert!(counts.is_consistent(), "{counts:?}");
        assert_eq!(counts.byzantine, 20);
        assert_eq!(counts.honest, 780);
    }

    #[test]
    fn byzantine_safe_nodes_are_far_from_byzantine_nodes() {
        let (net, byz) = net_and_byz(600, 8, 10, 2);
        let cats = NodeCategories::compute(&net, &byz, 0.6);
        let byz_nodes: Vec<NodeId> = (0..net.len())
            .filter(|&i| byz[i])
            .map(NodeId::from_index)
            .collect();
        let dist = multi_source_distances(net.g(), &byz_nodes, usize::MAX);
        for v in net.node_ids() {
            if cats.is_byzantine_safe(v) {
                assert!(
                    dist[v.index()] == UNREACHABLE || dist[v.index()] as usize > cats.safety_radius,
                    "Byzantine-safe node {v} is within the safety radius of a Byzantine node"
                );
            }
        }
    }

    #[test]
    fn no_byzantine_node_is_byzantine_safe() {
        let (net, byz) = net_and_byz(400, 6, 15, 3);
        let cats = NodeCategories::compute(&net, &byz, 0.8);
        for v in net.node_ids() {
            if byz[v.index()] {
                assert!(!cats.is_byzantine_safe(v));
                assert!(!cats.is_honest(v));
            }
        }
    }

    #[test]
    fn with_zero_byzantine_nodes_byz_safe_equals_safe() {
        let (net, _) = net_and_byz(500, 8, 0, 4);
        let byz = vec![false; 500];
        let cats = NodeCategories::compute(&net, &byz, 0.6);
        assert_eq!(cats.safe, cats.byzantine_safe);
        let counts = cats.counts();
        assert_eq!(counts.byzantine, 0);
        assert_eq!(counts.bad, counts.not_locally_tree_like);
    }

    #[test]
    fn lemma2_style_bounds_hold_at_scale() {
        // |Safe| = n - o(n) and |Byz-safe| = n - o(n) when the Byzantine
        // count is ~ n^{1-δ}; at n = 2000, δ = 0.6 that is ~ 21 nodes.
        let n = 2000;
        let num_byz = (n as f64).powf(0.4).round() as usize;
        let (net, byz) = net_and_byz(n, 8, num_byz, 5);
        let cats = NodeCategories::compute(&net, &byz, 0.6);
        let counts = cats.counts();
        assert!(
            counts.safe as f64 >= 0.8 * n as f64,
            "safe = {}",
            counts.safe
        );
        assert!(
            counts.byzantine_safe as f64 >= 0.6 * n as f64,
            "byz-safe = {}",
            counts.byzantine_safe
        );
    }

    #[test]
    #[should_panic(expected = "byzantine mask length mismatch")]
    fn mismatched_mask_panics() {
        let (net, _) = net_and_byz(100, 6, 0, 6);
        let _ = NodeCategories::compute(&net, &[false; 5], 0.5);
    }
}
