//! Graph metrics: clustering coefficients, degree statistics and diameter.
//!
//! The small-world property the protocol exploits is a *large clustering
//! coefficient* (a node's neighbours are well connected among themselves);
//! the expander property manifests as a *logarithmic diameter*.  Both are
//! measured here for experiment E6.

use crate::bfs::{bfs_distances, eccentricity, UNREACHABLE};
use crate::csr::Csr;
use crate::ids::NodeId;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Local clustering coefficient of `v`: the fraction of pairs of distinct
/// neighbours of `v` that are themselves adjacent.  Nodes of degree < 2 have
/// coefficient 0 by convention.
pub fn local_clustering(g: &Csr, v: NodeId) -> f64 {
    // Deduplicate neighbours (multigraph-safe) and drop self-loops.
    let mut neigh: Vec<u32> = g
        .neighbors(v)
        .iter()
        .copied()
        .filter(|&u| u as usize != v.index())
        .collect();
    neigh.dedup();
    let deg = neigh.len();
    if deg < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for i in 0..deg {
        for j in (i + 1)..deg {
            if g.has_edge(NodeId(neigh[i]), NodeId(neigh[j])) {
                closed += 1;
            }
        }
    }
    let pairs = deg * (deg - 1) / 2;
    closed as f64 / pairs as f64
}

/// Average (over all nodes) of the local clustering coefficient.
pub fn average_clustering(g: &Csr) -> f64 {
    let n = g.len();
    if n == 0 {
        return 0.0;
    }
    let total: f64 = (0..n)
        .into_par_iter()
        .map(|i| local_clustering(g, NodeId::from_index(i)))
        .sum();
    total / n as f64
}

/// Degree statistics of a graph.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    pub min: usize,
    pub max: usize,
    pub mean: f64,
}

/// Compute minimum / maximum / mean degree.
pub fn degree_stats(g: &Csr) -> DegreeStats {
    let n = g.len();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
        };
    }
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0usize;
    for v in g.node_ids() {
        let d = g.degree(v);
        min = min.min(d);
        max = max.max(d);
        sum += d;
    }
    DegreeStats {
        min,
        max,
        mean: sum as f64 / n as f64,
    }
}

/// Result of a diameter estimate.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiameterEstimate {
    /// A lower bound on the diameter (exact when `exact` is true).
    pub lower_bound: u32,
    /// Whether the bound is exact (full all-pairs sweep was affordable).
    pub exact: bool,
    /// Whether the graph is connected; a disconnected graph has no finite
    /// diameter and `lower_bound` refers to the component of node 0.
    pub connected: bool,
}

/// Estimate the diameter.
///
/// For `n ≤ exact_threshold` the diameter is computed exactly by running a
/// BFS from every node (parallelised); otherwise a multi-sweep heuristic
/// (repeated "BFS from the farthest node found so far") gives a lower bound
/// that is exact on trees and very tight on expanders.
pub fn diameter_estimate(g: &Csr, exact_threshold: usize) -> DiameterEstimate {
    let n = g.len();
    if n == 0 {
        return DiameterEstimate {
            lower_bound: 0,
            exact: true,
            connected: true,
        };
    }
    let first = bfs_distances(g, NodeId(0), usize::MAX);
    let connected = first.iter().all(|&d| d != UNREACHABLE);
    if !connected {
        let far = first
            .iter()
            .filter(|&&d| d != UNREACHABLE)
            .copied()
            .max()
            .unwrap_or(0);
        return DiameterEstimate {
            lower_bound: far,
            exact: false,
            connected: false,
        };
    }
    if n <= exact_threshold {
        let diameter = (0..n)
            .into_par_iter()
            .map(|i| eccentricity(g, NodeId::from_index(i)).unwrap_or(0))
            .max()
            .unwrap_or(0);
        return DiameterEstimate {
            lower_bound: diameter,
            exact: true,
            connected: true,
        };
    }
    // Multi-sweep: start from node 0, repeatedly jump to the farthest node.
    let mut best = 0u32;
    let mut current = NodeId(0);
    for _ in 0..4 {
        let dist = bfs_distances(g, current, usize::MAX);
        let (far_idx, far_d) = dist
            .iter()
            .enumerate()
            .max_by_key(|(_, &d)| d)
            .map(|(i, &d)| (i, d))
            .unwrap_or((0, 0));
        if far_d <= best {
            break;
        }
        best = far_d;
        current = NodeId::from_index(far_idx);
    }
    DiameterEstimate {
        lower_bound: best,
        exact: false,
        connected: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hgraph::HGraph;
    use crate::smallworld::{SmallWorldConfig, SmallWorldNetwork};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn complete(n: usize) -> Csr {
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                edges.push((i, j));
            }
        }
        Csr::from_undirected_edges(n, &edges).unwrap()
    }

    #[test]
    fn clustering_of_complete_graph_is_one() {
        let g = complete(6);
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
        assert!((local_clustering(&g, NodeId(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_star_is_zero() {
        let g = Csr::from_undirected_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(local_clustering(&g, NodeId(0)), 0.0);
        assert_eq!(local_clustering(&g, NodeId(1)), 0.0); // degree 1
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn clustering_of_triangle_with_tail() {
        // Triangle 0-1-2 plus tail 2-3: c(0)=c(1)=1, c(2)=1/3, c(3)=0.
        let g = Csr::from_undirected_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
        assert!((local_clustering(&g, NodeId(2)) - 1.0 / 3.0).abs() < 1e-12);
        assert!((average_clustering(&g) - (1.0 + 1.0 + 1.0 / 3.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_basic() {
        let g = Csr::from_undirected_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 2);
        assert!((s.mean - 1.5).abs() < 1e-12);
    }

    #[test]
    fn diameter_of_path_exact_and_sweep() {
        let g = Csr::from_undirected_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let exact = diameter_estimate(&g, 100);
        assert!(exact.exact);
        assert_eq!(exact.lower_bound, 5);
        let sweep = diameter_estimate(&g, 0);
        assert!(!sweep.exact);
        assert_eq!(sweep.lower_bound, 5, "multi-sweep is exact on paths");
    }

    #[test]
    fn diameter_flags_disconnected() {
        let g = Csr::from_undirected_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let est = diameter_estimate(&g, 100);
        assert!(!est.connected);
    }

    #[test]
    fn small_world_overlay_has_higher_clustering_than_h() {
        // Section 2.1: adding the L edges increases the clustering
        // coefficient compared to the random regular graph H.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let net = SmallWorldNetwork::generate(SmallWorldConfig::new(600, 8), &mut rng).unwrap();
        let cc_h = average_clustering(net.h().csr());
        let cc_g = average_clustering(net.g());
        assert!(
            cc_g > 3.0 * cc_h.max(1e-3),
            "G must have markedly higher clustering: H = {cc_h}, G = {cc_g}"
        );
        assert!(
            cc_g > 0.3,
            "small-world clustering should be large, got {cc_g}"
        );
    }

    #[test]
    fn h_graph_diameter_is_logarithmic() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let h = HGraph::generate(2048, 8, &mut rng).unwrap();
        let est = diameter_estimate(h.csr(), 0);
        assert!(est.connected);
        assert!((est.lower_bound as f64) < 3.0 * (2048f64).log2());
    }
}
