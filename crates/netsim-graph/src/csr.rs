//! Compressed sparse row (CSR) adjacency structure.
//!
//! All graphs in this workspace are undirected and sparse (constant degree),
//! so a CSR layout — one contiguous `targets` array indexed by per-node
//! `offsets` — gives cache-friendly neighbour iteration, which dominates the
//! running time of the flooding protocols and the BFS-heavy analytics.
//!
//! The structure supports multigraphs: `H(n, d)` is formally a multigraph
//! (two Hamiltonian cycles may share an edge), and the paper keeps it that
//! way so that every node has degree exactly `d`.

use crate::error::GraphError;
use crate::ids::NodeId;
use serde::{Deserialize, Serialize};

/// Undirected adjacency in compressed sparse row form.
///
/// Every undirected edge `{u, v}` is stored twice: once in `u`'s list and
/// once in `v`'s.  Parallel edges are stored as many times as they occur.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Csr {
    /// Build a CSR from an undirected edge list over `n` nodes.
    ///
    /// Each `(u, v)` pair is interpreted as one undirected edge; parallel
    /// edges and self-loops are kept as given.
    pub fn from_undirected_edges(n: usize, edges: &[(u32, u32)]) -> Result<Self, GraphError> {
        for &(u, v) in edges {
            if u as usize >= n {
                return Err(GraphError::NodeOutOfRange {
                    index: u as usize,
                    n,
                });
            }
            if v as usize >= n {
                return Err(GraphError::NodeOutOfRange {
                    index: v as usize,
                    n,
                });
            }
        }
        let mut degree = vec![0u32; n];
        for &(u, v) in edges {
            degree[u as usize] += 1;
            if u != v {
                degree[v as usize] += 1;
            } else {
                // A self-loop contributes two endpoints to the same node.
                degree[u as usize] += 1;
            }
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0u32; offsets[n] as usize];
        for &(u, v) in edges {
            targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        let mut csr = Csr { offsets, targets };
        csr.sort_adjacency();
        Ok(csr)
    }

    /// Build a CSR directly from per-node adjacency lists.
    ///
    /// The caller is responsible for symmetry (if `v` appears in `u`'s list,
    /// `u` must appear in `v`'s list); [`Csr::is_symmetric`] can verify it.
    pub fn from_adjacency_lists(lists: &[Vec<u32>]) -> Result<Self, GraphError> {
        let n = lists.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut targets = Vec::new();
        for (u, list) in lists.iter().enumerate() {
            for &v in list {
                if v as usize >= n {
                    return Err(GraphError::NodeOutOfRange {
                        index: v as usize,
                        n,
                    });
                }
                targets.push(v);
            }
            let _ = u;
            offsets.push(targets.len() as u32);
        }
        let mut csr = Csr { offsets, targets };
        csr.sort_adjacency();
        Ok(csr)
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of stored adjacency entries (twice the number of
    /// undirected edges for a loop-free graph).
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.targets.len()
    }

    /// Number of undirected edges (counting multiplicity; self-loops count
    /// once).
    #[inline]
    pub fn num_undirected_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of a node (number of incident edge endpoints).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Neighbours of `v` as raw `u32` indices (sorted, may contain
    /// duplicates for parallel edges).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[u32] {
        let i = v.index();
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterator over the neighbours of `v` as [`NodeId`]s.
    pub fn neighbor_ids(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors(v).iter().map(|&t| NodeId(t))
    }

    /// True if there is at least one edge between `u` and `v`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v.0).is_ok()
    }

    /// Iterate over every node id.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u32).map(NodeId)
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        (0..self.len())
            .map(|i| self.degree(NodeId::from_index(i)))
            .max()
            .unwrap_or(0)
    }

    /// Minimum degree over all nodes.
    pub fn min_degree(&self) -> usize {
        (0..self.len())
            .map(|i| self.degree(NodeId::from_index(i)))
            .min()
            .unwrap_or(0)
    }

    /// Check adjacency symmetry: `v ∈ N(u)` with multiplicity `m` iff
    /// `u ∈ N(v)` with multiplicity `m`.
    pub fn is_symmetric(&self) -> bool {
        for u in 0..self.len() {
            for &v in self.neighbors(NodeId::from_index(u)) {
                let back = self
                    .neighbors(NodeId(v))
                    .iter()
                    .filter(|&&w| w as usize == u)
                    .count();
                let forward = self
                    .neighbors(NodeId::from_index(u))
                    .iter()
                    .filter(|&&w| w == v)
                    .count();
                if back != forward {
                    return false;
                }
            }
        }
        true
    }

    /// Number of parallel-edge duplicates (adjacency entries beyond the
    /// first for each unordered pair), counted over directed entries.
    pub fn parallel_edge_entries(&self) -> usize {
        let mut dup = 0usize;
        for u in 0..self.len() {
            let neigh = self.neighbors(NodeId::from_index(u));
            for w in neigh.windows(2) {
                if w[0] == w[1] {
                    dup += 1;
                }
            }
        }
        dup / 2
    }

    /// Number of self-loop entries.
    pub fn self_loops(&self) -> usize {
        let mut loops = 0usize;
        for u in 0..self.len() {
            loops += self
                .neighbors(NodeId::from_index(u))
                .iter()
                .filter(|&&v| v as usize == u)
                .count();
        }
        loops / 2
    }

    fn sort_adjacency(&mut self) {
        let n = self.len();
        for i in 0..n {
            let range = self.offsets[i] as usize..self.offsets[i + 1] as usize;
            self.targets[range].sort_unstable();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Csr {
        Csr::from_undirected_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn builds_triangle() {
        let g = triangle();
        assert_eq!(g.len(), 3);
        assert_eq!(g.num_undirected_edges(), 3);
        for v in g.node_ids() {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(0)));
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Csr::from_undirected_edges(2, &[(0, 5)]).unwrap_err();
        assert_eq!(err, GraphError::NodeOutOfRange { index: 5, n: 2 });
    }

    #[test]
    fn adjacency_lists_roundtrip() {
        let lists = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        let g = Csr::from_adjacency_lists(&lists).unwrap();
        assert_eq!(g, triangle());
        assert!(g.is_symmetric());
    }

    #[test]
    fn adjacency_lists_reject_out_of_range() {
        let lists = vec![vec![1], vec![0, 7]];
        assert!(Csr::from_adjacency_lists(&lists).is_err());
    }

    #[test]
    fn parallel_edges_are_counted() {
        let g = Csr::from_undirected_edges(2, &[(0, 1), (0, 1)]).unwrap();
        assert_eq!(g.degree(NodeId(0)), 2);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert_eq!(g.parallel_edge_entries(), 1);
        assert!(g.is_symmetric());
    }

    #[test]
    fn self_loops_count_twice_toward_degree() {
        let g = Csr::from_undirected_edges(2, &[(0, 0), (0, 1)]).unwrap();
        assert_eq!(g.degree(NodeId(0)), 3);
        assert_eq!(g.self_loops(), 1);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Csr::from_undirected_edges(5, &[(4, 0), (4, 2), (4, 1), (4, 3)]).unwrap();
        let neigh: Vec<u32> = g.neighbors(NodeId(4)).to_vec();
        assert_eq!(neigh, vec![0, 1, 2, 3]);
    }

    #[test]
    fn min_max_degree() {
        let g = Csr::from_undirected_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 2);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_undirected_edges(0, &[]).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
    }
}
