//! The Watts–Strogatz small-world model.
//!
//! The paper's network model is *inspired by but different from* the
//! Watts–Strogatz model (Section 2.1): Watts–Strogatz permits Θ(log n)
//! degrees after rewiring, whereas the paper's `G = H ∪ L` keeps constant
//! bounded degree.  We implement Watts–Strogatz to reproduce that comparison
//! (experiment E6: clustering coefficient and spectral gap of `H`, `G`, and
//! Watts–Strogatz).

use crate::csr::Csr;
use crate::error::GraphError;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A Watts–Strogatz ring graph: `n` nodes on a ring, each connected to its
/// `k_half` nearest neighbours on each side, with each edge rewired to a
/// uniformly random endpoint with probability `beta`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WattsStrogatz {
    n: usize,
    k_half: usize,
    beta: f64,
    csr: Csr,
    rewired_edges: usize,
}

impl WattsStrogatz {
    /// Generate a Watts–Strogatz graph.
    ///
    /// # Errors
    /// * `n` must satisfy `n > 2 * k_half`;
    /// * `k_half ≥ 1`;
    /// * `beta ∈ [0, 1]`.
    pub fn generate<R: Rng + ?Sized>(
        n: usize,
        k_half: usize,
        beta: f64,
        rng: &mut R,
    ) -> Result<Self, GraphError> {
        if k_half == 0 {
            return Err(GraphError::InvalidParameter {
                name: "k_half",
                value: 0.0,
                reason: "each node needs at least one neighbour per side",
            });
        }
        if n <= 2 * k_half {
            return Err(GraphError::TooFewNodes {
                n,
                minimum: 2 * k_half + 1,
            });
        }
        if !(0.0..=1.0).contains(&beta) {
            return Err(GraphError::InvalidParameter {
                name: "beta",
                value: beta,
                reason: "rewiring probability must lie in [0, 1]",
            });
        }
        // Start from the ring lattice; store edges as an ordered set of
        // (min, max) pairs so rewiring can avoid duplicates and self-loops.
        let mut edges: BTreeSet<(u32, u32)> = BTreeSet::new();
        for i in 0..n {
            for j in 1..=k_half {
                let u = i as u32;
                let v = ((i + j) % n) as u32;
                edges.insert((u.min(v), u.max(v)));
            }
        }
        // Rewire: for each lattice edge (i, i+j) independently with
        // probability beta, replace it by (i, random) avoiding self-loops and
        // duplicates (the standard Watts–Strogatz procedure).
        let mut rewired = 0usize;
        for i in 0..n {
            for j in 1..=k_half {
                let u = i as u32;
                let v = ((i + j) % n) as u32;
                let key = (u.min(v), u.max(v));
                if !edges.contains(&key) {
                    continue; // already rewired away by an earlier step
                }
                if rng.gen::<f64>() < beta {
                    // Try a bounded number of times to find a fresh endpoint.
                    for _ in 0..32 {
                        let w = rng.gen_range(0..n as u32);
                        if w == u {
                            continue;
                        }
                        let candidate = (u.min(w), u.max(w));
                        if edges.contains(&candidate) {
                            continue;
                        }
                        edges.remove(&key);
                        edges.insert(candidate);
                        rewired += 1;
                        break;
                    }
                }
            }
        }
        let edge_list: Vec<(u32, u32)> = edges.into_iter().collect();
        let csr = Csr::from_undirected_edges(n, &edge_list)?;
        Ok(WattsStrogatz {
            n,
            k_half,
            beta,
            csr,
            rewired_edges: rewired,
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Neighbours per side in the initial lattice.
    #[inline]
    pub fn k_half(&self) -> usize {
        self.k_half
    }

    /// The rewiring probability.
    #[inline]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Number of edges that were actually rewired.
    #[inline]
    pub fn rewired_edges(&self) -> usize {
        self.rewired_edges
    }

    /// The adjacency structure.
    #[inline]
    pub fn csr(&self) -> &Csr {
        &self.csr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::metrics::average_clustering;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rejects_bad_parameters() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(WattsStrogatz::generate(10, 0, 0.1, &mut rng).is_err());
        assert!(WattsStrogatz::generate(4, 2, 0.1, &mut rng).is_err());
        assert!(WattsStrogatz::generate(100, 2, 1.5, &mut rng).is_err());
    }

    #[test]
    fn zero_beta_is_the_ring_lattice() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ws = WattsStrogatz::generate(50, 2, 0.0, &mut rng).unwrap();
        assert_eq!(ws.rewired_edges(), 0);
        for v in ws.csr().node_ids() {
            assert_eq!(ws.csr().degree(v), 4, "ring lattice is 2*k_half regular");
        }
        // Lattice with k_half = 2 has high clustering (0.5 exactly).
        let cc = average_clustering(ws.csr());
        assert!((cc - 0.5).abs() < 1e-9, "lattice clustering = {cc}");
    }

    #[test]
    fn rewiring_reduces_clustering() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let lattice = WattsStrogatz::generate(500, 3, 0.0, &mut rng).unwrap();
        let random = WattsStrogatz::generate(500, 3, 1.0, &mut rng).unwrap();
        assert!(random.rewired_edges() > 0);
        let cc_lattice = average_clustering(lattice.csr());
        let cc_random = average_clustering(random.csr());
        assert!(
            cc_random < cc_lattice / 2.0,
            "full rewiring must destroy clustering ({cc_random} vs {cc_lattice})"
        );
    }

    #[test]
    fn edge_count_is_preserved_by_rewiring() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ws = WattsStrogatz::generate(200, 2, 0.3, &mut rng).unwrap();
        assert_eq!(ws.csr().num_undirected_edges(), 200 * 2);
    }

    #[test]
    fn no_self_loops_after_rewiring() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let ws = WattsStrogatz::generate(300, 2, 0.5, &mut rng).unwrap();
        assert_eq!(ws.csr().self_loops(), 0);
        for v in ws.csr().node_ids() {
            let neigh = ws.csr().neighbors(v);
            assert!(!neigh.contains(&(v.index() as u32)));
            let _ = NodeId::from_index(v.index());
        }
    }
}
