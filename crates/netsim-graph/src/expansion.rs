//! Spectral gap and edge-expansion estimation.
//!
//! The paper's termination constant is `b = 4 / log(1 + h/d)` where `h` is
//! the edge expansion of `H` (resp. `γ`, the expansion of the uncrashed
//! core, for Algorithm 2).  Neither quantity is cheap to compute exactly
//! (edge expansion is NP-hard), so we estimate:
//!
//! * the second-largest eigenvalue modulus of the lazy random-walk matrix via
//!   power iteration with deflation of the stationary vector, and
//! * the edge expansion via a Cheeger sweep over the resulting Fiedler-like
//!   vector (which yields an *upper bound* on the true expansion and is the
//!   standard practical estimator) combined with the spectral lower bound
//!   `h ≥ d·(1−λ₂)/2` for `d`-regular graphs.

use crate::csr::Csr;
use crate::ids::NodeId;
use serde::{Deserialize, Serialize};

/// Result of the power-iteration spectral estimate.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpectralEstimate {
    /// Estimated second-largest eigenvalue (in absolute value) of the
    /// random-walk matrix `P = A / d`; in `[0, 1]` for connected graphs.
    pub lambda2: f64,
    /// Spectral gap `1 − λ₂`.
    pub gap: f64,
    /// Number of power iterations performed.
    pub iterations: usize,
}

/// Result of the edge-expansion estimate.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExpansionEstimate {
    /// Cheeger-sweep upper bound on the edge expansion
    /// `h(G) = min_{|S| ≤ n/2} |∂S| / |S|`.
    pub sweep_upper_bound: f64,
    /// Spectral lower bound `d·(1−λ₂)/2` (valid for `d`-regular graphs).
    pub spectral_lower_bound: f64,
    /// The spectral estimate used to derive the bounds.
    pub spectral: SpectralEstimate,
}

impl ExpansionEstimate {
    /// A single working value for `h`: the geometric mean of the two bounds,
    /// clamped into `[lower, upper]`.  The paper only needs a constant-order
    /// estimate of `h` to define `b`, so any value between the bounds is
    /// admissible.
    pub fn working_value(&self) -> f64 {
        let lo = self.spectral_lower_bound.max(1e-9);
        let hi = self.sweep_upper_bound.max(lo);
        (lo * hi).sqrt()
    }
}

/// Estimate `λ₂` of the random-walk matrix of `g` by power iteration with
/// deflation against the all-ones vector (the top eigenvector for regular
/// graphs; for non-regular graphs this is still a serviceable heuristic).
pub fn spectral_gap(g: &Csr, max_iterations: usize, seed: u64) -> SpectralEstimate {
    let n = g.len();
    if n < 2 {
        return SpectralEstimate {
            lambda2: 0.0,
            gap: 1.0,
            iterations: 0,
        };
    }
    // Deterministic pseudo-random starting vector (SplitMix64) so the
    // estimate is reproducible without threading an RNG through.
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut x: Vec<f64> = (0..n)
        .map(|_| (next() as f64 / u64::MAX as f64) - 0.5)
        .collect();
    orthogonalize_against_ones(&mut x);
    normalize(&mut x);

    let degrees: Vec<f64> = (0..n)
        .map(|i| g.degree(NodeId::from_index(i)).max(1) as f64)
        .collect();
    let mut lambda_lazy = 0.0f64;
    let mut iterations = 0usize;
    let mut y = vec![0.0f64; n];
    for it in 0..max_iterations {
        iterations = it + 1;
        // y = (I + P)/2 · x with P = D^{-1} A — the *lazy* random walk, whose
        // spectrum is non-negative; this avoids the −1 eigenvalue of
        // bipartite graphs hijacking the power iteration.
        lazy_walk_step(g, &degrees, &x, &mut y);
        orthogonalize_against_ones(&mut y);
        let norm = l2_norm(&y);
        if norm < 1e-14 {
            lambda_lazy = 0.0;
            break;
        }
        let new_lambda = norm; // since ||x|| = 1, ||P'x|| approximates λ₂(P')
        for (xi, yi) in x.iter_mut().zip(y.iter()) {
            *xi = *yi / norm;
        }
        if (new_lambda - lambda_lazy).abs() < 1e-10 && it > 10 {
            lambda_lazy = new_lambda;
            break;
        }
        lambda_lazy = new_lambda;
    }
    // Undo the lazification: λ₂(P) = 2·λ₂(P') − 1, clamped to [0, 1] (a
    // negative λ₂ means the non-trivial spectrum is entirely negative, i.e.
    // the gap is as large as it gets).
    let lambda2 = (2.0 * lambda_lazy - 1.0).clamp(0.0, 1.0);
    SpectralEstimate {
        lambda2,
        gap: 1.0 - lambda2,
        iterations,
    }
}

/// Estimate the edge expansion of a (nominally `d`-regular) graph.
pub fn edge_expansion(g: &Csr, d: usize, max_iterations: usize, seed: u64) -> ExpansionEstimate {
    let spectral = spectral_gap(g, max_iterations, seed);
    let n = g.len();
    if n < 2 {
        return ExpansionEstimate {
            sweep_upper_bound: 0.0,
            spectral_lower_bound: 0.0,
            spectral,
        };
    }
    // Recover an approximate second eigenvector by re-running the power
    // iteration and keeping the vector (spectral_gap only returns the value).
    let fiedler = approximate_second_eigenvector(g, max_iterations, seed);
    // Cheeger sweep: sort vertices by the eigenvector, consider every prefix
    // S, and compute |∂S| / |S| incrementally.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        fiedler[a]
            .partial_cmp(&fiedler[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut in_s = vec![false; n];
    let mut boundary = 0isize;
    let mut best = f64::INFINITY;
    for (count, &v) in order.iter().enumerate() {
        // Moving v into S flips the contribution of each incident edge.
        for &u in g.neighbors(NodeId::from_index(v)) {
            if in_s[u as usize] {
                boundary -= 1;
            } else {
                boundary += 1;
            }
        }
        in_s[v] = true;
        let size = count + 1;
        if size > n / 2 || size == n {
            break;
        }
        let ratio = boundary.max(0) as f64 / size as f64;
        if ratio < best {
            best = ratio;
        }
    }
    if !best.is_finite() {
        best = d as f64;
    }
    let spectral_lower_bound = d as f64 * spectral.gap / 2.0;
    ExpansionEstimate {
        sweep_upper_bound: best,
        spectral_lower_bound,
        spectral,
    }
}

fn approximate_second_eigenvector(g: &Csr, iters: usize, seed: u64) -> Vec<f64> {
    let n = g.len();
    let mut state = seed.wrapping_add(0xD1B54A32D192ED03);
    let mut next = || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut x: Vec<f64> = (0..n)
        .map(|_| (next() as f64 / u64::MAX as f64) - 0.5)
        .collect();
    orthogonalize_against_ones(&mut x);
    normalize(&mut x);
    let degrees: Vec<f64> = (0..n)
        .map(|i| g.degree(NodeId::from_index(i)).max(1) as f64)
        .collect();
    let mut y = vec![0.0f64; n];
    for _ in 0..iters {
        lazy_walk_step(g, &degrees, &x, &mut y);
        orthogonalize_against_ones(&mut y);
        let norm = l2_norm(&y);
        if norm < 1e-14 {
            break;
        }
        for (xi, yi) in x.iter_mut().zip(y.iter()) {
            *xi = *yi / norm;
        }
    }
    x
}

/// One step of the lazy random walk: `y = (x + D⁻¹A·x) / 2`.
fn lazy_walk_step(g: &Csr, degrees: &[f64], x: &[f64], y: &mut [f64]) {
    let n = g.len();
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi = 0.5 * xi;
    }
    for u in 0..n {
        let xu = 0.5 * x[u] / degrees[u];
        for &v in g.neighbors(NodeId::from_index(u)) {
            y[v as usize] += xu;
        }
    }
}

fn orthogonalize_against_ones(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for xi in x.iter_mut() {
        *xi -= mean;
    }
}

fn normalize(x: &mut [f64]) {
    let norm = l2_norm(x);
    if norm > 1e-14 {
        for xi in x.iter_mut() {
            *xi /= norm;
        }
    }
}

fn l2_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hgraph::HGraph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn complete(n: usize) -> Csr {
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                edges.push((i, j));
            }
        }
        Csr::from_undirected_edges(n, &edges).unwrap()
    }

    fn cycle(n: usize) -> Csr {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        Csr::from_undirected_edges(n, &edges).unwrap()
    }

    #[test]
    fn complete_graph_has_large_gap() {
        // K_n: the non-trivial spectrum of the walk matrix is −1/(n−1) < 0,
        // so the reported λ₂ is ~0 and the gap is close to 1.
        let est = spectral_gap(&complete(20), 500, 1);
        assert!(est.gap > 0.9, "gap = {}", est.gap);
        assert!(est.lambda2 < 0.1, "λ₂ = {}", est.lambda2);
    }

    #[test]
    fn long_cycle_has_tiny_gap() {
        // C_n: λ₂ = cos(2π/n) → 1, so the gap vanishes as n grows.
        let est = spectral_gap(&cycle(200), 2000, 2);
        assert!(est.gap < 0.05, "gap = {}", est.gap);
    }

    #[test]
    fn hnd_graph_has_constant_gap() {
        // Lemma 19: H(n, d) is an expander whp — the spectral gap of the walk
        // matrix stays bounded away from zero as n grows.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let h = HGraph::generate(2000, 8, &mut rng).unwrap();
        let est = spectral_gap(h.csr(), 300, 3);
        assert!(est.gap > 0.2, "expected expander gap, got {}", est.gap);
    }

    #[test]
    fn expansion_bounds_are_ordered() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let h = HGraph::generate(1000, 8, &mut rng).unwrap();
        let est = edge_expansion(h.csr(), 8, 300, 4);
        assert!(est.spectral_lower_bound > 0.0);
        assert!(est.sweep_upper_bound > 0.0);
        // The sweep bound can occasionally dip below the spectral bound due
        // to approximation error, but for an expander both should be Θ(1).
        assert!(
            est.working_value() > 0.1,
            "working value = {}",
            est.working_value()
        );
        assert!(est.sweep_upper_bound <= 8.0 + 1e-9);
    }

    #[test]
    fn cycle_expansion_is_small() {
        let est = edge_expansion(&cycle(400), 2, 2000, 5);
        assert!(
            est.sweep_upper_bound < 0.2,
            "a long cycle has poor expansion, got {}",
            est.sweep_upper_bound
        );
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        let single = Csr::from_undirected_edges(1, &[]).unwrap();
        let est = spectral_gap(&single, 10, 6);
        assert_eq!(est.gap, 1.0);
        let est = edge_expansion(&single, 4, 10, 6);
        assert_eq!(est.sweep_upper_bound, 0.0);
    }
}
