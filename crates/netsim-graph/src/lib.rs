//! # netsim-graph
//!
//! Topology substrate for the Byzantine counting reproduction.
//!
//! This crate implements the network model of *"Network Size Estimation in
//! Small-World Networks under Byzantine Faults"* (Chatterjee, Pandurangan,
//! Robinson):
//!
//! * the `H(n, d)` random regular graph model — the union of `d/2` uniformly
//!   random Hamiltonian cycles on `n` labelled nodes ([`hgraph`]),
//! * the small-world overlay `G = H ∪ L`, where `L` connects every pair of
//!   nodes within `H`-distance `k = ⌈d/3⌉` ([`smallworld`]),
//! * the Watts–Strogatz ring model used for comparison ([`watts_strogatz`]),
//! * graph analytics used by the paper's analysis: BFS balls and boundaries
//!   ([`bfs`]), locally-tree-like classification ([`treelike`]), the node
//!   category partition of Definition 9 ([`categories`]), spectral gap and
//!   edge-expansion estimation ([`expansion`]), clustering coefficients and
//!   diameter ([`metrics`]).
//!
//! All generators take an explicit RNG so that every experiment in the
//! workspace is reproducible from a single seed.
//!
//! ```
//! use netsim_graph::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let net = SmallWorldNetwork::generate(SmallWorldConfig::new(256, 8), &mut rng).unwrap();
//! assert_eq!(net.len(), 256);
//! assert_eq!(net.h().degree(NodeId(0)), 8);
//! assert!(net.k() >= 2);
//! ```

pub mod bfs;
pub mod categories;
pub mod csr;
pub mod error;
pub mod expansion;
pub mod hgraph;
pub mod ids;
pub mod metrics;
pub mod smallworld;
pub mod treelike;
pub mod trees;
pub mod watts_strogatz;

pub use categories::{CategoryCounts, NodeCategories};
pub use csr::Csr;
pub use error::GraphError;
pub use expansion::{ExpansionEstimate, SpectralEstimate};
pub use hgraph::HGraph;
pub use ids::{NodeId, NodeLabel};
pub use smallworld::{SmallWorldConfig, SmallWorldNetwork};
pub use treelike::TreeLikeReport;
pub use trees::{balanced_tree, random_tree};
pub use watts_strogatz::WattsStrogatz;

/// Convenient re-exports for downstream crates.
pub mod prelude {
    pub use crate::bfs::{ball, bfs_distances, boundary, multi_source_distances};
    pub use crate::categories::{CategoryCounts, NodeCategories};
    pub use crate::csr::Csr;
    pub use crate::error::GraphError;
    pub use crate::expansion::{ExpansionEstimate, SpectralEstimate};
    pub use crate::hgraph::HGraph;
    pub use crate::ids::{NodeId, NodeLabel};
    pub use crate::metrics::{average_clustering, diameter_estimate, local_clustering};
    pub use crate::smallworld::{SmallWorldConfig, SmallWorldNetwork};
    pub use crate::treelike::{locally_tree_like_radius, TreeLikeReport};
    pub use crate::trees::{balanced_tree, random_tree};
    pub use crate::watts_strogatz::WattsStrogatz;
}

/// Base-2 logarithm of `n` as an `f64`, with `log2(0) = 0` and `log2(1) = 0`.
///
/// The paper's analysis is phrased entirely in terms of `log n`; this helper
/// keeps the convention consistent across crates.
#[inline]
pub fn log2n(n: usize) -> f64 {
    if n <= 1 {
        0.0
    } else {
        (n as f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2n_small_values() {
        assert_eq!(log2n(0), 0.0);
        assert_eq!(log2n(1), 0.0);
        assert_eq!(log2n(2), 1.0);
        assert_eq!(log2n(1024), 10.0);
    }

    #[test]
    fn log2n_is_monotone() {
        let mut prev = -1.0;
        for n in 1..200 {
            let v = log2n(n);
            assert!(v >= prev, "log2n must be monotone");
            prev = v;
        }
    }
}
