//! Error types for graph construction.

use std::fmt;

/// Errors raised by the topology generators.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// The requested number of nodes is too small for the requested model
    /// (e.g. a Hamiltonian-cycle union needs at least 3 nodes).
    TooFewNodes { n: usize, minimum: usize },
    /// The requested degree is invalid for the model (e.g. `H(n,d)` needs an
    /// even degree of at least 4).
    InvalidDegree { d: usize, reason: &'static str },
    /// A parameter was outside its admissible range.
    InvalidParameter {
        name: &'static str,
        value: f64,
        reason: &'static str,
    },
    /// An edge list referenced a node index `>= n`.
    NodeOutOfRange { index: usize, n: usize },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::TooFewNodes { n, minimum } => {
                write!(f, "too few nodes: n = {n}, minimum is {minimum}")
            }
            GraphError::InvalidDegree { d, reason } => {
                write!(f, "invalid degree d = {d}: {reason}")
            }
            GraphError::InvalidParameter {
                name,
                value,
                reason,
            } => {
                write!(f, "invalid parameter {name} = {value}: {reason}")
            }
            GraphError::NodeOutOfRange { index, n } => {
                write!(f, "node index {index} out of range for n = {n}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::TooFewNodes { n: 2, minimum: 3 };
        assert!(e.to_string().contains("too few nodes"));
        let e = GraphError::InvalidDegree {
            d: 5,
            reason: "must be even",
        };
        assert!(e.to_string().contains("must be even"));
        let e = GraphError::InvalidParameter {
            name: "delta",
            value: 2.0,
            reason: "must be <= 1",
        };
        assert!(e.to_string().contains("delta"));
        let e = GraphError::NodeOutOfRange { index: 9, n: 4 };
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&GraphError::TooFewNodes { n: 1, minimum: 3 });
    }
}
