//! Tree topologies.
//!
//! The paper's protocols are designed for small-world expanders, but the
//! simulation API runs them over arbitrary [`Csr`] topologies; trees are the
//! natural stress test (diameter `Θ(log n)` for balanced trees, up to
//! `Θ(n)` for degenerate random ones, and zero edge-expansion slack —
//! everything an expander is not).

use crate::csr::Csr;
use crate::error::GraphError;
use rand::Rng;

/// A complete `arity`-ary tree on `n` nodes, nodes numbered in BFS order
/// (node 0 is the root, the children of `v` are `arity·v + 1 ..`).
///
/// # Errors
/// Fails when `n == 0` or `arity == 0`.
pub fn balanced_tree(n: usize, arity: usize) -> Result<Csr, GraphError> {
    if n == 0 {
        return Err(GraphError::TooFewNodes { n, minimum: 1 });
    }
    if arity == 0 {
        return Err(GraphError::InvalidDegree {
            d: arity,
            reason: "tree arity must be positive",
        });
    }
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for child in 1..n {
        let parent = (child - 1) / arity;
        edges.push((parent as u32, child as u32));
    }
    Csr::from_undirected_edges(n, &edges)
}

/// A uniformly random labelled tree on `n` nodes (random Prüfer sequence),
/// optionally rejecting attachments that would exceed `max_degree`.
///
/// With `max_degree = None` this is the uniform distribution over all
/// `n^{n-2}` labelled trees; with a bound it greedily redirects edges to the
/// lowest-degree admissible node, keeping the result a tree.
///
/// # Errors
/// Fails when `n == 0` or `max_degree < 2` makes a spanning tree impossible
/// for `n > 2`.
pub fn random_tree<R: Rng + ?Sized>(
    n: usize,
    max_degree: Option<usize>,
    rng: &mut R,
) -> Result<Csr, GraphError> {
    if n == 0 {
        return Err(GraphError::TooFewNodes { n, minimum: 1 });
    }
    if let Some(cap) = max_degree {
        if cap < 2 && n > 2 {
            return Err(GraphError::InvalidDegree {
                d: cap,
                reason: "max_degree < 2 cannot span more than two nodes",
            });
        }
    }
    if n == 1 {
        return Csr::from_undirected_edges(1, &[]);
    }
    if n == 2 {
        return Csr::from_undirected_edges(2, &[(0, 1)]);
    }
    // Prüfer decoding with an optional degree cap.
    let mut degree = vec![1u32; n];
    let prufer: Vec<usize> = (0..n - 2)
        .map(|_| {
            let v = rng.gen_range(0..n);
            degree[v] += 1;
            v
        })
        .collect();
    let cap = max_degree.unwrap_or(usize::MAX) as u32;
    // Redistribute over-cap occurrences to low-degree nodes.
    let mut prufer = prufer;
    for slot in prufer.iter_mut() {
        if degree[*slot] > cap {
            degree[*slot] -= 1;
            let replacement = (0..n).min_by_key(|&u| degree[u]).expect("n > 0");
            degree[replacement] += 1;
            *slot = replacement;
        }
    }
    let mut remaining: Vec<u32> = degree.clone();
    let mut edges = Vec::with_capacity(n - 1);
    // Leaf list: nodes with remaining degree 1, smallest first.
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| remaining[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &p in &prufer {
        let std::cmp::Reverse(leaf) = heap.pop().expect("tree decoding invariant");
        edges.push((leaf as u32, p as u32));
        remaining[leaf] -= 1;
        remaining[p] -= 1;
        if remaining[p] == 1 {
            heap.push(std::cmp::Reverse(p));
        }
    }
    let std::cmp::Reverse(a) = heap.pop().expect("two leaves remain");
    let std::cmp::Reverse(b) = heap.pop().expect("two leaves remain");
    edges.push((a as u32, b as u32));
    Csr::from_undirected_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;
    use crate::ids::NodeId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn is_connected_tree(g: &Csr) -> bool {
        let n = g.len();
        if g.num_undirected_edges() != n - 1 {
            return false;
        }
        let dist = bfs::bfs_distances(g, NodeId(0), usize::MAX);
        dist.iter().all(|&d| d != u32::MAX)
    }

    #[test]
    fn balanced_tree_shape() {
        let t = balanced_tree(15, 2).unwrap();
        assert!(is_connected_tree(&t));
        assert_eq!(t.degree(NodeId(0)), 2);
        assert_eq!(t.degree(NodeId(1)), 3); // parent + two children
        assert_eq!(t.degree(NodeId(14)), 1); // a leaf
        assert!(balanced_tree(0, 2).is_err());
        assert!(balanced_tree(5, 0).is_err());
    }

    #[test]
    fn random_tree_is_a_tree() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for n in [1usize, 2, 3, 10, 257] {
            let t = random_tree(n, None, &mut rng).unwrap();
            assert_eq!(t.len(), n);
            if n > 1 {
                assert!(is_connected_tree(&t), "n={n}");
            }
        }
    }

    #[test]
    fn random_tree_respects_degree_cap() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let t = random_tree(300, Some(4), &mut rng).unwrap();
        assert!(is_connected_tree(&t));
        assert!(t.max_degree() <= 4, "max degree {}", t.max_degree());
    }

    #[test]
    fn random_tree_is_seed_deterministic() {
        let a = random_tree(64, Some(6), &mut ChaCha8Rng::seed_from_u64(3)).unwrap();
        let b = random_tree(64, Some(6), &mut ChaCha8Rng::seed_from_u64(3)).unwrap();
        assert_eq!(a, b);
    }
}
