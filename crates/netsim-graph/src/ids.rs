//! Node identifiers.
//!
//! The paper distinguishes between a node's *position* in the simulation
//! (dense index, used by the simulator for adjacency lookups) and its
//! *identity* (a distinct ID drawn from a large, a-priori unknown space, so
//! that a node cannot infer `log n` from the length of its own ID — see
//! Section 2.1 of the paper).  [`NodeId`] is the dense index; [`NodeLabel`]
//! is the large-space identity.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Dense node index used by the simulator and graph structures.
///
/// `NodeId(i)` always satisfies `i < n` for a graph with `n` nodes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Convert to a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index.
    ///
    /// # Panics
    /// Panics if `idx` does not fit in a `u32`.
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        assert!(idx <= u32::MAX as usize, "node index out of range");
        NodeId(idx as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

/// A node's identity drawn from a large (64-bit) space.
///
/// Nodes — including Byzantine nodes — cannot lie about their own label when
/// talking to a direct neighbour (paper, "Distinct IDs" paragraph), and the
/// label space is much larger than `n`, so labels leak no information about
/// the network size.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeLabel(pub u64);

impl fmt::Debug for NodeLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "id{:016x}", self.0)
    }
}

impl fmt::Display for NodeLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Draw `n` *distinct* labels uniformly at random from the 64-bit space.
///
/// Collisions are astronomically unlikely for realistic `n`, but the paper
/// requires distinct IDs, so we enforce distinctness explicitly.
pub fn random_labels<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<NodeLabel> {
    let mut seen = HashSet::with_capacity(n * 2);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let candidate = rng.gen::<u64>();
        if seen.insert(candidate) {
            out.push(NodeLabel(candidate));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(u32::from(id), 42);
        assert_eq!(NodeId::from(42u32), id);
    }

    #[test]
    fn node_id_ordering_matches_index() {
        assert!(NodeId(3) < NodeId(10));
        assert_eq!(NodeId(7), NodeId(7));
    }

    #[test]
    fn labels_are_distinct() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let labels = random_labels(10_000, &mut rng);
        let set: HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }

    #[test]
    fn labels_are_reproducible_from_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        assert_eq!(random_labels(100, &mut a), random_labels(100, &mut b));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", NodeId(5)), "v5");
        assert_eq!(format!("{}", NodeLabel(0xff)), "00000000000000ff");
    }
}
