//! End-to-end tests of the `byzcount-cli` binary: argument hardening
//! (unknown subcommands and malformed flag values must fail loudly on
//! stderr with a nonzero exit), a full serve → submit → watch smoke
//! over a Unix socket, and the distributed engine's process mode —
//! real `shard-worker` child processes serving socket shard sessions,
//! including a SIGKILL mid-run that must surface as a clean error.

use byzcount_core::sim::{
    AdversarySpec, BatchSpec, EngineSpec, FaultSpec, ParamsSpec, PlacementSpec, RunSpec,
    SeedPolicy, TopologySpec, WorkloadSpec, SPEC_VERSION,
};
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_byzcount-cli"))
}

fn run_cli(args: &[&str]) -> Output {
    bin()
        .args(args)
        .stdin(Stdio::null())
        .output()
        .expect("spawn byzcount-cli")
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn unknown_subcommand_prints_usage_and_fails() {
    for argv in [
        vec!["frobnicate"],
        vec!["e99"],
        vec!["benchh"], // a typo'd name must not fall through to the options
        vec!["e1x", "--trials", "3"],
    ] {
        let out = run_cli(&argv);
        assert!(!out.status.success(), "{argv:?} must fail");
        let err = stderr_of(&out);
        assert!(err.contains("usage:"), "{argv:?} stderr: {err}");
        assert!(err.contains("unknown subcommand"), "{argv:?} stderr: {err}");
    }
}

#[test]
fn empty_invocation_prints_usage_and_fails() {
    let out = run_cli(&[]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("usage:"));
}

#[test]
fn malformed_flag_values_are_rejected_not_defaulted() {
    for (argv, needle) in [
        (vec!["e1", "--trials", "many"], "invalid --trials"),
        (vec!["e1", "--seed", "0x2a"], "invalid --seed"),
        (vec!["e1", "--d", "six"], "invalid --d"),
        (vec!["e1", "--delta", ""], "invalid --delta"),
        (vec!["e1", "--epsilon", "10%"], "invalid --epsilon"),
        (vec!["e1", "--n", "512,,1024"], "invalid --n"),
        (vec!["e1", "--bogus"], "unknown option"),
        (vec!["template", "nope"], "unknown template"),
        (vec!["bench", "--repeats", "0"], "invalid --repeats"),
        (vec!["serve"], "usage:"),
        (vec!["submit", "unix:/tmp/x.sock"], "usage:"),
        (vec!["status", "unix:/tmp/x.sock"], "usage:"),
        (vec!["watch", "unix:/tmp/x.sock"], "usage:"),
        (
            vec!["watch", "unix:/tmp/x.sock", "j", "--cursor", "minus"],
            "invalid --cursor",
        ),
        (vec!["shard-worker"], "requires --listen"),
        (
            vec!["shard-worker", "--bogus"],
            "unknown shard-worker option",
        ),
        (
            vec!["run", "nope.json", "--workers", ","],
            "invalid --workers",
        ),
    ] {
        let out = run_cli(&argv);
        assert!(!out.status.success(), "{argv:?} must fail");
        let err = stderr_of(&out);
        assert!(err.contains(needle), "{argv:?} stderr: {err}");
        assert!(err.contains("usage:"), "{argv:?} stderr: {err}");
    }
}

fn smoke_batch() -> BatchSpec {
    BatchSpec {
        version: SPEC_VERSION,
        run: RunSpec {
            version: SPEC_VERSION,
            topology: TopologySpec::SmallWorld { n: 64, d: 6 },
            workload: WorkloadSpec::Basic,
            placement: PlacementSpec::None,
            adversary: AdversarySpec::Null,
            fault: FaultSpec::None,
            engine: EngineSpec::Sync,
            params: ParamsSpec::Derived {
                delta: 0.6,
                epsilon: 0.1,
            },
            seed: 5,
            max_rounds: None,
        },
        seeds: SeedPolicy::Sequence { base: 5, count: 2 },
        sizes: None,
    }
}

/// Kills the server process on drop so a failing assertion cannot leak it.
struct ServerGuard(Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn serve_submit_watch_round_trip_over_unix_socket() {
    let dir = std::env::temp_dir().join(format!("byzcount-cli-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let sock = format!("unix:{}", dir.join("svc.sock").display());
    let store: PathBuf = dir.join("store");
    let spec_path = dir.join("batch.json");
    std::fs::write(&spec_path, smoke_batch().to_json()).unwrap();

    let server = ServerGuard(
        bin()
            .args([
                "serve",
                &sock,
                "--store",
                store.to_str().unwrap(),
                "--workers",
                "1",
                "--snapshot-every",
                "1",
            ])
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn serve"),
    );

    // Wait for the socket to come up.
    let sock_file = dir.join("svc.sock");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !sock_file.exists() {
        assert!(Instant::now() < deadline, "server socket never appeared");
        std::thread::sleep(Duration::from_millis(25));
    }

    // Submit the tiny sweep under an explicit job id.
    let out = run_cli(&[
        "submit",
        &sock,
        spec_path.to_str().unwrap(),
        "--job",
        "smoke",
    ]);
    assert!(out.status.success(), "submit: {}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("submitted smoke (2 cells"), "{stdout}");

    // Stream records to completion: exactly one NDJSON line per cell,
    // no duplicates, no gaps.
    let out = run_cli(&["watch", &sock, "smoke", "--page", "1"]);
    assert!(out.status.success(), "watch: {}", stderr_of(&out));
    let lines: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(lines.len(), 2, "one record per cell: {lines:?}");
    for (k, line) in lines.iter().enumerate() {
        let value = serde_json::parse_value_complete(line).expect("record line parses");
        let seq = value.field("seq").clone();
        assert_eq!(
            serde_json::to_string(&seq).unwrap(),
            k.to_string(),
            "records arrive in seq order"
        );
    }

    // The status line is shell-parseable and reflects the finished job.
    let out = run_cli(&["status", &sock, "smoke"]);
    assert!(out.status.success(), "status: {}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("state=done completed=2 total=2"),
        "{stdout}"
    );

    // The merged report over the socket is byte-identical to running the
    // same batch locally.
    let merged = run_cli(&["watch", &sock, "smoke", "--merged"]);
    assert!(merged.status.success(), "merged: {}", stderr_of(&merged));
    let direct = run_cli(&["run", spec_path.to_str().unwrap()]);
    assert!(direct.status.success(), "run: {}", stderr_of(&direct));
    assert_eq!(
        String::from_utf8_lossy(&merged.stdout),
        String::from_utf8_lossy(&direct.stdout),
        "campaign result must be byte-identical to the one-shot run"
    );

    // Resubmitting the identical spec re-attaches instead of restarting.
    let again = run_cli(&[
        "submit",
        &sock,
        spec_path.to_str().unwrap(),
        "--job",
        "smoke",
    ]);
    assert!(again.status.success());
    assert!(
        String::from_utf8_lossy(&again.stdout).contains("resumed"),
        "identical resubmission must resume"
    );

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A running `shard-worker` child plus the address it actually bound
/// (TCP port 0 resolves on bind); killed on drop.
struct WorkerGuard {
    child: Child,
    addr: String,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawn `byzcount-cli shard-worker --listen <listen>` and wait for its
/// `listening on <addr>` banner — the synchronization point coordinators
/// rely on before dialing.
fn spawn_shard_worker(listen: &str) -> WorkerGuard {
    let mut child = bin()
        .args(["shard-worker", "--listen", listen])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn shard-worker");
    let stdout = child.stdout.take().expect("worker stdout");
    let mut line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read the worker banner");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected worker banner: {line:?}"))
        .to_string();
    WorkerGuard { child, addr }
}

fn dist_run_spec(n: usize, shards: u32, seed: u64) -> RunSpec {
    RunSpec {
        version: SPEC_VERSION,
        topology: TopologySpec::SmallWorld { n, d: 6 },
        workload: WorkloadSpec::Byzantine,
        placement: PlacementSpec::RandomBudget { delta: 0.6 },
        adversary: AdversarySpec::Combined,
        fault: FaultSpec::None,
        engine: EngineSpec::Distributed { shards },
        params: ParamsSpec::Derived {
            delta: 0.6,
            epsilon: 0.1,
        },
        seed,
        max_rounds: None,
    }
}

#[test]
fn shard_worker_processes_produce_byte_identical_reports() {
    // The process-mode parity contract, end to end through the real
    // binary: one Unix-socket worker and one TCP worker serve a dist-2
    // run whose report must be byte-identical to the in-process run of
    // the same spec (the transport is never a spec field).
    let dir = std::env::temp_dir().join(format!("byzcount-cli-sw-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("dist2.json");
    std::fs::write(&spec_path, dist_run_spec(128, 2, 7).to_json()).unwrap();

    let unix_worker = spawn_shard_worker(&format!("unix:{}", dir.join("w0.sock").display()));
    let tcp_worker = spawn_shard_worker("127.0.0.1:0");
    let fleet = format!("{},{}", unix_worker.addr, tcp_worker.addr);

    let in_process = run_cli(&["run", spec_path.to_str().unwrap()]);
    assert!(in_process.status.success(), "{}", stderr_of(&in_process));
    let remote = run_cli(&["run", spec_path.to_str().unwrap(), "--workers", &fleet]);
    assert!(remote.status.success(), "{}", stderr_of(&remote));
    assert_eq!(
        String::from_utf8_lossy(&in_process.stdout),
        String::from_utf8_lossy(&remote.stdout),
        "process-mode report must be byte-identical to the in-process run"
    );

    drop(unix_worker);
    drop(tcp_worker);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkilled_shard_worker_surfaces_as_a_clean_error_not_a_panic() {
    // Kill-and-recover: SIGKILL the worker process mid-run.  The
    // coordinator must exit nonzero with a `WorkerLost`-style message on
    // stderr — never a panic, never a hang.  The spec is sized so a
    // debug-mode remote run takes several seconds; the kill lands ~1 s
    // in, far from both edges.
    let dir = std::env::temp_dir().join(format!("byzcount-cli-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("dist2-big.json");
    std::fs::write(&spec_path, dist_run_spec(1024, 2, 11).to_json()).unwrap();

    let mut worker = spawn_shard_worker(&format!("unix:{}", dir.join("victim.sock").display()));
    let run = bin()
        .args([
            "run",
            spec_path.to_str().unwrap(),
            "--workers",
            &worker.addr,
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn run");
    std::thread::sleep(Duration::from_millis(1200));
    // SIGKILL, not a graceful shutdown: the worker gets no chance to
    // flush or close cleanly.
    worker.child.kill().expect("SIGKILL the worker");
    let out = run.wait_with_output().expect("run exits");
    assert!(
        !out.status.success(),
        "a run whose worker died must fail, stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        err.contains("shard worker") && err.contains("lost during"),
        "stderr must carry the WorkerLost error, got: {err}"
    );
    assert!(
        !err.contains("panicked"),
        "a lost worker must never panic the coordinator: {err}"
    );

    drop(worker);
    let _ = std::fs::remove_dir_all(&dir);
}
