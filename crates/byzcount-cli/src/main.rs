//! Command-line driver for the Byzantine counting experiments and for
//! executing serialized run specifications.
//!
//! ```text
//! byzcount-cli <experiment> [options]     # regenerate paper tables
//! byzcount-cli run <spec.json|-> [--trace F] [--profile] [--workers A1,A2]
//! byzcount-cli shard-worker --listen <addr> # serve distributed shard sessions
//! byzcount-cli template [run|batch|faulty|async] # print an example spec
//! byzcount-cli bench [--smoke] [--out F] [--profile] # standardized perf suite
//! byzcount-cli trace-check <trace.ndjson> # validate a trace file
//! byzcount-cli serve <addr> [--store DIR] [--workers N] [--snapshot-every K]
//! byzcount-cli submit <addr> <spec.json|-> [--job ID] [--priority P]
//! byzcount-cli status <addr> <job>
//! byzcount-cli stats <addr>
//! byzcount-cli watch <addr> <job> [--cursor C] [--page N] [--merged]
//!
//! Experiments: e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 all
//!
//! Options:
//!   --quick            small workload (default)
//!   --standard         the workload recorded in EXPERIMENTS.md
//!   --n <list>         comma-separated network sizes, e.g. 512,1024,4096
//!   --d <int>          degree of the base expander H
//!   --delta <float>    fault exponent (Byzantine budget n^{1-delta})
//!   --epsilon <float>  error parameter
//!   --trials <int>     trials per configuration
//!   --seed <int>       master seed
//!   --json             emit JSON instead of Markdown tables
//!
//! `run` reads a JSON `RunSpec` (or `BatchSpec` — autodetected by its
//! `seeds` field) from the given file or stdin (`-`), executes it with the
//! full scenario registry, and prints the `RunReport` / `BatchReport` JSON
//! to stdout.  The same spec and seed always produce byte-identical output.
//! `--workers addr1,addr2,...` makes distributed-engine runs (`"engine":
//! {"distributed": ...}` / `--engine dist-S`) dial remote `shard-worker`
//! processes instead of spawning in-process pipe threads — shard `s`
//! connects to address `s % len`.  Pure transport policy: the spec never
//! records the transport and the report is byte-identical either way.
//!
//! `shard-worker --listen <addr>` runs a stateless shard-worker process:
//! it accepts connections on a Unix (`unix:/path.sock`) or TCP
//! (`host:port`) socket, prints `listening on <addr>` to stdout once
//! bound, and serves each connection's shard session on its own thread
//! (the coordinator's hello carries the shard assignment and the run's
//! spec, so one worker fleet serves any sequence of runs).
//! `--trace FILE` additionally writes an NDJSON structured trace of the
//! run (Chrome trace-event format, byte-deterministic for equal
//! spec+seed; load it in `chrome://tracing` or Perfetto) and `--profile`
//! prints a phase-level timing table (count / total / p50 / p90 / p99 per
//! engine phase) to stderr.  Both are observation-only: the report JSON
//! on stdout is byte-identical with or without them.  `trace-check`
//! validates a trace file — every line a known event, spans balanced,
//! `ts` strictly increasing — and prints its counter totals.
//!
//! `bench` runs the standardized round-loop performance suite (counting +
//! all four baselines × {clean, faulty} networks × the configured sizes)
//! and writes machine-readable JSON — see `bench::suite` and the README's
//! "Performance" section.  Options: `--smoke` (n = 256, one repeat),
//! `--sizes 1024,4096`, `--repeats N`, `--seed N`, `--out FILE` (default
//! `BENCH_roundloop.json`; `-` = stdout only), `--baseline PREV.json`
//! (join a previous report to compute per-cell speedups), `--shards S`
//! (run every cell on the sharded engine with `S` shards — byte-identical
//! results, different core mapping), `--engine sync|async|sharded-S`
//! (general engine selection; `async` is the event-driven engine with
//! uniform clocks — byte-identical results, event-queue execution),
//! `--profile` (attach a phase profiler to one *extra* run per cell and
//! embed the phase table in each entry's `phases` block — the timed
//! repeats that feed the throughput columns never carry a recorder).
//!
//! `stats` asks a campaign server for live telemetry (protocol minor 1):
//! uptime, worker utilization, queue depth, cells/s, WAL fsync latency
//! percentiles, and per-job progress with an ETA.
//!
//! `serve` runs the campaign service (see the README's "Campaign service"
//! section): a WAL-checkpointed, resumable sweep scheduler behind a
//! line-delimited JSON protocol on a Unix (`unix:/path.sock`) or TCP
//! (`host:port`) socket.  `submit` sends a spec — a `CampaignSpec`, or a
//! bare `BatchSpec`/`RunSpec` that is wrapped automatically — and `watch`
//! streams the job's records as NDJSON from a cursor (`--merged` instead
//! prints the final merged `BatchReport`, byte-identical to what
//! `byzcount-cli run` prints for the same batch).
//! ```

use byzcount_analysis::experiments::{self, ExperimentConfig};
use byzcount_analysis::{campaign, Table};
use byzcount_core::sim::{
    AdversarySpec, BatchSpec, ClockPlan, EngineSpec, FaultSpec, ParamsSpec, PlacementSpec, RunSpec,
    SeedPolicy, TopologySpec, WorkloadSpec, SPEC_VERSION,
};
use netsim_trace::{check_trace, Fanout, PhaseProfiler, Recorder, TraceWriter};
use std::env;
use std::io::{Read, Write};
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage: byzcount-cli <e1|e2|e3|e4|e5|e6|e7|e8|e9|e10|e11|e12|e13|all> \
         [--quick|--standard] [--n 512,1024] [--d 6] [--delta 0.6] \
         [--epsilon 0.1] [--trials 3] [--seed 42] [--json]\n\
         \x20      byzcount-cli run <spec.json|-> [--trace FILE] [--profile] \
         [--workers ADDR1,ADDR2,...]\n\
         \x20      byzcount-cli shard-worker --listen <unix:PATH|HOST:PORT>\n\
         \x20      byzcount-cli template [run|batch|faulty|async]\n\
         \x20      byzcount-cli bench [--smoke] [--sizes 1024,4096] \
         [--repeats 3] [--seed N] [--out FILE|-] [--baseline PREV.json] \
         [--shards S] [--engine sync|async|sharded-S|sharded-async-S|dist-S] [--profile]\n\
         \x20      byzcount-cli trace-check <trace.ndjson>\n\
         \x20      byzcount-cli serve <unix:PATH|HOST:PORT> [--store DIR] \
         [--workers N] [--snapshot-every K]\n\
         \x20      byzcount-cli submit <addr> <spec.json|-> [--job ID] [--priority P]\n\
         \x20      byzcount-cli status <addr> <job>\n\
         \x20      byzcount-cli stats <addr>\n\
         \x20      byzcount-cli watch <addr> <job> [--cursor C] [--page N] [--merged]"
    );
    ExitCode::from(2)
}

/// Parse a `--engine` value: `sync`, `async` (event-driven engine,
/// uniform clocks), `sharded-S`, `sharded-async-S` (per-shard calendar
/// queues, uniform clocks) or `dist-S` (shard workers over the binary
/// wire protocol).
fn parse_engine(value: &str) -> Option<EngineSpec> {
    match value {
        "sync" => Some(EngineSpec::Sync),
        "async" => Some(EngineSpec::asynchronous()),
        other => {
            if let Some(s) = other.strip_prefix("sharded-async-") {
                s.parse::<u32>()
                    .ok()
                    .filter(|&shards| shards >= 1)
                    .map(|shards| EngineSpec::ShardedAsync {
                        shards,
                        clocks: ClockPlan::Uniform,
                    })
            } else if let Some(s) = other.strip_prefix("dist-") {
                s.parse::<u32>()
                    .ok()
                    .filter(|&shards| shards >= 1)
                    .map(|shards| EngineSpec::Distributed { shards })
            } else {
                other
                    .strip_prefix("sharded-")
                    .and_then(|s| s.parse::<u32>().ok())
                    .filter(|&shards| shards >= 1)
                    .map(|shards| EngineSpec::Sharded { shards })
            }
        }
    }
}

fn cmd_bench(args: &[String]) -> ExitCode {
    // `--smoke` is a preset, applied first regardless of argument order, so
    // it never silently discards an explicit `--sizes`/`--repeats`/`--seed`
    // given elsewhere on the command line.
    let mut cfg = if args.iter().any(|a| a == "--smoke") {
        bench::suite::BenchConfig::smoke()
    } else {
        bench::suite::BenchConfig::standard()
    };
    let mut out = "BENCH_roundloop.json".to_string();
    let mut baseline: Option<(String, bench::suite::BenchReport)> = None;
    // `--shards` and `--engine` both select the engine; a command line
    // naming more than one selection is ambiguous (last-wins would depend
    // on argument order) and is rejected instead.
    let mut engine_flag: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {}
            "--profile" => cfg.profile = true,
            "--sizes" | "--repeats" | "--seed" | "--out" | "--baseline" | "--shards"
            | "--engine" => {
                let Some(value) = args.get(i + 1) else {
                    return usage();
                };
                match args[i].as_str() {
                    "--sizes" => {
                        let parsed: Result<Vec<usize>, _> =
                            value.split(',').map(|s| s.trim().parse()).collect();
                        match parsed {
                            Ok(sizes) if !sizes.is_empty() => cfg.sizes = sizes,
                            _ => {
                                eprintln!("byzcount-cli: invalid --sizes value `{value}`");
                                return usage();
                            }
                        }
                    }
                    "--repeats" => match value.parse::<usize>() {
                        Ok(repeats) if repeats >= 1 => cfg.repeats = repeats,
                        _ => {
                            eprintln!("byzcount-cli: invalid --repeats value `{value}`");
                            return usage();
                        }
                    },
                    "--seed" => match value.parse() {
                        Ok(seed) => cfg.seed = seed,
                        Err(_) => {
                            eprintln!("byzcount-cli: invalid --seed value `{value}`");
                            return usage();
                        }
                    },
                    "--out" => out = value.clone(),
                    flag @ ("--shards" | "--engine") => {
                        if let Some(previous) = engine_flag {
                            eprintln!(
                                "byzcount-cli: {flag} conflicts with {previous}: \
                                 give exactly one engine selection"
                            );
                            return usage();
                        }
                        engine_flag = Some(if flag == "--shards" {
                            "--shards"
                        } else {
                            "--engine"
                        });
                        match flag {
                            "--shards" => match value.parse::<u32>() {
                                Ok(shards) if shards >= 1 => {
                                    cfg.engine = EngineSpec::Sharded { shards };
                                }
                                _ => {
                                    eprintln!("byzcount-cli: invalid --shards value `{value}`");
                                    return usage();
                                }
                            },
                            _ => match parse_engine(value) {
                                Some(engine) => cfg.engine = engine,
                                None => {
                                    eprintln!("byzcount-cli: invalid --engine value `{value}`");
                                    return usage();
                                }
                            },
                        }
                    }
                    "--baseline" => {
                        let text = match std::fs::read_to_string(value) {
                            Ok(text) => text,
                            Err(err) => {
                                eprintln!("byzcount-cli: cannot read baseline {value}: {err}");
                                return ExitCode::FAILURE;
                            }
                        };
                        match bench::suite::BenchReport::from_json(&text) {
                            Ok(report) => baseline = Some((value.clone(), report)),
                            Err(err) => {
                                eprintln!("byzcount-cli: bad baseline {value}: {err}");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                    _ => unreachable!(),
                }
                i += 1;
            }
            other => {
                eprintln!("unknown bench option: {other}");
                return usage();
            }
        }
        i += 1;
    }
    let suite = bench::suite::run_suite(&cfg, |entry| {
        eprintln!(
            "bench {:>20} {:>6} n={:<6} {:>10.1} ms  {:>9.1} rounds/s  {:>12.0} msg/s",
            entry.workload,
            entry.network,
            entry.n,
            entry.wall_ms,
            entry.rounds_per_s,
            entry.messages_per_s
        );
    });
    let mut suite = match suite {
        Ok(suite) => suite,
        Err(err) => {
            eprintln!("byzcount-cli: bench failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    if let Some((label, base)) = &baseline {
        suite.apply_baseline(base, label);
    }
    let json = suite.to_json();
    // The suite's own completeness check: every cell present, sane numbers,
    // and the JSON parses back.  CI's bench smoke step relies on this.
    if let Err(err) = bench::suite::BenchReport::from_json(&json)
        .map_err(|e| e.to_string())
        .and_then(|parsed| parsed.validate_complete())
    {
        eprintln!("byzcount-cli: bench report failed validation: {err}");
        return ExitCode::FAILURE;
    }
    if out == "-" {
        println!("{json}");
    } else if let Err(err) = std::fs::write(&out, format!("{json}\n")) {
        eprintln!("byzcount-cli: cannot write {out}: {err}");
        return ExitCode::FAILURE;
    } else {
        eprintln!("bench report written to {out}");
    }
    ExitCode::SUCCESS
}

/// An example spec users can start from (also exercised by the test suite).
fn template_run_spec() -> RunSpec {
    RunSpec {
        version: SPEC_VERSION,
        topology: TopologySpec::SmallWorld { n: 1024, d: 6 },
        workload: WorkloadSpec::Byzantine,
        placement: PlacementSpec::RandomBudget { delta: 0.6 },
        adversary: AdversarySpec::Combined,
        fault: FaultSpec::None,
        engine: EngineSpec::Sync,
        params: ParamsSpec::Derived {
            delta: 0.6,
            epsilon: 0.1,
        },
        seed: 42,
        max_rounds: None,
    }
}

/// A template showing the fault layer: Byzantine counting on a network
/// that also loses, delays and churns.
fn template_faulty_spec() -> RunSpec {
    RunSpec {
        fault: FaultSpec::Compose(vec![
            FaultSpec::Loss { rate: 0.05 },
            FaultSpec::Delay {
                max_delay: 2,
                rate: 0.2,
            },
            FaultSpec::Churn {
                rate: 0.002,
                downtime: 10,
            },
        ]),
        ..template_run_spec()
    }
}

/// A template showing the async engine: Byzantine counting where every
/// fourth node runs at a third of the network's clock speed.
fn template_async_spec() -> RunSpec {
    RunSpec {
        engine: EngineSpec::Async {
            clocks: byzcount_core::sim::ClockPlan::Stratified {
                every: 4,
                period: 3,
            },
        },
        ..template_run_spec()
    }
}

fn template_batch_spec() -> BatchSpec {
    BatchSpec {
        version: SPEC_VERSION,
        run: template_run_spec(),
        seeds: SeedPolicy::Sequence { base: 42, count: 8 },
        sizes: Some(vec![512, 1024, 2048]),
    }
}

/// Read a spec argument: a file path or `-` for stdin.
fn read_spec_text(path: &str) -> Result<String, ExitCode> {
    let mut text = String::new();
    let read_result = if path == "-" {
        std::io::stdin().read_to_string(&mut text).map(|_| ())
    } else {
        std::fs::read_to_string(path).map(|s| {
            text = s;
        })
    };
    match read_result {
        Ok(()) => Ok(text),
        Err(err) => {
            eprintln!("byzcount-cli: cannot read {path}: {err}");
            Err(ExitCode::from(2))
        }
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let mut trace_path: Option<String> = None;
    let mut profile = false;
    let mut workers: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--profile" => profile = true,
            "--trace" => {
                let Some(value) = args.get(i + 1) else {
                    return usage();
                };
                trace_path = Some(value.clone());
                i += 1;
            }
            "--workers" => {
                let Some(value) = args.get(i + 1) else {
                    return usage();
                };
                workers = value
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if workers.is_empty() {
                    eprintln!("byzcount-cli: invalid --workers value `{value}`");
                    return usage();
                }
                i += 1;
            }
            other => {
                eprintln!("unknown run option: {other}");
                return usage();
            }
        }
        i += 1;
    }
    let text = match read_spec_text(path) {
        Ok(text) => text,
        Err(code) => return code,
    };
    // Observation-only instrumentation: the report printed to stdout is
    // byte-identical with or without these recorders installed.
    let writer: Option<Arc<TraceWriter>> = trace_path
        .as_ref()
        .map(|p| Arc::new(TraceWriter::to_path(p)));
    let profiler: Option<Arc<PhaseProfiler>> = profile.then(|| Arc::new(PhaseProfiler::new()));
    let mut fanout = Fanout::new();
    if let Some(w) = &writer {
        fanout.push(Arc::clone(w) as Arc<dyn Recorder>);
    }
    if let Some(p) = &profiler {
        fanout.push(Arc::clone(p) as Arc<dyn Recorder>);
    }
    let recorder: Option<&dyn Recorder> = if fanout.is_empty() {
        None
    } else {
        Some(&fanout)
    };
    // A BatchSpec is distinguished by its `seeds` field.
    let is_batch = serde_json::parse_value_complete(&text)
        .map(|v| v.field("seeds") != &serde_json::Value::Null)
        .unwrap_or(false);
    let outcome = if is_batch {
        BatchSpec::from_json(&text)
            .and_then(|spec| campaign::execute_batch_workers(&spec, recorder, &workers))
            .map(|report| report.to_json())
    } else {
        RunSpec::from_json(&text)
            .and_then(|spec| campaign::execute_workers(&spec, recorder, &workers))
            .map(|report| report.to_json())
    };
    if let Some(writer) = &writer {
        writer.finish(); // writes the sorted NDJSON trace to --trace FILE
    }
    if let Some(profiler) = &profiler {
        eprint!("{}", profiler.report().render());
    }
    match outcome {
        Ok(json) => {
            println!("{json}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("byzcount-cli: {err}");
            ExitCode::FAILURE
        }
    }
}

/// `shard-worker --listen <addr>`: a stateless shard-worker process for
/// the distributed engine.  Each accepted connection is one shard
/// session — the coordinator's hello carries the shard assignment and
/// the run's serialized spec, the worker rebuilds its node chunk and
/// serves the round loop, then the connection closes.  Sessions run on
/// their own threads so a multi-shard coordinator (several shards
/// dialing the same worker) cannot deadlock the accept loop.
fn cmd_shard_worker(args: &[String]) -> ExitCode {
    let mut listen: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => {
                let Some(value) = args.get(i + 1) else {
                    return usage();
                };
                listen = Some(value.clone());
                i += 1;
            }
            other => {
                eprintln!("unknown shard-worker option: {other}");
                return usage();
            }
        }
        i += 1;
    }
    let Some(addr) = listen else {
        eprintln!("byzcount-cli: shard-worker requires --listen <addr>");
        return usage();
    };
    let listener = match byzcount_campaign::net::Listener::bind(&addr) {
        Ok(listener) => listener,
        Err(err) => {
            eprintln!("byzcount-cli: cannot listen on {addr}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let bound = match listener.local_addr() {
        Ok(bound) => bound,
        Err(err) => {
            eprintln!("byzcount-cli: cannot resolve bound address: {err}");
            return ExitCode::FAILURE;
        }
    };
    // Coordinators (and tests) wait for this line before dialing; flush
    // so it is visible even through a pipe.
    println!("listening on {bound}");
    let _ = std::io::stdout().flush();
    loop {
        match listener.accept() {
            Ok(Some(mut stream)) => {
                std::thread::spawn(move || {
                    if let Err(err) = byzcount_core::sim::serve_shard_conn(
                        &mut stream,
                        &campaign::FullRegistry,
                        byzcount_core::sim::SHARD_HELLO_TIMEOUT,
                    ) {
                        // One bad session (version skew, mute peer, a
                        // coordinator that died) never takes the worker
                        // down; the fleet stays dialable.
                        eprintln!("byzcount-cli: shard session failed: {err}");
                    }
                });
            }
            Ok(None) => {} // nonblocking accept returned WouldBlock
            Err(err) => {
                eprintln!("byzcount-cli: accept failed on {bound}: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
}

/// Derive a stable default job id from the batch's canonical JSON
/// (FNV-1a 64), so resubmitting the same sweep re-attaches to the same
/// durable state without the user inventing a name.
fn derive_job_id(batch: &BatchSpec) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in batch.to_json().bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("job-{hash:016x}")
}

/// Interpret a submitted spec: a full `CampaignSpec` (has `batch`), a
/// `BatchSpec` (has `seeds`) or a bare `RunSpec` — the latter two are
/// wrapped into a campaign automatically.
fn parse_campaign_spec(text: &str) -> Result<byzcount_campaign::CampaignSpec, String> {
    let value = serde_json::parse_value_complete(text).map_err(|e| e.to_string())?;
    if value.field("batch") != &serde_json::Value::Null {
        return byzcount_campaign::CampaignSpec::from_json(text).map_err(|e| e.to_string());
    }
    let batch = if value.field("seeds") != &serde_json::Value::Null {
        BatchSpec::from_json(text).map_err(|e| e.to_string())?
    } else {
        let run = RunSpec::from_json(text).map_err(|e| e.to_string())?;
        let seed = run.seed;
        BatchSpec {
            version: SPEC_VERSION,
            run,
            seeds: SeedPolicy::Fixed(seed),
            sizes: None,
        }
    };
    let job = derive_job_id(&batch);
    Ok(byzcount_campaign::CampaignSpec::for_batch(job, batch))
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let Some(addr) = args.first() else {
        return usage();
    };
    let mut config = byzcount_campaign::ServerConfig::new("campaigns");
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--store" | "--workers" | "--snapshot-every" => {
                let Some(value) = args.get(i + 1) else {
                    return usage();
                };
                match args[i].as_str() {
                    "--store" => config.store_root = value.into(),
                    "--workers" => match value.parse::<usize>() {
                        Ok(workers) if workers >= 1 => config.workers = workers,
                        _ => {
                            eprintln!("byzcount-cli: invalid --workers value `{value}`");
                            return usage();
                        }
                    },
                    "--snapshot-every" => match value.parse::<usize>() {
                        Ok(every) => config.snapshot_every = every,
                        Err(_) => {
                            eprintln!("byzcount-cli: invalid --snapshot-every value `{value}`");
                            return usage();
                        }
                    },
                    _ => unreachable!(),
                }
                i += 1;
            }
            other => {
                eprintln!("unknown serve option: {other}");
                return usage();
            }
        }
        i += 1;
    }
    match byzcount_campaign::CampaignServer::spawn(addr, config) {
        Ok(server) => {
            eprintln!("byzcount-cli: serving campaigns on {}", server.addr());
            server.join();
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("byzcount-cli: cannot serve on {addr}: {err}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_submit(args: &[String]) -> ExitCode {
    let (Some(addr), Some(path)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let mut job_override: Option<String> = None;
    let mut priority: Option<u8> = None;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--job" | "--priority" => {
                let Some(value) = args.get(i + 1) else {
                    return usage();
                };
                match args[i].as_str() {
                    "--job" => job_override = Some(value.clone()),
                    "--priority" => match value.parse::<u8>() {
                        Ok(p) => priority = Some(p),
                        Err(_) => {
                            eprintln!("byzcount-cli: invalid --priority value `{value}`");
                            return usage();
                        }
                    },
                    _ => unreachable!(),
                }
                i += 1;
            }
            other => {
                eprintln!("unknown submit option: {other}");
                return usage();
            }
        }
        i += 1;
    }
    let text = match read_spec_text(path) {
        Ok(text) => text,
        Err(code) => return code,
    };
    let mut spec = match parse_campaign_spec(&text) {
        Ok(spec) => spec,
        Err(err) => {
            eprintln!("byzcount-cli: bad spec {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(job) = job_override {
        spec.job = job;
    }
    if let Some(p) = priority {
        spec.priority = p;
    }
    if let Err(err) = spec.validate() {
        eprintln!("byzcount-cli: bad spec {path}: {err}");
        return ExitCode::FAILURE;
    }
    let result = byzcount_campaign::Client::connect(addr)
        .and_then(|mut client| client.submit(&spec).map(|ok| (client, ok)));
    match result {
        Ok((_, (cells, resumed))) => {
            println!(
                "submitted {} ({} cells, {})",
                spec.job,
                cells,
                if resumed { "resumed" } else { "fresh" }
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("byzcount-cli: submit failed: {err}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_status(args: &[String]) -> ExitCode {
    let (Some(addr), Some(job)) = (args.first(), args.get(1)) else {
        return usage();
    };
    if let Some(other) = args.get(2) {
        eprintln!("unknown status option: {other}");
        return usage();
    }
    let outcome =
        byzcount_campaign::Client::connect(addr).and_then(|mut client| client.status(job));
    match outcome {
        Ok(status) => {
            // One `key=value` line — trivially parseable from shell (the
            // CI resume leg polls `completed=`).
            println!(
                "job={} state={} completed={} total={} next_seq={} priority={}",
                status.job,
                status.state,
                status.completed,
                status.total,
                status.next_seq,
                status.priority
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("byzcount-cli: status failed: {err}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_stats(args: &[String]) -> ExitCode {
    let Some(addr) = args.first() else {
        return usage();
    };
    if let Some(other) = args.get(1) {
        eprintln!("unknown stats option: {other}");
        return usage();
    }
    let outcome = byzcount_campaign::Client::connect(addr).and_then(|mut client| client.stats());
    match outcome {
        Ok(stats) => {
            // Shell-parseable `key=value` lines: one for the service, one
            // per job (the CI telemetry probe greps `cells_completed=`).
            println!(
                "uptime_s={:.1} workers={} busy_workers={} queue_depth={} \
                 running_jobs={} cells_completed={} cells_pending={} \
                 cells_per_s={:.2} fsyncs={} fsync_p50_us={} fsync_p90_us={} \
                 fsync_p99_us={}",
                stats.uptime_s,
                stats.workers,
                stats.busy_workers,
                stats.queue_depth,
                stats.running_jobs,
                stats.cells_completed,
                stats.cells_pending,
                stats.cells_per_s,
                stats.fsyncs,
                stats.fsync_p50_us,
                stats.fsync_p90_us,
                stats.fsync_p99_us
            );
            for job in &stats.jobs {
                let eta = job
                    .eta_s
                    .map(|s| format!("{s:.1}"))
                    .unwrap_or_else(|| "-".to_string());
                println!(
                    "job={} state={} completed={} total={} eta_s={eta}",
                    job.job, job.state, job.completed, job.total
                );
            }
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("byzcount-cli: stats failed: {err}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_trace_check(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    if let Some(other) = args.get(1) {
        eprintln!("unknown trace-check option: {other}");
        return usage();
    }
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("byzcount-cli: cannot read {path}: {err}");
            return ExitCode::from(2);
        }
    };
    match check_trace(&text) {
        Ok(check) => {
            println!("trace-ok events={} spans={}", check.events, check.spans);
            for (name, total) in &check.counters {
                println!("counter {name}={total}");
            }
            for (name, max) in &check.gauges {
                println!("gauge {name}={max}");
            }
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("byzcount-cli: malformed trace {path}: {err}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_watch(args: &[String]) -> ExitCode {
    let (Some(addr), Some(job)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let mut cursor = 0u64;
    let mut page = 64u32;
    let mut merged = false;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--merged" => merged = true,
            "--cursor" | "--page" => {
                let Some(value) = args.get(i + 1) else {
                    return usage();
                };
                match args[i].as_str() {
                    "--cursor" => match value.parse::<u64>() {
                        Ok(c) => cursor = c,
                        Err(_) => {
                            eprintln!("byzcount-cli: invalid --cursor value `{value}`");
                            return usage();
                        }
                    },
                    "--page" => match value.parse::<u32>() {
                        Ok(p) if p >= 1 => page = p,
                        _ => {
                            eprintln!("byzcount-cli: invalid --page value `{value}`");
                            return usage();
                        }
                    },
                    _ => unreachable!(),
                }
                i += 1;
            }
            other => {
                eprintln!("unknown watch option: {other}");
                return usage();
            }
        }
        i += 1;
    }
    let outcome = byzcount_campaign::Client::connect(addr).and_then(|mut client| {
        // Follow the cursor to the end of the job.  With `--merged`, the
        // records themselves stay quiet and only the final merged report
        // is printed (byte-identical to `byzcount-cli run` on the batch).
        client.watch(job, cursor, page, |record| {
            if !merged {
                let line = serde_json::to_string(record).expect("record serialization cannot fail");
                println!("{line}");
            }
        })?;
        if merged {
            let report = client.merged(job)?;
            println!("{}", report.to_json());
        }
        Ok(())
    });
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("byzcount-cli: watch failed: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Every experiment selector `main` accepts before option parsing.
const EXPERIMENTS: [&str; 14] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "all",
];

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let experiment = args[0].to_lowercase();
    if experiment == "run" {
        return cmd_run(&args[1..]);
    }
    if experiment == "shard-worker" {
        return cmd_shard_worker(&args[1..]);
    }
    if experiment == "bench" {
        return cmd_bench(&args[1..]);
    }
    if experiment == "trace-check" {
        return cmd_trace_check(&args[1..]);
    }
    if experiment == "serve" {
        return cmd_serve(&args[1..]);
    }
    if experiment == "submit" {
        return cmd_submit(&args[1..]);
    }
    if experiment == "status" {
        return cmd_status(&args[1..]);
    }
    if experiment == "stats" {
        return cmd_stats(&args[1..]);
    }
    if experiment == "watch" {
        return cmd_watch(&args[1..]);
    }
    if experiment == "template" {
        match args.get(1).map(String::as_str) {
            None | Some("run") => println!("{}", template_run_spec().to_json()),
            Some("batch") => println!("{}", template_batch_spec().to_json()),
            Some("faulty") => println!("{}", template_faulty_spec().to_json()),
            Some("async") => println!("{}", template_async_spec().to_json()),
            Some(other) => {
                eprintln!("unknown template: {other}");
                return usage();
            }
        }
        // Stdout stays pure JSON (pipe it straight into `run`); the usage
        // hint — including the observability flags — goes to stderr.
        eprintln!(
            "# execute: byzcount-cli run <spec.json|-> [--trace trace.ndjson] [--profile]\n\
             # --trace writes a deterministic NDJSON trace (validate: byzcount-cli trace-check)\n\
             # --profile prints per-phase timings to stderr; neither changes the report JSON"
        );
        return ExitCode::SUCCESS;
    }
    // Reject unknown subcommands *before* option parsing, so a misspelled
    // experiment name fails loudly instead of falling through the option
    // loop first (and a typo like `e14 --trials x` reports the real
    // problem, not a flag error).
    if !EXPERIMENTS.contains(&experiment.as_str()) {
        eprintln!("unknown subcommand: {experiment}");
        return usage();
    }
    let mut cfg = ExperimentConfig::quick();
    let mut json = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = ExperimentConfig::quick(),
            "--standard" => cfg = ExperimentConfig::standard(),
            "--json" => json = true,
            "--n" | "--d" | "--delta" | "--epsilon" | "--trials" | "--seed" => {
                let Some(value) = args.get(i + 1) else {
                    return usage();
                };
                // A value that does not parse is an error, never a silent
                // fall-back to the default.
                match args[i].as_str() {
                    "--n" => {
                        let parsed: Result<Vec<usize>, _> =
                            value.split(',').map(|s| s.trim().parse()).collect();
                        match parsed {
                            Ok(n_values) if !n_values.is_empty() => cfg.n_values = n_values,
                            _ => {
                                eprintln!("byzcount-cli: invalid --n value `{value}`");
                                return usage();
                            }
                        }
                    }
                    "--d" => match value.parse() {
                        Ok(d) => cfg.d = d,
                        Err(_) => {
                            eprintln!("byzcount-cli: invalid --d value `{value}`");
                            return usage();
                        }
                    },
                    "--delta" => match value.parse() {
                        Ok(delta) => cfg.delta = delta,
                        Err(_) => {
                            eprintln!("byzcount-cli: invalid --delta value `{value}`");
                            return usage();
                        }
                    },
                    "--epsilon" => match value.parse() {
                        Ok(epsilon) => cfg.epsilon = epsilon,
                        Err(_) => {
                            eprintln!("byzcount-cli: invalid --epsilon value `{value}`");
                            return usage();
                        }
                    },
                    "--trials" => match value.parse() {
                        Ok(trials) => cfg.trials = trials,
                        Err(_) => {
                            eprintln!("byzcount-cli: invalid --trials value `{value}`");
                            return usage();
                        }
                    },
                    "--seed" => match value.parse() {
                        Ok(seed) => cfg.seed = seed,
                        Err(_) => {
                            eprintln!("byzcount-cli: invalid --seed value `{value}`");
                            return usage();
                        }
                    },
                    _ => unreachable!(),
                }
                i += 1;
            }
            other => {
                eprintln!("unknown option: {other}");
                return usage();
            }
        }
        i += 1;
    }
    let n_big = cfg.n_values.last().copied().unwrap_or(1024);
    let n_small = cfg.n_values.first().copied().unwrap_or(512);
    let tables: Vec<Table> = match experiment.as_str() {
        "e1" => vec![experiments::exp_theorem1(&cfg)],
        "e2" => vec![experiments::exp_rounds(&cfg)],
        "e3" => vec![experiments::exp_approx_factor(&cfg, &[6, 8, 10], n_small)],
        "e4" => vec![experiments::exp_baselines(&cfg, n_big)],
        "e5" => vec![experiments::exp_structure(&cfg)],
        "e6" => vec![experiments::exp_expander(&cfg)],
        "e7" => vec![experiments::exp_discovery(&cfg)],
        "e8" => vec![experiments::exp_fakechain(&cfg, n_big.min(2048))],
        "e9" => vec![experiments::exp_core(&cfg, n_big.min(2048))],
        "e10" => vec![experiments::exp_phases(&cfg, n_big.min(2048))],
        "e11" => vec![experiments::exp_placement(&cfg, n_big.min(2048))],
        "e12" => vec![experiments::exp_degradation(&cfg)],
        // Scale study: quadruple the largest configured size, capped at the
        // standard study's n = 32768 (use `--n` to go further).
        "e13" => vec![experiments::exp_scale(
            &cfg,
            (n_big * 4).clamp(1024, 32768).max(n_big),
        )],
        "all" => experiments::run_all(&cfg),
        _ => return usage(),
    };
    for table in &tables {
        if json {
            println!("{}", table.to_json());
        } else {
            println!("{}", table.to_markdown());
        }
    }
    ExitCode::SUCCESS
}
