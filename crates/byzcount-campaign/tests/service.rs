//! In-process server tests: the full protocol loop over a real TCP
//! socket (ephemeral port), graceful shutdown mid-campaign, and the
//! restore-on-start resume path.

use byzcount_analysis::campaign::FullRegistry;
use byzcount_campaign::client::Client;
use byzcount_campaign::server::{CampaignServer, ServerConfig};
use byzcount_campaign::spec::CampaignSpec;
use byzcount_core::sim::{
    execute_batch, AdversarySpec, BatchSpec, EngineSpec, ParamsSpec, PlacementSpec, RunSpec,
    SeedPolicy, TopologySpec, WorkloadSpec, SPEC_VERSION,
};
use netsim_faults::FaultSpec;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn batch(seed_count: u32) -> BatchSpec {
    BatchSpec {
        version: SPEC_VERSION,
        run: RunSpec {
            version: SPEC_VERSION,
            topology: TopologySpec::SmallWorld { n: 64, d: 6 },
            workload: WorkloadSpec::Basic,
            placement: PlacementSpec::None,
            adversary: AdversarySpec::Null,
            fault: FaultSpec::None,
            engine: EngineSpec::Sync,
            params: ParamsSpec::Derived {
                delta: 0.6,
                epsilon: 0.1,
            },
            seed: 23,
            max_rounds: None,
        },
        seeds: SeedPolicy::Sequence {
            base: 23,
            count: seed_count,
        },
        sizes: None,
    }
}

fn tmp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("byzcount-service-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(store: &Path) -> ServerConfig {
    ServerConfig {
        store_root: store.to_path_buf(),
        workers: 1,
        snapshot_every: 1,
    }
}

fn wait_done(client: &mut Client, job: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = client.status(job).expect("status");
        if status.state == "done" {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "job `{job}` never finished: {status:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn submit_stream_merge_over_tcp() {
    let store = tmp_store("tcp");
    let server = CampaignServer::spawn("127.0.0.1:0", config(&store)).unwrap();
    let spec = CampaignSpec::for_batch("tcp-job", batch(3));

    let mut client = Client::connect(server.addr()).unwrap();
    let (cells, resumed) = client.submit(&spec).unwrap();
    assert_eq!(cells, 3);
    assert!(!resumed);

    // Stream while the job runs: every record exactly once, seqs 0..3.
    let mut seqs = Vec::new();
    let cursor = client.watch("tcp-job", 0, 1, |r| seqs.push(r.seq)).unwrap();
    assert_eq!(seqs, vec![0, 1, 2]);
    assert_eq!(cursor, 3);

    // A second reader paging from an interior cursor sees only the tail.
    let (records, next, done) = client.results("tcp-job", 2, 10).unwrap();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].seq, 2);
    assert_eq!(next, 3);
    assert!(done);

    // Merged report == uninterrupted one-shot, byte for byte.
    let merged = client.merged("tcp-job").unwrap();
    let oneshot = execute_batch(&spec.batch, &FullRegistry).unwrap();
    assert_eq!(merged.to_json(), oneshot.to_json());

    // Unknown jobs and premature merges answer in-band (connection stays
    // usable afterwards).
    assert!(client.status("no-such-job").is_err());
    assert!(client.status("tcp-job").is_ok(), "connection survived");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn duplicate_submit_attaches_and_conflicting_spec_is_rejected() {
    let store = tmp_store("dup");
    let server = CampaignServer::spawn("127.0.0.1:0", config(&store)).unwrap();
    let spec = CampaignSpec::for_batch("dup-job", batch(2));

    let mut client = Client::connect(server.addr()).unwrap();
    client.submit(&spec).unwrap();
    let mut client2 = Client::connect(server.addr()).unwrap();
    let (cells, resumed) = client2.submit(&spec).unwrap();
    assert_eq!(cells, 2);
    assert!(resumed, "identical resubmission attaches");

    let mut conflicting = CampaignSpec::for_batch("dup-job", batch(4));
    conflicting.priority = 9;
    let err = client2.submit(&conflicting).unwrap_err();
    assert!(
        err.to_string().contains("different spec"),
        "conflict must be explicit: {err}"
    );

    wait_done(&mut client, "dup-job");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn shutdown_mid_campaign_then_restart_resumes_to_identical_result() {
    let store = tmp_store("restart");
    let spec = CampaignSpec::for_batch("restart-job", batch(6));

    // Round 1: submit, let at least one cell land, shut down gracefully.
    let server = CampaignServer::spawn("127.0.0.1:0", config(&store)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.submit(&spec).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    let landed = loop {
        let status = client.status("restart-job").unwrap();
        if status.completed >= 1 {
            break status.completed;
        }
        assert!(Instant::now() < deadline, "no progress before shutdown");
        std::thread::sleep(Duration::from_millis(10));
    };
    drop(client);
    server.shutdown();

    // Round 2: a fresh server over the same store adopts the job and
    // finishes it without re-running durable cells.
    let server = CampaignServer::spawn("127.0.0.1:0", config(&store)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let status = client.status("restart-job").expect("job restored on boot");
    assert!(
        status.completed >= landed,
        "durable cells survived the restart"
    );
    wait_done(&mut client, "restart-job");

    let merged = client.merged("restart-job").unwrap();
    let oneshot = execute_batch(&spec.batch, &FullRegistry).unwrap();
    assert_eq!(
        merged.to_json(),
        oneshot.to_json(),
        "restart + resume must be invisible in the merged bytes"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn page_size_bounds_are_protocol_errors_not_silent_clamps() {
    let store = tmp_store("page");
    let server = CampaignServer::spawn("127.0.0.1:0", config(&store)).unwrap();
    let spec = CampaignSpec::for_batch("page-job", batch(3));

    let mut client = Client::connect(server.addr()).unwrap();
    client.submit(&spec).unwrap();
    wait_done(&mut client, "page-job");

    // `max: 0` used to be silently clamped to a one-record page; it is
    // now an in-band protocol error.
    let err = client.results("page-job", 0, 0).unwrap_err();
    assert!(
        err.to_string().contains("page size 0"),
        "zero page must be explicit: {err}"
    );
    // So is a page beyond the documented cap.
    let err = client
        .results("page-job", 0, byzcount_campaign::protocol::MAX_PAGE + 1)
        .unwrap_err();
    assert!(
        err.to_string().contains("exceeds"),
        "over-cap page must be explicit: {err}"
    );
    // Both answered in-band: the connection stays usable, the cap itself
    // is accepted, and paging still yields every record.
    let (records, next, done) = client
        .results("page-job", 0, byzcount_campaign::protocol::MAX_PAGE)
        .unwrap();
    assert_eq!(records.len(), 3);
    assert_eq!(next, 3);
    assert!(done);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn binding_a_live_unix_socket_fails_loudly_but_a_stale_one_is_reclaimed() {
    let dir = tmp_store("unix-bind");
    std::fs::create_dir_all(&dir).unwrap();
    let addr = format!("unix:{}", dir.join("svc.sock").display());

    // A second server must NOT unlink the first one's live socket out
    // from under it (clients would hang; both would claim the store).
    let server = CampaignServer::spawn(&addr, config(&dir.join("store-a"))).unwrap();
    let err = match CampaignServer::spawn(&addr, config(&dir.join("store-b"))) {
        Err(err) => err,
        Ok(_) => panic!("second server bound over a live socket"),
    };
    assert!(
        err.to_string().contains("in use"),
        "live socket must be refused, not stolen: {err}"
    );

    // The first server kept working throughout.
    let mut client = Client::connect(server.addr()).unwrap();
    let spec = CampaignSpec::for_batch("bind-job", batch(1));
    client.submit(&spec).unwrap();
    wait_done(&mut client, "bind-job");
    drop(client);
    server.shutdown();

    // A socket file nobody is accepting on — the killed-server leftover —
    // is stale and gets reclaimed on the next bind.
    assert!(
        dir.join("svc.sock").exists(),
        "precondition: shutdown leaves the socket file behind"
    );
    let server = CampaignServer::spawn(&addr, config(&dir.join("store-a"))).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(
        client.status("bind-job").is_ok(),
        "job restored over the reclaimed socket"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_stops_scheduling_and_resubmit_revives() {
    let store = tmp_store("cancel");
    let server = CampaignServer::spawn("127.0.0.1:0", config(&store)).unwrap();
    let spec = CampaignSpec::for_batch("c-job", batch(4));

    let mut client = Client::connect(server.addr()).unwrap();
    client.submit(&spec).unwrap();
    client.cancel("c-job").unwrap();

    // The job settles into a non-running state; durable records stay.
    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        let status = client.status("c-job").unwrap();
        if status.state == "cancelled" || status.state == "done" {
            break status;
        }
        assert!(
            Instant::now() < deadline,
            "cancel never settled: {status:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    // Streaming a cancelled job terminates (done covers "will never grow").
    let mut count = 0u64;
    client.watch("c-job", 0, 8, |_| count += 1).unwrap();
    assert_eq!(count, status.completed);

    if status.state == "cancelled" {
        // Resubmitting the identical spec revives the job to completion.
        let (_, resumed) = client.submit(&spec).unwrap();
        assert!(resumed);
        wait_done(&mut client, "c-job");
        let merged = client.merged("c-job").unwrap();
        let oneshot = execute_batch(&spec.batch, &FullRegistry).unwrap();
        assert_eq!(merged.to_json(), oneshot.to_json());
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}
