//! Crash-recovery guarantees of the campaign store, locked down two ways:
//!
//! 1. a property test — *any* byte-prefix truncation of a valid WAL
//!    (simulating a torn write, including mid-record) recovers to a
//!    consistent cell set: exactly the records whose frames fit entirely
//!    inside the surviving prefix, nothing more, nothing partial;
//! 2. a kill-and-resume test — interrupt a campaign (no checkpoint, no
//!    clean close), reopen, resume to completion, and assert the merged
//!    `BatchReport` is byte-identical to an uninterrupted one-shot
//!    `execute_batch` of the same sweep.

use byzcount_analysis::campaign::FullRegistry;
use byzcount_campaign::scheduler::{merged_report, run_campaign, RunOutcome, RunnerConfig};
use byzcount_campaign::spec::CampaignSpec;
use byzcount_campaign::wal::CampaignStore;
use byzcount_core::sim::{
    execute_batch, execute_spec, AdversarySpec, BatchSpec, EngineSpec, ParamsSpec, PlacementSpec,
    RunSpec, SeedPolicy, TopologySpec, WorkloadSpec, SPEC_VERSION,
};
use netsim_faults::FaultSpec;
use proptest::prelude::*;
use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

fn small_batch() -> BatchSpec {
    BatchSpec {
        version: SPEC_VERSION,
        run: RunSpec {
            version: SPEC_VERSION,
            topology: TopologySpec::SmallWorld { n: 64, d: 6 },
            workload: WorkloadSpec::Basic,
            placement: PlacementSpec::None,
            adversary: AdversarySpec::Null,
            fault: FaultSpec::None,
            engine: EngineSpec::Sync,
            params: ParamsSpec::Derived {
                delta: 0.6,
                epsilon: 0.1,
            },
            seed: 11,
            max_rounds: None,
        },
        seeds: SeedPolicy::Sequence { base: 11, count: 2 },
        sizes: Some(vec![48, 64]),
    }
}

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("byzcount-recovery-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Fill a job's WAL with every cell's real report (no checkpoints, so
/// everything lives in the log) and return the frame boundaries: offset
/// `boundaries[k]` is the end of the `k`-th record.
fn build_full_wal(root: &Path, job: &str) -> (CampaignSpec, Vec<u64>) {
    let spec = CampaignSpec::for_batch(job, small_batch());
    let (mut store, _) = CampaignStore::open_or_create(root, &spec).unwrap();
    let mut boundaries = Vec::new();
    let cells = store.cells().to_vec();
    for cell in cells {
        let report = execute_spec(&cell.spec, &FullRegistry).unwrap();
        store.append(cell.index, report).unwrap();
        boundaries.push(
            fs::metadata(CampaignStore::wal_path(root, job))
                .unwrap()
                .len(),
        );
    }
    (spec, boundaries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any prefix truncation — header-torn, payload-torn, or clean at a
    /// frame boundary — recovers exactly the fully-contained records.
    #[test]
    fn any_wal_prefix_recovers_a_consistent_cell_set(cut_milli in 0u64..1001) {
        let root = tmp_root("prefix");
        let (_spec, boundaries) = build_full_wal(&root, "p");
        let full = *boundaries.last().unwrap();
        let cut = full * cut_milli / 1000;

        let wal = CampaignStore::wal_path(&root, "p");
        let file = OpenOptions::new().write(true).open(&wal).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        let store = CampaignStore::open(&root, "p").unwrap();
        // Exactly the records whose frames fit inside the cut survive.
        let expect_records = boundaries.iter().filter(|&&b| b <= cut).count();
        prop_assert_eq!(store.completed(), expect_records);
        prop_assert_eq!(store.next_seq(), expect_records as u64);
        // Survivors are the *first* records in append order, bitwise
        // re-derivable from their cells' specs.
        for record in store.records() {
            prop_assert!(record.seq < expect_records as u64);
            let cell = &store.cells()[record.cell as usize];
            prop_assert_eq!(cell.id, record.id);
        }
        // The torn tail is physically gone: the WAL now ends exactly at
        // the last surviving frame boundary.
        let floored = boundaries.iter().filter(|&&b| b <= cut).max().copied().unwrap_or(0);
        prop_assert_eq!(fs::metadata(&wal).unwrap().len(), floored);
        // Pending work is the complement of the survivors.
        let total = store.cells().len();
        prop_assert_eq!(store.pending_cells().len(), total - expect_records);
        fs::remove_dir_all(&root).unwrap();
    }
}

/// The resume invariant: interrupt, reopen, finish, and the merged report
/// is byte-identical to the uninterrupted batch.
#[test]
fn kill_and_resume_merges_byte_identical_to_one_shot() {
    let root = tmp_root("resume");
    let spec = CampaignSpec::for_batch("kr", small_batch());

    // Phase 1: run until two cells land, then "crash" — the stop flag
    // plays SIGKILL here (the CI leg does it with a real kill -9); no
    // final state is written beyond what append() already made durable.
    let (store, _) = CampaignStore::open_or_create(&root, &spec).unwrap();
    let store = Mutex::new(store);
    let stop = AtomicBool::new(false);
    let mut landed = 0;
    run_campaign(
        &store,
        &FullRegistry,
        RunnerConfig {
            workers: 1,
            snapshot_every: 1,
            ..RunnerConfig::default()
        },
        &stop,
        |_| {
            landed += 1;
            if landed == 2 {
                stop.store(true, Ordering::SeqCst);
            }
        },
    )
    .unwrap();
    let interrupted_at = store.lock().unwrap().completed();
    assert!(interrupted_at >= 2 && interrupted_at < spec.cells().len());
    drop(store);

    // Phase 2: resume from durable state only.
    let (store, resumed) = CampaignStore::open_or_create(&root, &spec).unwrap();
    assert!(resumed, "durable records must be adopted, not re-run");
    assert_eq!(store.completed(), interrupted_at);
    let store = Mutex::new(store);
    let stop = AtomicBool::new(false);
    let mut rerun = 0;
    let outcome = run_campaign(
        &store,
        &FullRegistry,
        RunnerConfig::default(),
        &stop,
        |_| rerun += 1,
    )
    .unwrap();
    assert_eq!(outcome, RunOutcome::Complete);
    assert_eq!(
        rerun,
        spec.cells().len() - interrupted_at,
        "resume executes only the missing cells"
    );

    // The invariant: merged == uninterrupted, byte for byte.
    let merged = merged_report(&store.lock().unwrap()).unwrap();
    let oneshot = execute_batch(&spec.batch, &FullRegistry).unwrap();
    assert_eq!(merged.to_json(), oneshot.to_json());
    fs::remove_dir_all(&root).unwrap();
}

/// Recovery composes with snapshots: tear the WAL *after* a checkpoint
/// and only the post-snapshot suffix is at stake.
#[test]
fn torn_wal_after_checkpoint_keeps_snapshot_records() {
    let root = tmp_root("snap");
    let spec = CampaignSpec::for_batch("sn", small_batch());
    let (mut store, _) = CampaignStore::open_or_create(&root, &spec).unwrap();
    let cells = store.cells().to_vec();
    let reports: Vec<_> = cells
        .iter()
        .map(|c| execute_spec(&c.spec, &FullRegistry).unwrap())
        .collect();

    store.append(0, reports[0].clone()).unwrap();
    store.append(1, reports[1].clone()).unwrap();
    store.checkpoint().unwrap();
    store.append(2, reports[2].clone()).unwrap();
    store.append(3, reports[3].clone()).unwrap();
    drop(store);

    // Tear the WAL inside its last record.
    let wal = CampaignStore::wal_path(&root, "sn");
    let len = fs::metadata(&wal).unwrap().len();
    let file = OpenOptions::new().write(true).open(&wal).unwrap();
    file.set_len(len - 3).unwrap();
    drop(file);

    let store = CampaignStore::open(&root, "sn").unwrap();
    assert_eq!(store.completed(), 3, "snapshot(2) + intact wal record(1)");
    assert_eq!(store.report_of(0), Some(&reports[0]));
    assert_eq!(store.report_of(1), Some(&reports[1]));
    assert_eq!(store.report_of(2), Some(&reports[2]));
    assert_eq!(store.report_of(3), None);
    fs::remove_dir_all(&root).unwrap();
}
