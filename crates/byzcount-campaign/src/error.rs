//! Campaign service errors.

use byzcount_core::sim::SimError;
use std::fmt;

/// Errors raised by the campaign store, scheduler, protocol and server.
#[derive(Clone, Debug, PartialEq)]
pub enum CampaignError {
    /// A campaign spec is malformed or uses an unsupported version.
    Spec(String),
    /// Filesystem or socket I/O failed.
    Io(String),
    /// A store file is corrupt beyond what torn-tail recovery repairs
    /// (e.g. an unparsable snapshot, or a WAL record for an unknown cell).
    Corrupt(String),
    /// A protocol frame was malformed or violated the handshake rules.
    Protocol(String),
    /// An operation does not apply to the job's current state (unknown
    /// job, paging a cancelled job, merging an incomplete job, …).
    State(String),
    /// Executing a cell failed.
    Sim(SimError),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Spec(msg) => write!(f, "invalid campaign spec: {msg}"),
            CampaignError::Io(msg) => write!(f, "campaign i/o failed: {msg}"),
            CampaignError::Corrupt(msg) => write!(f, "campaign store corrupt: {msg}"),
            CampaignError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            CampaignError::State(msg) => write!(f, "invalid campaign state: {msg}"),
            CampaignError::Sim(err) => write!(f, "cell execution failed: {err}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<SimError> for CampaignError {
    fn from(err: SimError) -> Self {
        CampaignError::Sim(err)
    }
}

impl From<std::io::Error> for CampaignError {
    fn from(err: std::io::Error) -> Self {
        CampaignError::Io(err.to_string())
    }
}
