//! The line-delimited JSON wire protocol of the campaign service.
//!
//! Every frame is one compact JSON object on one `\n`-terminated line,
//! externally tagged by its verb: `{"submit": {...}}`, `{"status":
//! {...}}`, … .  A connection opens with a **hello handshake**: the
//! server sends its `{"hello": {...}}` first, the client answers with
//! its own.  Compatibility is decided per the usual major/minor rules:
//!
//! * different `proto_major` → incompatible, the peer must close;
//! * different `proto_minor` → compatible — a *future* minor may add
//!   verbs or fields, and this implementation tolerates both (unknown
//!   object fields are ignored; an unknown verb draws an `error`
//!   response, not a disconnect).
//!
//! Requests and responses are hand-decoded from the self-describing
//! [`serde::Value`] tree so malformed frames and unknown verbs produce
//! clean errors instead of panics — the property fuzz suite feeds this
//! parser arbitrary bytes.
//!
//! Results are paged with a **cursor**: records carry the store's
//! monotone `seq` number, a `results` request names the first `seq` it
//! has not yet seen, and the response's `cursor` is the next value to
//! ask for.  Polling from cursor 0 to `done` therefore yields every
//! record exactly once, in durable order, even while the job is running.

use crate::error::CampaignError;
use crate::spec::CampaignSpec;
use crate::wal::CellRecord;
use byzcount_core::sim::{BatchReport, SPEC_VERSION};
use serde::{Deserialize, Map, Serialize, Value};

/// Protocol major version: peers must match exactly.
pub const PROTO_MAJOR: u32 = 1;
/// Protocol minor version: peers may differ (additive changes only).
/// Minor 1 added the `stats` verb (live service telemetry).
pub const PROTO_MINOR: u32 = 1;
/// Default page size of a `results` request that names none.
pub const DEFAULT_PAGE: u32 = 64;
/// Hard page-size ceiling of a `results` request.  A page is built and
/// serialized in memory before anything is written back, so an unbounded
/// `max` would let one request buffer an entire job's records; larger
/// requests are rejected (the cursor loop makes more pages cheap).
pub const MAX_PAGE: u32 = 4096;

/// The handshake frame body (sent by both peers, server first).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hello {
    /// Wire-format major version; must equal the peer's.
    pub proto_major: u32,
    /// Wire-format minor version; informational.
    pub proto_minor: u32,
    /// The sender's run-spec schema version.
    pub spec_version: u32,
}

impl Hello {
    /// This implementation's hello.
    pub fn current() -> Self {
        Hello {
            proto_major: PROTO_MAJOR,
            proto_minor: PROTO_MINOR,
            spec_version: SPEC_VERSION,
        }
    }

    /// Apply the compatibility rules to a peer's hello.
    pub fn check_compatible(&self) -> Result<(), CampaignError> {
        if self.proto_major != PROTO_MAJOR {
            return Err(CampaignError::Protocol(format!(
                "incompatible protocol major {} (this side speaks {PROTO_MAJOR})",
                self.proto_major
            )));
        }
        // A differing minor — including a future one — is fine by
        // construction: minors only add.  The spec schema is a separate
        // axis: a peer speaking a *newer* run-spec schema must be turned
        // away here, at handshake time, or its submits would fail
        // mid-stream with a parse error ("newer than supported version")
        // after the session looked healthy.  The rule is shared with the
        // binary wire layer.
        netsim_wire::check_spec_version(SPEC_VERSION, self.spec_version)
            .map_err(|e| CampaignError::Protocol(format!("incompatible hello: {e}")))
    }
}

/// Client → server verbs.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit (or re-attach to) a job.
    Submit {
        /// The campaign to run (boxed: it dwarfs every other verb).
        spec: Box<CampaignSpec>,
    },
    /// Ask for a job's progress counters.
    Status {
        /// Job id.
        job: String,
    },
    /// Page durable records with `seq >= cursor` (at most `max`), or the
    /// merged batch report once done.
    Results {
        /// Job id.
        job: String,
        /// First unseen record sequence number (0 = from the start).
        cursor: u64,
        /// Page size cap (server may return fewer).
        max: u32,
        /// Request the merged [`BatchReport`] instead of raw records;
        /// valid only once the job is complete.
        merged: bool,
    },
    /// Stop scheduling a job's pending cells (durable results stay).
    Cancel {
        /// Job id.
        job: String,
    },
    /// Ask for live service telemetry (added in minor 1).
    Stats,
}

/// A job's progress counters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// Job id.
    pub job: String,
    /// Lifecycle state: `queued`, `running`, `done`, `cancelled` or
    /// `failed`.
    pub state: String,
    /// Total cells in the expansion.
    pub total: u64,
    /// Cells with durable reports.
    pub completed: u64,
    /// The results cursor one past the last durable record.
    pub next_seq: u64,
    /// Scheduling priority.
    pub priority: u8,
}

/// Per-job live telemetry inside a [`ServerStats`] frame.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobTelemetry {
    /// Job id.
    pub job: String,
    /// Lifecycle state (same vocabulary as [`JobStatus::state`]).
    pub state: String,
    /// Cells with durable reports.
    pub completed: u64,
    /// Total cells in the expansion.
    pub total: u64,
    /// Estimated seconds to completion at the current throughput;
    /// `None` when the job is not running or no throughput is
    /// established yet.
    pub eta_s: Option<f64>,
}

/// Live service telemetry: the body of a `stats` response (minor 1).
///
/// Every field is additive — older clients never ask for it, newer
/// servers may append fields that this struct silently ignores.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Seconds since the server process started.
    pub uptime_s: f64,
    /// Configured scheduler worker threads.
    pub workers: u64,
    /// Workers currently executing a cell (instantaneous).
    pub busy_workers: u64,
    /// Jobs waiting for a scheduler slot.
    pub queue_depth: u64,
    /// Jobs currently being scheduled.
    pub running_jobs: u64,
    /// Cells made durable by this process since start.
    pub cells_completed: u64,
    /// Cells still pending across all live jobs.
    pub cells_pending: u64,
    /// Mean cells per second since the process started.
    pub cells_per_s: f64,
    /// WAL fsyncs timed so far.
    pub fsyncs: u64,
    /// WAL fsync latency, 50th percentile (microseconds).
    pub fsync_p50_us: u64,
    /// WAL fsync latency, 90th percentile (microseconds).
    pub fsync_p90_us: u64,
    /// WAL fsync latency, 99th percentile (microseconds).
    pub fsync_p99_us: u64,
    /// Per-job progress and ETA.
    pub jobs: Vec<JobTelemetry>,
}

/// Server → client verbs.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Job accepted; `resumed` is true when it attached to existing
    /// durable state instead of starting fresh.
    Submitted {
        /// Job id.
        job: String,
        /// Total cells in the expansion.
        cells: u64,
        /// Whether prior durable state was resumed.
        resumed: bool,
    },
    /// Progress counters.
    Status(JobStatus),
    /// One page of durable records plus the cursor to continue from.
    Results {
        /// Records with `seq >= ` the requested cursor, in `seq` order.
        records: Vec<CellRecord>,
        /// Next cursor value (first `seq` not included in this page).
        cursor: u64,
        /// Durable records so far (the cursor's current ceiling).
        total: u64,
        /// Whether the job is complete (no more records will ever come).
        done: bool,
    },
    /// The merged report of a complete job.
    Merged {
        /// Byte-identical to the equivalent uninterrupted batch run
        /// (boxed: it dwarfs every other verb).
        report: Box<BatchReport>,
    },
    /// Cancellation acknowledged.
    Cancelled {
        /// Job id.
        job: String,
    },
    /// Live service telemetry (answer to a `stats` request, minor 1).
    Stats(ServerStats),
    /// The request failed; the connection stays usable.
    Error {
        /// Machine-readable kind (`spec`, `state`, `protocol`, …).
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Wrap an error into its wire form.
    pub fn from_error(err: &CampaignError) -> Self {
        let code = match err {
            CampaignError::Spec(_) => "spec",
            CampaignError::Io(_) => "io",
            CampaignError::Corrupt(_) => "corrupt",
            CampaignError::Protocol(_) => "protocol",
            CampaignError::State(_) => "state",
            CampaignError::Sim(_) => "sim",
        };
        Response::Error {
            code: code.to_string(),
            message: err.to_string(),
        }
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

fn tagged(verb: &str, body: Value) -> Value {
    let mut obj = Map::new();
    obj.insert(verb.to_string(), body);
    Value::Obj(obj)
}

fn untag(v: &Value) -> Result<(&str, &Value), serde::Error> {
    let obj = v
        .as_obj()
        .ok_or_else(|| serde::Error::expected("frame object", v))?;
    if obj.len() != 1 {
        return Err(serde::Error::msg(format!(
            "frame must carry exactly one verb, got {} keys",
            obj.len()
        )));
    }
    let (verb, body) = obj.iter().next().expect("len checked");
    Ok((verb.as_str(), body))
}

fn str_field(body: &Value, key: &str) -> Result<String, serde::Error> {
    match body.field(key) {
        Value::Str(s) => Ok(s.clone()),
        Value::Null => Err(serde::Error::msg(format!("missing field `{key}`"))),
        other => Err(serde::Error::expected("string", other)),
    }
}

/// Optional field with a default — absent (Null) keys fall back, present
/// keys must parse.  This is what makes future-minor *removals*
/// unnecessary and future-minor additions invisible.
fn opt_field<T: Deserialize>(body: &Value, key: &str, default: T) -> Result<T, serde::Error> {
    match body.field(key) {
        Value::Null => Ok(default),
        other => T::from_value(other).map_err(|e| e.in_field(key)),
    }
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        match self {
            Request::Submit { spec } => {
                let mut body = Map::new();
                body.insert("spec".into(), spec.to_value());
                tagged("submit", Value::Obj(body))
            }
            Request::Status { job } => {
                let mut body = Map::new();
                body.insert("job".into(), Value::Str(job.clone()));
                tagged("status", Value::Obj(body))
            }
            Request::Results {
                job,
                cursor,
                max,
                merged,
            } => {
                let mut body = Map::new();
                body.insert("job".into(), Value::Str(job.clone()));
                body.insert("cursor".into(), cursor.to_value());
                body.insert("max".into(), max.to_value());
                body.insert("merged".into(), Value::Bool(*merged));
                tagged("results", Value::Obj(body))
            }
            Request::Cancel { job } => {
                let mut body = Map::new();
                body.insert("job".into(), Value::Str(job.clone()));
                tagged("cancel", Value::Obj(body))
            }
            Request::Stats => tagged("stats", Value::Obj(Map::new())),
        }
    }
}

impl Deserialize for Request {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let (verb, body) = untag(v)?;
        match verb {
            "submit" => Ok(Request::Submit {
                spec: Box::new(
                    CampaignSpec::from_value(body.field("spec")).map_err(|e| e.in_field("spec"))?,
                ),
            }),
            "status" => Ok(Request::Status {
                job: str_field(body, "job")?,
            }),
            "results" => Ok(Request::Results {
                job: str_field(body, "job")?,
                cursor: opt_field(body, "cursor", 0u64)?,
                max: opt_field(body, "max", DEFAULT_PAGE)?,
                merged: opt_field(body, "merged", false)?,
            }),
            "cancel" => Ok(Request::Cancel {
                job: str_field(body, "job")?,
            }),
            "stats" => Ok(Request::Stats),
            other => Err(serde::Error::msg(format!("unknown verb `{other}`"))),
        }
    }
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        match self {
            Response::Submitted {
                job,
                cells,
                resumed,
            } => {
                let mut body = Map::new();
                body.insert("job".into(), Value::Str(job.clone()));
                body.insert("cells".into(), cells.to_value());
                body.insert("resumed".into(), Value::Bool(*resumed));
                tagged("submitted", Value::Obj(body))
            }
            Response::Status(status) => tagged("status", status.to_value()),
            Response::Results {
                records,
                cursor,
                total,
                done,
            } => {
                let mut body = Map::new();
                body.insert("records".into(), records.to_value());
                body.insert("cursor".into(), cursor.to_value());
                body.insert("total".into(), total.to_value());
                body.insert("done".into(), Value::Bool(*done));
                tagged("results", Value::Obj(body))
            }
            Response::Merged { report } => {
                let mut body = Map::new();
                body.insert("report".into(), report.to_value());
                tagged("merged", Value::Obj(body))
            }
            Response::Cancelled { job } => {
                let mut body = Map::new();
                body.insert("job".into(), Value::Str(job.clone()));
                tagged("cancelled", Value::Obj(body))
            }
            Response::Stats(stats) => tagged("stats", stats.to_value()),
            Response::Error { code, message } => {
                let mut body = Map::new();
                body.insert("code".into(), Value::Str(code.clone()));
                body.insert("message".into(), Value::Str(message.clone()));
                tagged("error", Value::Obj(body))
            }
        }
    }
}

impl Deserialize for Response {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let (verb, body) = untag(v)?;
        match verb {
            "submitted" => Ok(Response::Submitted {
                job: str_field(body, "job")?,
                cells: opt_field(body, "cells", 0u64)?,
                resumed: opt_field(body, "resumed", false)?,
            }),
            "status" => Ok(Response::Status(
                JobStatus::from_value(body).map_err(|e| e.in_field("status"))?,
            )),
            "results" => Ok(Response::Results {
                records: Vec::<CellRecord>::from_value(body.field("records"))
                    .map_err(|e| e.in_field("records"))?,
                cursor: opt_field(body, "cursor", 0u64)?,
                total: opt_field(body, "total", 0u64)?,
                done: opt_field(body, "done", false)?,
            }),
            "merged" => Ok(Response::Merged {
                report: Box::new(
                    BatchReport::from_value(body.field("report"))
                        .map_err(|e| e.in_field("report"))?,
                ),
            }),
            "cancelled" => Ok(Response::Cancelled {
                job: str_field(body, "job")?,
            }),
            "stats" => Ok(Response::Stats(
                ServerStats::from_value(body).map_err(|e| e.in_field("stats"))?,
            )),
            "error" => Ok(Response::Error {
                code: opt_field(body, "code", "error".to_string())?,
                message: opt_field(body, "message", String::new())?,
            }),
            other => Err(serde::Error::msg(format!("unknown verb `{other}`"))),
        }
    }
}

/// Encode any frame as one compact JSON line (with trailing `\n`).
pub fn encode_line<T: Serialize>(frame: &T) -> String {
    let mut line = serde_json::to_string(frame).expect("frame serialization cannot fail");
    line.push('\n');
    line
}

/// Decode one line into a frame.  Never panics: malformed JSON, wrong
/// shapes and unknown verbs all come back as [`CampaignError::Protocol`].
pub fn decode_line<T: Deserialize>(line: &str) -> Result<T, CampaignError> {
    serde_json::from_str(line.trim_end()).map_err(|e| CampaignError::Protocol(e.to_string()))
}

/// Encode a hello handshake frame.
pub fn encode_hello(hello: &Hello) -> String {
    encode_line(&tagged("hello", hello.to_value()))
}

/// Decode a hello handshake frame (tolerating extra fields from newer
/// minors).
pub fn decode_hello(line: &str) -> Result<Hello, CampaignError> {
    let value: Value = decode_line(line)?;
    let (verb, body) = untag(&value).map_err(|e| CampaignError::Protocol(e.to_string()))?;
    if verb != "hello" {
        return Err(CampaignError::Protocol(format!(
            "expected hello frame, got `{verb}`"
        )));
    }
    Hello::from_value(body).map_err(|e| CampaignError::Protocol(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::tests::demo_batch;

    #[test]
    fn requests_round_trip() {
        let frames = vec![
            Request::Submit {
                spec: Box::new(CampaignSpec::for_batch("j", demo_batch())),
            },
            Request::Status { job: "j".into() },
            Request::Results {
                job: "j".into(),
                cursor: 17,
                max: 5,
                merged: false,
            },
            Request::Cancel { job: "j".into() },
            Request::Stats,
        ];
        for frame in frames {
            let line = encode_line(&frame);
            assert_eq!(line.matches('\n').count(), 1, "one frame, one line");
            let back: Request = decode_line(&line).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn responses_round_trip() {
        let frames = vec![
            Response::Submitted {
                job: "j".into(),
                cells: 6,
                resumed: true,
            },
            Response::Status(JobStatus {
                job: "j".into(),
                state: "running".into(),
                total: 6,
                completed: 2,
                next_seq: 2,
                priority: 3,
            }),
            Response::Results {
                records: vec![],
                cursor: 2,
                total: 2,
                done: false,
            },
            Response::Cancelled { job: "j".into() },
            Response::Stats(ServerStats {
                uptime_s: 12.5,
                workers: 4,
                busy_workers: 3,
                queue_depth: 1,
                running_jobs: 2,
                cells_completed: 40,
                cells_pending: 8,
                cells_per_s: 3.2,
                fsyncs: 40,
                fsync_p50_us: 90,
                fsync_p90_us: 200,
                fsync_p99_us: 512,
                jobs: vec![JobTelemetry {
                    job: "j".into(),
                    state: "running".into(),
                    completed: 4,
                    total: 12,
                    eta_s: Some(2.5),
                }],
            }),
            Response::Error {
                code: "state".into(),
                message: "nope".into(),
            },
        ];
        for frame in frames {
            let back: Response = decode_line(&encode_line(&frame)).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn unknown_verbs_and_malformed_frames_error_cleanly() {
        for line in [
            "{\"frobnicate\": {}}",
            "{\"submit\": {}, \"status\": {}}",
            "[1,2,3]",
            "42",
            "{\"status\": {\"job\": 7}}",
            "not json at all",
            "{\"submit\": {\"spec\": \"nope\"}}",
            "",
        ] {
            let err = decode_line::<Request>(line).unwrap_err();
            assert!(matches!(err, CampaignError::Protocol(_)), "{line} -> {err}");
        }
    }

    #[test]
    fn results_request_fields_have_defaults() {
        let req: Request = decode_line("{\"results\": {\"job\": \"j\"}}").unwrap();
        assert_eq!(
            req,
            Request::Results {
                job: "j".into(),
                cursor: 0,
                max: DEFAULT_PAGE,
                merged: false,
            }
        );
    }

    #[test]
    fn stats_tolerates_future_minor_additions() {
        // A newer server (higher minor) may append fields to the stats
        // body and to each job entry; this client must ignore them and
        // still parse what it knows.
        let line = "{\"stats\": {\"uptime_s\": 1.0, \"workers\": 2, \
                    \"busy_workers\": 0, \"queue_depth\": 0, \
                    \"running_jobs\": 0, \"cells_completed\": 9, \
                    \"cells_pending\": 0, \"cells_per_s\": 9.0, \
                    \"fsyncs\": 9, \"fsync_p50_us\": 1, \"fsync_p90_us\": 2, \
                    \"fsync_p99_us\": 3, \"jobs\": [{\"job\": \"j\", \
                    \"state\": \"done\", \"completed\": 9, \"total\": 9, \
                    \"eta_s\": null, \"gpu_ms\": 17}], \
                    \"brand_new_gauge\": 42}}\n";
        let back: Response = decode_line(line).unwrap();
        match back {
            Response::Stats(stats) => {
                assert_eq!(stats.cells_completed, 9);
                assert_eq!(stats.jobs.len(), 1);
                assert_eq!(stats.jobs[0].eta_s, None);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        // And the old wire shape (minor 0) never carried `stats` at all:
        // an old server answers the verb with a clean protocol error, not
        // a disconnect — modelled here by the unknown-verb path.
        assert!(decode_line::<Response>("{\"statz\": {}}\n").is_err());
    }

    #[test]
    fn hello_versioning_rules() {
        let ours = Hello::current();
        let back = decode_hello(&encode_hello(&ours)).unwrap();
        assert_eq!(back, ours);
        assert!(back.check_compatible().is_ok());

        // A future minor is tolerated — even with fields we do not know —
        // as long as the peer's spec schema is not ahead of ours.
        let future = format!(
            "{{\"hello\": {{\"proto_major\": {PROTO_MAJOR}, \"proto_minor\": {}, \
             \"spec_version\": {SPEC_VERSION}, \"shiny_new_field\": true}}}}\n",
            PROTO_MINOR + 7
        );
        let hello = decode_hello(&future).unwrap();
        assert!(hello.check_compatible().is_ok());

        // A different major is rejected.
        let alien = Hello {
            proto_major: PROTO_MAJOR + 1,
            ..ours
        };
        assert!(alien.check_compatible().is_err());

        // A peer on a *newer* spec schema is rejected at handshake time —
        // its submits could only fail mid-stream ("newer than supported
        // version"), after the session looked healthy.
        let ahead = Hello {
            spec_version: SPEC_VERSION + 1,
            ..ours
        };
        let err = ahead.check_compatible().unwrap_err();
        assert!(
            err.to_string().contains("spec schema"),
            "unexpected error: {err}"
        );
        // Older spec schemas migrate forward and stay compatible.
        let behind = Hello {
            spec_version: SPEC_VERSION - 1,
            ..ours
        };
        assert!(behind.check_compatible().is_ok());

        // A non-hello first frame is rejected.
        assert!(decode_hello("{\"status\": {\"job\": \"j\"}}\n").is_err());
        assert!(decode_hello("garbage\n").is_err());
    }
}
