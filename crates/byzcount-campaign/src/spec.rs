//! The campaign job model.
//!
//! A [`CampaignSpec`] lifts a [`BatchSpec`] into a *job*: a named,
//! prioritised sweep the campaign service can schedule, checkpoint and
//! resume.  The spec expands deterministically into [`CampaignCell`]s —
//! one per `(size, seed)` combination of the batch, in the batch's own
//! size-major, seed-minor order — so the cell at index `k` is the same
//! run on every expansion, on every machine, after every restart.  Each
//! cell also carries an identity tag derived with the workspace-wide
//! [`cell_seed`] helper; the WAL stores the tag with every record, which
//! lets recovery verify a record belongs to the cell it claims to.

use crate::error::CampaignError;
use byzcount_core::sim::{cell_seed, BatchSpec, RunSpec};
use netsim_faults::FaultSpec;
use serde::{Deserialize, Serialize};

/// Version of the campaign-spec schema.  Bump on breaking changes; readers
/// reject specs with a newer version than they understand.  (The embedded
/// batch carries its own `SPEC_VERSION` with the usual migration rules.)
pub const CAMPAIGN_VERSION: u32 = 1;

/// Default cell-claim granularity of the scheduler (cells per claim).
pub const DEFAULT_CHUNK: u32 = 16;

/// A named, prioritised, chunked sweep job.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign schema version ([`CAMPAIGN_VERSION`]).
    pub version: u32,
    /// Job identifier (also the store directory name): `[A-Za-z0-9._-]`,
    /// 1–64 characters.
    pub job: String,
    /// Scheduling priority; higher runs first among queued jobs (ties
    /// break by submission order).
    pub priority: u8,
    /// Cells a worker claims per scheduling step (execution policy only —
    /// results are independent of chunking).  `0` means [`DEFAULT_CHUNK`].
    pub chunk: u32,
    /// The sweep itself.
    pub batch: BatchSpec,
}

impl CampaignSpec {
    /// Wrap a [`BatchSpec`] with campaign defaults.
    pub fn for_batch(job: impl Into<String>, batch: BatchSpec) -> Self {
        CampaignSpec {
            version: CAMPAIGN_VERSION,
            job: job.into(),
            priority: 0,
            chunk: DEFAULT_CHUNK,
            batch,
        }
    }

    /// Check the spec (job-id shape, version, embedded batch).
    pub fn validate(&self) -> Result<(), CampaignError> {
        if self.version > CAMPAIGN_VERSION {
            return Err(CampaignError::Spec(format!(
                "campaign version {} is newer than supported version {CAMPAIGN_VERSION}",
                self.version
            )));
        }
        if self.job.is_empty() || self.job.len() > 64 {
            return Err(CampaignError::Spec("job id must be 1-64 characters".into()));
        }
        if !self
            .job
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
        {
            return Err(CampaignError::Spec(format!(
                "job id `{}` may only contain [A-Za-z0-9._-]",
                self.job
            )));
        }
        self.batch
            .validate()
            .map_err(|e| CampaignError::Spec(e.to_string()))
    }

    /// Upgrade an older (but accepted) spec in place, migrating the
    /// embedded batch to the current `SPEC_VERSION`.
    pub fn migrate(&mut self) {
        if self.version < CAMPAIGN_VERSION {
            self.version = CAMPAIGN_VERSION;
        }
        self.batch.migrate();
    }

    /// Serialize to pretty JSON (canonical: equal specs, equal bytes).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("CampaignSpec serialization cannot fail")
    }

    /// Parse from JSON, validate and migrate.
    pub fn from_json(text: &str) -> Result<Self, CampaignError> {
        let mut spec: CampaignSpec =
            serde_json::from_str(text).map_err(|e| CampaignError::Spec(e.to_string()))?;
        spec.validate()?;
        spec.migrate();
        Ok(spec)
    }

    /// The scheduler's effective claim granularity.
    pub fn chunk(&self) -> usize {
        if self.chunk == 0 {
            DEFAULT_CHUNK as usize
        } else {
            self.chunk as usize
        }
    }

    /// Expand deterministically into the concrete cells, in batch order
    /// (size-major, seed-minor).  The expansion is a pure function of the
    /// spec: index `k` names the same run forever.
    pub fn cells(&self) -> Vec<CampaignCell> {
        self.batch
            .expand()
            .into_iter()
            .enumerate()
            .map(|(index, spec)| CampaignCell {
                index: index as u64,
                id: cell_identity(&spec),
                spec,
            })
            .collect()
    }
}

/// One re-runnable unit of a campaign: position, identity tag and the
/// fully-resolved [`RunSpec`].
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignCell {
    /// Position in expansion order (the results cursor is monotone in it
    /// only per record sequence, not per cell — cells complete out of
    /// order).
    pub index: u64,
    /// Identity tag ([`cell_identity`]) — stored in every WAL record and
    /// cross-checked on recovery.
    pub id: u64,
    /// The run this cell executes.
    pub spec: RunSpec,
}

/// The identity tag of a cell's [`RunSpec`]: the shared [`cell_seed`]
/// derivation over `(workload, clean|faulty network, n)` with the run's
/// own seed as the base.  Equal specs get equal tags; any drift between a
/// recovered record and the re-expanded spec it claims to be (different
/// seed, size, workload or fault-ness) changes the tag and is caught at
/// recovery.
pub fn cell_identity(spec: &RunSpec) -> u64 {
    let network = if spec.fault == FaultSpec::None {
        "clean"
    } else {
        "faulty"
    };
    cell_seed(spec.seed, spec.workload.name(), network, spec.topology.n())
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use byzcount_core::sim::{
        AdversarySpec, EngineSpec, ParamsSpec, PlacementSpec, SeedPolicy, TopologySpec,
        WorkloadSpec, SPEC_VERSION,
    };

    pub(crate) fn demo_batch() -> BatchSpec {
        BatchSpec {
            version: SPEC_VERSION,
            run: RunSpec {
                version: SPEC_VERSION,
                topology: TopologySpec::SmallWorld { n: 64, d: 6 },
                workload: WorkloadSpec::Basic,
                placement: PlacementSpec::None,
                adversary: AdversarySpec::Null,
                fault: FaultSpec::None,
                engine: EngineSpec::Sync,
                params: ParamsSpec::Derived {
                    delta: 0.6,
                    epsilon: 0.1,
                },
                seed: 7,
                max_rounds: None,
            },
            seeds: SeedPolicy::Sequence { base: 7, count: 3 },
            sizes: Some(vec![48, 64]),
        }
    }

    #[test]
    fn campaign_specs_round_trip_canonically() {
        let spec = CampaignSpec::for_batch("sweep-1", demo_batch());
        let json = spec.to_json();
        let back = CampaignSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn job_ids_are_validated() {
        let mut spec = CampaignSpec::for_batch("ok_job-1.x", demo_batch());
        assert!(spec.validate().is_ok());
        spec.job = String::new();
        assert!(spec.validate().is_err());
        spec.job = "has space".into();
        assert!(spec.validate().is_err());
        spec.job = "has/slash".into();
        assert!(spec.validate().is_err());
        spec.job = "x".repeat(65);
        assert!(spec.validate().is_err());
        spec.job = "fine".into();
        spec.version = CAMPAIGN_VERSION + 1;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn expansion_is_deterministic_and_identity_tagged() {
        let spec = CampaignSpec::for_batch("sweep", demo_batch());
        let a = spec.cells();
        let b = spec.cells();
        assert_eq!(a, b);
        assert_eq!(a.len(), 6, "2 sizes x 3 seeds");
        // Indices are the expansion order; identity tags match the shared
        // derivation and differ across cells.
        for (k, cell) in a.iter().enumerate() {
            assert_eq!(cell.index, k as u64);
            assert_eq!(cell.id, cell_identity(&cell.spec));
        }
        let ids: std::collections::HashSet<u64> = a.iter().map(|c| c.id).collect();
        assert_eq!(ids.len(), a.len(), "distinct cells, distinct tags");
        // The tag tracks fault-ness through the shared clean/faulty label.
        let mut faulty = a[0].spec.clone();
        faulty.fault = netsim_faults::FaultSpec::Loss { rate: 0.1 };
        assert_ne!(cell_identity(&faulty), a[0].id);
    }
}
