//! Live service telemetry: what the `stats` verb reports.
//!
//! One [`Telemetry`] instance lives for the whole server process and
//! aggregates observation-only counters — busy workers, cells landed,
//! WAL fsync latencies — from the scheduler and every job store.  The
//! scheduler and WAL never *read* it, so (like the engine recorders) it
//! cannot perturb results; it only prices them.

use netsim_trace::LogHistogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Shared, thread-safe telemetry counters for one server process.
pub struct Telemetry {
    started: Instant,
    busy: AtomicU64,
    cells_done: AtomicU64,
    fsync_ns: Mutex<LogHistogram>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry {
            started: Instant::now(),
            busy: AtomicU64::new(0),
            cells_done: AtomicU64::new(0),
            fsync_ns: Mutex::new(LogHistogram::new()),
        }
    }
}

impl Telemetry {
    /// Fresh counters; the uptime clock starts now.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seconds since the counters were created.
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Mark one worker busy for the guard's lifetime.
    pub fn busy_guard(&self) -> BusyGuard<'_> {
        self.busy.fetch_add(1, Ordering::SeqCst);
        BusyGuard { telemetry: self }
    }

    /// Workers currently executing a cell.
    pub fn busy_workers(&self) -> u64 {
        self.busy.load(Ordering::SeqCst)
    }

    /// Record one durable cell.
    pub fn cell_done(&self) {
        self.cells_done.fetch_add(1, Ordering::SeqCst);
    }

    /// Cells made durable by this process since start.
    pub fn cells_done(&self) -> u64 {
        self.cells_done.load(Ordering::SeqCst)
    }

    /// Mean throughput since start (cells per second).  Always finite:
    /// a fresh instance (zero or sub-tick uptime) reports `0.0`, never
    /// `NaN`/`Inf` — the value goes straight into JSON, which cannot
    /// represent non-finite numbers.
    pub fn cells_per_s(&self) -> f64 {
        let secs = self.uptime_s();
        if secs <= 0.0 {
            return 0.0;
        }
        let rate = self.cells_done() as f64 / secs;
        if rate.is_finite() {
            rate
        } else {
            0.0
        }
    }

    /// Record one WAL fsync duration.
    pub fn record_fsync_ns(&self, ns: u64) {
        self.fsync_ns.lock().expect("fsync lock").record(ns);
    }

    /// `(count, p50, p90, p99)` of the fsync latency histogram, in
    /// nanoseconds.
    pub fn fsync_summary_ns(&self) -> (u64, u64, u64, u64) {
        let hist = self.fsync_ns.lock().expect("fsync lock");
        (
            hist.count(),
            hist.quantile(0.50),
            hist.quantile(0.90),
            hist.quantile(0.99),
        )
    }
}

/// RAII marker of one busy worker; dropping it returns the slot.
pub struct BusyGuard<'a> {
    telemetry: &'a Telemetry,
}

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        self.telemetry.busy.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_guard_counts_nested_scopes() {
        let t = Telemetry::new();
        assert_eq!(t.busy_workers(), 0);
        {
            let _a = t.busy_guard();
            let _b = t.busy_guard();
            assert_eq!(t.busy_workers(), 2);
        }
        assert_eq!(t.busy_workers(), 0);
    }

    #[test]
    fn fsync_summary_is_ordered() {
        let t = Telemetry::new();
        assert_eq!(t.fsync_summary_ns(), (0, 0, 0, 0));
        for ns in [100u64, 1_000, 10_000, 100_000] {
            t.record_fsync_ns(ns);
        }
        let (count, p50, p90, p99) = t.fsync_summary_ns();
        assert_eq!(count, 4);
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p99 >= 100_000, "p99 bucket must cover the max");
    }

    #[test]
    fn throughput_counts_cells() {
        let t = Telemetry::new();
        t.cell_done();
        t.cell_done();
        assert_eq!(t.cells_done(), 2);
        assert!(t.cells_per_s() >= 0.0);
    }

    #[test]
    fn throughput_is_always_finite_and_serializable() {
        // Regression: on a fresh instance the uptime can be zero (or
        // denormal-small), and `cells / secs` used to be able to produce
        // `Inf`/`NaN` — which `serde_json` refuses to serialize, so the
        // stats verb would fail exactly when polled early.  The rate must
        // be finite from the very first instant.
        let t = Telemetry::new();
        let rate = t.cells_per_s();
        assert!(rate.is_finite(), "fresh telemetry rate must be finite");
        assert_eq!(rate, 0.0);
        t.cell_done();
        let rate = t.cells_per_s();
        assert!(rate.is_finite(), "rate with cells must be finite");
        assert!(rate >= 0.0);
        // And the whole stats payload shape survives JSON encoding.
        let encoded = serde_json::to_string(&rate).expect("finite floats encode");
        assert!(!encoded.contains("null"));
    }
}
