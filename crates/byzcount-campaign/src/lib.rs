//! # byzcount-campaign — the campaign service
//!
//! Long sweeps over the byzcount simulation engine, made durable,
//! resumable and streamable:
//!
//! * [`spec`] — the job model: a [`CampaignSpec`]
//!   wraps a `BatchSpec` with a job id, priority and chunking, and
//!   expands deterministically into identity-tagged cells.
//! * [`wal`] — the campaign store: an append-only, checksummed WAL of
//!   per-cell reports plus an atomic snapshot; crash recovery truncates
//!   the torn tail and resumes from the last durable cell.
//! * [`scheduler`] — runs pending cells on a worker pool with graceful
//!   shutdown (in-flight cells finish and are checkpointed) and merges a
//!   complete job into a `BatchReport` byte-identical to an
//!   uninterrupted `execute_batch` run.
//! * [`protocol`] — the versioned, line-delimited JSON wire format:
//!   hello handshake (major must match, minor is additive),
//!   `submit`/`status`/`results`/`cancel`/`stats` verbs, and cursor-paged
//!   streaming of results while the job runs.
//! * [`telemetry`] — observation-only live service counters (worker
//!   utilization, cells/s, WAL fsync latency histogram) surfaced by the
//!   `stats` verb (protocol minor 1).
//! * [`server`] / [`client`] — the two ends of the protocol over Unix or
//!   TCP sockets (`byzcount-cli serve` / `submit` / `watch`).
//!
//! The engine hot path is untouched: cells execute through the same
//! `PreparedRun` machinery as every other entry point, so a campaign is
//! exactly a checkpointed, schedulable view of runs you could have made
//! by hand — with the same bytes in every report.

pub mod client;
pub mod error;
pub mod net;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod spec;
pub mod telemetry;
pub mod wal;

pub use client::Client;
pub use error::CampaignError;
pub use protocol::{
    Hello, JobStatus, JobTelemetry, Request, Response, ServerStats, PROTO_MAJOR, PROTO_MINOR,
};
pub use scheduler::{
    merged_report, run_campaign, run_campaign_telemetry, RunOutcome, RunnerConfig,
};
pub use server::{CampaignServer, ServerConfig};
pub use spec::{cell_identity, CampaignCell, CampaignSpec, CAMPAIGN_VERSION};
pub use telemetry::Telemetry;
pub use wal::{CampaignStore, CellRecord};
