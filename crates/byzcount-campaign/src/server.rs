//! The campaign server: one scheduler, many connections.
//!
//! A [`CampaignServer`] binds a [`Listener`], restores every job found
//! under its store root (the crash-recovery path — incomplete jobs are
//! re-queued automatically), and then runs two kinds of threads:
//!
//! * the **scheduler** — takes the highest-priority queued job
//!   (submission order breaks ties) and drives it with
//!   [`run_campaign_telemetry`], one job at a time, appending every
//!   finished cell to the job's WAL and feeding the live [`Telemetry`]
//!   served by the `stats` verb;
//! * one **connection handler** per client — hello handshake first
//!   (server speaks first), then a request/response loop.  Protocol
//!   errors are answered in-band; only a hello major mismatch or EOF
//!   closes the connection.
//!
//! Shutdown is graceful: the stop flag lets in-flight cells finish,
//! their results are persisted and checkpointed, and the next start
//! resumes from exactly the durable cell set.

use crate::error::CampaignError;
use crate::net::{IoStream, Listener};
use crate::protocol::{
    decode_hello, decode_line, encode_hello, encode_line, Hello, JobStatus, JobTelemetry, Request,
    Response, ServerStats, MAX_PAGE,
};
use crate::scheduler::{run_campaign_telemetry, RunOutcome, RunnerConfig};
use crate::spec::CampaignSpec;
use crate::telemetry::Telemetry;
use crate::wal::CampaignStore;
use byzcount_analysis::campaign::FullRegistry;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Directory holding one subdirectory per job.
    pub store_root: PathBuf,
    /// Worker threads per running job.
    pub workers: usize,
    /// Checkpoint cadence (appends between snapshots; `0` = final only).
    pub snapshot_every: usize,
}

impl ServerConfig {
    /// Defaults: 2 workers, snapshot every 32 cells.
    pub fn new(store_root: impl Into<PathBuf>) -> Self {
        ServerConfig {
            store_root: store_root.into(),
            workers: 2,
            snapshot_every: 32,
        }
    }
}

/// Scheduling lifecycle of a job (in-memory; the durable truth is the
/// job's store).
#[derive(Clone, Debug, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Cancelled,
    Failed(String),
}

impl JobState {
    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed(_) => "failed",
        }
    }
}

struct JobHandle {
    spec: CampaignSpec,
    store: Mutex<CampaignStore>,
    state: Mutex<JobState>,
    cancel: AtomicBool,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct QueueEntry {
    priority: u8,
    submit_seq: u64,
    job: String,
}

struct Shared {
    config: ServerConfig,
    jobs: Mutex<BTreeMap<String, Arc<JobHandle>>>,
    queue: Mutex<Vec<QueueEntry>>,
    wake: Condvar,
    shutdown: AtomicBool,
    submit_counter: AtomicU64,
    /// Process-wide live telemetry (the `stats` verb's source of truth).
    telemetry: Arc<Telemetry>,
}

impl Shared {
    /// Queue a job for the scheduler (idempotent per job id).
    fn enqueue(&self, job: &str, priority: u8) {
        let mut queue = self.queue.lock().expect("queue lock");
        if !queue.iter().any(|e| e.job == job) {
            queue.push(QueueEntry {
                priority,
                submit_seq: self.submit_counter.fetch_add(1, Ordering::SeqCst),
                job: job.to_string(),
            });
        }
        drop(queue);
        self.wake.notify_all();
    }

    /// Pop the best queued entry: highest priority, earliest submission.
    fn pop_best(&self) -> Option<QueueEntry> {
        let mut queue = self.queue.lock().expect("queue lock");
        let best = queue
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| (e.priority, std::cmp::Reverse(e.submit_seq)))
            .map(|(i, _)| i)?;
        Some(queue.remove(best))
    }
}

/// A running campaign server plus the handles to stop it.
pub struct CampaignServer {
    addr: String,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    scheduler_thread: Option<JoinHandle<()>>,
}

impl CampaignServer {
    /// Bind `addr`, restore jobs from the store root (re-queuing every
    /// incomplete one), and start the scheduler and accept threads.
    pub fn spawn(addr: &str, config: ServerConfig) -> Result<Self, CampaignError> {
        std::fs::create_dir_all(&config.store_root)?;
        let listener = Listener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;

        let shared = Arc::new(Shared {
            config,
            jobs: Mutex::new(BTreeMap::new()),
            queue: Mutex::new(Vec::new()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            submit_counter: AtomicU64::new(0),
            telemetry: Arc::new(Telemetry::new()),
        });
        restore_jobs(&shared)?;

        let scheduler_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || scheduler_loop(&shared))
        };
        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener))
        };
        Ok(CampaignServer {
            addr: bound,
            shared,
            accept_thread: Some(accept_thread),
            scheduler_thread: Some(scheduler_thread),
        })
    }

    /// The bound address (TCP port 0 resolved).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Graceful shutdown: stop accepting, let the running job finish its
    /// in-flight cells, checkpoint, and join both threads.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.scheduler_thread.take() {
            let _ = t.join();
        }
    }

    /// Block until the server stops (the CLI `serve` mode; the process
    /// is expected to be killed, and recovery handles the rest).
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.scheduler_thread.take() {
            let _ = t.join();
        }
    }
}

/// Scan the store root and re-adopt every persisted job; incomplete jobs
/// go straight back on the queue — this is the kill-and-resume path.
fn restore_jobs(shared: &Arc<Shared>) -> Result<(), CampaignError> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&shared.config.store_root)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.join("spec.json").is_file())
        .collect();
    entries.sort();
    for dir in entries {
        let job = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let mut store = CampaignStore::open(&shared.config.store_root, &job)?;
        store.attach_telemetry(Arc::clone(&shared.telemetry));
        let spec = store.spec().clone();
        let complete = store.is_complete();
        let handle = Arc::new(JobHandle {
            spec: spec.clone(),
            store: Mutex::new(store),
            state: Mutex::new(if complete {
                JobState::Done
            } else {
                JobState::Queued
            }),
            cancel: AtomicBool::new(false),
        });
        shared
            .jobs
            .lock()
            .expect("jobs lock")
            .insert(job.clone(), handle);
        if !complete {
            shared.enqueue(&job, spec.priority);
        }
    }
    Ok(())
}

fn scheduler_loop(shared: &Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Some(entry) = shared.pop_best() else {
            // Nothing queued: nap until a submit or shutdown wakes us.
            let queue = shared.queue.lock().expect("queue lock");
            let _unused = shared
                .wake
                .wait_timeout(queue, Duration::from_millis(100))
                .expect("queue lock");
            continue;
        };
        let handle = {
            let jobs = shared.jobs.lock().expect("jobs lock");
            jobs.get(&entry.job).cloned()
        };
        let Some(handle) = handle else { continue };
        if handle.cancel.load(Ordering::SeqCst) {
            continue; // cancelled while queued
        }
        *handle.state.lock().expect("state lock") = JobState::Running;
        let config = RunnerConfig {
            workers: shared.config.workers,
            snapshot_every: shared.config.snapshot_every,
            ..RunnerConfig::default()
        };
        // The job's cancel flag doubles as the graceful-shutdown signal:
        // a stopping server cancels the running job's *scheduling*, never
        // its durable results.
        let stop = &handle.cancel;
        let watchdog = {
            let shared = Arc::clone(shared);
            let handle = Arc::clone(&handle);
            std::thread::spawn(move || {
                while !handle.cancel.load(Ordering::SeqCst) {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        handle.cancel.store(true, Ordering::SeqCst);
                        return;
                    }
                    if *handle.state.lock().expect("state lock") != JobState::Running {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
            })
        };
        let outcome = run_campaign_telemetry(
            &handle.store,
            &FullRegistry,
            config,
            stop,
            Some(&shared.telemetry),
            |_| {},
        );
        let next = match outcome {
            Ok(RunOutcome::Complete) => JobState::Done,
            Ok(RunOutcome::Stopped) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // Leave it queued on disk; the next start resumes it.
                    JobState::Queued
                } else {
                    JobState::Cancelled
                }
            }
            Err(err) => JobState::Failed(err.to_string()),
        };
        *handle.state.lock().expect("state lock") = next;
        let _ = watchdog.join();
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &Listener) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(Some(stream)) => {
                let shared = Arc::clone(shared);
                connections.push(std::thread::spawn(move || {
                    let _ = serve_connection(&shared, stream);
                }));
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(20)),
            Err(_) => break,
        }
        connections.retain(|c| !c.is_finished());
    }
    for c in connections {
        let _ = c.join();
    }
}

/// `read_line` that keeps polling through read timeouts so the thread
/// notices server shutdown; a timeout mid-line keeps accumulating into
/// `line` (`read_until` leaves already-read bytes in the buffer).
fn read_frame(
    shared: &Shared,
    reader: &mut BufReader<IoStream>,
    line: &mut String,
) -> Result<usize, CampaignError> {
    loop {
        match reader.read_line(line) {
            Ok(n) => return Ok(n),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(0);
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
}

fn serve_connection(shared: &Arc<Shared>, stream: IoStream) -> Result<(), CampaignError> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);

    // Handshake: server first, then the client's hello, majors must match.
    writer.write_all(encode_hello(&Hello::current()).as_bytes())?;
    writer.flush()?;
    let mut line = String::new();
    if read_frame(shared, &mut reader, &mut line)? == 0 {
        return Ok(()); // peer went away before the handshake
    }
    let theirs = decode_hello(&line)?;
    theirs.check_compatible()?;

    loop {
        line.clear();
        if read_frame(shared, &mut reader, &mut line)? == 0 {
            return Ok(()); // clean EOF (or shutdown)
        }
        if line.trim().is_empty() {
            continue;
        }
        // Bad frames are answered, not fatal: the protocol promises the
        // connection survives unknown verbs and malformed requests.
        let response = match decode_line::<Request>(&line) {
            Ok(request) => handle_request(shared, request),
            Err(err) => Response::from_error(&err),
        };
        writer.write_all(encode_line(&response).as_bytes())?;
        writer.flush()?;
    }
}

fn handle_request(shared: &Arc<Shared>, request: Request) -> Response {
    let result = match request {
        Request::Submit { spec } => handle_submit(shared, *spec),
        Request::Status { job } => handle_status(shared, &job),
        Request::Results {
            job,
            cursor,
            max,
            merged,
        } => handle_results(shared, &job, cursor, max, merged),
        Request::Cancel { job } => handle_cancel(shared, &job),
        Request::Stats => handle_stats(shared),
    };
    result.unwrap_or_else(|err| Response::from_error(&err))
}

fn lookup(shared: &Arc<Shared>, job: &str) -> Result<Arc<JobHandle>, CampaignError> {
    shared
        .jobs
        .lock()
        .expect("jobs lock")
        .get(job)
        .cloned()
        .ok_or_else(|| CampaignError::State(format!("unknown job `{job}`")))
}

fn handle_submit(shared: &Arc<Shared>, spec: CampaignSpec) -> Result<Response, CampaignError> {
    spec.validate()?;
    let mut spec = spec;
    spec.migrate();
    let existing = {
        let jobs = shared.jobs.lock().expect("jobs lock");
        jobs.get(&spec.job).cloned()
    };
    if let Some(handle) = existing {
        if handle.spec != spec {
            return Err(CampaignError::State(format!(
                "job `{}` already exists with a different spec",
                spec.job
            )));
        }
        let (cells, complete) = {
            let store = handle.store.lock().expect("store lock");
            (store.cells().len() as u64, store.is_complete())
        };
        let state = handle.state.lock().expect("state lock").clone();
        if !complete && !matches!(state, JobState::Queued | JobState::Running) {
            // Re-attach to a cancelled/failed job: clear the flag, requeue.
            handle.cancel.store(false, Ordering::SeqCst);
            *handle.state.lock().expect("state lock") = JobState::Queued;
            shared.enqueue(&spec.job, spec.priority);
        }
        return Ok(Response::Submitted {
            job: spec.job,
            cells,
            resumed: true,
        });
    }
    let (mut store, resumed) = CampaignStore::open_or_create(&shared.config.store_root, &spec)?;
    store.attach_telemetry(Arc::clone(&shared.telemetry));
    let cells = store.cells().len() as u64;
    let complete = store.is_complete();
    let job = spec.job.clone();
    let priority = spec.priority;
    let handle = Arc::new(JobHandle {
        spec,
        store: Mutex::new(store),
        state: Mutex::new(if complete {
            JobState::Done
        } else {
            JobState::Queued
        }),
        cancel: AtomicBool::new(false),
    });
    shared
        .jobs
        .lock()
        .expect("jobs lock")
        .insert(job.clone(), handle);
    if !complete {
        shared.enqueue(&job, priority);
    }
    Ok(Response::Submitted {
        job,
        cells,
        resumed,
    })
}

fn handle_status(shared: &Arc<Shared>, job: &str) -> Result<Response, CampaignError> {
    let handle = lookup(shared, job)?;
    let store = handle.store.lock().expect("store lock");
    let state = handle.state.lock().expect("state lock");
    Ok(Response::Status(JobStatus {
        job: job.to_string(),
        state: state.name().to_string(),
        total: store.cells().len() as u64,
        completed: store.completed() as u64,
        next_seq: store.next_seq(),
        priority: handle.spec.priority,
    }))
}

fn handle_results(
    shared: &Arc<Shared>,
    job: &str,
    cursor: u64,
    max: u32,
    merged: bool,
) -> Result<Response, CampaignError> {
    // Page-size bounds are protocol errors, answered before any store
    // work.  `max: 0` used to be silently clamped to 1 — a page the
    // client never asked for, indistinguishable from a real one-record
    // page — and an unbounded `max` would buffer and serialize a whole
    // job's records for one request.
    if max == 0 {
        return Err(CampaignError::Protocol(
            "results page size 0 is meaningless (omit `max` for the default page)".into(),
        ));
    }
    if max > MAX_PAGE {
        return Err(CampaignError::Protocol(format!(
            "results page size {max} exceeds the {MAX_PAGE} cap \
             (page with the returned cursor instead)"
        )));
    }
    let handle = lookup(shared, job)?;
    let store = handle.store.lock().expect("store lock");
    if merged {
        let report = crate::scheduler::merged_report(&store)?;
        return Ok(Response::Merged {
            report: Box::new(report),
        });
    }
    let records = store.records();
    // Records are in strictly increasing `seq` order; page the suffix.
    let start = records.partition_point(|r| r.seq < cursor);
    let page: Vec<_> = records[start..]
        .iter()
        .take(max as usize)
        .cloned()
        .collect();
    let next_cursor = page
        .last()
        .map(|r| r.seq + 1)
        .unwrap_or_else(|| cursor.max(store.next_seq()));
    let complete = store.is_complete();
    let state = handle.state.lock().expect("state lock").clone();
    // `done` promises "no more records will ever arrive": either every
    // cell is durable, or the job will not be scheduled again.
    let done = complete || matches!(state, JobState::Cancelled | JobState::Failed(_));
    Ok(Response::Results {
        records: page,
        cursor: next_cursor,
        total: store.next_seq(),
        done,
    })
}

/// Assemble the `stats` response from the process telemetry plus a walk
/// over the live job table.  Purely observational: takes the same locks
/// as `status`, mutates nothing.
fn handle_stats(shared: &Arc<Shared>) -> Result<Response, CampaignError> {
    let telemetry = &shared.telemetry;
    let cells_per_s = telemetry.cells_per_s();
    let (fsyncs, p50_ns, p90_ns, p99_ns) = telemetry.fsync_summary_ns();

    let handles: Vec<(String, Arc<JobHandle>)> = {
        let jobs = shared.jobs.lock().expect("jobs lock");
        jobs.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    };
    let mut jobs = Vec::with_capacity(handles.len());
    let mut cells_pending = 0u64;
    let mut running_jobs = 0u64;
    for (name, handle) in handles {
        let (total, completed) = {
            let store = handle.store.lock().expect("store lock");
            (store.cells().len() as u64, store.completed() as u64)
        };
        let state = handle.state.lock().expect("state lock").clone();
        let remaining = total - completed;
        let running = state == JobState::Running;
        if running {
            running_jobs += 1;
        }
        if matches!(state, JobState::Queued | JobState::Running) {
            cells_pending += remaining;
        }
        // ETA only when it is a finite, meaningful number: serde_json
        // cannot represent NaN/Inf, and a non-finite ETA (rate denormal,
        // huge remaining count) would poison the whole stats payload.
        let eta_s = if running && cells_per_s > 0.0 && remaining > 0 {
            Some(remaining as f64 / cells_per_s).filter(|eta| eta.is_finite())
        } else {
            None
        };
        jobs.push(JobTelemetry {
            job: name,
            state: state.name().to_string(),
            completed,
            total,
            eta_s,
        });
    }
    let queue_depth = shared.queue.lock().expect("queue lock").len() as u64;
    Ok(Response::Stats(ServerStats {
        uptime_s: telemetry.uptime_s(),
        workers: shared.config.workers as u64,
        busy_workers: telemetry.busy_workers(),
        queue_depth,
        running_jobs,
        cells_completed: telemetry.cells_done(),
        cells_pending,
        cells_per_s,
        fsyncs,
        fsync_p50_us: p50_ns / 1_000,
        fsync_p90_us: p90_ns / 1_000,
        fsync_p99_us: p99_ns / 1_000,
        jobs,
    }))
}

fn handle_cancel(shared: &Arc<Shared>, job: &str) -> Result<Response, CampaignError> {
    let handle = lookup(shared, job)?;
    handle.cancel.store(true, Ordering::SeqCst);
    {
        let mut queue = shared.queue.lock().expect("queue lock");
        queue.retain(|e| e.job != job);
    }
    let mut state = handle.state.lock().expect("state lock");
    if matches!(*state, JobState::Queued) {
        *state = JobState::Cancelled;
    }
    // A Running job flips to Cancelled when the scheduler drains it.
    Ok(Response::Cancelled {
        job: job.to_string(),
    })
}
